//! PETRA-style stage-pipelined training (arXiv 2406.02052): the
//! reversible body is partitioned into `P` stages, each owned by a
//! long-lived worker thread, and micro-batches stream through the stage
//! chain as messages. Because every stage is reversible, each worker
//! reconstructs its own inputs during backward — no cross-stage
//! activation buffering exists anywhere in the pipeline.
//!
//! # Two modes
//!
//! * **Synchronous fill/drain** ([`PipelineEngine::step`]): one step in
//!   flight; micro-batches overlap *within* the step. Merged gradients,
//!   loss, logits, and BatchNorm statistics are **bitwise identical** to
//!   [`crate::ShardEngine`] on the same batch: every cross-sample
//!   reduction is the same pairwise stride-doubling tree over per-sample
//!   partials (see `shard.rs` for the alignment theorem), and decoupled
//!   BN makes every sample's activations independent of its batch
//!   neighbours — so splitting the batch `(micro, shard)`-wise instead of
//!   shard-wise performs the same `f32` additions in the same order.
//! * **Delayed gradients** ([`train_pipeline_delayed`]): up to `K + 1`
//!   steps (`K` = [`PipelineConfig::staleness`], `K >= 1`) overlap. Step
//!   `t` runs forward *and* backward against the parameter version
//!   `t - K` (a uniform-staleness variant of PETRA's per-stage delays);
//!   workers keep a small snapshot ring and gate work on version
//!   availability, and the driver applies per-stage updates strictly in
//!   step order — so the run is a pure function of
//!   `(seed, P, K, micros, shards)`, independent of thread scheduling.
//!
//! # Deadlock freedom
//!
//! Worker mailboxes are bounded (`sync_channel`), the driver's mailbox is
//! unbounded, and workers always drain their mailbox into a local pending
//! queue before blocking — so every blocking-send chain terminates at the
//! driver sink, and gated (delayed-mode) messages never starve control
//! traffic. Time spent blocked waiting for stage messages is charged to
//! [`meter::Phase::Stall`], surfacing the fill/drain bubble in
//! [`crate::PhaseBreakdown`].
//!
//! Stages compose with data-parallel sharding: each worker can fan a
//! micro-batch over [`PipelineConfig::shards`] replica cells (shards
//! *inside* a stage), reusing the shard engine's merge trees.

use crate::shard::ShardStepFaults;
use crate::trainer::{evaluate, EpochStats, TrainConfig, TrainHistory};
use crate::metrics::{top1_accuracy, AverageMeter, PhaseBreakdown};
use crate::schedule::LrSchedule;
use crate::sgd::Sgd;
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn::{RevBiFPN, RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_data::SynthScale;
use revbifpn_nn::layers::BnMoments;
use revbifpn_nn::loss::{label_smooth, one_hot, softmax_cross_entropy_per_sample};
use revbifpn_nn::{meter, CacheMode, Layer};
use revbifpn_rev::{CellTrip, DriftConfig, DriftStageReport, StageCell, StageControl, StageMsg};
use revbifpn_tensor::{par, Shape, Tensor};
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TryRecvError, TrySendError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Upper bound on micro-batches per step (sizes the per-worker
/// fingerprint-slot space; far above any realistic CPU micro count).
const MAX_MICROS: usize = 64;

/// Pipeline-parallel training configuration. `stages == 0` disables the
/// pipeline entirely (the trainer falls back to the serial or sharded
/// step).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Number of pipeline stages (worker threads). `0` disables.
    pub stages: usize,
    /// Micro-batches per step (power of two, `<= 64`). The batch is cut
    /// into this many contiguous micro-batches that overlap in flight.
    pub micros: usize,
    /// Data-parallel shard count *within* each stage (power of two):
    /// each worker fans every micro-batch over this many replica cells.
    pub shards: usize,
    /// Delayed-gradient staleness bound `K`. `0` means synchronous mode
    /// (used by [`crate::train_classifier_with`]); `K >= 1` enables
    /// [`train_pipeline_delayed`] with up to `K + 1` steps in flight.
    pub staleness: usize,
}

impl PipelineConfig {
    /// Pipeline disabled (the trainer's default).
    pub fn disabled() -> Self {
        Self { stages: 0, micros: 2, shards: 1, staleness: 0 }
    }

    /// Synchronous fill/drain pipeline with `stages` stages and `micros`
    /// micro-batches per step.
    pub fn sync(stages: usize, micros: usize) -> Self {
        Self { stages, micros, shards: 1, staleness: 0 }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// What one synchronous pipelined step produced (mirror of
/// [`crate::ShardStepOutput`]).
#[derive(Debug)]
pub struct PipelineStepOutput {
    /// Full-batch logits, assembled in sample order. On a tripped step,
    /// micro-batches that never reached the head are zero-filled.
    pub logits: Tensor,
    /// Mean cross-entropy loss (zero when `backward_ran` is false).
    pub loss: f64,
    /// `false` when the step tripped (non-finite logits or a drift
    /// sentinel under a non-`Warn` policy): no gradients or BN statistics
    /// were merged into the primary model.
    pub backward_ran: bool,
    /// Micro-batches the step actually used.
    pub micros_used: usize,
    /// Within-stage shards the step actually used.
    pub shards_used: usize,
}

/// Per-stage result shipped to the driver once a worker has finished all
/// of a step's backward micro-batches.
struct StageReport {
    stage: usize,
    seq: u64,
    /// Tree-merged parameter gradients, in cell `visit_params` order.
    grads: Vec<Tensor>,
    /// Per-BN full-batch per-sample moment tables, sample-major.
    moments: Vec<BnMoments>,
    /// Cumulative drift-sentinel statistics for this worker's stages.
    drift: Vec<DriftStageReport>,
    /// Per-op meter deltas: forwards in micro order, then backwards in
    /// micro order (absorbed by the driver for a deterministic trace).
    meters: Vec<meter::TaskMeter>,
    /// Nanoseconds this worker spent computing for the step.
    busy_nanos: u64,
}

/// Messages from workers to the driver (unbounded channel: the sink that
/// terminates every blocking-send chain).
enum DriverMsg {
    /// The last stage's forward output for one micro-batch.
    Pyramid { seq: u64, micro: u32, streams: Vec<Tensor> },
    /// The first stage's input adjoint for one micro-batch.
    StemAdjoint { seq: u64, micro: u32, dx: Tensor },
    /// A worker finished a step.
    StageDone(Box<StageReport>),
    /// A drift sentinel tripped inside a cell.
    Trip { stage: usize, seq: u64, drift: f32 },
    /// Abort acknowledged; the worker dropped all in-flight state.
    Acked,
}

// ---------------------------------------------------------------------
// Small helpers shared by the driver and the workers.
// ---------------------------------------------------------------------

/// Largest `s <= want` with `s | n` and `n / s` a power of two (the
/// shard-alignment precondition), falling back to 1. Pure in `n`, so all
/// engines degrade to the same split.
fn effective_split(n: usize, want: usize) -> usize {
    let mut s = want.min(n).next_power_of_two();
    while s > want.min(n) {
        s /= 2;
    }
    while s > 1 && !(n.is_multiple_of(s) && (n / s).is_power_of_two()) {
        s /= 2;
    }
    s.max(1)
}

/// Contiguous sample slice `[lo, lo + n)` of a batch tensor.
fn slice_batch(t: &Tensor, lo: usize, n: usize) -> Tensor {
    let chw = t.shape().chw();
    Tensor::from_vec_unchecked(
        Shape { n, ..t.shape() },
        t.data()[lo * chw..(lo + n) * chw].to_vec(),
    )
}

/// Concatenates per-shard stream lists back into full-micro streams, in
/// shard (= sample) order.
fn concat_streams(parts: &[Vec<Tensor>]) -> Vec<Tensor> {
    let streams = parts[0].len();
    (0..streams)
        .map(|j| {
            let n: usize = parts.iter().map(|p| p[j].shape().n).sum();
            let chw = parts[0][j].shape().chw();
            let mut data = Vec::with_capacity(n * chw);
            for p in parts {
                data.extend_from_slice(p[j].data());
            }
            Tensor::from_vec_unchecked(Shape { n, ..parts[0][j].shape() }, data)
        })
        .collect()
}

/// Pairwise stride-doubling tree over leaf gradient slabs (same shape as
/// `ShardEngine::merge_grads`); returns the root slab. `slabs.len()` must
/// be a power of two for subtree alignment.
fn tree_merge_slabs(mut slabs: Vec<Vec<Tensor>>) -> Vec<Tensor> {
    let l = slabs.len();
    let mut stride = 1;
    while stride < l {
        let mut lo = 0;
        while lo + stride < l {
            let (left, right) = slabs.split_at_mut(lo + stride);
            for (d, s) in left[lo].iter_mut().zip(right[0].iter()) {
                for (a, b) in d.data_mut().iter_mut().zip(s.data()) {
                    *a += *b;
                }
            }
            lo += 2 * stride;
        }
        stride *= 2;
    }
    slabs.swap_remove(0)
}

/// Concatenates per-leaf BN moment tables (leaf order = sample order)
/// into one full-batch table.
fn concat_moments(tables: Vec<BnMoments>) -> BnMoments {
    let hw = tables[0].hw;
    let mut samples = 0;
    let mut sum = Vec::new();
    let mut sqsum = Vec::new();
    for t in tables {
        assert_eq!(t.hw, hw, "BN spatial extent mismatch across leaves");
        samples += t.samples;
        sum.extend_from_slice(&t.sum);
        sqsum.extend_from_slice(&t.sqsum);
    }
    BnMoments { samples, hw, sum, sqsum }
}

/// Tree-reduces a full-batch per-sample moment table to `(mean, var)`
/// (same tree and arithmetic as `ShardEngine::merge_bn_stats`).
fn reduce_moments(n: usize, m: &BnMoments) -> (Tensor, Tensor) {
    assert_eq!(m.samples, n, "BN moment sample count mismatch");
    let c = m.sum.len() / n.max(1);
    let mut s1 = m.sum.clone();
    let mut s2 = m.sqsum.clone();
    par::tree_reduce_serial(n, |d, s| {
        for ci in 0..c {
            s1[d * c + ci] += s1[s * c + ci];
            s2[d * c + ci] += s2[s * c + ci];
        }
    });
    let denom = (n * m.hw) as f64;
    let mut mean = vec![0.0f32; c];
    let mut var = vec![0.0f32; c];
    for ci in 0..c {
        let mu = s1[ci] / denom;
        mean[ci] = mu as f32;
        var[ci] = (s2[ci] / denom - mu * mu).max(0.0) as f32;
    }
    (
        Tensor::from_vec_unchecked(Shape::vector(c), mean),
        Tensor::from_vec_unchecked(Shape::vector(c), var),
    )
}

/// Stores one op's per-BN moments into a `[bn][slot]` table, sizing it on
/// first use.
fn note_moms(store: &mut Vec<Vec<Option<BnMoments>>>, slots: usize, idx: usize, moms: Vec<BnMoments>) {
    if store.is_empty() {
        *store = (0..moms.len()).map(|_| (0..slots).map(|_| None).collect()).collect();
    }
    assert_eq!(store.len(), moms.len(), "BN count changed mid-step");
    for (j, m) in moms.into_iter().enumerate() {
        store[j][idx] = Some(m);
    }
}

/// Reduces a `[bn][slot]` edge moment table into `(mean, var)` pairs.
fn reduce_mom_table(n: usize, store: Vec<Vec<Option<BnMoments>>>) -> Vec<(Tensor, Tensor)> {
    store
        .into_iter()
        .map(|per_slot| {
            let tables: Vec<BnMoments> =
                per_slot.into_iter().map(|m| m.expect("missing BN moments")).collect();
            let full = concat_moments(tables);
            reduce_moments(n, &full)
        })
        .collect()
}

fn take_cell_moments(cell: &mut StageCell) -> Vec<BnMoments> {
    let mut list = Vec::new();
    cell.visit_bn(&mut |bn| {
        list.push(bn.take_moments().expect("decoupled BN recorded no moments"));
        // Release the frozen running-stats copy here, inside the forward
        // op's own meter scope. The backward op clears it unconditionally
        // anyway (forcing the bitwise-identical live-stats recompute), but
        // in delayed mode two overlapping steps share this slot — letting
        // one step's backward release bytes another step's forward
        // registered would make the canonical absorb trace go negative.
        bn.clear_cache();
    });
    list
}

// ---------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------

/// `Stats`-mode forward of one micro-batch through a worker's cells,
/// fanned over `s_eff` shard replicas. Returns the concatenated output
/// streams plus each shard's per-BN moments, all under one isolated meter
/// scope.
fn forward_op(
    cells: &mut [StageCell],
    s_eff: usize,
    slot: usize,
    streams: &[Tensor],
) -> ((Vec<Tensor>, Vec<Vec<BnMoments>>), meter::TaskMeter) {
    meter::isolated(|| {
        meter::time_phase(meter::Phase::Forward, || {
            if s_eff == 1 {
                let out = cells[0].forward_micro(slot, streams);
                let moms = take_cell_moments(&mut cells[0]);
                (out, vec![moms])
            } else {
                let mb = streams[0].shape().n;
                let sb = mb / s_eff;
                let mut inputs: Vec<Vec<Tensor>> = (0..s_eff)
                    .map(|k| streams.iter().map(|t| slice_batch(t, k * sb, sb)).collect())
                    .collect();
                let mut slots: Vec<Option<(ShardForwardOut, meter::TaskMeter)>> =
                    (0..s_eff).map(|_| None).collect();
                {
                    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(s_eff);
                    for ((cell, out_slot), input) in
                        cells[..s_eff].iter_mut().zip(slots.iter_mut()).zip(inputs.drain(..))
                    {
                        tasks.push(Box::new(move || {
                            *out_slot = Some(meter::isolated(|| {
                                let out = cell.forward_micro(slot, &input);
                                let moms = take_cell_moments(cell);
                                (out, moms)
                            }));
                        }));
                    }
                    par::parallel_join(tasks);
                }
                let mut outs = Vec::with_capacity(s_eff);
                let mut moms = Vec::with_capacity(s_eff);
                for s in slots {
                    let ((o, m), tm) = s.expect("shard task did not run");
                    meter::absorb(&tm);
                    outs.push(o);
                    moms.push(m);
                }
                (concat_streams(&outs), moms)
            }
        })
    })
}

/// One shard cell's forward output: per-stream activations plus the
/// per-BN moment tables recorded by decoupled batch norm.
type ShardForwardOut = (Vec<Tensor>, Vec<BnMoments>);

/// One shard cell's backward output: reconstructed inputs, input
/// adjoints, and the parameter-gradient slab.
type ShardBackwardOut = (Vec<Tensor>, Vec<Tensor>, Vec<Tensor>);

/// Reversible backward of one micro-batch through one shard cell: clears
/// BN caches first (forcing the order-independent live-running-stats
/// branch of decoupled BN), zeroes and then captures the grad slab, and
/// discards the reconstruction-pass BN moments (the forward pass already
/// recorded the step's statistics).
fn backward_one(
    cell: &mut StageCell,
    slot: usize,
    ys: &[Tensor],
    dys: &[Tensor],
) -> Result<ShardBackwardOut, CellTrip> {
    cell.visit_bn(&mut |bn| bn.clear_cache());
    cell.visit_params(&mut |p| p.grad.data_mut().fill(0.0));
    let (xs, dxs) = cell.backward_micro(slot, ys, dys)?;
    let mut slab = Vec::new();
    cell.visit_params(&mut |p| slab.push(p.grad.clone()));
    cell.visit_bn(&mut |bn| {
        let _ = bn.take_moments();
    });
    Ok((xs, dxs, slab))
}

type BackwardOk = (Vec<Tensor>, Vec<Tensor>, Vec<Vec<Tensor>>);

/// Backward of one micro-batch fanned over `s_eff` shard cells. No
/// `Phase` wrapper: `backward_rev` internals self-charge `Reconstruct`
/// and `Backward`.
fn backward_op(
    cells: &mut [StageCell],
    s_eff: usize,
    slot: usize,
    ys: &[Tensor],
    dys: &[Tensor],
) -> (Result<BackwardOk, CellTrip>, meter::TaskMeter) {
    meter::isolated(|| {
        if s_eff == 1 {
            backward_one(&mut cells[0], slot, ys, dys)
                .map(|(xs, dxs, slab)| (xs, dxs, vec![slab]))
        } else {
            let mb = ys[0].shape().n;
            let sb = mb / s_eff;
            let mut inputs: Vec<(Vec<Tensor>, Vec<Tensor>)> = (0..s_eff)
                .map(|k| {
                    (
                        ys.iter().map(|t| slice_batch(t, k * sb, sb)).collect(),
                        dys.iter().map(|t| slice_batch(t, k * sb, sb)).collect(),
                    )
                })
                .collect();
            type Slot = Option<(
                Result<(Vec<Tensor>, Vec<Tensor>, Vec<Tensor>), CellTrip>,
                meter::TaskMeter,
            )>;
            let mut slots: Vec<Slot> = (0..s_eff).map(|_| None).collect();
            {
                let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(s_eff);
                for ((cell, out_slot), (ys_k, dys_k)) in
                    cells[..s_eff].iter_mut().zip(slots.iter_mut()).zip(inputs.drain(..))
                {
                    tasks.push(Box::new(move || {
                        *out_slot =
                            Some(meter::isolated(|| backward_one(cell, slot, &ys_k, &dys_k)));
                    }));
                }
                par::parallel_join(tasks);
            }
            let mut xs_parts = Vec::with_capacity(s_eff);
            let mut dxs_parts = Vec::with_capacity(s_eff);
            let mut slabs = Vec::with_capacity(s_eff);
            let mut trip = None;
            for s in slots {
                let (r, tm) = s.expect("shard task did not run");
                meter::absorb(&tm);
                match r {
                    Ok((xs, dxs, slab)) => {
                        xs_parts.push(xs);
                        dxs_parts.push(dxs);
                        slabs.push(slab);
                    }
                    Err(t) => trip = trip.or(Some(t)),
                }
            }
            match trip {
                Some(t) => Err(t),
                None => Ok((concat_streams(&xs_parts), concat_streams(&dxs_parts), slabs)),
            }
        }
    })
}

/// Per-step bookkeeping inside a worker.
struct WorkerStep {
    micros: usize,
    shards: usize,
    version: u64,
    /// Fingerprint-slot base: `(seq % ring_cap) * MAX_MICROS` keeps
    /// overlapping steps' drift fingerprints from colliding.
    slot_base: usize,
    /// Running-statistics snapshot this step normalizes with, captured
    /// from the worker's local accumulator at the step's first forward
    /// micro-batch. Forward and backward-recompute must see identical
    /// stats even while later steps fold the accumulator onward.
    stats: Option<Vec<Tensor>>,
    fwd_done: usize,
    bwd_done: usize,
    busy_nanos: u64,
    /// Per-leaf grad slabs, leaf = `micro * shards + shard`.
    slabs: Vec<Option<Vec<Tensor>>>,
    /// Forward-pass BN moments, `[bn][leaf]`.
    moments: Vec<Vec<Option<BnMoments>>>,
    fwd_meters: Vec<Option<meter::TaskMeter>>,
    bwd_meters: Vec<Option<meter::TaskMeter>>,
}

impl WorkerStep {
    fn new(micros: usize, shards: usize, version: u64, slot_base: usize) -> Self {
        Self {
            micros,
            shards,
            version,
            slot_base,
            stats: None,
            fwd_done: 0,
            bwd_done: 0,
            busy_nanos: 0,
            slabs: (0..micros * shards).map(|_| None).collect(),
            moments: Vec::new(),
            fwd_meters: (0..micros).map(|_| None).collect(),
            bwd_meters: (0..micros).map(|_| None).collect(),
        }
    }
}

struct Worker {
    pos: usize,
    cells: Vec<StageCell>,
    rx: Receiver<StageMsg>,
    next: Option<SyncSender<StageMsg>>,
    prev: Option<SyncSender<StageMsg>>,
    driver: Sender<DriverMsg>,
    ring_cap: usize,
}

impl Worker {
    /// `true` when the message can be handled right now. Control is
    /// always processable; data requires a registered step whose
    /// parameter version has arrived (unknown seqs are stale leftovers,
    /// processable as drops).
    fn processable(
        msg: &StageMsg,
        steps: &BTreeMap<u64, WorkerStep>,
        ring: &VecDeque<(u64, Vec<Tensor>, Vec<Tensor>)>,
    ) -> bool {
        let seq = match msg {
            StageMsg::Control(_) => return true,
            StageMsg::Activation { seq, .. } | StageMsg::Adjoint { seq, .. } => *seq,
        };
        match steps.get(&seq) {
            None => true, // stale: drop on handle
            Some(st) => ring.iter().any(|(v, _, _)| *v == st.version),
        }
    }

    /// Copies the ring entry's *parameters* for `version` into every
    /// cell, if not already live. Buffers (BN running statistics) are
    /// deliberately not taken from the ring: unlike weights, they are
    /// local per-stage accumulators — delaying them with the parameter
    /// version would feed each step's normalization K-stale statistics,
    /// a depth-compounding feedback the delayed mode cannot absorb.
    fn load_params(
        cells: &mut [StageCell],
        ring: &VecDeque<(u64, Vec<Tensor>, Vec<Tensor>)>,
        live: &mut Option<u64>,
        version: u64,
    ) {
        if *live == Some(version) {
            return;
        }
        let (_, params, _) = ring
            .iter()
            .find(|(v, _, _)| *v == version)
            .expect("gated message without its parameter version");
        for c in cells.iter_mut() {
            let mut i = 0;
            c.visit_params(&mut |p| {
                p.value.data_mut().copy_from_slice(params[i].data());
                i += 1;
            });
        }
        *live = Some(version);
    }

    /// Copies a running-statistics snapshot into every cell's buffers.
    fn load_stats(cells: &mut [StageCell], stats: &[Tensor]) {
        for c in cells.iter_mut() {
            let mut j = 0;
            c.visit_buffers(&mut |t| {
                t.data_mut().copy_from_slice(stats[j].data());
                j += 1;
            });
        }
    }

    /// Folds one completed forward's merged batch statistics into the
    /// local running-statistics accumulator, in flight order. Runs the
    /// exact arithmetic the driver applies to the primary (same
    /// `reduce_moments` tree, same `apply_global_stats` momentum update,
    /// via `cells[0]`'s own BN layers), so the accumulator stays bitwise
    /// equal to the primary's post-step statistics for this stage.
    fn fold_stats(cell: &mut StageCell, acc: &mut [Tensor], st: &WorkerStep) {
        let mut j = 0;
        cell.visit_buffers(&mut |t| {
            t.data_mut().copy_from_slice(acc[j].data());
            j += 1;
        });
        let stats: Vec<(Tensor, Tensor)> = st
            .moments
            .iter()
            .map(|per_leaf| {
                let m = concat_moments(
                    per_leaf
                        .iter()
                        .map(|m| m.clone().expect("missing leaf moments at fold"))
                        .collect(),
                );
                reduce_moments(m.samples, &m)
            })
            .collect();
        let mut it = stats.iter();
        cell.visit_bn(&mut |bn| {
            let (mean, var) = it.next().expect("fold BN count mismatch");
            bn.apply_global_stats(mean, var);
        });
        assert!(it.next().is_none(), "fold BN count mismatch");
        let mut j = 0;
        cell.visit_buffers(&mut |t| {
            acc[j].data_mut().copy_from_slice(t.data());
            j += 1;
        });
    }

    fn finalize(&self, seq: u64, st: WorkerStep) -> StageReport {
        let slabs: Vec<Vec<Tensor>> =
            st.slabs.into_iter().map(|s| s.expect("missing leaf slab")).collect();
        let grads = tree_merge_slabs(slabs);
        let moments: Vec<BnMoments> = st
            .moments
            .into_iter()
            .map(|per_leaf| {
                concat_moments(
                    per_leaf.into_iter().map(|m| m.expect("missing leaf moments")).collect(),
                )
            })
            .collect();
        let mut meters = Vec::with_capacity(2 * st.fwd_meters.len());
        meters.extend(st.fwd_meters.into_iter().flatten());
        meters.extend(st.bwd_meters.into_iter().flatten());
        StageReport {
            stage: self.pos,
            seq,
            grads,
            moments,
            drift: self.cells[0].drift_stats(),
            meters,
            busy_nanos: st.busy_nanos,
        }
    }

    fn run(mut self) {
        let mut pending: VecDeque<StageMsg> = VecDeque::new();
        let mut steps: BTreeMap<u64, WorkerStep> = BTreeMap::new();
        let mut ring: VecDeque<(u64, Vec<Tensor>, Vec<Tensor>)> = VecDeque::new();
        let mut live: Option<u64> = None;
        // Local running-statistics accumulator, folded strictly in flight
        // order (forwards arrive flight-ordered per stage), plus the seq
        // whose snapshot currently occupies the cells' buffers.
        let mut acc_stats: Option<Vec<Tensor>> = None;
        let mut live_stats: Option<u64> = None;
        // Next flight seq whose statistics are still unfolded. A
        // `SyncParams { version: w }` carries the primary's stats through
        // flight `w - 1`: adopt it only when `w >= next_fold` (sync mode
        // re-seeds every step and after a trip's snapshot restore; in
        // delayed mode the local accumulator is already at or ahead of
        // the driver's copy, and adopting an older one would drop folds).
        let mut next_fold: u64 = 0;
        loop {
            while let Ok(m) = self.rx.try_recv() {
                pending.push_back(m);
            }
            let msg = match pending.iter().position(|m| Self::processable(m, &steps, &ring)) {
                Some(i) => pending.remove(i).unwrap(),
                None => {
                    // Nothing processable: block for the next message.
                    // Charge the wait as pipeline stall only when work is
                    // actually in flight (idle between steps is not a
                    // bubble).
                    let working = !steps.is_empty() || !pending.is_empty();
                    let t = Instant::now();
                    match self.rx.recv() {
                        Ok(m) => {
                            if working {
                                meter::phase_add_nanos(
                                    meter::Phase::Stall,
                                    t.elapsed().as_nanos() as u64,
                                );
                            }
                            pending.push_back(m);
                            continue;
                        }
                        Err(_) => return, // driver gone: shut down
                    }
                }
            };
            match msg {
                StageMsg::Control(c) => match c {
                    StageControl::Shutdown => return,
                    StageControl::SyncParams { version, params, buffers } => {
                        if version >= next_fold {
                            acc_stats = Some(buffers.clone());
                            live_stats = None;
                            next_fold = version;
                        }
                        ring.push_back((version, params, buffers));
                        while ring.len() > self.ring_cap {
                            ring.pop_front();
                        }
                    }
                    StageControl::BeginStep { seq, micros, shards, version, fault } => {
                        let micros = micros as usize;
                        let shards = shards as usize;
                        assert!(micros <= MAX_MICROS, "too many micro-batches: {micros}");
                        assert!(shards <= self.cells.len(), "shard count exceeds replica cells");
                        if let Some(f) = fault {
                            // Mirror ShardEngine: the fault fires on shard
                            // replica 0 only.
                            self.cells[0].arm_fault(f);
                        }
                        let slot_base = (seq % self.ring_cap as u64) as usize * MAX_MICROS;
                        steps.insert(seq, WorkerStep::new(micros, shards, version, slot_base));
                    }
                    StageControl::Abort { .. } => {
                        // Abort the whole in-flight window: the engine
                        // only aborts when it is failing the step (sync)
                        // or the run (delayed). Cache bytes were
                        // registered inside isolated op scopes whose
                        // meters are being discarded, so the release must
                        // be isolated (and discarded) too.
                        steps.clear();
                        let ((), _tm) = meter::isolated(|| {
                            for c in &mut self.cells {
                                c.clear_cache();
                            }
                        });
                        pending.retain(|m| matches!(m, StageMsg::Control(_)));
                        let _ = self.driver.send(DriverMsg::Acked);
                    }
                },
                StageMsg::Activation { seq, micro, streams } => {
                    let Some(st) = steps.get_mut(&seq) else { continue };
                    Self::load_params(&mut self.cells, &ring, &mut live, st.version);
                    if st.stats.is_none() {
                        st.stats =
                            Some(acc_stats.clone().expect("forward before the seeding SyncParams"));
                    }
                    if live_stats != Some(seq) {
                        Self::load_stats(&mut self.cells, st.stats.as_ref().unwrap());
                        live_stats = Some(seq);
                    }
                    let t = Instant::now();
                    let slot = st.slot_base + micro as usize;
                    let ((out, moms), tm) = forward_op(&mut self.cells, st.shards, slot, &streams);
                    st.busy_nanos += t.elapsed().as_nanos() as u64;
                    st.fwd_meters[micro as usize] = Some(tm);
                    let s_eff = st.shards;
                    if st.moments.is_empty() && !moms[0].is_empty() {
                        let leaves = st.micros * s_eff;
                        st.moments =
                            (0..moms[0].len()).map(|_| (0..leaves).map(|_| None).collect()).collect();
                    }
                    for (k, shard_moms) in moms.into_iter().enumerate() {
                        for (j, m) in shard_moms.into_iter().enumerate() {
                            st.moments[j][micro as usize * s_eff + k] = Some(m);
                        }
                    }
                    st.fwd_done += 1;
                    if st.fwd_done == st.micros {
                        let t = Instant::now();
                        Self::fold_stats(
                            &mut self.cells[0],
                            acc_stats.as_mut().expect("fold before the seeding SyncParams"),
                            st,
                        );
                        st.busy_nanos += t.elapsed().as_nanos() as u64;
                        live_stats = None;
                        next_fold = seq + 1;
                    }
                    match &self.next {
                        Some(tx) => {
                            let _ = tx.send(StageMsg::Activation { seq, micro, streams: out });
                        }
                        None => {
                            let _ = self.driver.send(DriverMsg::Pyramid { seq, micro, streams: out });
                        }
                    }
                }
                StageMsg::Adjoint { seq, micro, ys, dys } => {
                    let Some(st) = steps.get_mut(&seq) else { continue };
                    Self::load_params(&mut self.cells, &ring, &mut live, st.version);
                    if live_stats != Some(seq) {
                        Self::load_stats(
                            &mut self.cells,
                            st.stats.as_ref().expect("adjoint before this step's forward"),
                        );
                        live_stats = Some(seq);
                    }
                    let t = Instant::now();
                    let slot = st.slot_base + micro as usize;
                    let (res, tm) = backward_op(&mut self.cells, st.shards, slot, &ys, &dys);
                    st.busy_nanos += t.elapsed().as_nanos() as u64;
                    match res {
                        Err(trip) => {
                            let _ = self.driver.send(DriverMsg::Trip {
                                stage: trip.stage,
                                seq,
                                drift: trip.drift,
                            });
                        }
                        Ok((xs, mut dxs, slabs)) => {
                            st.bwd_meters[micro as usize] = Some(tm);
                            let s_eff = st.shards;
                            for (k, slab) in slabs.into_iter().enumerate() {
                                st.slabs[micro as usize * s_eff + k] = Some(slab);
                            }
                            st.bwd_done += 1;
                            let done = st.bwd_done == st.micros;
                            match &self.prev {
                                Some(tx) => {
                                    let _ = tx.send(StageMsg::Adjoint { seq, micro, ys: xs, dys: dxs });
                                }
                                None => {
                                    let _ = self.driver.send(DriverMsg::StemAdjoint {
                                        seq,
                                        micro,
                                        dx: dxs.swap_remove(0),
                                    });
                                }
                            }
                            if done {
                                let st = steps.remove(&seq).unwrap();
                                let report = self.finalize(seq, st);
                                let _ = self.driver.send(DriverMsg::StageDone(Box::new(report)));
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Engine (driver side).
// ---------------------------------------------------------------------

struct WorkerHandle {
    tx: SyncSender<StageMsg>,
    join: Option<JoinHandle<()>>,
}

/// Persistent stage-pipelined step engine.
///
/// Owns `P` worker threads (each holding `shards` replica cells of its
/// body slice), an "edge" replica carrying the non-reversible ends (the
/// stem and the neck/head), and the channels between them. The caller's
/// primary model remains the source of truth: parameters are broadcast
/// at step start, and only the primary receives merged gradients and BN
/// statistics.
pub struct PipelineEngine {
    bounds: Vec<usize>,
    micros: usize,
    shards: usize,
    edge: RevBiFPNClassifier,
    workers: Vec<WorkerHandle>,
    rx: Receiver<DriverMsg>,
    seq: u64,
    pending_stats: Vec<(Tensor, Tensor)>,
    last_trip: Option<(usize, f32)>,
    last_drift: Vec<DriftStageReport>,
    last_occupancy: Vec<f64>,
    occ_sum: Vec<f64>,
    occ_steps: u64,
}

impl std::fmt::Debug for PipelineEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineEngine")
            .field("stages", &self.workers.len())
            .field("bounds", &self.bounds)
            .field("micros", &self.micros)
            .field("shards", &self.shards)
            .finish()
    }
}

/// Clones a primary body range's parameter and buffer values for a
/// `SyncParams` payload.
fn body_payload(primary: &mut RevBiFPNClassifier, lo: usize, hi: usize) -> (Vec<Tensor>, Vec<Tensor>) {
    let body = primary.backbone_mut().body_mut();
    let mut params = Vec::new();
    body.visit_params_range(lo, hi, &mut |p| params.push(p.value.clone()));
    let mut buffers = Vec::new();
    body.visit_buffers_range(lo, hi, &mut |t| buffers.push(t.clone()));
    (params, buffers)
}

/// Clones the primary's edge (stem + neck/head) parameter and buffer
/// values, stem first.
fn edge_payload(primary: &mut RevBiFPNClassifier) -> (Vec<Tensor>, Vec<Tensor>) {
    let mut params = Vec::new();
    primary.visit_stem_params(&mut |p| params.push(p.value.clone()));
    primary.visit_neck_head_params(&mut |p| params.push(p.value.clone()));
    let mut buffers = Vec::new();
    primary.visit_stem_buffers(&mut |t| buffers.push(t.clone()));
    primary.visit_neck_head_buffers(&mut |t| buffers.push(t.clone()));
    (params, buffers)
}

/// Writes an edge payload into a replica's stem + neck/head slots.
fn load_edge(edge: &mut RevBiFPNClassifier, params: &[Tensor], buffers: &[Tensor]) {
    let mut i = 0;
    edge.visit_stem_params(&mut |p| {
        p.value.data_mut().copy_from_slice(params[i].data());
        i += 1;
    });
    edge.visit_neck_head_params(&mut |p| {
        p.value.data_mut().copy_from_slice(params[i].data());
        i += 1;
    });
    let mut j = 0;
    edge.visit_stem_buffers(&mut |t| {
        t.data_mut().copy_from_slice(buffers[j].data());
        j += 1;
    });
    edge.visit_neck_head_buffers(&mut |t| {
        t.data_mut().copy_from_slice(buffers[j].data());
        j += 1;
    });
}

impl PipelineEngine {
    /// Builds an engine for the model described by `cfg`: partitions the
    /// reversible body into `pcfg.stages` MAC-balanced slices, spawns one
    /// worker thread per slice (each with `pcfg.shards` replica cells),
    /// and keeps a hollow-body edge replica for the stem and neck/head.
    ///
    /// # Panics
    ///
    /// Panics if stage/micro/shard counts are invalid (zero stages, more
    /// stages than body stages, non-power-of-two micros/shards) or the
    /// config enables stochastic regularization (same per-sample
    /// independence requirement as [`crate::ShardEngine`]).
    pub fn new(cfg: &RevBiFPNConfig, pcfg: &PipelineConfig, drift: DriftConfig) -> Self {
        let p = pcfg.stages;
        assert!(p >= 1, "pipeline needs at least one stage");
        let micros = pcfg.micros.max(1);
        let shards = pcfg.shards.max(1);
        assert!(micros.is_power_of_two() && micros <= MAX_MICROS, "micros must be a power of two <= {MAX_MICROS}, got {micros}");
        assert!(shards.is_power_of_two(), "shards must be a power of two, got {shards}");
        assert!(
            cfg.dropout == 0.0 && cfg.drop_path == 0.0,
            "pipelined training requires dropout == 0 and drop_path == 0 \
             (stochastic layers depend on batch order)"
        );

        // Partition the body by cumulative MACs at unit batch.
        let mut probe = RevBiFPN::new(cfg.clone());
        let in_shape =
            probe.stem().out_shape(Shape::new(1, 3, cfg.resolution, cfg.resolution));
        let body = probe.take_body();
        assert!(p <= body.len(), "more pipeline stages ({p}) than body stages ({})", body.len());
        let bounds = body.partition_by_macs(&[in_shape], p);

        // One row of cells per shard replica; worker i owns column i.
        let mut per_shard: Vec<Vec<StageCell>> = Vec::with_capacity(shards);
        per_shard.push(StageCell::split_sequence(body, &bounds, drift));
        for _ in 1..shards {
            let b = RevBiFPN::new(cfg.clone()).take_body();
            per_shard.push(StageCell::split_sequence(b, &bounds, drift));
        }
        for row in &mut per_shard {
            for c in row.iter_mut() {
                c.visit_bn(&mut |bn| bn.set_decoupled(true));
            }
        }
        let mut columns: Vec<Vec<StageCell>> = (0..p).map(|_| Vec::with_capacity(shards)).collect();
        for row in per_shard {
            for (i, cell) in row.into_iter().enumerate() {
                columns[i].push(cell);
            }
        }

        // Edge replica: stem + neck/head only (body hollowed out).
        let mut edge = RevBiFPNClassifier::new(cfg.clone());
        let _ = edge.backbone_mut().take_body();
        edge.visit_bn(&mut |bn| bn.set_decoupled(true));

        // Channels: bounded worker mailboxes sized so steady-state sends
        // never block, unbounded driver mailbox as the terminal sink.
        let ring_cap = pcfg.staleness + 2;
        let mail_cap = ring_cap * 2 * MAX_MICROS + 8;
        let (dtx, drx) = mpsc::channel();
        let mut txs = Vec::with_capacity(p);
        let mut rxs = Vec::with_capacity(p);
        for _ in 0..p {
            let (t, r) = mpsc::sync_channel(mail_cap);
            txs.push(t);
            rxs.push(r);
        }
        let mut workers = Vec::with_capacity(p);
        for (i, (cells, rx)) in columns.into_iter().zip(rxs).enumerate() {
            let w = Worker {
                pos: i,
                cells,
                rx,
                next: txs.get(i + 1).cloned(),
                prev: (i > 0).then(|| txs[i - 1].clone()),
                driver: dtx.clone(),
                ring_cap,
            };
            let join = std::thread::Builder::new()
                .name(format!("pipe-stage-{i}"))
                .spawn(move || w.run())
                .expect("failed to spawn pipeline worker");
            workers.push(WorkerHandle { tx: txs[i].clone(), join: Some(join) });
        }

        Self {
            bounds,
            micros,
            shards,
            edge,
            workers,
            rx: drx,
            seq: 0,
            pending_stats: Vec::new(),
            last_trip: None,
            last_drift: Vec::new(),
            last_occupancy: Vec::new(),
            occ_sum: vec![0.0; p],
            occ_steps: 0,
        }
    }

    /// Number of pipeline stages.
    pub fn stages(&self) -> usize {
        self.workers.len()
    }

    /// Body-stage partition bounds (`stages + 1` indices).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Per-stage occupancy of the most recent step: fraction of the step
    /// wall-clock each worker spent computing.
    pub fn last_occupancy(&self) -> &[f64] {
        &self.last_occupancy
    }

    /// Mean per-stage occupancy over all clean steps so far.
    pub fn mean_occupancy(&self) -> Vec<f64> {
        if self.occ_steps == 0 {
            return vec![0.0; self.workers.len()];
        }
        self.occ_sum.iter().map(|s| s / self.occ_steps as f64).collect()
    }

    /// Mean pipeline bubble fraction: `1 - mean(stage occupancy)`.
    pub fn mean_bubble_fraction(&self) -> f64 {
        let occ = self.mean_occupancy();
        if occ.is_empty() {
            return 0.0;
        }
        1.0 - occ.iter().sum::<f64>() / occ.len() as f64
    }

    /// Cumulative drift-sentinel statistics from the last clean step, in
    /// global stage order.
    pub fn drift_report(&self) -> &[DriftStageReport] {
        &self.last_drift
    }

    /// `(global stage index, drift)` of the most recent drift-sentinel
    /// trip, if any step has tripped.
    pub fn last_trip(&self) -> Option<(usize, f32)> {
        self.last_trip
    }

    fn record_occupancy(&mut self, busy: &[u64], span_nanos: u64) {
        let span = span_nanos.max(1) as f64;
        self.last_occupancy = busy.iter().map(|&b| (b as f64 / span).min(1.0)).collect();
        for (a, o) in self.occ_sum.iter_mut().zip(&self.last_occupancy) {
            *a += o;
        }
        self.occ_steps += 1;
    }

    /// Copies the primary's edge parameters/buffers into the edge replica.
    fn sync_edge(&mut self, primary: &mut RevBiFPNClassifier) {
        let (params, buffers) = edge_payload(primary);
        load_edge(&mut self.edge, &params, &buffers);
    }

    /// Aborts everything in flight: broadcast `Abort`, drain until every
    /// worker acknowledges, and drop the edge replica's caches.
    fn abort(&mut self, seq: u64) {
        for w in &self.workers {
            w.tx.send(StageMsg::Control(StageControl::Abort { seq })).expect("worker died");
        }
        let mut acks = 0;
        while acks < self.workers.len() {
            // Anything else is stale data from the aborted window.
            if let DriverMsg::Acked = self.rx.recv().expect("worker died during abort") {
                acks += 1;
            }
        }
        // Edge caches were registered inside isolated (discarded) op
        // scopes; release them in a discarded scope as well.
        let ((), _tm) = meter::isolated(|| self.edge.clear_cache());
        self.pending_stats.clear();
    }

    /// Applies the BN statistics merged by the last clean step to the
    /// primary model (exactly once per clean step, like
    /// [`crate::ShardEngine::apply_bn_stats`]).
    pub fn apply_bn_stats(&mut self, primary: &mut RevBiFPNClassifier) {
        let stats = std::mem::take(&mut self.pending_stats);
        let mut it = stats.iter();
        primary.visit_bn(&mut |bn| {
            let (mean, var) = it.next().expect("BN count changed between step and apply");
            bn.apply_global_stats(mean, var);
        });
        assert!(it.next().is_none(), "BN count changed between step and apply");
    }

    /// Post-trip cleanup hook for the trainer (the abort protocol already
    /// ran inside [`PipelineEngine::step`]; this drops any merged-but-
    /// unapplied statistics).
    pub fn after_trip(&mut self) {
        self.pending_stats.clear();
        let ((), _tm) = meter::isolated(|| self.edge.clear_cache());
    }

    /// Runs one synchronous (fill/drain) pipelined training step against
    /// the primary model. Gradients, loss, logits, and BN statistics are
    /// bitwise identical to [`crate::ShardEngine::step`] on the same
    /// batch. BN statistics are merged but not applied — call
    /// [`PipelineEngine::apply_bn_stats`] once the caller's tripwires
    /// pass.
    pub fn step(
        &mut self,
        primary: &mut RevBiFPNClassifier,
        images: &Tensor,
        targets: &Tensor,
        mode: RunMode,
        faults: &ShardStepFaults,
    ) -> PipelineStepOutput {
        assert_eq!(mode, RunMode::TrainReversible, "pipelined steps are reversible-only");
        let n = images.shape().n;
        assert_eq!(targets.shape().n, n, "images/targets batch mismatch");
        let m_eff = effective_split(n, self.micros);
        let mb = n / m_eff;
        let s_eff = effective_split(mb, self.shards);
        self.pending_stats.clear();
        self.seq += 1;
        let seq = self.seq;
        let p = self.workers.len();
        let classes = targets.shape().c;

        // Broadcast: edge replica plus one (SyncParams, BeginStep) pair
        // per worker. Control is enqueued before any data can flow, so
        // workers always see the frame first.
        self.sync_edge(primary);
        for (i, w) in self.workers.iter().enumerate() {
            let (params, buffers) = body_payload(primary, self.bounds[i], self.bounds[i + 1]);
            w.tx.send(StageMsg::Control(StageControl::SyncParams { version: seq, params, buffers }))
                .expect("worker died");
            w.tx.send(StageMsg::Control(StageControl::BeginStep {
                seq,
                micros: m_eff as u32,
                shards: s_eff as u32,
                version: seq,
                fault: faults.bit_flip,
            }))
            .expect("worker died");
        }

        let t0 = Instant::now();
        let mut next_fill = 0usize;
        let mut pend_act: Option<(u32, Vec<Tensor>)> = None;
        let mut stem_fwd_meters: Vec<Option<meter::TaskMeter>> = (0..m_eff).map(|_| None).collect();
        let mut nh_meters: Vec<Option<meter::TaskMeter>> = (0..m_eff).map(|_| None).collect();
        let mut stem_bwd_meters: Vec<Option<meter::TaskMeter>> = (0..m_eff).map(|_| None).collect();
        let mut logits_parts: Vec<Option<Tensor>> = (0..m_eff).map(|_| None).collect();
        let mut loss_parts: Vec<Option<Vec<f64>>> = (0..m_eff).map(|_| None).collect();
        let mut nh_slabs: Vec<Option<Vec<Tensor>>> = (0..m_eff).map(|_| None).collect();
        let mut stem_slabs: Vec<Option<Vec<Tensor>>> = (0..m_eff).map(|_| None).collect();
        let mut nh_moms: Vec<Vec<Option<BnMoments>>> = Vec::new();
        let mut stem_moms: Vec<Vec<Option<BnMoments>>> = Vec::new();
        let mut stem_done = 0usize;
        let mut reports: Vec<Option<Box<StageReport>>> = (0..p).map(|_| None).collect();
        let mut tripped = false;

        'drive: loop {
            if stem_done == m_eff && reports.iter().all(Option::is_some) {
                break;
            }
            // Fill: stem-forward the next micro-batch (cache-free pass;
            // decoupled BN makes it bitwise equal to the Full recompute
            // at adjoint time) and push it into the first stage.
            if pend_act.is_some() || next_fill < m_eff {
                if pend_act.is_none() {
                    let micro = next_fill as u32;
                    let img = slice_batch(images, next_fill * mb, mb);
                    let edge = &mut self.edge;
                    let (s0, tm) = meter::isolated(|| {
                        meter::time_phase(meter::Phase::Forward, || {
                            edge.backbone_mut().stem_forward(&img, CacheMode::None)
                        })
                    });
                    stem_fwd_meters[next_fill] = Some(tm);
                    pend_act = Some((micro, vec![s0]));
                    next_fill += 1;
                }
                let (micro, streams) = pend_act.take().unwrap();
                match self.workers[0].tx.try_send(StageMsg::Activation { seq, micro, streams }) {
                    Ok(()) => continue 'drive,
                    Err(TrySendError::Full(m)) => {
                        if let StageMsg::Activation { micro, streams, .. } = m {
                            pend_act = Some((micro, streams));
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => panic!("pipeline worker 0 died"),
                }
            }
            // Drain the driver mailbox; block (stall-charged) when idle.
            let msg = match self.rx.try_recv() {
                Ok(m) => m,
                Err(TryRecvError::Empty) => {
                    let t = Instant::now();
                    let m = self.rx.recv().expect("pipeline workers died");
                    meter::phase_add_nanos(meter::Phase::Stall, t.elapsed().as_nanos() as u64);
                    m
                }
                Err(TryRecvError::Disconnected) => panic!("pipeline workers died"),
            };
            match msg {
                DriverMsg::Pyramid { seq: s, micro, streams } if s == seq => {
                    let mi = micro as usize;
                    let tgt = slice_batch(targets, mi * mb, mb);
                    let poison = faults.nan_grad && mi == 0;
                    let edge = &mut self.edge;
                    type NhOk = (Vec<f64>, Vec<Tensor>, Vec<Tensor>, Vec<BnMoments>);
                    let ((logits_m, ok), tm): ((Tensor, Option<NhOk>), _) = meter::isolated(|| {
                        let logits = meter::time_phase(meter::Phase::Forward, || {
                            edge.neck_head_forward(&streams, CacheMode::Full)
                        });
                        if !logits.is_finite() {
                            edge.clear_neck_head_cache();
                            return (logits, None);
                        }
                        let (losses, mut dl) = softmax_cross_entropy_per_sample(&logits, &tgt, n);
                        if poison {
                            dl.data_mut()[0] = f32::NAN;
                        }
                        edge.visit_neck_head_params(&mut |p| p.grad.data_mut().fill(0.0));
                        let dpyr = edge.neck_head_backward(&dl);
                        let mut slab = Vec::new();
                        edge.visit_neck_head_params(&mut |p| slab.push(p.grad.clone()));
                        let mut moms = Vec::new();
                        edge.visit_neck_head_bn(&mut |bn| {
                            moms.push(bn.take_moments().expect("decoupled BN recorded no moments"));
                        });
                        (logits, Some((losses, dpyr, slab, moms)))
                    });
                    nh_meters[mi] = Some(tm);
                    logits_parts[mi] = Some(logits_m);
                    match ok {
                        None => {
                            tripped = true;
                        }
                        Some((losses, dpyr, slab, moms)) => {
                            loss_parts[mi] = Some(losses);
                            nh_slabs[mi] = Some(slab);
                            note_moms(&mut nh_moms, m_eff, mi, moms);
                            let last = self.workers.len() - 1;
                            self.workers[last]
                                .tx
                                .send(StageMsg::Adjoint { seq, micro, ys: streams, dys: dpyr })
                                .expect("worker died");
                        }
                    }
                }
                DriverMsg::StemAdjoint { seq: s, micro, dx } if s == seq => {
                    let mi = micro as usize;
                    let img = slice_batch(images, mi * mb, mb);
                    let edge = &mut self.edge;
                    let ((slab, moms), tm) = meter::isolated(|| {
                        let _s0 = meter::time_phase(meter::Phase::Reconstruct, || {
                            edge.backbone_mut().stem_forward(&img, CacheMode::Full)
                        });
                        edge.visit_stem_params(&mut |p| p.grad.data_mut().fill(0.0));
                        let _dx = edge.backbone_mut().stem_backward(&dx);
                        let mut slab = Vec::new();
                        edge.visit_stem_params(&mut |p| slab.push(p.grad.clone()));
                        let mut moms = Vec::new();
                        edge.visit_stem_bn(&mut |bn| {
                            moms.push(bn.take_moments().expect("decoupled BN recorded no moments"));
                        });
                        (slab, moms)
                    });
                    stem_bwd_meters[mi] = Some(tm);
                    stem_slabs[mi] = Some(slab);
                    note_moms(&mut stem_moms, m_eff, mi, moms);
                    stem_done += 1;
                }
                DriverMsg::StageDone(r) if r.seq == seq => {
                    let i = r.stage;
                    reports[i] = Some(r);
                }
                DriverMsg::Trip { seq: s, stage, drift } if s == seq => {
                    // The cell counted rev.pipeline_trip inside an
                    // isolated scope that is now discarded; re-count it
                    // on the driver so run-level statistics see it.
                    meter::count("rev.pipeline_trip");
                    self.last_trip = Some((stage, drift));
                    tripped = true;
                }
                _ => {} // stale message from an aborted window
            }
            if tripped {
                break;
            }
        }

        if tripped {
            self.abort(seq);
            let shape = logits_parts
                .iter()
                .flatten()
                .next()
                .map(|t| Shape { n, ..t.shape() })
                .unwrap_or(primary.logit_shape(n));
            let mut logits = Tensor::zeros(shape);
            for (m, part) in logits_parts.iter().enumerate() {
                if let Some(t) = part {
                    logits.data_mut()[m * mb * classes..(m + 1) * mb * classes]
                        .copy_from_slice(t.data());
                }
            }
            return PipelineStepOutput {
                logits,
                loss: 0.0,
                backward_ran: false,
                micros_used: m_eff,
                shards_used: s_eff,
            };
        }
        let span = t0.elapsed().as_nanos() as u64;
        let reports: Vec<Box<StageReport>> =
            reports.into_iter().map(|r| r.expect("missing stage report")).collect();

        // Absorb the step's meter deltas in canonical order (stem
        // forwards, stages in pipeline order, neck/head, stem backwards):
        // the byte/event trace is then independent of scheduling.
        for tm in stem_fwd_meters.iter().flatten() {
            meter::absorb(tm);
        }
        for r in &reports {
            for tm in &r.meters {
                meter::absorb(tm);
            }
        }
        for tm in nh_meters.iter().flatten() {
            meter::absorb(tm);
        }
        for tm in stem_bwd_meters.iter().flatten() {
            meter::absorb(tm);
        }

        let busy: Vec<u64> = reports.iter().map(|r| r.busy_nanos).collect();
        self.record_occupancy(&busy, span);
        self.last_drift = reports.iter().flat_map(|r| r.drift.clone()).collect();

        // Assemble full-batch logits and the tree-reduced mean loss.
        let mut logits =
            Tensor::zeros(Shape { n, ..logits_parts[0].as_ref().unwrap().shape() });
        for (m, part) in logits_parts.iter().enumerate() {
            logits.data_mut()[m * mb * classes..(m + 1) * mb * classes]
                .copy_from_slice(part.as_ref().unwrap().data());
        }
        let mut sample_losses: Vec<f64> = Vec::with_capacity(n);
        for part in &loss_parts {
            sample_losses.extend_from_slice(part.as_ref().unwrap());
        }
        par::tree_reduce_serial(n, |d, s| sample_losses[d] += sample_losses[s]);
        let loss = sample_losses.first().copied().unwrap_or(0.0) / n as f64;

        meter::time_phase(meter::Phase::Reduce, || {
            // Stem gradients: tree over the micro leaves.
            let stem_root =
                tree_merge_slabs(stem_slabs.into_iter().map(|s| s.unwrap()).collect());
            let mut i = 0;
            primary.visit_stem_params(&mut |p| {
                p.grad.data_mut().copy_from_slice(stem_root[i].data());
                i += 1;
            });
            // Body gradients: each worker already tree-merged its leaves.
            for (k, r) in reports.iter().enumerate() {
                let mut j = 0;
                primary.backbone_mut().body_mut().visit_params_range(
                    self.bounds[k],
                    self.bounds[k + 1],
                    &mut |p| {
                        p.grad.data_mut().copy_from_slice(r.grads[j].data());
                        j += 1;
                    },
                );
                assert_eq!(j, r.grads.len(), "stage param count mismatch");
            }
            // Neck/head gradients.
            let nh_root = tree_merge_slabs(nh_slabs.into_iter().map(|s| s.unwrap()).collect());
            let mut i = 0;
            primary.visit_neck_head_params(&mut |p| {
                p.grad.data_mut().copy_from_slice(nh_root[i].data());
                i += 1;
            });
            // BN statistics, in primary.visit_bn order: stem, body
            // stages, then neck/head.
            self.pending_stats = reduce_mom_table(n, stem_moms);
            for r in &reports {
                for m in &r.moments {
                    self.pending_stats.push(reduce_moments(n, m));
                }
            }
            self.pending_stats.extend(reduce_mom_table(n, nh_moms));
        });

        PipelineStepOutput {
            logits,
            loss,
            backward_ran: true,
            micros_used: m_eff,
            shards_used: s_eff,
        }
    }
}

impl Drop for PipelineEngine {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(StageMsg::Control(StageControl::Shutdown));
        }
        for w in &mut self.workers {
            if let Some(j) = w.join.take() {
                let _ = j.join();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Delayed-gradient (PETRA) mode.
// ---------------------------------------------------------------------

/// Driver-side edge-parameter snapshot ring: `(version, params, buffers)`.
type EdgeRing = VecDeque<(u64, Vec<Tensor>, Vec<Tensor>)>;

/// Loads edge version `version` from the snapshot ring, if not live.
/// A reload overwrites the neck/head buffers too, so the caller's
/// neck/head-statistics overlay is invalidated (`nh_live`).
fn load_edge_version(
    edge: &mut RevBiFPNClassifier,
    ring: &EdgeRing,
    live: &mut Option<u64>,
    nh_live: &mut Option<u64>,
    version: u64,
) {
    if *live == Some(version) {
        return;
    }
    let (_, params, buffers) = ring
        .iter()
        .find(|(v, _, _)| *v == version)
        .expect("delayed step scheduled before its edge parameter version");
    load_edge(edge, params, buffers);
    *live = Some(version);
    *nh_live = None;
}

/// Copies a neck/head running-statistics snapshot over the edge
/// replica's neck/head buffers (the stem buffers stay at the ring
/// version: the stem's forward runs at fill time, when only the
/// `t - K` statistics are deterministically available).
fn load_nh_stats(edge: &mut RevBiFPNClassifier, stats: &[Tensor]) {
    let mut j = 0;
    edge.visit_neck_head_buffers(&mut |t| {
        t.data_mut().copy_from_slice(stats[j].data());
        j += 1;
    });
}

/// Folds one flight's merged neck/head batch statistics into the
/// driver's accumulator, in flight order, with the exact arithmetic the
/// edge apply later runs against the primary (same `reduce_mom_table`,
/// same `apply_global_stats`, via the edge replica's own BN layers).
fn fold_nh_stats(edge: &mut RevBiFPNClassifier, acc: &mut [Tensor], n: usize, moms: &[Vec<Option<BnMoments>>]) {
    load_nh_stats(edge, acc);
    let stats = reduce_mom_table(n, moms.to_vec());
    let mut it = stats.iter();
    edge.visit_neck_head_bn(&mut |bn| {
        let (mean, var) = it.next().expect("nh fold BN count mismatch");
        bn.apply_global_stats(mean, var);
    });
    assert!(it.next().is_none(), "nh fold BN count mismatch");
    let mut j = 0;
    edge.visit_neck_head_buffers(&mut |t| {
        acc[j].data_mut().copy_from_slice(t.data());
        j += 1;
    });
}

/// One in-flight training step of a delayed-gradient run.
struct Flight {
    n: usize,
    m_eff: usize,
    mb: usize,
    images: Tensor,
    targets: Tensor,
    labels: Vec<usize>,
    next_fill: usize,
    pend: Option<(u32, Vec<Tensor>)>,
    losses: Vec<Option<Vec<f64>>>,
    accs: Vec<f64>,
    stem_fwd_meters: Vec<Option<meter::TaskMeter>>,
    nh_meters: Vec<Option<meter::TaskMeter>>,
    stem_bwd_meters: Vec<Option<meter::TaskMeter>>,
    nh_slabs: Vec<Option<Vec<Tensor>>>,
    stem_slabs: Vec<Option<Vec<Tensor>>>,
    nh_moms: Vec<Vec<Option<BnMoments>>>,
    stem_moms: Vec<Vec<Option<BnMoments>>>,
    /// Neck/head running-statistics snapshot this flight normalizes
    /// with, captured from the driver's accumulator at the flight's
    /// first pyramid (see `nh_acc` in [`train_pipeline_delayed`]).
    nh_stats: Option<Vec<Tensor>>,
    pyr_done: usize,
    stem_done: usize,
    reports: Vec<Option<Box<StageReport>>>,
    stage_applied: Vec<bool>,
    edge_applied: bool,
}

impl Flight {
    fn new(
        images: Tensor,
        targets: Tensor,
        labels: Vec<usize>,
        micros: usize,
        stages: usize,
    ) -> Self {
        let n = images.shape().n;
        let m_eff = effective_split(n, micros);
        Self {
            n,
            m_eff,
            mb: n / m_eff,
            images,
            targets,
            labels,
            next_fill: 0,
            pend: None,
            losses: (0..m_eff).map(|_| None).collect(),
            accs: vec![0.0; m_eff],
            stem_fwd_meters: (0..m_eff).map(|_| None).collect(),
            nh_meters: (0..m_eff).map(|_| None).collect(),
            stem_bwd_meters: (0..m_eff).map(|_| None).collect(),
            nh_slabs: (0..m_eff).map(|_| None).collect(),
            stem_slabs: (0..m_eff).map(|_| None).collect(),
            nh_moms: Vec::new(),
            stem_moms: Vec::new(),
            nh_stats: None,
            pyr_done: 0,
            stem_done: 0,
            reports: (0..stages).map(|_| None).collect(),
            stage_applied: vec![false; stages],
            edge_applied: false,
        }
    }

    fn fully_applied(&self) -> bool {
        self.edge_applied && self.stage_applied.iter().all(|&a| a)
    }
}

/// Trains `model` with the PETRA delayed-gradient pipeline: up to
/// `cfg.pipeline.staleness + 1` steps overlap in flight, and step `t`
/// computes forward *and* backward against the parameters produced by
/// step `t - K` (clamped to the initial parameters for `t < K`). Each
/// pipeline stage and the edge (stem + neck/head) carry their own SGD
/// state and are updated strictly in step order, so for a fixed
/// `(seed, stages, micros, shards, K)` the run is bit-deterministic
/// regardless of thread scheduling (loss/accuracy curves, parameters,
/// and BN statistics; peak-memory readings may vary with interleaving).
///
/// Unsupported options (asserted): parameter EMA, fault injection,
/// checkpoint/resume, and the LR-backoff retry loop — a non-finite step
/// or drift trip aborts the run (`history.aborted`) instead of rolling
/// back, since rollback has no well-defined point in an overlapped
/// window.
///
/// # Panics
///
/// Panics when `cfg.pipeline.stages == 0`, `cfg.pipeline.staleness == 0`
/// (use the synchronous engine via [`crate::train_classifier_with`]), or
/// `cfg.ema_decay != 0`.
pub fn train_pipeline_delayed(
    model: &mut RevBiFPNClassifier,
    data: &SynthScale,
    cfg: &TrainConfig,
) -> TrainHistory {
    assert!(cfg.pipeline.stages >= 1, "delayed mode needs pipeline.stages >= 1");
    assert!(cfg.pipeline.staleness >= 1, "delayed mode needs staleness >= 1 (use the sync engine for K = 0)");
    assert_eq!(cfg.ema_decay, 0.0, "parameter EMA is unsupported in delayed mode");
    let num_classes = model.cfg().num_classes;
    assert_eq!(num_classes, data.num_classes(), "model/data class mismatch");

    let mut eng = PipelineEngine::new(model.cfg(), &cfg.pipeline, cfg.resilience.drift);
    let p = eng.workers.len();
    let k = cfg.pipeline.staleness as u64;
    let ring_cap = cfg.pipeline.staleness + 2;
    let steps_per_epoch = cfg.train_size.div_ceil(cfg.batch_size);
    let schedule = LrSchedule::paper_like(cfg.lr, steps_per_epoch * cfg.epochs);
    let mut stage_sgds: Vec<Sgd> =
        (0..p).map(|_| Sgd::new(cfg.momentum, cfg.weight_decay)).collect();
    let mut edge_sgd = Sgd::new(cfg.momentum, cfg.weight_decay);
    let phases_start = meter::phase_times();

    // Version 0 = initial parameters: seed the worker snapshot rings and
    // the driver-side edge ring before any step is admitted.
    for (i, w) in eng.workers.iter().enumerate() {
        let (params, buffers) = body_payload(model, eng.bounds[i], eng.bounds[i + 1]);
        w.tx.send(StageMsg::Control(StageControl::SyncParams { version: 0, params, buffers }))
            .expect("worker died");
    }
    let mut edge_ring: EdgeRing = VecDeque::new();
    {
        let (params, buffers) = edge_payload(model);
        edge_ring.push_back((0, params, buffers));
    }
    let mut edge_live: Option<u64> = None;
    // Neck/head running-statistics accumulator, folded in flight order
    // at each flight's last pyramid (pyramids arrive flight-ordered from
    // the last stage), plus the seq whose snapshot currently overlays
    // the edge replica's neck/head buffers.
    let mut nh_acc: Vec<Tensor> = {
        let mut b = Vec::new();
        model.visit_neck_head_buffers(&mut |t| b.push(t.clone()));
        b
    };
    let mut edge_nh_live: Option<u64> = None;

    let mut history = TrainHistory::default();
    let mut flights: BTreeMap<u64, Flight> = BTreeMap::new();
    let mut next_stage_apply: Vec<u64> = vec![0; p];
    let mut next_edge_apply: u64 = 0;
    let mut next_complete: u64 = 0;
    let mut busy_total: Vec<u64> = vec![0; p];
    let mut span_nanos: u64 = 0;
    let mut aborted = false;

    'run: for epoch in 0..cfg.epochs {
        let mut loss_meter = AverageMeter::new();
        let mut acc_meter = AverageMeter::new();
        meter::reset();
        let epoch_t0 = Instant::now();
        let mut next_admit = epoch * steps_per_epoch;
        // Ragged tails admit fewer steps.
        let mut end = (epoch + 1) * steps_per_epoch;
        loop {
            // Admit up to K+1 overlapping steps.
            while next_admit < end && flights.len() <= cfg.pipeline.staleness {
                let t = next_admit as u64;
                let b = next_admit - epoch * steps_per_epoch;
                let n = cfg.batch_size.min(cfg.train_size - b * cfg.batch_size);
                if n == 0 {
                    end = next_admit;
                    break;
                }
                let start = (epoch * cfg.train_size + b * cfg.batch_size) as u64;
                let (mut images, labels) = data.batch(start, n);
                let mut targets =
                    label_smooth(&one_hot(&labels, num_classes), cfg.label_smoothing);
                let mut aug_rng = StdRng::seed_from_u64(
                    cfg.seed ^ 0xA06 ^ (next_admit as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                cfg.augment.apply(&mut images, &mut targets, &mut aug_rng);
                let fl = Flight::new(images, targets, labels, eng.micros, p);
                let s_eff = effective_split(fl.mb, eng.shards);
                for w in &eng.workers {
                    w.tx.send(StageMsg::Control(StageControl::BeginStep {
                        seq: t,
                        micros: fl.m_eff as u32,
                        shards: s_eff as u32,
                        version: t.saturating_sub(k),
                        fault: None,
                    }))
                    .expect("worker died");
                }
                flights.insert(t, fl);
                next_admit += 1;
            }
            if flights.is_empty() && next_admit >= end {
                break;
            }

            let mut progress = false;
            // Fill: stem-forward the earliest flight that still has
            // micro-batches to push into stage 0.
            let fill_seq = flights
                .iter()
                .find(|(_, f)| f.pend.is_some() || f.next_fill < f.m_eff)
                .map(|(&t, _)| t);
            if let Some(t) = fill_seq {
                let fl = flights.get_mut(&t).unwrap();
                if fl.pend.is_none() {
                    load_edge_version(
                        &mut eng.edge,
                        &edge_ring,
                        &mut edge_live,
                        &mut edge_nh_live,
                        t.saturating_sub(k),
                    );
                    let micro = fl.next_fill as u32;
                    let img = slice_batch(&fl.images, fl.next_fill * fl.mb, fl.mb);
                    let edge = &mut eng.edge;
                    let (s0, tm) = meter::isolated(|| {
                        meter::time_phase(meter::Phase::Forward, || {
                            edge.backbone_mut().stem_forward(&img, CacheMode::None)
                        })
                    });
                    fl.stem_fwd_meters[fl.next_fill] = Some(tm);
                    fl.pend = Some((micro, vec![s0]));
                    fl.next_fill += 1;
                    progress = true;
                }
                let (micro, streams) = fl.pend.take().unwrap();
                match eng.workers[0].tx.try_send(StageMsg::Activation { seq: t, micro, streams }) {
                    Ok(()) => progress = true,
                    Err(TrySendError::Full(m)) => {
                        if let StageMsg::Activation { micro, streams, .. } = m {
                            fl.pend = Some((micro, streams));
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => panic!("pipeline worker 0 died"),
                }
            }

            // Drain worker messages without blocking.
            loop {
                let msg = match eng.rx.try_recv() {
                    Ok(m) => m,
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => panic!("pipeline workers died"),
                };
                progress = true;
                if !handle_delayed_msg(
                    msg,
                    &mut eng,
                    &mut flights,
                    &edge_ring,
                    &mut edge_live,
                    &mut edge_nh_live,
                    &mut nh_acc,
                    k,
                ) {
                    aborted = true;
                    break 'run;
                }
            }

            // Apply every ready in-order update (stage SGD steps, edge SGD
            // steps, completions).
            progress |= apply_ready(
                model,
                &mut eng,
                &mut flights,
                &mut stage_sgds,
                &mut edge_sgd,
                &schedule,
                &mut next_stage_apply,
                &mut next_edge_apply,
                &mut next_complete,
                &mut edge_ring,
                ring_cap,
                &mut busy_total,
                &mut loss_meter,
                &mut acc_meter,
            );

            if !progress {
                let t = Instant::now();
                let msg = eng.rx.recv().expect("pipeline workers died");
                meter::phase_add_nanos(meter::Phase::Stall, t.elapsed().as_nanos() as u64);
                if !handle_delayed_msg(
                    msg,
                    &mut eng,
                    &mut flights,
                    &edge_ring,
                    &mut edge_live,
                    &mut edge_nh_live,
                    &mut nh_acc,
                    k,
                ) {
                    aborted = true;
                    break 'run;
                }
            }
        }
        span_nanos += epoch_t0.elapsed().as_nanos() as u64;
        let peak = meter::peak();
        let val_acc = evaluate(model, data, cfg.val_size, cfg.batch_size);
        history.epochs.push(EpochStats {
            epoch,
            train_loss: loss_meter.avg(),
            train_acc: acc_meter.avg(),
            val_acc,
            peak_activation_bytes: peak,
        });
    }
    if aborted {
        let seq = flights.keys().next_back().copied().unwrap_or(0);
        eng.abort(seq);
        flights.clear();
        history.aborted = true;
    }
    history.phases = PhaseBreakdown::from_times(meter::phase_times().since(&phases_start));
    let span = span_nanos.max(1) as f64;
    history.phases.stage_occupancy =
        busy_total.iter().map(|&b| (b as f64 / span).min(1.0)).collect();
    if !history.phases.stage_occupancy.is_empty() {
        history.phases.bubble_fraction = 1.0
            - history.phases.stage_occupancy.iter().sum::<f64>()
                / history.phases.stage_occupancy.len() as f64;
    }
    history
}

/// Handles one worker message of a delayed run. Returns `false` when the
/// run must abort (trip or non-finite logits).
#[allow(clippy::too_many_arguments)]
fn handle_delayed_msg(
    msg: DriverMsg,
    eng: &mut PipelineEngine,
    flights: &mut BTreeMap<u64, Flight>,
    edge_ring: &EdgeRing,
    edge_live: &mut Option<u64>,
    edge_nh_live: &mut Option<u64>,
    nh_acc: &mut [Tensor],
    k: u64,
) -> bool {
    match msg {
        DriverMsg::Pyramid { seq, micro, streams } => {
            let Some(fl) = flights.get_mut(&seq) else { return true };
            load_edge_version(&mut eng.edge, edge_ring, edge_live, edge_nh_live, seq.saturating_sub(k));
            if fl.nh_stats.is_none() {
                fl.nh_stats = Some(nh_acc.to_vec());
            }
            if *edge_nh_live != Some(seq) {
                load_nh_stats(&mut eng.edge, fl.nh_stats.as_ref().unwrap());
                *edge_nh_live = Some(seq);
            }
            let mi = micro as usize;
            let tgt = slice_batch(&fl.targets, mi * fl.mb, fl.mb);
            let n = fl.n;
            let edge = &mut eng.edge;
            type NhOk = (Tensor, Vec<f64>, Vec<Tensor>, Vec<Tensor>, Vec<BnMoments>);
            let (ok, tm): (Option<NhOk>, _) = meter::isolated(|| {
                let logits = meter::time_phase(meter::Phase::Forward, || {
                    edge.neck_head_forward(&streams, CacheMode::Full)
                });
                if !logits.is_finite() {
                    edge.clear_neck_head_cache();
                    return None;
                }
                let (losses, dl) = softmax_cross_entropy_per_sample(&logits, &tgt, n);
                edge.visit_neck_head_params(&mut |p| p.grad.data_mut().fill(0.0));
                let dpyr = edge.neck_head_backward(&dl);
                let mut slab = Vec::new();
                edge.visit_neck_head_params(&mut |p| slab.push(p.grad.clone()));
                let mut moms = Vec::new();
                edge.visit_neck_head_bn(&mut |bn| {
                    moms.push(bn.take_moments().expect("decoupled BN recorded no moments"));
                });
                Some((logits, losses, dpyr, slab, moms))
            });
            let Some((logits, losses, dpyr, slab, moms)) = ok else {
                meter::count("train.nonfinite_step");
                return false;
            };
            fl.accs[mi] = top1_accuracy(&logits, &fl.labels[mi * fl.mb..(mi + 1) * fl.mb]);
            fl.losses[mi] = Some(losses);
            fl.nh_slabs[mi] = Some(slab);
            fl.nh_meters[mi] = Some(tm);
            note_moms(&mut fl.nh_moms, fl.m_eff, mi, moms);
            fl.pyr_done += 1;
            if fl.pyr_done == fl.m_eff {
                fold_nh_stats(&mut eng.edge, nh_acc, fl.n, &fl.nh_moms);
                *edge_nh_live = None;
            }
            let last = eng.workers.len() - 1;
            eng.workers[last]
                .tx
                .send(StageMsg::Adjoint { seq, micro, ys: streams, dys: dpyr })
                .expect("worker died");
            true
        }
        DriverMsg::StemAdjoint { seq, micro, dx } => {
            let Some(fl) = flights.get_mut(&seq) else { return true };
            load_edge_version(&mut eng.edge, edge_ring, edge_live, edge_nh_live, seq.saturating_sub(k));
            let mi = micro as usize;
            let img = slice_batch(&fl.images, mi * fl.mb, fl.mb);
            let edge = &mut eng.edge;
            let ((slab, moms), tm) = meter::isolated(|| {
                let _s0 = meter::time_phase(meter::Phase::Reconstruct, || {
                    edge.backbone_mut().stem_forward(&img, CacheMode::Full)
                });
                edge.visit_stem_params(&mut |p| p.grad.data_mut().fill(0.0));
                let _dx = edge.backbone_mut().stem_backward(&dx);
                let mut slab = Vec::new();
                edge.visit_stem_params(&mut |p| slab.push(p.grad.clone()));
                let mut moms = Vec::new();
                edge.visit_stem_bn(&mut |bn| {
                    moms.push(bn.take_moments().expect("decoupled BN recorded no moments"));
                });
                (slab, moms)
            });
            fl.stem_bwd_meters[mi] = Some(tm);
            fl.stem_slabs[mi] = Some(slab);
            note_moms(&mut fl.stem_moms, fl.m_eff, mi, moms);
            fl.stem_done += 1;
            true
        }
        DriverMsg::StageDone(r) => {
            if let Some(fl) = flights.get_mut(&r.seq) {
                let i = r.stage;
                fl.reports[i] = Some(r);
            }
            true
        }
        DriverMsg::Trip { stage, drift, .. } => {
            meter::count("rev.pipeline_trip");
            eng.last_trip = Some((stage, drift));
            false
        }
        DriverMsg::Acked => true,
    }
}

/// Applies every in-order-ready update of a delayed run: per-stage SGD
/// steps (broadcasting the new version to the stage's worker), the edge
/// SGD step (snapshotting the new edge version), and step completions
/// (canonical meter absorption + loss/accuracy accounting). Returns
/// `true` if anything was applied.
#[allow(clippy::too_many_arguments)]
fn apply_ready(
    primary: &mut RevBiFPNClassifier,
    eng: &mut PipelineEngine,
    flights: &mut BTreeMap<u64, Flight>,
    stage_sgds: &mut [Sgd],
    edge_sgd: &mut Sgd,
    schedule: &LrSchedule,
    next_stage_apply: &mut [u64],
    next_edge_apply: &mut u64,
    next_complete: &mut u64,
    edge_ring: &mut EdgeRing,
    ring_cap: usize,
    busy_total: &mut [u64],
    loss_meter: &mut AverageMeter,
    acc_meter: &mut AverageMeter,
) -> bool {
    let mut progress = false;
    // Per-stage updates, strictly in step order per stage.
    for i in 0..eng.workers.len() {
        loop {
            let v = next_stage_apply[i];
            let Some(fl) = flights.get_mut(&v) else { break };
            if fl.reports[i].is_none() || fl.stage_applied[i] {
                break;
            }
            let n = fl.n;
            let r = fl.reports[i].as_ref().unwrap();
            let (lo, hi) = (eng.bounds[i], eng.bounds[i + 1]);
            meter::time_phase(meter::Phase::Reduce, || {
                let stats: Vec<(Tensor, Tensor)> =
                    r.moments.iter().map(|m| reduce_moments(n, m)).collect();
                let body = primary.backbone_mut().body_mut();
                let mut it = stats.iter();
                body.visit_bn_range(lo, hi, &mut |bn| {
                    let (mean, var) = it.next().expect("stage BN count mismatch");
                    bn.apply_global_stats(mean, var);
                });
                assert!(it.next().is_none(), "stage BN count mismatch");
                let mut j = 0;
                body.visit_params_range(lo, hi, &mut |p| {
                    p.grad.data_mut().copy_from_slice(r.grads[j].data());
                    j += 1;
                });
                assert_eq!(j, r.grads.len(), "stage param count mismatch");
            });
            meter::time_phase(meter::Phase::Optimizer, || {
                stage_sgds[i].step(schedule.lr(v as usize), |f| {
                    primary.backbone_mut().body_mut().visit_params_range(lo, hi, f)
                });
            });
            fl.stage_applied[i] = true;
            next_stage_apply[i] = v + 1;
            let (params, buffers) = body_payload(primary, lo, hi);
            eng.workers[i]
                .tx
                .send(StageMsg::Control(StageControl::SyncParams {
                    version: v + 1,
                    params,
                    buffers,
                }))
                .expect("worker died");
            progress = true;
        }
    }
    // Edge update: needs every micro-batch's stem adjoint (the tail of
    // the step's backward) and neck/head slab.
    loop {
        let v = *next_edge_apply;
        let Some(fl) = flights.get_mut(&v) else { break };
        if fl.edge_applied || fl.stem_done < fl.m_eff {
            break;
        }
        let n = fl.n;
        meter::time_phase(meter::Phase::Reduce, || {
            let stem_stats = reduce_mom_table(n, std::mem::take(&mut fl.stem_moms));
            let nh_stats = reduce_mom_table(n, std::mem::take(&mut fl.nh_moms));
            let mut it = stem_stats.iter().chain(nh_stats.iter());
            primary.visit_stem_bn(&mut |bn| {
                let (mean, var) = it.next().expect("edge BN count mismatch");
                bn.apply_global_stats(mean, var);
            });
            primary.visit_neck_head_bn(&mut |bn| {
                let (mean, var) = it.next().expect("edge BN count mismatch");
                bn.apply_global_stats(mean, var);
            });
            assert!(it.next().is_none(), "edge BN count mismatch");
            let stem_root = tree_merge_slabs(
                fl.stem_slabs.iter_mut().map(|s| s.take().expect("missing stem slab")).collect(),
            );
            let mut i = 0;
            primary.visit_stem_params(&mut |p| {
                p.grad.data_mut().copy_from_slice(stem_root[i].data());
                i += 1;
            });
            let nh_root = tree_merge_slabs(
                fl.nh_slabs.iter_mut().map(|s| s.take().expect("missing nh slab")).collect(),
            );
            let mut i = 0;
            primary.visit_neck_head_params(&mut |p| {
                p.grad.data_mut().copy_from_slice(nh_root[i].data());
                i += 1;
            });
        });
        meter::time_phase(meter::Phase::Optimizer, || {
            edge_sgd.step(schedule.lr(v as usize), |f| {
                primary.visit_stem_params(f);
                primary.visit_neck_head_params(f);
            });
        });
        fl.edge_applied = true;
        *next_edge_apply = v + 1;
        let (params, buffers) = edge_payload(primary);
        edge_ring.push_back((v + 1, params, buffers));
        while edge_ring.len() > ring_cap {
            edge_ring.pop_front();
        }
        progress = true;
    }
    // Completions, strictly in step order: canonical meter absorption and
    // the per-step loss/accuracy record.
    loop {
        let v = *next_complete;
        let ready = matches!(flights.get(&v), Some(fl) if fl.fully_applied());
        if !ready {
            break;
        }
        let fl = flights.remove(&v).unwrap();
        for tm in fl.stem_fwd_meters.iter().flatten() {
            meter::absorb(tm);
        }
        for r in fl.reports.iter().flatten() {
            for tm in &r.meters {
                meter::absorb(tm);
            }
        }
        for tm in fl.nh_meters.iter().flatten() {
            meter::absorb(tm);
        }
        for tm in fl.stem_bwd_meters.iter().flatten() {
            meter::absorb(tm);
        }
        for (i, r) in fl.reports.iter().flatten().enumerate() {
            busy_total[i] += r.busy_nanos;
        }
        let mut sample_losses: Vec<f64> = Vec::with_capacity(fl.n);
        for part in &fl.losses {
            sample_losses.extend_from_slice(part.as_ref().expect("missing micro losses"));
        }
        par::tree_reduce_serial(fl.n, |d, s| sample_losses[d] += sample_losses[s]);
        let loss = sample_losses.first().copied().unwrap_or(0.0) / fl.n as f64;
        loss_meter.update(loss, fl.n as u64);
        for (mi, acc) in fl.accs.iter().enumerate() {
            let _ = mi;
            acc_meter.update(*acc, fl.mb as u64);
        }
        *next_complete = v + 1;
        progress = true;
    }
    progress
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardEngine;
    use revbifpn_data::SynthScaleConfig;

    fn setup() -> (RevBiFPNClassifier, SynthScale) {
        let data = SynthScale::new(SynthScaleConfig::new(32), 5);
        let model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
        (model, data)
    }

    fn batch(data: &SynthScale, n: usize) -> (Tensor, Tensor) {
        let (images, labels) = data.batch(0, n);
        let targets = label_smooth(&one_hot(&labels, data.num_classes()), 0.1);
        (images, targets)
    }

    fn collect_state(m: &mut RevBiFPNClassifier) -> (Vec<Tensor>, Vec<Tensor>, Vec<Tensor>) {
        let mut grads = Vec::new();
        m.visit_params(&mut |p| grads.push(p.grad.clone()));
        let mut params = Vec::new();
        m.visit_params(&mut |p| params.push(p.value.clone()));
        let mut buffers = Vec::new();
        m.visit_buffers(&mut |t| buffers.push(t.clone()));
        (grads, params, buffers)
    }

    fn assert_step_bitwise(pcfg: PipelineConfig, shard_count: usize) {
        let (mut m_ref, data) = setup();
        let (mut m_pipe, _) = setup();
        let (images, targets) = batch(&data, 16);
        let faults = ShardStepFaults::default();

        let mut shard = ShardEngine::new(m_ref.cfg(), shard_count, DriftConfig::default());
        let want = shard.step(&mut m_ref, &images, &targets, RunMode::TrainReversible, &faults);
        shard.apply_bn_stats(&mut m_ref);

        let mut pipe = PipelineEngine::new(m_pipe.cfg(), &pcfg, DriftConfig::default());
        let got = pipe.step(&mut m_pipe, &images, &targets, RunMode::TrainReversible, &faults);
        pipe.apply_bn_stats(&mut m_pipe);

        assert!(want.backward_ran && got.backward_ran);
        assert_eq!(want.logits.data(), got.logits.data(), "logits diverged");
        assert_eq!(want.loss.to_bits(), got.loss.to_bits(), "loss diverged");
        let (g_ref, _, b_ref) = collect_state(&mut m_ref);
        let (g_pipe, _, b_pipe) = collect_state(&mut m_pipe);
        assert_eq!(g_ref.len(), g_pipe.len());
        for (i, (a, b)) in g_ref.iter().zip(&g_pipe).enumerate() {
            assert_eq!(a.data(), b.data(), "grad {i} diverged");
        }
        for (i, (a, b)) in b_ref.iter().zip(&b_pipe).enumerate() {
            assert_eq!(a.data(), b.data(), "buffer {i} diverged");
        }
    }

    #[test]
    fn sync_step_matches_shard_engine_p2() {
        assert_step_bitwise(PipelineConfig::sync(2, 2), 2);
    }

    #[test]
    fn sync_step_matches_shard_engine_p4() {
        assert_step_bitwise(PipelineConfig::sync(4, 4), 1);
    }

    #[test]
    fn sync_step_with_inner_shards_matches_shard_engine() {
        assert_step_bitwise(PipelineConfig { stages: 2, micros: 2, shards: 2, staleness: 0 }, 4);
    }

    #[test]
    fn occupancy_and_bubble_reported() {
        let (mut m, data) = setup();
        let (images, targets) = batch(&data, 16);
        let mut pipe =
            PipelineEngine::new(m.cfg(), &PipelineConfig::sync(2, 4), DriftConfig::default());
        let out = pipe.step(
            &mut m,
            &images,
            &targets,
            RunMode::TrainReversible,
            &ShardStepFaults::default(),
        );
        assert!(out.backward_ran);
        assert_eq!(out.micros_used, 4);
        assert_eq!(pipe.last_occupancy().len(), 2);
        for &o in pipe.last_occupancy() {
            assert!((0.0..=1.0).contains(&o), "occupancy out of range: {o}");
            assert!(o > 0.0, "stage recorded no busy time");
        }
        let b = pipe.mean_bubble_fraction();
        assert!((0.0..1.0).contains(&b), "bubble fraction out of range: {b}");
    }

    #[test]
    fn tripped_step_aborts_cleanly_and_engine_recovers() {
        let (mut m, data) = setup();
        let (images, targets) = batch(&data, 16);
        let drift = DriftConfig { policy: revbifpn_rev::DriftPolicy::Abort, ..DriftConfig::default() };
        let mut pipe = PipelineEngine::new(m.cfg(), &PipelineConfig::sync(2, 2), drift);
        // Corrupt the final silo's output during reconstruction: the
        // sentinel must catch it and the engine must abort the step.
        let bad = ShardStepFaults {
            nan_grad: false,
            bit_flip: Some(revbifpn_rev::ReconFault { stage: 4, stream: 0, index: 0, bit: 30 }),
        };
        let out = pipe.step(&mut m, &images, &targets, RunMode::TrainReversible, &bad);
        assert!(!out.backward_ran, "corrupted reconstruction must trip");
        assert!(pipe.last_trip().is_some(), "trip site not recorded");
        pipe.after_trip();
        m.clear_cache();
        // The abort must leave the engine fully reusable: a clean step
        // right after matches a fresh shard engine bitwise.
        let (mut m_ref, _) = setup();
        let mut shard = ShardEngine::new(m_ref.cfg(), 2, DriftConfig::default());
        let want = shard.step(
            &mut m_ref,
            &images,
            &targets,
            RunMode::TrainReversible,
            &ShardStepFaults::default(),
        );
        let got = pipe.step(
            &mut m,
            &images,
            &targets,
            RunMode::TrainReversible,
            &ShardStepFaults::default(),
        );
        assert!(want.backward_ran && got.backward_ran);
        assert_eq!(want.logits.data(), got.logits.data());
        assert_eq!(want.loss.to_bits(), got.loss.to_bits());
    }
}
