//! Data-parallel sharded training step: micro-batch shards run forward +
//! reversible backward on persistent model replicas, and the per-shard
//! gradients are merged with a pairwise tree so the result is **bitwise
//! invariant to the shard count and the thread count**.
//!
//! # Determinism contract
//!
//! Every cross-sample reduction in the training step is a pairwise
//! stride-doubling tree over per-sample partials (see
//! `revbifpn_tensor::par::tree_reduce_serial` for the shard-alignment
//! theorem). A shard of `m = n / S` contiguous samples computes exactly the
//! aligned depth-`log2(m)` subtree of the global `n`-leaf tree, so merging
//! the `S` shard partials with the same tree performs the *same `f32`
//! additions in the same order* as a single-shard run:
//!
//! * parameter gradients: per-sample slabs are tree-reduced inside each
//!   layer (conv, linear, decoupled BN), and [`ShardEngine::step`] merges
//!   the shard gradients with the stride tree;
//! * the loss: per-sample `f64` cross-entropy terms are tree-summed over
//!   the full batch in sample order (sample order is shard-independent);
//! * BatchNorm statistics: replicas run in *decoupled* mode — they
//!   normalize with the pre-step running statistics (making every sample's
//!   activations independent of its batch neighbours) and record per-sample
//!   `f64` moments, which the engine tree-merges globally and applies to
//!   the primary model once the step is known to be clean.
//!
//! The engine requires `dropout == 0` and `drop_path == 0`: stochastic
//! layers draw from a batch-order-dependent RNG stream, which would break
//! the per-sample-independence property everything above rests on.

use revbifpn::{RevBiFPNClassifier, RunMode};
use revbifpn_nn::layers::BnMoments;
use revbifpn_nn::loss::softmax_cross_entropy_per_sample;
use revbifpn_nn::meter;
use revbifpn_rev::{DriftConfig, ReconFault};
use revbifpn_tensor::{par, Shape, Tensor};

/// Faults to inject into one sharded step (mirrors the serial trainer's
/// fault points; see [`crate::FaultPlan`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStepFaults {
    /// Poison the first logit gradient of shard 0 (sample 0, class 0) with
    /// a NaN after the loss is formed — the sharded analogue of the serial
    /// trainer's `Fault::NanGrad`.
    pub nan_grad: bool,
    /// Flip a bit in a reconstructed activation on replica 0 (the sharded
    /// analogue of `Fault::BitFlip`).
    pub bit_flip: Option<ReconFault>,
}

/// What one sharded step produced.
#[derive(Debug)]
pub struct ShardStepOutput {
    /// Full-batch logits, assembled in sample order.
    pub logits: Tensor,
    /// Mean cross-entropy loss (pairwise tree over per-sample terms, in
    /// sample order, divided by the batch size). Zero when `backward_ran`
    /// is false.
    pub loss: f64,
    /// `false` when a shard saw non-finite logits: the loss was not formed
    /// and no gradients were merged into the primary model. The caller's
    /// tripwire should skip the step (or reproduce the serial panic).
    pub backward_ran: bool,
    /// Number of shards the batch was actually split into (collapses to 1
    /// when the batch size is incompatible with the configured count).
    pub shards_used: usize,
}

/// Per-shard task result, produced under [`meter::isolated`].
struct ShardResult {
    logits: Tensor,
    losses: Vec<f64>,
    finite: bool,
}

/// Persistent data-parallel step engine.
///
/// Holds one model replica per shard plus reusable staging buffers, so the
/// per-step cost is copies (parameter sync, gradient gather) and not
/// allocation. The primary model owned by the caller remains the source of
/// truth: replicas are re-synced from it at the start of every step, and
/// only the primary receives merged gradients, BN statistics, optimizer
/// updates, and checkpoints.
#[derive(Debug)]
pub struct ShardEngine {
    replicas: Vec<RevBiFPNClassifier>,
    shards: usize,
    /// Primary parameter/buffer values staged for broadcast (reused).
    param_src: Vec<Tensor>,
    buffer_src: Vec<Tensor>,
    /// Per-shard gradient staging buffers (reused; also the tree scratch).
    shard_grads: Vec<Vec<Tensor>>,
    /// Per-BN `(mean, var)` computed by the last step, awaiting
    /// [`ShardEngine::apply_bn_stats`].
    pending_stats: Vec<(Tensor, Tensor)>,
}

impl ShardEngine {
    /// Builds an engine with `shards` replicas of the model described by
    /// `cfg`, configured for deterministic sharding (decoupled BN, drift
    /// sentinel matching the trainer's resilience settings).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or not a power of two, or if the config
    /// enables stochastic regularization (see module docs).
    pub fn new(cfg: &revbifpn::RevBiFPNConfig, shards: usize, drift: DriftConfig) -> Self {
        assert!(shards >= 1 && shards.is_power_of_two(), "shard count must be a power of two, got {shards}");
        assert!(
            cfg.dropout == 0.0 && cfg.drop_path == 0.0,
            "sharded training requires dropout == 0 and drop_path == 0 \
             (stochastic layers depend on batch order)"
        );
        let replicas = (0..shards)
            .map(|_| {
                let mut r = RevBiFPNClassifier::new(cfg.clone());
                r.backbone_mut().body_mut().set_drift_config(drift);
                r.visit_bn(&mut |bn| bn.set_decoupled(true));
                r
            })
            .collect();
        Self {
            replicas,
            shards,
            param_src: Vec::new(),
            buffer_src: Vec::new(),
            shard_grads: vec![Vec::new(); shards],
            pending_stats: Vec::new(),
        }
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Effective shard count for a batch of `n`: the largest `S` not above
    /// the configured count with `S | n` and `n / S` a power of two (the
    /// shard-alignment theorem's precondition), falling back to 1. The
    /// result depends only on `n`, so different engines degrade to the
    /// same split and stay mutually bitwise-comparable.
    fn effective_shards(&self, n: usize) -> usize {
        let mut s = self.shards.min(n).next_power_of_two();
        while s > self.shards.min(n) {
            s /= 2;
        }
        while s > 1 && !(n.is_multiple_of(s) && (n / s).is_power_of_two()) {
            s /= 2;
        }
        s.max(1)
    }

    /// Runs one sharded training step against the primary model.
    ///
    /// Broadcasts the primary's parameters and buffers to the replicas,
    /// runs forward + loss + backward on each micro-batch shard as one
    /// pool task, then tree-merges per-shard gradients into the primary's
    /// `grad` slots (overwriting them, like `zero_grads` + `backward`).
    /// BN statistics are merged but **not** applied — call
    /// [`ShardEngine::apply_bn_stats`] once the step passes the caller's
    /// tripwires.
    pub fn step(
        &mut self,
        primary: &mut RevBiFPNClassifier,
        images: &Tensor,
        targets: &Tensor,
        mode: RunMode,
        faults: &ShardStepFaults,
    ) -> ShardStepOutput {
        assert!(mode != RunMode::Eval, "sharded step requires a training mode");
        let n = images.shape().n;
        assert_eq!(targets.shape().n, n, "images/targets batch mismatch");
        let s_eff = self.effective_shards(n);
        let m = n / s_eff;
        self.pending_stats.clear();

        self.broadcast(primary);
        if let Some(f) = faults.bit_flip {
            self.replicas[0].backbone_mut().body_mut().inject_recon_fault(f);
        }

        // Slice the batch into contiguous per-shard tensors (sample-major,
        // so shard k owns samples [k*m, (k+1)*m)).
        let img_chw = images.shape().chw();
        let tgt_chw = targets.shape().chw();
        let mut shard_inputs: Vec<(Tensor, Tensor)> = (0..s_eff)
            .map(|k| {
                let img = Tensor::from_vec_unchecked(
                    Shape { n: m, ..images.shape() },
                    images.data()[k * m * img_chw..(k + 1) * m * img_chw].to_vec(),
                );
                let tgt = Tensor::from_vec_unchecked(
                    Shape { n: m, ..targets.shape() },
                    targets.data()[k * m * tgt_chw..(k + 1) * m * tgt_chw].to_vec(),
                );
                (img, tgt)
            })
            .collect();

        // One round of shard tasks: forward, per-sample loss, reversible
        // backward — all inside the task so every replica's caches live and
        // die on one worker, with meter effects fenced by `isolated`.
        let mut slots: Vec<Option<(ShardResult, meter::TaskMeter)>> =
            (0..s_eff).map(|_| None).collect();
        {
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(s_eff);
            for (k, ((replica, slot), (img, tgt))) in self.replicas[..s_eff]
                .iter_mut()
                .zip(slots.iter_mut())
                .zip(shard_inputs.drain(..))
                .enumerate()
            {
                let poison = faults.nan_grad && k == 0;
                tasks.push(Box::new(move || {
                    *slot = Some(meter::isolated(|| {
                        let logits = meter::time_phase(meter::Phase::Forward, || {
                            replica.forward(&img, mode)
                        });
                        if !logits.is_finite() {
                            // Don't form the loss (it asserts finiteness);
                            // drop the caches so the replica is reusable.
                            replica.clear_cache();
                            return ShardResult { logits, losses: Vec::new(), finite: false };
                        }
                        let (losses, mut dlogits) =
                            softmax_cross_entropy_per_sample(&logits, &tgt, n);
                        if poison {
                            dlogits.data_mut()[0] = f32::NAN;
                        }
                        replica.zero_grads();
                        replica.backward(&dlogits);
                        ShardResult { logits, losses, finite: true }
                    }));
                }));
            }
            par::parallel_join(tasks);
        }

        // Absorb meter deltas in shard order: the dispatcher's byte/event
        // trace (peak, drift-fallback counts, ...) is then identical to a
        // sequential run of the shards, independent of thread count.
        let results: Vec<ShardResult> = slots
            .into_iter()
            .map(|s| {
                let (r, tm) = s.expect("shard task did not run");
                meter::absorb(&tm);
                r
            })
            .collect();

        // Reassemble full-batch logits in sample order.
        let classes = targets.shape().c;
        let mut logits = Tensor::zeros(Shape { n, ..results[0].logits.shape() });
        for (k, r) in results.iter().enumerate() {
            logits.data_mut()[k * m * classes..(k + 1) * m * classes]
                .copy_from_slice(r.logits.data());
        }

        if results.iter().any(|r| !r.finite) {
            // A shard tripped before backward; leave primary grads alone.
            for r in &mut self.replicas[..s_eff] {
                r.clear_cache();
            }
            return ShardStepOutput { logits, loss: 0.0, backward_ran: false, shards_used: s_eff };
        }

        // Mean loss: pairwise tree over the per-sample f64 terms in sample
        // order — the term values and the tree depend only on n, so the
        // result is bitwise invariant to the shard split.
        let mut sample_losses: Vec<f64> = Vec::with_capacity(n);
        for r in &results {
            sample_losses.extend_from_slice(&r.losses);
        }
        par::tree_reduce_serial(n, |d, s| sample_losses[d] += sample_losses[s]);
        let loss = sample_losses.first().copied().unwrap_or(0.0) / n as f64;

        meter::time_phase(meter::Phase::Reduce, || {
            self.merge_grads(primary, s_eff);
            self.merge_bn_stats(n, s_eff);
        });

        ShardStepOutput { logits, loss, backward_ran: true, shards_used: s_eff }
    }

    /// Applies the BN statistics merged by the last [`ShardEngine::step`]
    /// to the primary model's running buffers. Call exactly once per clean
    /// step, after tripwires pass; skipping it on a tripped step leaves
    /// the primary's buffers untouched (no rollback needed).
    pub fn apply_bn_stats(&mut self, primary: &mut RevBiFPNClassifier) {
        let stats = std::mem::take(&mut self.pending_stats);
        let mut it = stats.iter();
        primary.visit_bn(&mut |bn| {
            let (mean, var) = it.next().expect("BN count changed between step and apply");
            bn.apply_global_stats(mean, var);
        });
        assert!(it.next().is_none(), "BN count changed between step and apply");
    }

    /// Drops all replica caches (pending BN moments included). Used by the
    /// trainer's tripwire path alongside the primary's `clear_cache`.
    pub fn clear_replica_caches(&mut self) {
        for r in &mut self.replicas {
            r.clear_cache();
        }
        self.pending_stats.clear();
    }

    /// Copies the primary's parameters and persistent buffers into every
    /// replica. Staging tensors are allocated on first use and reused, so
    /// steady-state steps are copy-only.
    fn broadcast(&mut self, primary: &mut RevBiFPNClassifier) {
        if self.param_src.is_empty() {
            primary.visit_params(&mut |p| self.param_src.push(p.value.clone()));
            primary.visit_buffers(&mut |t| self.buffer_src.push(t.clone()));
        } else {
            let mut i = 0;
            primary.visit_params(&mut |p| {
                self.param_src[i].data_mut().copy_from_slice(p.value.data());
                i += 1;
            });
            let mut j = 0;
            primary.visit_buffers(&mut |t| {
                self.buffer_src[j].data_mut().copy_from_slice(t.data());
                j += 1;
            });
        }
        for r in &mut self.replicas {
            let mut i = 0;
            r.visit_params(&mut |p| {
                p.value.data_mut().copy_from_slice(self.param_src[i].data());
                i += 1;
            });
            let mut j = 0;
            r.visit_buffers(&mut |t| {
                t.data_mut().copy_from_slice(self.buffer_src[j].data());
                j += 1;
            });
        }
    }

    /// Gathers each shard's parameter gradients and merges them with the
    /// pairwise stride tree, writing the root into the primary's `grad`
    /// slots. With per-shard gradients being aligned subtrees of the
    /// global per-sample tree, the merged result is bitwise identical to a
    /// single-shard run.
    fn merge_grads(&mut self, primary: &mut RevBiFPNClassifier, s_eff: usize) {
        for k in 0..s_eff {
            let grads = &mut self.shard_grads[k];
            if grads.is_empty() {
                self.replicas[k].visit_params(&mut |p| grads.push(p.grad.clone()));
            } else {
                let mut i = 0;
                self.replicas[k].visit_params(&mut |p| {
                    grads[i].data_mut().copy_from_slice(p.grad.data());
                    i += 1;
                });
            }
        }
        let mut stride = 1;
        while stride < s_eff {
            let mut lo = 0;
            while lo + stride < s_eff {
                let (left, right) = self.shard_grads.split_at_mut(lo + stride);
                for (d, s) in left[lo].iter_mut().zip(right[0].iter()) {
                    for (a, b) in d.data_mut().iter_mut().zip(s.data()) {
                        *a += *b;
                    }
                }
                lo += 2 * stride;
            }
            stride *= 2;
        }
        let mut i = 0;
        primary.visit_params(&mut |p| {
            p.grad.data_mut().copy_from_slice(self.shard_grads[0][i].data());
            i += 1;
        });
    }

    /// Collects the per-sample BN moments recorded by every replica and
    /// merges them into per-BN global `(mean, var)` pairs with a pairwise
    /// `f64` tree over the full batch, in sample order.
    fn merge_bn_stats(&mut self, n: usize, s_eff: usize) {
        let mut per_shard: Vec<Vec<BnMoments>> = Vec::with_capacity(s_eff);
        for r in &mut self.replicas[..s_eff] {
            let mut list = Vec::new();
            r.visit_bn(&mut |bn| {
                list.push(bn.take_moments().expect("decoupled BN recorded no moments"));
            });
            per_shard.push(list);
        }
        let num_bns = per_shard[0].len();
        for j in 0..num_bns {
            let hw = per_shard[0][j].hw;
            let c = per_shard[0][j].sum.len() / per_shard[0][j].samples.max(1);
            // Global sample-major moment table: shard k's samples land at
            // rows [k*m, (k+1)*m), restoring batch order.
            let mut s1: Vec<f64> = Vec::with_capacity(n * c);
            let mut s2: Vec<f64> = Vec::with_capacity(n * c);
            for shard in &per_shard {
                let m = &shard[j];
                assert_eq!(m.hw, hw, "BN spatial extent mismatch across shards");
                s1.extend_from_slice(&m.sum);
                s2.extend_from_slice(&m.sqsum);
            }
            assert_eq!(s1.len(), n * c, "BN moment sample count mismatch");
            par::tree_reduce_serial(n, |d, s| {
                for ci in 0..c {
                    s1[d * c + ci] += s1[s * c + ci];
                    s2[d * c + ci] += s2[s * c + ci];
                }
            });
            let denom = (n * hw) as f64;
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for ci in 0..c {
                let mu = s1[ci] / denom;
                mean[ci] = mu as f32;
                var[ci] = (s2[ci] / denom - mu * mu).max(0.0) as f32;
            }
            self.pending_stats.push((
                Tensor::from_vec_unchecked(Shape::vector(c), mean),
                Tensor::from_vec_unchecked(Shape::vector(c), var),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_shards_respects_alignment() {
        let cfg = revbifpn::RevBiFPNConfig::tiny(5);
        let eng = ShardEngine::new(&cfg, 4, DriftConfig::default());
        assert_eq!(eng.effective_shards(16), 4);
        assert_eq!(eng.effective_shards(8), 4);
        assert_eq!(eng.effective_shards(4), 4);
        assert_eq!(eng.effective_shards(2), 2);
        assert_eq!(eng.effective_shards(1), 1);
        // 12 / 4 = 3 is not a power of two: collapse to 1 (12/2 = 6 fails
        // too), keeping the split a pure function of n.
        assert_eq!(eng.effective_shards(12), 1);
        assert_eq!(eng.effective_shards(3), 1);
    }
}
