//! # revbifpn-train
//!
//! Training harness matching the structure of the paper's recipe (Appendix
//! D.1): SGD with momentum and selective weight decay, warmup + cosine +
//! constant-tail learning-rate schedule, parameter EMA, label smoothing and
//! augmentation, plus per-epoch metrics and activation-memory capture.
//!
//! The central entry point is [`train_classifier`], which trains a
//! `RevBiFPNClassifier` on SynthScale in either reversible or conventional
//! mode — the engine behind the Figure 14 equivalence experiment.

#![warn(missing_docs)]

mod ema;
mod metrics;
mod schedule;
mod sgd;
mod trainer;

pub use ema::Ema;
pub use metrics::{top1_accuracy, topk_accuracy, AverageMeter};
pub use schedule::LrSchedule;
pub use sgd::{clip_grad_norm, Sgd};
pub use trainer::{evaluate, train_classifier, EpochStats, TrainConfig, TrainHistory};
