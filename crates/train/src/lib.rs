//! # revbifpn-train
//!
//! Training harness matching the structure of the paper's recipe (Appendix
//! D.1): SGD with momentum and selective weight decay, warmup + cosine +
//! constant-tail learning-rate schedule, parameter EMA, label smoothing and
//! augmentation, plus per-epoch metrics and activation-memory capture.
//!
//! The central entry point is [`train_classifier`], which trains a
//! `RevBiFPNClassifier` on SynthScale in either reversible or conventional
//! mode — the engine behind the Figure 14 equivalence experiment.
//! [`train_classifier_with`] adds the resilience layer's run options:
//! deterministic fault injection ([`FaultPlan`]), crash-safe periodic
//! checkpointing ([`CheckpointCfg`]), and auto-resume.

#![warn(missing_docs)]

mod ema;
pub mod faults;
mod metrics;
mod pipeline;
pub mod resume;
mod schedule;
mod sgd;
mod shard;
mod trainer;

pub use ema::Ema;
pub use faults::{tear_file, Fault, FaultPlan, ServeFault, ServeFaultPlan};
pub use metrics::{top1_accuracy, topk_accuracy, AverageMeter, PhaseBreakdown};
pub use pipeline::{
    train_pipeline_delayed, PipelineConfig, PipelineEngine, PipelineStepOutput,
};
pub use shard::{ShardEngine, ShardStepFaults, ShardStepOutput};
pub use resume::{auto_resume, load_train_state, save_train_state, CheckpointCfg, ResumeMeta};
pub use schedule::LrSchedule;
pub use sgd::{clip_grad_norm, Sgd};
pub use trainer::{
    evaluate, train_classifier, train_classifier_with, EpochStats, ResilienceConfig, RunOptions,
    TrainConfig, TrainHistory,
};
