//! Classification metrics, running averages, and the per-phase timing
//! breakdown surfaced from the nn-level step timers.

use revbifpn_nn::loss::argmax_rows;
use revbifpn_nn::meter::PhaseTimes;
use revbifpn_tensor::Tensor;

/// Running average of a scalar.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AverageMeter {
    sum: f64,
    count: u64,
}

impl AverageMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` with weight `n`.
    pub fn update(&mut self, value: f64, n: u64) {
        self.sum += value * n as f64;
        self.count += n;
    }

    /// Current average (0 if empty).
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of weighted observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Per-phase wall-clock breakdown of training steps, in milliseconds,
/// converted from the process-wide phase timers in
/// [`revbifpn_nn::meter`] (see [`revbifpn_nn::meter::phase_times`]).
///
/// Counters are *aggregate thread-time*: concurrent shard tasks each
/// charge their own wall clock, so on a multi-core run the sum can exceed
/// elapsed time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Batch forward passes (loss included).
    pub forward_ms: f64,
    /// Reversible re-forwards reconstructing activations during backward.
    pub reconstruct_ms: f64,
    /// Gradient (transpose) computation.
    pub backward_ms: f64,
    /// Cross-shard / cross-sample gradient and BN-stat tree reductions.
    pub reduce_ms: f64,
    /// Optimizer updates (SGD step, EMA).
    pub optimizer_ms: f64,
    /// Aggregate thread-time pipeline workers (and the pipeline driver)
    /// spent blocked waiting on stage messages — the fill/drain bubble
    /// cost of stage-pipelined steps. Zero for serial and sharded runs.
    pub stall_ms: f64,
    /// Mean per-pipeline-stage occupancy over the run's steps: fraction of
    /// the step wall-clock each stage worker spent computing (index =
    /// pipeline position). Empty for serial and sharded runs.
    pub stage_occupancy: Vec<f64>,
    /// Mean pipeline bubble fraction over the run's steps:
    /// `1 - mean(stage_occupancy)`. Zero for serial and sharded runs.
    pub bubble_fraction: f64,
}

impl PhaseBreakdown {
    /// Converts a [`PhaseTimes`] snapshot (or snapshot difference) into
    /// milliseconds. Pipeline occupancy fields are not derivable from
    /// phase counters; the pipelined trainer fills them in separately.
    pub fn from_times(t: PhaseTimes) -> Self {
        const MS: f64 = 1e-6;
        Self {
            forward_ms: t.forward_nanos as f64 * MS,
            reconstruct_ms: t.reconstruct_nanos as f64 * MS,
            backward_ms: t.backward_nanos as f64 * MS,
            reduce_ms: t.reduce_nanos as f64 * MS,
            optimizer_ms: t.optimizer_nanos as f64 * MS,
            stall_ms: t.stall_nanos as f64 * MS,
            stage_occupancy: Vec::new(),
            bubble_fraction: 0.0,
        }
    }

    /// Sum over all compute phases plus stall time, in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.forward_ms
            + self.reconstruct_ms
            + self.backward_ms
            + self.reduce_ms
            + self.optimizer_ms
            + self.stall_ms
    }
}

/// Top-1 accuracy of logits `[n, k, 1, 1]` against labels.
pub fn top1_accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let preds = argmax_rows(logits);
    assert_eq!(preds.len(), labels.len(), "batch size mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

/// Top-k accuracy.
pub fn topk_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f64 {
    let s = logits.shape();
    assert_eq!(s.n, labels.len(), "batch size mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0;
    for (n, &label) in labels.iter().enumerate() {
        let row = &logits.data()[n * s.c..(n + 1) * s.c];
        let target_score = row[label];
        let better = row.iter().filter(|&&v| v > target_score).count();
        if better < k {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use revbifpn_tensor::Shape;

    #[test]
    fn average_meter_weighted() {
        let mut m = AverageMeter::new();
        m.update(1.0, 1);
        m.update(0.0, 3);
        assert!((m.avg() - 0.25).abs() < 1e-9);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn top1_counts_matches() {
        let l = Tensor::from_vec(Shape::new(2, 3, 1, 1), vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0]).unwrap();
        assert_eq!(top1_accuracy(&l, &[1, 0]), 1.0);
        assert_eq!(top1_accuracy(&l, &[2, 0]), 0.5);
    }

    #[test]
    fn topk_wider_than_top1() {
        let l = Tensor::from_vec(Shape::new(1, 4, 1, 1), vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        assert_eq!(top1_accuracy(&l, &[1]), 0.0);
        assert_eq!(topk_accuracy(&l, &[1], 2), 1.0);
    }
}
