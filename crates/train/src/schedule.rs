//! Learning-rate schedule from Appendix D.1: linear warmup from a small
//! starting LR, cosine decay, and a constant low-LR tail for the last
//! epochs.

/// Warmup + cosine + constant-tail schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LrSchedule {
    /// Peak learning rate after warmup.
    pub peak_lr: f32,
    /// Starting learning rate of the warmup.
    pub warmup_start_lr: f32,
    /// Warmup length in steps.
    pub warmup_steps: usize,
    /// Total steps (including warmup and tail).
    pub total_steps: usize,
    /// Constant-tail length in steps.
    pub tail_steps: usize,
    /// Constant-tail learning rate.
    pub tail_lr: f32,
}

impl LrSchedule {
    /// The paper's shape scaled to a step budget: 5% warmup from 1e-3·peak,
    /// cosine decay, ~5% tail at 1e-3.
    pub fn paper_like(peak_lr: f32, total_steps: usize) -> Self {
        Self {
            peak_lr,
            warmup_start_lr: peak_lr * 0.01,
            warmup_steps: (total_steps / 20).max(1),
            total_steps,
            tail_steps: (total_steps / 20).max(1),
            tail_lr: peak_lr * 0.01,
        }
    }

    /// Learning rate at `step` (0-based).
    pub fn lr(&self, step: usize) -> f32 {
        if step < self.warmup_steps {
            let t = step as f32 / self.warmup_steps as f32;
            return self.warmup_start_lr + t * (self.peak_lr - self.warmup_start_lr);
        }
        let tail_start = self.total_steps.saturating_sub(self.tail_steps);
        if step >= tail_start {
            return self.tail_lr;
        }
        let span = (tail_start - self.warmup_steps).max(1) as f32;
        let t = (step - self.warmup_steps) as f32 / span;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.tail_lr + (self.peak_lr - self.tail_lr) * cos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_rises_to_peak() {
        let s = LrSchedule::paper_like(0.1, 1000);
        assert!(s.lr(0) < 0.01);
        assert!((s.lr(s.warmup_steps) - 0.1).abs() < 1e-3);
    }

    #[test]
    fn cosine_decays_monotonically() {
        let s = LrSchedule::paper_like(0.1, 1000);
        let mut prev = f32::INFINITY;
        for step in (s.warmup_steps..950).step_by(50) {
            let lr = s.lr(step);
            assert!(lr <= prev + 1e-6, "lr rose at {step}");
            prev = lr;
        }
    }

    #[test]
    fn tail_is_constant() {
        let s = LrSchedule::paper_like(0.1, 1000);
        assert_eq!(s.lr(960), s.tail_lr);
        assert_eq!(s.lr(999), s.tail_lr);
    }

    #[test]
    fn schedule_never_negative() {
        let s = LrSchedule::paper_like(0.05, 200);
        for step in 0..200 {
            assert!(s.lr(step) > 0.0);
        }
    }
}
