//! The stage-pipelined training step's contract, end to end:
//!
//! * synchronous fill/drain steps are **bitwise** equal to the shard
//!   engine for random `(stages, micros, shards)` partitions;
//! * delayed-gradient runs are bit-deterministic run-to-run for a fixed
//!   `(seed, stages, micros, K)`;
//! * an injected reconstruction fault aborts the in-flight window
//!   cleanly — no wedged worker, no poisoned channel — and the same
//!   engine keeps training afterwards.

use proptest::prelude::*;
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_data::{SynthScale, SynthScaleConfig};
use revbifpn_nn::loss::{label_smooth, one_hot};
use revbifpn_rev::{DriftConfig, DriftPolicy, ReconFault};
use revbifpn_train::{
    train_classifier, train_classifier_with, train_pipeline_delayed, Fault, FaultPlan,
    PipelineConfig, PipelineEngine, RunOptions, ShardEngine, ShardStepFaults, TrainConfig,
    TrainHistory,
};
use revbifpn_tensor::Tensor;

fn tiny_setup() -> (RevBiFPNClassifier, SynthScale) {
    let data = SynthScale::new(SynthScaleConfig::new(32), 5);
    let model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
    (model, data)
}

fn batch16(data: &SynthScale) -> (Tensor, Tensor) {
    let (images, labels) = data.batch(0, 16);
    let targets = label_smooth(&one_hot(&labels, data.num_classes()), 0.1);
    (images, targets)
}

fn model_state(m: &mut RevBiFPNClassifier) -> (Vec<Tensor>, Vec<Tensor>, Vec<Tensor>) {
    let mut grads = Vec::new();
    m.visit_params(&mut |p| grads.push(p.grad.clone()));
    let mut params = Vec::new();
    m.visit_params(&mut |p| params.push(p.value.clone()));
    let mut buffers = Vec::new();
    m.visit_buffers(&mut |t| buffers.push(t.clone()));
    (grads, params, buffers)
}

fn delayed_cfg(stages: usize, micros: usize, staleness: usize) -> TrainConfig {
    TrainConfig {
        epochs: 2,
        train_size: 64,
        val_size: 32,
        batch_size: 16,
        // Delayed gradients tolerate a lower peak LR than synchronous
        // steps (the PETRA trade): small()'s 0.08 diverges under K >= 1.
        lr: 0.04,
        pipeline: PipelineConfig { stages, micros, shards: 1, staleness },
        ..TrainConfig::small()
    }
}

fn run_delayed(cfg: &TrainConfig) -> (TrainHistory, Vec<Tensor>, Vec<Tensor>) {
    let (mut model, data) = tiny_setup();
    let h = train_pipeline_delayed(&mut model, &data, cfg);
    let (_, params, buffers) = model_state(&mut model);
    (h, params, buffers)
}

#[test]
fn delayed_smoke_completes_and_learns() {
    let cfg = TrainConfig { epochs: 3, train_size: 128, ..delayed_cfg(2, 2, 1) };
    let (h, _, _) = run_delayed(&cfg);
    assert_eq!(h.epochs.len(), 3);
    assert!(!h.aborted);
    let first = h.epochs[0].train_loss;
    let last = h.epochs[2].train_loss;
    assert!(last.is_finite());
    assert!(last < first, "delayed loss did not decrease: {:?}", h.epochs);
    assert_eq!(h.phases.stage_occupancy.len(), 2);
    assert!((0.0..=1.0).contains(&h.phases.bubble_fraction));
}

#[test]
fn delayed_runs_are_deterministic() {
    let cfg = delayed_cfg(2, 2, 2);
    let (h1, p1, b1) = run_delayed(&cfg);
    let (h2, p2, b2) = run_delayed(&cfg);
    assert!(!h1.aborted && !h2.aborted);
    for (a, b) in h1.epochs.iter().zip(&h2.epochs) {
        assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits(), "loss diverged");
        assert_eq!(a.train_acc.to_bits(), b.train_acc.to_bits(), "train acc diverged");
        assert_eq!(a.val_acc.to_bits(), b.val_acc.to_bits(), "val acc diverged");
    }
    for (i, (x, y)) in p1.iter().zip(&p2).enumerate() {
        assert_eq!(x.data(), y.data(), "param {i} diverged");
    }
    for (i, (x, y)) in b1.iter().zip(&b2).enumerate() {
        assert_eq!(x.data(), y.data(), "buffer {i} diverged");
    }
}

/// The PETRA claim at miniature scale: bounded staleness costs almost
/// nothing in final quality (within 0.5 pt of serial top-1 here). Both
/// runs are deterministic, so this gap is a fixed property of the
/// configuration, not a flaky margin. Heavyweight (two full training
/// runs): ignored by default, run in release by `ci.sh`.
#[test]
#[ignore = "two full training runs; ci.sh runs this with --release"]
fn delayed_tracks_serial_accuracy() {
    let cfg = TrainConfig {
        epochs: 12,
        train_size: 256,
        val_size: 256,
        lr: 0.03,
        ..delayed_cfg(2, 2, 1)
    };
    let (mut serial_model, data) = tiny_setup();
    let serial_cfg = TrainConfig { pipeline: PipelineConfig::disabled(), ..cfg };
    let hs = train_classifier(&mut serial_model, &data, &serial_cfg, RunMode::TrainReversible);
    let (hd, _, _) = run_delayed(&cfg);
    let gap = (hs.final_val_acc() - hd.final_val_acc()).abs();
    assert!(
        gap <= 0.005 + 1e-12,
        "delayed val acc {:.4} drifted more than 0.5 pt from serial {:.4}",
        hd.final_val_acc(),
        hs.final_val_acc()
    );
}

#[test]
fn sync_pipeline_training_run_matches_sharded_run() {
    // Whole-run equivalence through the trainer: pipelined steps vs the
    // established shard engine, identical seeds -> bitwise-identical
    // history and parameters.
    let base = TrainConfig {
        epochs: 1,
        train_size: 48,
        val_size: 32,
        batch_size: 16,
        ..TrainConfig::small()
    };
    let (mut m1, data) = tiny_setup();
    let (mut m2, _) = tiny_setup();
    let sharded = TrainConfig { shards: 2, ..base };
    let piped = TrainConfig { pipeline: PipelineConfig::sync(2, 2), ..base };
    let h1 = train_classifier(&mut m1, &data, &sharded, RunMode::TrainReversible);
    let h2 = train_classifier(&mut m2, &data, &piped, RunMode::TrainReversible);
    for (a, b) in h1.epochs.iter().zip(&h2.epochs) {
        assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits(), "loss diverged");
        assert_eq!(a.val_acc.to_bits(), b.val_acc.to_bits(), "val acc diverged");
    }
    let (_, p1, b1) = model_state(&mut m1);
    let (_, p2, b2) = model_state(&mut m2);
    for (i, (x, y)) in p1.iter().zip(&p2).enumerate() {
        assert_eq!(x.data(), y.data(), "param {i} diverged");
    }
    for (i, (x, y)) in b1.iter().zip(&b2).enumerate() {
        assert_eq!(x.data(), y.data(), "buffer {i} diverged");
    }
}

#[test]
fn faulted_pipeline_run_aborts_step_and_recovers() {
    // A reconstruction bit-flip at step 1 must trip that step only: the
    // abort drains the whole pipeline window without leaking a task or
    // poisoning a channel, the snapshot restores, and the run finishes.
    let (mut model, data) = tiny_setup();
    let mut cfg = TrainConfig {
        epochs: 1,
        train_size: 64,
        val_size: 32,
        batch_size: 16,
        pipeline: PipelineConfig::sync(2, 2),
        ..TrainConfig::small()
    };
    cfg.resilience.drift = DriftConfig { policy: DriftPolicy::Abort, ..DriftConfig::default() };
    let opts = RunOptions {
        faults: FaultPlan::none().with(Fault::ActivationBitFlip {
            step: 1,
            fault: ReconFault { stage: 4, stream: 0, index: 0, bit: 30 },
        }),
        ..RunOptions::default()
    };
    let h = train_classifier_with(&mut model, &data, &cfg, RunMode::TrainReversible, &opts);
    assert_eq!(h.nonfinite_skips, 1, "the injected fault must trip exactly one step");
    assert!(!h.aborted, "a single trip must not abort the run");
    assert_eq!(h.epochs.len(), 1);
    assert!(h.epochs[0].train_loss.is_finite());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// One synchronous pipelined step over a random partition must be
    /// bitwise equal to the shard engine on the same batch.
    #[test]
    fn sync_step_bitwise_equal_over_random_partitions(
        stages in 1usize..=4,
        micros_log in 0u32..=2,
        inner_log in 0u32..=1,
        shard_log in 0u32..=2,
    ) {
        let micros = 1usize << micros_log;
        let inner = 1usize << inner_log;
        let (mut m_ref, data) = tiny_setup();
        let (mut m_pipe, _) = tiny_setup();
        let (images, targets) = batch16(&data);
        let faults = ShardStepFaults::default();

        let mut shard = ShardEngine::new(m_ref.cfg(), 1 << shard_log, DriftConfig::default());
        let want = shard.step(&mut m_ref, &images, &targets, RunMode::TrainReversible, &faults);
        shard.apply_bn_stats(&mut m_ref);

        let pcfg = PipelineConfig { stages, micros, shards: inner, staleness: 0 };
        let mut pipe = PipelineEngine::new(m_pipe.cfg(), &pcfg, DriftConfig::default());
        let got = pipe.step(&mut m_pipe, &images, &targets, RunMode::TrainReversible, &faults);
        pipe.apply_bn_stats(&mut m_pipe);

        prop_assert!(want.backward_ran && got.backward_ran);
        prop_assert_eq!(want.logits.data(), got.logits.data(), "logits diverged");
        prop_assert_eq!(want.loss.to_bits(), got.loss.to_bits(), "loss diverged");
        let (g_ref, _, b_ref) = model_state(&mut m_ref);
        let (g_pipe, _, b_pipe) = model_state(&mut m_pipe);
        for (i, (a, b)) in g_ref.iter().zip(&g_pipe).enumerate() {
            prop_assert_eq!(a.data(), b.data(), "grad {} diverged", i);
        }
        for (i, (a, b)) in b_ref.iter().zip(&b_pipe).enumerate() {
            prop_assert_eq!(a.data(), b.data(), "buffer {} diverged", i);
        }
    }

    /// Delayed-gradient runs must be bit-deterministic for any fixed
    /// `(stages, K)` and abort-free on clean data.
    #[test]
    fn delayed_deterministic_over_random_configs(
        stages in 1usize..=3,
        staleness in 1usize..=2,
    ) {
        let mut cfg = delayed_cfg(stages, 2, staleness);
        cfg.epochs = 1;
        let (h1, p1, _) = run_delayed(&cfg);
        let (h2, p2, _) = run_delayed(&cfg);
        prop_assert!(!h1.aborted && !h2.aborted);
        for (a, b) in h1.epochs.iter().zip(&h2.epochs) {
            prop_assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
            prop_assert_eq!(a.val_acc.to_bits(), b.val_acc.to_bits());
        }
        for (i, (x, y)) in p1.iter().zip(&p2).enumerate() {
            prop_assert_eq!(x.data(), y.data(), "param {} diverged", i);
        }
    }
}
