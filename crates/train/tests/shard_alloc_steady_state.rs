//! Steady-state allocation accounting for the sharded training step.
//!
//! After warm-up, a sharded `ShardEngine::step` must run entirely out of
//! the persistent replica buffers, the per-shard gradient accumulators, and
//! the warmed thread-local scratch arenas: the scratch `heap_growths`
//! counter must stay flat across later steps.
//!
//! This file holds a single test on purpose: the scratch counters are
//! process-global, so it must not share its process slot with other tests
//! that exercise the kernels concurrently.

use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_data::{SynthScale, SynthScaleConfig};
use revbifpn_nn::meter;
use revbifpn_tensor::par;
use revbifpn_train::{ShardEngine, ShardStepFaults};

#[test]
fn sharded_step_makes_zero_scratch_heap_allocations_at_steady_state() {
    // Single-threaded so every scratch borrow lands in this thread's arena;
    // with workers, each pool thread additionally pays a one-time warm-up
    // growth the first time dynamic tile scheduling hands it work.
    par::set_max_threads(1);

    let data = SynthScale::new(SynthScaleConfig::new(32), 5);
    let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
    let mut engine = ShardEngine::new(model.cfg(), 2, revbifpn_rev::DriftConfig::default());
    let (images, labels) = data.batch(0, 8);
    let targets = revbifpn_nn::loss::label_smooth(
        &revbifpn_nn::loss::one_hot(&labels, data.num_classes()),
        0.1,
    );

    let mut step = |engine: &mut ShardEngine, model: &mut RevBiFPNClassifier| {
        let out = engine.step(
            model,
            &images,
            &targets,
            RunMode::TrainReversible,
            &ShardStepFaults::default(),
        );
        assert!(out.backward_ran);
        engine.apply_bn_stats(model);
    };

    // Warm the thread-local arena (and the engine's persistent buffers)
    // with every shape the step borrows.
    for _ in 0..2 {
        step(&mut engine, &mut model);
    }

    meter::reset_scratch_stats();
    for _ in 0..3 {
        step(&mut engine, &mut model);
    }
    let report = meter::report();
    assert!(report.scratch.borrows > 0, "the step should be using the scratch arena");
    assert_eq!(
        report.scratch.heap_growths, 0,
        "steady-state sharded step must not grow the scratch arenas: {:?}",
        report.scratch
    );

    par::set_max_threads(0);
}
