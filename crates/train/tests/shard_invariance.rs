//! The sharded training step's determinism contract, end to end: merged
//! gradients, losses, BN statistics, and whole training runs must be
//! **bitwise** invariant to the micro-batch shard count and the thread
//! count — including the resilience paths (non-finite tripwire, drift
//! sentinel).

use proptest::prelude::*;
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_data::{SynthScale, SynthScaleConfig};
use revbifpn_rev::ReconFault;
use revbifpn_tensor::{par, Tensor};
use revbifpn_train::{
    train_classifier_with, Fault, FaultPlan, RunOptions, ShardEngine, ShardStepFaults,
    TrainConfig,
};
use std::sync::Mutex;

/// `par::set_max_threads` is process-global; tests that touch it must not
/// interleave.
static THREAD_KNOB: Mutex<()> = Mutex::new(());

fn lock_threads() -> std::sync::MutexGuard<'static, ()> {
    THREAD_KNOB.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_setup() -> (RevBiFPNClassifier, SynthScale) {
    let data = SynthScale::new(SynthScaleConfig::new(32), 5);
    let model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
    (model, data)
}

fn train_cfg(shards: usize) -> TrainConfig {
    TrainConfig {
        epochs: 1,
        train_size: 32,
        val_size: 16,
        batch_size: 16,
        shards,
        ..TrainConfig::small()
    }
}

/// Runs one short training run and returns (per-epoch losses, skips,
/// final parameter values, final buffer values).
fn run_training(
    cfg: TrainConfig,
    threads: usize,
    faults: FaultPlan,
) -> (Vec<f64>, u64, Vec<Tensor>, Vec<Tensor>) {
    par::set_max_threads(threads);
    let (mut model, data) = tiny_setup();
    let opts = RunOptions { faults, ..RunOptions::default() };
    let h = train_classifier_with(&mut model, &data, &cfg, RunMode::TrainReversible, &opts);
    par::set_max_threads(0);
    let losses = h.epochs.iter().map(|e| e.train_loss).collect();
    let mut params = Vec::new();
    model.visit_params(&mut |p| params.push(p.value.clone()));
    let mut buffers = Vec::new();
    model.visit_buffers(&mut |t| buffers.push(t.clone()));
    (losses, h.nonfinite_skips, params, buffers)
}

fn assert_bitwise_equal_runs(
    a: &(Vec<f64>, u64, Vec<Tensor>, Vec<Tensor>),
    b: &(Vec<f64>, u64, Vec<Tensor>, Vec<Tensor>),
    label: &str,
) {
    assert_eq!(a.0, b.0, "{label}: per-epoch losses diverged");
    assert_eq!(a.1, b.1, "{label}: skip counts diverged");
    assert_eq!(a.2.len(), b.2.len(), "{label}: param count diverged");
    for (i, (x, y)) in a.2.iter().zip(&b.2).enumerate() {
        assert_eq!(x, y, "{label}: param {i} diverged");
    }
    for (i, (x, y)) in a.3.iter().zip(&b.3).enumerate() {
        assert_eq!(x, y, "{label}: buffer {i} diverged");
    }
}

#[test]
fn clean_training_run_is_shard_and_thread_invariant() {
    let _g = lock_threads();
    let baseline = run_training(train_cfg(1), 1, FaultPlan::none());
    assert_eq!(baseline.1, 0, "clean run must not skip steps");
    for &(shards, threads) in &[(1usize, 4usize), (2, 1), (2, 4), (4, 1), (4, 4)] {
        let run = run_training(train_cfg(shards), threads, FaultPlan::none());
        assert_bitwise_equal_runs(&baseline, &run, &format!("S={shards} T={threads}"));
    }
}

#[test]
fn faulted_training_run_is_shard_invariant() {
    // A NaN-poisoned gradient at step 0 (non-finite tripwire) and a
    // reconstruction bit flip at step 1 (drift sentinel, fallback policy):
    // both must skip the step and roll back identically for every shard
    // count.
    let _g = lock_threads();
    // Flip a fingerprint-sampled position (index 0 is always sampled) so
    // the drift sentinel detects the corruption regardless of whether the
    // flip grows or shrinks the value.
    let plan = FaultPlan::none().with(Fault::NanGrad { step: 0 }).with(Fault::ActivationBitFlip {
        step: 1,
        fault: ReconFault { stage: 0, stream: 0, index: 0, bit: 30 },
    });
    let cfg_for = |shards: usize| {
        let mut cfg = train_cfg(shards);
        cfg.resilience.drift.policy = revbifpn_rev::DriftPolicy::FallbackToCached;
        cfg
    };
    let baseline = run_training(cfg_for(1), 1, plan.clone());
    assert_eq!(baseline.1, 2, "both faults must trip their steps");
    for &(shards, threads) in &[(2usize, 1usize), (2, 4), (4, 1), (4, 4)] {
        let run = run_training(cfg_for(shards), threads, plan.clone());
        assert_bitwise_equal_runs(&baseline, &run, &format!("faulted S={shards} T={threads}"));
    }
}

/// One engine-level step: returns (loss, logits, merged grads, buffers
/// after BN-stat application).
fn engine_step(
    shards: usize,
    threads: usize,
    batch_start: u64,
) -> (f64, Tensor, Vec<Tensor>, Vec<Tensor>) {
    par::set_max_threads(threads);
    let (mut model, data) = tiny_setup();
    let mut engine =
        ShardEngine::new(model.cfg(), shards, revbifpn_rev::DriftConfig::default());
    let (images, labels) = data.batch(batch_start, 16);
    let targets = revbifpn_nn::loss::label_smooth(
        &revbifpn_nn::loss::one_hot(&labels, data.num_classes()),
        0.1,
    );
    let out = engine.step(
        &mut model,
        &images,
        &targets,
        RunMode::TrainReversible,
        &ShardStepFaults::default(),
    );
    assert!(out.backward_ran);
    assert_eq!(out.shards_used, shards);
    engine.apply_bn_stats(&mut model);
    par::set_max_threads(0);
    let mut grads = Vec::new();
    model.visit_params(&mut |p| grads.push(p.grad.clone()));
    let mut buffers = Vec::new();
    model.visit_buffers(&mut |t| buffers.push(t.clone()));
    (out.loss, out.logits, grads, buffers)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    #[test]
    fn sharded_step_grads_and_loss_match_single_shard(
        batch_start in 0u64..64,
        shards in prop::sample::select(vec![2usize, 4]),
        threads in prop::sample::select(vec![1usize, 4]),
    ) {
        let _g = lock_threads();
        let (l1, logits1, g1, b1) = engine_step(1, 1, batch_start);
        let (ls, logits_s, gs, bs) = engine_step(shards, threads, batch_start);
        prop_assert_eq!(l1.to_bits(), ls.to_bits(), "loss diverged");
        prop_assert_eq!(&logits1, &logits_s);
        prop_assert_eq!(g1.len(), gs.len());
        for (x, y) in g1.iter().zip(&gs) {
            prop_assert_eq!(x, y);
        }
        for (x, y) in b1.iter().zip(&bs) {
            prop_assert_eq!(x, y);
        }
    }
}
