//! Integration tests of the training recipe: determinism, schedule/EMA/clip
//! interplay, and regression behaviour of the full loop.

use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_data::{SynthScale, SynthScaleConfig};
use revbifpn_nn::Param;
use revbifpn_tensor::{Shape, Tensor};
use revbifpn_train::{clip_grad_norm, train_classifier, Ema, LrSchedule, Sgd, TrainConfig};

#[test]
fn training_is_fully_deterministic() {
    let data = SynthScale::new(SynthScaleConfig::new(32), 1);
    let cfg = TrainConfig { epochs: 2, train_size: 64, val_size: 32, ..TrainConfig::small() };
    let mut m1 = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
    let mut m2 = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
    let h1 = train_classifier(&mut m1, &data, &cfg, RunMode::TrainReversible);
    let h2 = train_classifier(&mut m2, &data, &cfg, RunMode::TrainReversible);
    for (a, b) in h1.epochs.iter().zip(&h2.epochs) {
        assert_eq!(a.train_loss, b.train_loss);
        assert_eq!(a.val_acc, b.val_acc);
    }
    // And the resulting weights are identical.
    let mut w1 = Vec::new();
    m1.visit_params(&mut |p| w1.push(p.value.clone()));
    let mut i = 0;
    m2.visit_params(&mut |p| {
        assert_eq!(w1[i], p.value);
        i += 1;
    });
}

#[test]
fn clipping_bounds_every_step() {
    // With a pathological LR and no clipping a tiny quadratic diverges; with
    // clipping it cannot.
    // Plain SGD (no momentum) on f(w) = 5 w^2 with lr 0.3: the update
    // multiplier is 1 - 0.3*10 = -2, so |w| doubles each step and diverges.
    let run = |clip: bool| -> f32 {
        let mut p = Param::new(Tensor::full(Shape::vector(1), 5.0), false, "w");
        let mut opt = Sgd::new(0.0, 0.0);
        for _ in 0..60 {
            p.zero_grad();
            let g = p.value.scaled(10.0);
            p.accumulate(&g);
            if clip {
                let _ = clip_grad_norm(|f| f(&mut p), 1.0);
            }
            opt.step(0.3, |f| f(&mut p));
        }
        p.value.data()[0]
    };
    let unclipped = run(false);
    let clipped = run(true);
    assert!(
        !unclipped.is_finite() || unclipped.abs() > 1e6,
        "unclipped should diverge: {unclipped}"
    );
    // Clipped: |step| <= lr * max_norm = 0.3, so w walks into [-0.3, 0.3]
    // and oscillates there — bounded forever.
    assert!(clipped.is_finite() && clipped.abs() <= 0.5, "clipped must stay bounded: {clipped}");
}

#[test]
fn schedule_ema_clip_compose_in_a_real_loop() {
    // A compact hand-rolled loop combining all three utilities on a real
    // model: must reduce the loss and keep EMA weights usable.
    let data = SynthScale::new(SynthScaleConfig::new(32), 2);
    let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
    let mut opt = Sgd::new(0.9, 4e-5);
    let mut ema = Ema::new(0.9);
    let steps = 20;
    let schedule = LrSchedule::paper_like(0.08, steps);
    let mut first = 0.0;
    let mut last = 0.0;
    for step in 0..steps {
        let (images, labels) = data.batch((step * 16) as u64, 16);
        let logits = model.forward(&images, RunMode::TrainReversible);
        let targets = revbifpn_nn::loss::one_hot(&labels, data.num_classes());
        let (loss, d) = revbifpn_nn::loss::softmax_cross_entropy(&logits, &targets);
        if step == 0 {
            first = loss;
        }
        last = loss;
        model.zero_grads();
        model.backward(&d);
        let norm = clip_grad_norm(|f| model.visit_params(f), 10.0);
        assert!(norm.is_finite());
        opt.step(schedule.lr(step), |f| model.visit_params(f));
        ema.update(|f| model.visit_params(f));
    }
    assert!(last < first, "loss did not improve: {first} -> {last}");
    // EMA weights are usable for evaluation and restorable.
    ema.apply(|f| model.visit_params(f));
    let (images, _) = data.batch(10_000, 8);
    let logits = model.forward(&images, RunMode::Eval);
    assert!(logits.is_finite());
    ema.restore(|f| model.visit_params(f));
}

#[test]
fn optimizer_state_bytes_match_param_count() {
    let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    let params = model.param_count() as usize;
    let mut opt = Sgd::new(0.9, 0.0);
    model.zero_grads();
    opt.step(0.0, |f| model.visit_params(f));
    assert_eq!(opt.state_bytes(), params * 4);
}

#[test]
fn histories_record_memory_peaks() {
    let data = SynthScale::new(SynthScaleConfig::new(32), 3);
    let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
    let cfg = TrainConfig { epochs: 1, train_size: 32, val_size: 16, ..TrainConfig::small() };
    let h = train_classifier(&mut model, &data, &cfg, RunMode::TrainConventional);
    assert!(h.peak_activation_bytes() > 1_000_000, "peak {} implausibly small", h.peak_activation_bytes());
}
