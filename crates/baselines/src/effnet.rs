//! EfficientNet (Tan & Le 2019): the paper's main classification baseline
//! (Figure 1, Tables 2 and 11). Built from the same MBConv blocks as
//! RevBiFPN but as a conventional single-stream, non-reversible network, so
//! its activation cache grows with depth.
//!
//! `EfficientNet::bx(x)` reproduces the B0–B7 compound-scaling family
//! (width/depth/resolution coefficients from the paper); channels round to
//! multiples of 8 as in the reference implementation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_nn::layers::{BatchNorm2d, Conv2d, Dropout, GlobalAvgPool, HardSwish, Linear, MBConv, MBConvCfg};
use revbifpn_nn::{CacheMode, Layer, Param, Sequential};
use revbifpn_tensor::{ConvSpec, Shape, Tensor};

/// One stage of the EfficientNet-B0 template.
#[derive(Clone, Copy, Debug)]
struct StageSpec {
    expansion: f32,
    channels: usize,
    repeats: usize,
    stride: usize,
    kernel: usize,
}

const B0_STAGES: [StageSpec; 7] = [
    StageSpec { expansion: 1.0, channels: 16, repeats: 1, stride: 1, kernel: 3 },
    StageSpec { expansion: 6.0, channels: 24, repeats: 2, stride: 2, kernel: 3 },
    StageSpec { expansion: 6.0, channels: 40, repeats: 2, stride: 2, kernel: 5 },
    StageSpec { expansion: 6.0, channels: 80, repeats: 3, stride: 2, kernel: 3 },
    StageSpec { expansion: 6.0, channels: 112, repeats: 3, stride: 1, kernel: 5 },
    StageSpec { expansion: 6.0, channels: 192, repeats: 4, stride: 2, kernel: 5 },
    StageSpec { expansion: 6.0, channels: 320, repeats: 1, stride: 1, kernel: 3 },
];

/// B0..B7 (width, depth, resolution) coefficients.
const BX: [(f32, f32, usize); 8] = [
    (1.0, 1.0, 224),
    (1.0, 1.1, 240),
    (1.1, 1.2, 260),
    (1.2, 1.4, 300),
    (1.4, 1.8, 380),
    (1.6, 2.2, 456),
    (1.8, 2.6, 528),
    (2.0, 3.1, 600),
];

fn round8(x: f32) -> usize {
    let r = ((x / 8.0).round() as usize).max(1) * 8;
    // Standard "round but never below 90% of the target" rule.
    if (r as f32) < 0.9 * x {
        r + 8
    } else {
        r
    }
}

/// Configuration of an EfficientNet variant.
#[derive(Clone, Debug, PartialEq)]
pub struct EfficientNetConfig {
    /// Variant name.
    pub name: String,
    /// Width multiplier.
    pub width: f32,
    /// Depth multiplier.
    pub depth: f32,
    /// Train/eval resolution.
    pub resolution: usize,
    /// Classifier classes.
    pub num_classes: usize,
    /// Classifier dropout.
    pub dropout: f32,
    /// Init seed.
    pub seed: u64,
}

impl EfficientNetConfig {
    /// The `B<x>` variant.
    ///
    /// # Panics
    ///
    /// Panics if `x > 7`.
    pub fn bx(x: usize, num_classes: usize) -> Self {
        assert!(x <= 7, "EfficientNet variants are B0..B7");
        let (w, d, r) = BX[x];
        Self {
            name: format!("EfficientNet-B{x}"),
            width: w,
            depth: d,
            resolution: r,
            num_classes,
            dropout: 0.2 + 0.05 * x as f32,
            seed: 0,
        }
    }

    /// A miniature variant for CPU training experiments (width 0.25, depth
    /// 0.35, resolution 32).
    pub fn micro(num_classes: usize) -> Self {
        Self {
            name: "EfficientNet-micro".into(),
            width: 0.25,
            depth: 0.35,
            resolution: 32,
            num_classes,
            dropout: 0.0,
            seed: 0,
        }
    }

    /// Returns a copy with a different resolution.
    pub fn with_resolution(mut self, r: usize) -> Self {
        self.resolution = r;
        self
    }
}

/// A runnable EfficientNet classifier.
#[derive(Debug)]
pub struct EfficientNet {
    cfg: EfficientNetConfig,
    body: Sequential,
}

impl EfficientNet {
    /// Builds the network.
    pub fn new(cfg: EfficientNetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut body = Sequential::new();
        // Stem: 3x3 stride-2 conv to round8(32 * width).
        let stem_c = round8(32.0 * cfg.width);
        body.add(Box::new(Conv2d::new(3, stem_c, ConvSpec::kxk(3, 2), false, &mut rng)));
        body.add(Box::new(BatchNorm2d::new(stem_c)));
        body.add(Box::new(HardSwish::new()));
        let mut c_in = stem_c;
        for st in B0_STAGES {
            let c_out = round8(st.channels as f32 * cfg.width);
            let repeats = ((st.repeats as f32 * cfg.depth).ceil() as usize).max(1);
            for rep in 0..repeats {
                let stride = if rep == 0 { st.stride } else { 1 };
                let mut mb = MBConvCfg::same(c_in, st.kernel, st.expansion).with_c_out(c_out).with_se(0.25);
                mb.stride = stride;
                mb.kernel = st.kernel;
                body.add(Box::new(MBConv::new(mb, &mut rng)));
                c_in = c_out;
            }
        }
        // Head: 1x1 conv to 1280*width, GAP, dropout, linear.
        let head_c = round8(1280.0 * cfg.width.max(1.0));
        body.add(Box::new(Conv2d::pointwise(c_in, head_c, false, &mut rng)));
        body.add(Box::new(BatchNorm2d::new(head_c)));
        body.add(Box::new(HardSwish::new()));
        body.add(Box::new(GlobalAvgPool::new()));
        if cfg.dropout > 0.0 {
            body.add(Box::new(Dropout::new(cfg.dropout, cfg.seed ^ 0xEF)));
        }
        body.add(Box::new(Linear::new(head_c, cfg.num_classes, &mut rng)));
        Self { cfg, body }
    }

    /// The configuration.
    pub fn cfg(&self) -> &EfficientNetConfig {
        &self.cfg
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        self.body.forward(x, mode)
    }

    /// Backward pass (requires a `Full` forward).
    pub fn backward(&mut self, dlogits: &Tensor) -> Tensor {
        self.body.backward(dlogits)
    }

    /// Input shape at the configured resolution.
    pub fn input_shape(&self, n: usize) -> Shape {
        Shape::new(n, 3, self.cfg.resolution, self.cfg.resolution)
    }

    /// MACs of one forward pass at batch `n`.
    pub fn macs(&self, n: usize) -> u64 {
        self.body.macs(self.input_shape(n))
    }

    /// MACs at an arbitrary resolution.
    pub fn macs_at(&self, n: usize, res: usize) -> u64 {
        self.body.macs(Shape::new(n, 3, res, res))
    }

    /// Scalar parameter count.
    pub fn param_count(&mut self) -> u64 {
        let mut t = 0u64;
        self.body.visit_params(&mut |p| t += p.numel() as u64);
        t
    }

    /// Visits all parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.body.visit_params(f);
    }

    /// Clears caches.
    pub fn clear_cache(&mut self) {
        self.body.clear_cache();
    }

    /// Analytic activation-cache bytes of a training forward at batch `n`
    /// and resolution `res` (conventional training: everything cached).
    pub fn activation_bytes_at(&self, n: usize, res: usize) -> u64 {
        self.body.cache_bytes(Shape::new(n, 3, res, res), CacheMode::Full)
    }

    /// Same at the configured (training) resolution.
    pub fn activation_bytes(&self, n: usize) -> u64 {
        self.activation_bytes_at(n, self.cfg.resolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn b0_is_paper_scale() {
        // Paper Table 11: B0 = 5.3M params, 0.39B MACs at 224.
        let mut net = EfficientNet::new(EfficientNetConfig::bx(0, 1000));
        let p = net.param_count();
        let m = net.macs(1);
        assert!((4_000_000..=7_000_000).contains(&p), "params {p}");
        assert!((300_000_000..=500_000_000).contains(&m), "macs {m}");
    }

    #[test]
    fn family_scales_monotonically() {
        // Avoid building the huge variants: compare B0..B2 only.
        let mut prev_p = 0;
        let mut prev_m = 0;
        for x in 0..=2 {
            let mut net = EfficientNet::new(EfficientNetConfig::bx(x, 10));
            let p = net.param_count();
            let m = net.macs(1);
            assert!(p > prev_p && m > prev_m, "B{x} did not grow");
            prev_p = p;
            prev_m = m;
        }
    }

    #[test]
    fn micro_forward_backward() {
        let mut net = EfficientNet::new(EfficientNetConfig::micro(4));
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(net.input_shape(2), 1.0, &mut rng);
        let y = net.forward(&x, CacheMode::Full);
        assert_eq!(y.shape(), Shape::new(2, 4, 1, 1));
        let _ = rng.random::<f32>();
        let dx = net.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
        net.clear_cache();
    }

    #[test]
    fn activation_bytes_grow_with_resolution() {
        let net = EfficientNet::new(EfficientNetConfig::micro(4));
        assert!(net.activation_bytes_at(1, 64) > 3 * net.activation_bytes_at(1, 32));
    }

    #[test]
    fn meter_matches_analytic() {
        revbifpn_nn::meter::reset();
        let mut net = EfficientNet::new(EfficientNetConfig::micro(4));
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(net.input_shape(1), 1.0, &mut rng);
        let _ = net.forward(&x, CacheMode::Full);
        assert_eq!(revbifpn_nn::meter::current() as u64, net.activation_bytes(1));
        net.clear_cache();
    }
}
