//! ResNet + FPN (He et al. 2016; Lin et al. 2017): the classic detection
//! backbone rows of the paper's Tables 9/10. Bottleneck residual stages
//! C2–C5 plus a top-down Feature Pyramid Network neck producing P2–P5.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_nn::layers::{BatchNorm2d, Conv2d, Relu, Upsample};
use revbifpn_nn::{CacheMode, Layer, Param, Sequential};
use revbifpn_tensor::{ConvSpec, ResizeMode, Shape, Tensor};

/// Bottleneck residual block: 1x1 reduce, 3x3, 1x1 expand (x4), projection
/// shortcut when shapes change.
#[derive(Debug)]
struct Bottleneck {
    branch: Sequential,
    shortcut: Option<Sequential>,
    relu: Relu,
}

impl Bottleneck {
    fn new(c_in: usize, width: usize, stride: usize, rng: &mut StdRng) -> Self {
        let c_out = width * 4;
        let mut branch = Sequential::new();
        branch.add(Box::new(Conv2d::pointwise(c_in, width, false, rng)));
        branch.add(Box::new(BatchNorm2d::new(width)));
        branch.add(Box::new(Relu::new()));
        branch.add(Box::new(Conv2d::new(width, width, ConvSpec::kxk(3, stride), false, rng)));
        branch.add(Box::new(BatchNorm2d::new(width)));
        branch.add(Box::new(Relu::new()));
        branch.add(Box::new(Conv2d::pointwise(width, c_out, false, rng)));
        branch.add(Box::new(BatchNorm2d::new(c_out).zero_init()));
        let shortcut = (c_in != c_out || stride != 1).then(|| {
            let mut s = Sequential::new();
            s.add(Box::new(Conv2d::new(c_in, c_out, ConvSpec { ph: 0, pw: 0, ..ConvSpec::kxk(1, stride) }, false, rng)));
            s.add(Box::new(BatchNorm2d::new(c_out)));
            s
        });
        Self { branch, shortcut, relu: Relu::new() }
    }
}

impl Layer for Bottleneck {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        let b = self.branch.forward(x, mode);
        let s = match &mut self.shortcut {
            Some(sc) => sc.forward(x, mode),
            None => x.clone(),
        };
        self.relu.forward(&(&b + &s), mode)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let d = self.relu.backward(dy);
        let db = self.branch.backward(&d);
        let ds = match &mut self.shortcut {
            Some(sc) => sc.backward(&d),
            None => d,
        };
        &db + &ds
    }

    fn out_shape(&self, x: Shape) -> Shape {
        self.branch.out_shape(x)
    }

    fn macs(&self, x: Shape) -> u64 {
        self.branch.macs(x) + self.shortcut.as_ref().map(|s| s.macs(x)).unwrap_or(0)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.branch.visit_params(f);
        if let Some(sc) = &mut self.shortcut {
            sc.visit_params(f);
        }
    }

    fn clear_cache(&mut self) {
        self.branch.clear_cache();
        if let Some(sc) = &mut self.shortcut {
            sc.clear_cache();
        }
        self.relu.clear_cache();
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        let out = self.out_shape(x);
        self.branch.cache_bytes(x, mode)
            + self.shortcut.as_ref().map(|s| s.cache_bytes(x, mode)).unwrap_or(0)
            + self.relu.cache_bytes(out, mode)
    }

    fn name(&self) -> &str {
        "bottleneck"
    }
}

/// ResNet-FPN configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ResNetFpnConfig {
    /// Variant name.
    pub name: String,
    /// Blocks per stage (C2..C5); `[3,4,6,3]` = ResNet-50,
    /// `[3,4,23,3]` = ResNet-101.
    pub blocks: [usize; 4],
    /// Base bottleneck width (64 for the real family).
    pub width: usize,
    /// FPN channels (256 in the Faster R-CNN setup).
    pub fpn_channels: usize,
    /// Input resolution.
    pub resolution: usize,
    /// Init seed.
    pub seed: u64,
}

impl ResNetFpnConfig {
    /// ResNet-50-FPN.
    pub fn r50() -> Self {
        Self { name: "ResNet-50-FPN".into(), blocks: [3, 4, 6, 3], width: 64, fpn_channels: 256, resolution: 224, seed: 0 }
    }

    /// ResNet-101-FPN.
    pub fn r101() -> Self {
        Self { name: "ResNet-101-FPN".into(), blocks: [3, 4, 23, 3], width: 64, fpn_channels: 256, resolution: 224, seed: 0 }
    }

    /// Miniature runnable variant.
    pub fn micro() -> Self {
        Self { name: "ResNet-micro-FPN".into(), blocks: [1, 1, 1, 1], width: 8, fpn_channels: 16, resolution: 32, seed: 0 }
    }
}

/// ResNet backbone with an FPN neck producing a 4-level pyramid.
#[derive(Debug)]
pub struct ResNetFpn {
    cfg: ResNetFpnConfig,
    stem: Sequential,
    stages: Vec<Sequential>,
    lateral: Vec<Conv2d>,
    output: Vec<Conv2d>,
    ups: Vec<Upsample>,
}

impl ResNetFpn {
    /// Builds the network.
    pub fn new(cfg: ResNetFpnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let w = cfg.width;
        let mut stem = Sequential::new();
        stem.add(Box::new(Conv2d::new(3, w, ConvSpec::kxk(7, 2), false, &mut rng)));
        stem.add(Box::new(BatchNorm2d::new(w)));
        stem.add(Box::new(Relu::new()));
        // The max-pool of real ResNet is replaced by a stride-2 conv stage
        // entry (same /4 total stride, simpler accounting).
        let mut stages = Vec::new();
        let mut c_in = w;
        for (i, &n) in cfg.blocks.iter().enumerate() {
            let width = w << i;
            let mut s = Sequential::new();
            for b in 0..n {
                let stride = if b == 0 { 2 } else { 1 };
                // Stage C2 of real ResNet is stride 1 after the pool; here
                // C2 carries the /4 via its first block.
                s.add(Box::new(Bottleneck::new(c_in, width, stride, &mut rng)));
                c_in = width * 4;
            }
            stages.push(s);
        }
        let lateral = (0..4).map(|i| Conv2d::pointwise((w << i) * 4, cfg.fpn_channels, true, &mut rng)).collect();
        let output = (0..4).map(|_| Conv2d::new(cfg.fpn_channels, cfg.fpn_channels, ConvSpec::kxk(3, 1), true, &mut rng)).collect();
        let ups = (0..3).map(|_| Upsample::new(2, ResizeMode::Nearest)).collect();
        Self { cfg, stem, stages, lateral, output, ups }
    }

    /// The configuration.
    pub fn cfg(&self) -> &ResNetFpnConfig {
        &self.cfg
    }

    /// Forward: image to FPN pyramid P2..P5 (finest first).
    pub fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Vec<Tensor> {
        let mut h = self.stem.forward(x, mode);
        let mut cs = Vec::with_capacity(4);
        for s in &mut self.stages {
            h = s.forward(&h, mode);
            cs.push(h.clone());
        }
        // Top-down pathway.
        let mut ps: Vec<Option<Tensor>> = vec![None; 4];
        let mut top = self.lateral[3].forward(&cs[3], mode);
        ps[3] = Some(self.output[3].forward(&top, mode));
        for i in (0..3).rev() {
            let lat = self.lateral[i].forward(&cs[i], mode);
            let up = self.ups[i].forward(&top, mode);
            top = &lat + &up;
            ps[i] = Some(self.output[i].forward(&top, mode));
        }
        ps.into_iter().map(|p| p.expect("pyramid level")).collect()
    }

    /// Pyramid shapes at batch `n` and resolution `res`.
    pub fn pyramid_shapes_at(&self, n: usize, res: usize) -> Vec<Shape> {
        (0..4).map(|i| Shape::new(n, self.cfg.fpn_channels, res / (4 << i), res / (4 << i))).collect()
    }

    /// MACs at batch `n`, resolution `res`.
    #[allow(clippy::needless_range_loop)] // lockstep over lateral/output/c_shapes
    pub fn macs_at(&self, n: usize, res: usize) -> u64 {
        let img = Shape::new(n, 3, res, res);
        let mut total = self.stem.macs(img);
        let mut s = self.stem.out_shape(img);
        let mut c_shapes = Vec::new();
        for st in &self.stages {
            total += st.macs(s);
            s = st.out_shape(s);
            c_shapes.push(s);
        }
        for i in 0..4 {
            total += self.lateral[i].macs(c_shapes[i]);
            let p = self.lateral[i].out_shape(c_shapes[i]);
            total += self.output[i].macs(p);
        }
        total
    }

    /// Analytic activation bytes of conventional training.
    #[allow(clippy::needless_range_loop)] // lockstep over lateral/output/c_shapes
    pub fn activation_bytes_at(&self, n: usize, res: usize) -> u64 {
        let img = Shape::new(n, 3, res, res);
        let mut total = self.stem.cache_bytes(img, CacheMode::Full);
        let mut s = self.stem.out_shape(img);
        let mut c_shapes = Vec::new();
        for st in &self.stages {
            total += st.cache_bytes(s, CacheMode::Full);
            s = st.out_shape(s);
            c_shapes.push(s);
        }
        for i in 0..4 {
            total += self.lateral[i].cache_bytes(c_shapes[i], CacheMode::Full);
            let p = self.lateral[i].out_shape(c_shapes[i]);
            total += self.output[i].cache_bytes(p, CacheMode::Full);
        }
        total
    }

    /// Scalar parameter count.
    pub fn param_count(&mut self) -> u64 {
        let mut t = 0u64;
        self.visit_params(&mut |p| t += p.numel() as u64);
        t
    }

    /// Visits all parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.visit_params(f);
        for s in &mut self.stages {
            s.visit_params(f);
        }
        for l in &mut self.lateral {
            l.visit_params(f);
        }
        for o in &mut self.output {
            o.visit_params(f);
        }
    }

    /// Clears caches.
    pub fn clear_cache(&mut self) {
        self.stem.clear_cache();
        for s in &mut self.stages {
            s.clear_cache();
        }
        for l in &mut self.lateral {
            l.clear_cache();
        }
        for o in &mut self.output {
            o.clear_cache();
        }
        for u in &mut self.ups {
            u.clear_cache();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_pyramid_shapes() {
        let mut net = ResNetFpn::new(ResNetFpnConfig::micro());
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let pyr = net.forward(&x, CacheMode::None);
        let shapes = net.pyramid_shapes_at(1, 32);
        assert_eq!(pyr.len(), 4);
        for (p, s) in pyr.iter().zip(shapes) {
            assert_eq!(p.shape(), s);
        }
    }

    #[test]
    fn r50_params_near_paper() {
        // ResNet-50 backbone is 25.6M; +FPN ~= 27M (Table 9's 41.5M includes
        // the Faster R-CNN head).
        let mut net = ResNetFpn::new(ResNetFpnConfig::r50());
        let p = net.param_count();
        assert!((20_000_000..=32_000_000).contains(&p), "params {p}");
    }

    #[test]
    fn r101_heavier_than_r50() {
        let mut a = ResNetFpn::new(ResNetFpnConfig::r50());
        let mut b = ResNetFpn::new(ResNetFpnConfig::r101());
        assert!(b.param_count() > a.param_count());
        assert!(b.macs_at(1, 224) > a.macs_at(1, 224));
    }

    #[test]
    fn bottleneck_directional_gradient() {
        // Per-coordinate finite differences are ill-conditioned here (many
        // pre-ReLU values sit near the kink), so check the directional
        // derivative along a random parameter direction instead: kink bias
        // from isolated coordinates washes out in the aggregate.
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = Bottleneck::new(8, 4, 1, &mut rng);
        b.visit_params(&mut |p| {
            if p.name == "bn.gamma" && p.value.abs_max() == 0.0 {
                p.value.map_inplace(|_| 0.7);
            }
        });
        let x = Tensor::uniform(Shape::new(2, 8, 4, 4), 0.2, 1.0, &mut rng);
        let y0 = b.forward(&x, CacheMode::Full);
        let m = Tensor::uniform(y0.shape(), -1.0, 1.0, &mut rng);
        b.visit_params(&mut |p| p.zero_grad());
        let _ = b.backward(&m);
        // Random direction u; analytic = sum(grad . u).
        let mut dir_rng = StdRng::seed_from_u64(7);
        let mut dirs: Vec<Tensor> = Vec::new();
        let mut analytic = 0.0f64;
        b.visit_params(&mut |p| {
            let u = Tensor::uniform(p.value.shape(), -1.0, 1.0, &mut dir_rng);
            analytic += (&p.grad * &u).sum();
            dirs.push(u);
        });
        let eps = 1e-3f32;
        let nudge = |b: &mut Bottleneck, sgn: f32, dirs: &[Tensor]| {
            let mut i = 0;
            b.visit_params(&mut |p| {
                p.value.axpy(sgn * eps, &dirs[i]);
                i += 1;
            });
        };
        let loss = |b: &mut Bottleneck| {
            let y = b.forward(&x, CacheMode::Full);
            b.clear_cache();
            (&y * &m).sum()
        };
        nudge(&mut b, 1.0, &dirs);
        let lp = loss(&mut b);
        nudge(&mut b, -2.0, &dirs);
        let lm = loss(&mut b);
        nudge(&mut b, 1.0, &dirs);
        let numeric = (lp - lm) / (2.0 * eps as f64);
        assert!(
            (numeric - analytic).abs() < 0.05 * (1.0 + analytic.abs()),
            "numeric {numeric} vs analytic {analytic}"
        );
    }
}
