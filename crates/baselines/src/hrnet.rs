//! HRNet (Sun et al. 2019; Wang et al. 2020): the paper's main detection /
//! segmentation baseline and its closest architectural relative — the same
//! bidirectional multi-stream topology, but **non-reversible**, so every
//! fusion module's activations must be cached for backward.
//!
//! This is a faithful miniature of HRNetV2: conv stem (/4), a bottleneck
//! stage, then stages of parallel basic-block branches joined by full
//! bidirectional fusion modules (strided 3x3 chains downward, 1x1 +
//! nearest-upsample upward). `HrNetConfig::w{18,32,48}` reproduce the paper
//! baselines' widths for the analytic comparisons; `micro` is runnable on
//! CPU for the detection experiments.

// The exchange-unit `(i, j)` range loops index the stream list and the
// `paths[i][j]` bank in lockstep (same convention as the RevSilo); iterator
// chains would obscure the stream topology.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_nn::layers::{BatchNorm2d, Conv2d, Relu, Residual, Upsample};
use revbifpn_nn::{CacheMode, Layer, Param, Sequential};
use revbifpn_tensor::{ConvSpec, ResizeMode, Shape, Tensor};

fn conv_bn(c_in: usize, c_out: usize, k: usize, stride: usize, rng: &mut StdRng) -> Sequential {
    let mut s = Sequential::new();
    s.add(Box::new(Conv2d::new(c_in, c_out, ConvSpec::kxk(k, stride), false, rng)));
    s.add(Box::new(BatchNorm2d::new(c_out)));
    s
}

fn conv_bn_relu(c_in: usize, c_out: usize, k: usize, stride: usize, rng: &mut StdRng) -> Sequential {
    let mut s = conv_bn(c_in, c_out, k, stride, rng);
    s.add(Box::new(Relu::new()));
    s
}

/// Basic residual block: two 3x3 convs with an identity skip.
fn basic_block(c: usize, rng: &mut StdRng) -> Box<dyn Layer> {
    let mut branch = Sequential::new();
    branch.add(Box::new(Conv2d::new(c, c, ConvSpec::kxk(3, 1), false, rng)));
    branch.add(Box::new(BatchNorm2d::new(c)));
    branch.add(Box::new(Relu::new()));
    branch.add(Box::new(Conv2d::new(c, c, ConvSpec::kxk(3, 1), false, rng)));
    branch.add(Box::new(BatchNorm2d::new(c).zero_init()));
    let mut s = Sequential::new();
    s.add(Box::new(Residual::new(Box::new(branch), 0.0, 0)));
    s.add(Box::new(Relu::new()));
    Box::new(s)
}

/// HRNet configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct HrNetConfig {
    /// Variant name.
    pub name: String,
    /// Base width `W`; stream `i` has `W * 2^i` channels.
    pub width: usize,
    /// Number of streams in the final stage.
    pub num_streams: usize,
    /// Basic blocks per branch per module.
    pub blocks_per_branch: usize,
    /// Fusion modules per stage (stage `s` has `modules[s]` modules,
    /// `s = 0` being the 2-stream stage).
    pub modules: Vec<usize>,
    /// Input resolution.
    pub resolution: usize,
    /// Bottleneck-stage channel count (HRNet uses 64 -> 256).
    pub stage1_channels: usize,
    /// Init seed.
    pub seed: u64,
}

impl HrNetConfig {
    fn wx(name: &str, width: usize) -> Self {
        Self {
            name: name.into(),
            width,
            num_streams: 4,
            blocks_per_branch: 4,
            modules: vec![1, 4, 3],
            resolution: 224,
            stage1_channels: 64,
            seed: 0,
        }
    }

    /// HRNetV2-W18.
    pub fn w18() -> Self {
        Self::wx("HRNetV2-W18", 18)
    }

    /// HRNetV2-W32.
    pub fn w32() -> Self {
        Self::wx("HRNetV2-W32", 32)
    }

    /// HRNetV2-W48.
    pub fn w48() -> Self {
        Self::wx("HRNetV2-W48", 48)
    }

    /// Miniature runnable variant (3 streams, width 8, res 32).
    pub fn micro() -> Self {
        Self {
            name: "HRNet-micro".into(),
            width: 8,
            num_streams: 3,
            blocks_per_branch: 1,
            modules: vec![1, 1],
            resolution: 32,
            stage1_channels: 16,
            seed: 0,
        }
    }

    /// Channels of stream `i`.
    pub fn stream_channels(&self, i: usize) -> usize {
        self.width << i
    }
}

/// A full bidirectional fusion module (the non-reversible analogue of the
/// RevSilo): `out_i = relu(Σ_j path_ij(x_j))`.
#[derive(Debug)]
struct FuseModule {
    /// `paths[i][j]`: transform from stream `j` to stream `i` (`None` for
    /// the identity `i == j`).
    paths: Vec<Vec<Option<Box<dyn Layer>>>>,
    relus: Vec<Relu>,
    streams: usize,
}

impl FuseModule {
    fn new(cfg: &HrNetConfig, streams: usize, rng: &mut StdRng) -> Self {
        let mut paths = Vec::with_capacity(streams);
        for i in 0..streams {
            let mut row: Vec<Option<Box<dyn Layer>>> = Vec::with_capacity(streams);
            for j in 0..streams {
                let ci = cfg.stream_channels(i);
                let cj = cfg.stream_channels(j);
                if j == i {
                    row.push(None);
                } else if j < i {
                    // Downward: chain of stride-2 3x3 convs ("ld").
                    let mut s = Sequential::new();
                    let mut c = cj;
                    for t in j..i {
                        let c_out = if t + 1 == i { ci } else { cfg.stream_channels(t + 1) };
                        s.add(Box::new(Conv2d::new(c, c_out, ConvSpec::kxk(3, 2), false, rng)));
                        s.add(Box::new(BatchNorm2d::new(c_out)));
                        if t + 1 != i {
                            s.add(Box::new(Relu::new()));
                        }
                        c = c_out;
                    }
                    row.push(Some(Box::new(s)));
                } else {
                    // Upward: 1x1 conv + nearest upsample ("su").
                    let mut s = conv_bn(cj, ci, 1, 1, rng);
                    s.add(Box::new(Upsample::new(1 << (j - i), ResizeMode::Nearest)));
                    row.push(Some(Box::new(s)));
                }
            }
            paths.push(row);
        }
        Self { paths, relus: (0..streams).map(|_| Relu::new()).collect(), streams }
    }

    fn forward(&mut self, xs: &[Tensor], mode: CacheMode) -> Vec<Tensor> {
        let mut outs = Vec::with_capacity(self.streams);
        for i in 0..self.streams {
            let mut acc = xs[i].clone();
            for j in 0..self.streams {
                if let Some(p) = &mut self.paths[i][j] {
                    acc.add_assign(&p.forward(&xs[j], mode));
                }
            }
            outs.push(self.relus[i].forward(&acc, mode));
        }
        outs
    }

    fn backward(&mut self, dys: &[Tensor]) -> Vec<Tensor> {
        let dsums: Vec<Tensor> = dys.iter().zip(&mut self.relus).map(|(d, r)| r.backward(d)).collect();
        let mut dxs: Vec<Tensor> = dsums.clone();
        for i in 0..self.streams {
            for j in 0..self.streams {
                if let Some(p) = &mut self.paths[i][j] {
                    dxs[j].add_assign(&p.backward(&dsums[i]));
                }
            }
        }
        dxs
    }

    fn macs(&self, xs: &[Shape]) -> u64 {
        let mut total = 0;
        for i in 0..self.streams {
            for j in 0..self.streams {
                if let Some(p) = &self.paths[i][j] {
                    total += p.macs(xs[j]);
                }
            }
        }
        total
    }

    fn cache_bytes(&self, xs: &[Shape], mode: CacheMode) -> u64 {
        let mut total = 0;
        for i in 0..self.streams {
            for j in 0..self.streams {
                if let Some(p) = &self.paths[i][j] {
                    total += p.cache_bytes(xs[j], mode);
                }
            }
            total += self.relus[i].cache_bytes(xs[i], mode);
        }
        total
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for row in &mut self.paths {
            for p in row.iter_mut().flatten() {
                p.visit_params(f);
            }
        }
    }

    fn clear_cache(&mut self) {
        for row in &mut self.paths {
            for p in row.iter_mut().flatten() {
                p.clear_cache();
            }
        }
        for r in &mut self.relus {
            r.clear_cache();
        }
    }
}

/// One HRNet stage module: parallel basic-block branches + a fusion module.
#[derive(Debug)]
struct HrModule {
    branches: Vec<Sequential>,
    fuse: FuseModule,
}

impl HrModule {
    fn new(cfg: &HrNetConfig, streams: usize, rng: &mut StdRng) -> Self {
        let branches = (0..streams)
            .map(|i| {
                let mut s = Sequential::new();
                for _ in 0..cfg.blocks_per_branch {
                    s.add(basic_block(cfg.stream_channels(i), rng));
                }
                s
            })
            .collect();
        Self { branches, fuse: FuseModule::new(cfg, streams, rng) }
    }

    fn forward(&mut self, xs: &[Tensor], mode: CacheMode) -> Vec<Tensor> {
        let mids: Vec<Tensor> =
            xs.iter().zip(&mut self.branches).map(|(x, b)| b.forward(x, mode)).collect();
        self.fuse.forward(&mids, mode)
    }

    fn backward(&mut self, dys: &[Tensor]) -> Vec<Tensor> {
        let dmids = self.fuse.backward(dys);
        dmids.iter().zip(&mut self.branches).map(|(d, b)| b.backward(d)).collect()
    }

    fn macs(&self, xs: &[Shape]) -> u64 {
        let branch: u64 = xs.iter().zip(&self.branches).map(|(&s, b)| b.macs(s)).sum();
        branch + self.fuse.macs(xs)
    }

    fn cache_bytes(&self, xs: &[Shape], mode: CacheMode) -> u64 {
        let branch: u64 = xs.iter().zip(&self.branches).map(|(&s, b)| b.cache_bytes(s, mode)).sum();
        branch + self.fuse.cache_bytes(xs, mode)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for b in &mut self.branches {
            b.visit_params(f);
        }
        self.fuse.visit_params(f);
    }

    fn clear_cache(&mut self) {
        for b in &mut self.branches {
            b.clear_cache();
        }
        self.fuse.clear_cache();
    }
}

/// The HRNet backbone: image to an N-stream feature pyramid.
#[derive(Debug)]
pub struct HrNet {
    cfg: HrNetConfig,
    stem: Sequential,
    stage1: Sequential,
    /// `transitions[k]` creates stream `k+1` from stream `k`'s features (or
    /// adapts widths when entering a new stage).
    transitions: Vec<Box<dyn Layer>>,
    stages: Vec<Vec<HrModule>>,
}

impl HrNet {
    /// Builds the backbone.
    pub fn new(cfg: HrNetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Stem: two stride-2 3x3 convs.
        let sc = cfg.stage1_channels;
        let mut stem = Sequential::new();
        stem.add(Box::new(Conv2d::new(3, sc, ConvSpec::kxk(3, 2), false, &mut rng)));
        stem.add(Box::new(BatchNorm2d::new(sc)));
        stem.add(Box::new(Relu::new()));
        stem.add(Box::new(Conv2d::new(sc, sc, ConvSpec::kxk(3, 2), false, &mut rng)));
        stem.add(Box::new(BatchNorm2d::new(sc)));
        stem.add(Box::new(Relu::new()));
        // Stage 1: basic blocks at stem width, then adapt to stream-0 width.
        let mut stage1 = Sequential::new();
        for _ in 0..cfg.blocks_per_branch {
            stage1.add(basic_block(sc, &mut rng));
        }
        stage1.add(Box::new(Sequential::from_layers(vec![
            Box::new(Conv2d::new(sc, cfg.stream_channels(0), ConvSpec::kxk(3, 1), false, &mut rng)),
            Box::new(BatchNorm2d::new(cfg.stream_channels(0))),
            Box::new(Relu::new()),
        ])));
        // Transitions: stream k -> stream k+1 via stride-2 conv.
        let mut transitions: Vec<Box<dyn Layer>> = Vec::new();
        for k in 0..cfg.num_streams - 1 {
            transitions.push(Box::new(conv_bn_relu(
                cfg.stream_channels(k),
                cfg.stream_channels(k + 1),
                3,
                2,
                &mut rng,
            )));
        }
        // Stages 2..: modules over a growing number of streams.
        let mut stages = Vec::new();
        for (s, &m) in cfg.modules.iter().enumerate() {
            let streams = (s + 2).min(cfg.num_streams);
            stages.push((0..m).map(|_| HrModule::new(&cfg, streams, &mut rng)).collect());
        }
        Self { cfg, stem, stage1, transitions, stages }
    }

    /// The configuration.
    pub fn cfg(&self) -> &HrNetConfig {
        &self.cfg
    }

    /// Forward pass to the final multi-stream pyramid.
    pub fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Vec<Tensor> {
        let s = self.stem.forward(x, mode);
        let s = self.stage1.forward(&s, mode);
        let mut streams = vec![s];
        for (stage_idx, stage) in self.stages.iter_mut().enumerate() {
            // Grow a new stream entering this stage.
            let new_idx = stage_idx + 1;
            if new_idx < self.cfg.num_streams && streams.len() == new_idx {
                let last = streams.last().expect("streams never empty");
                let t = self.transitions[new_idx - 1].forward(last, mode);
                streams.push(t);
            }
            for module in stage {
                streams = module.forward(&streams, mode);
            }
        }
        streams
    }

    /// Backward pass from pyramid gradients (conventional training only).
    pub fn backward(&mut self, dpyramid: Vec<Tensor>) -> Tensor {
        let mut ds = dpyramid;
        for (stage_idx, stage) in self.stages.iter_mut().enumerate().rev() {
            for module in stage.iter_mut().rev() {
                ds = module.backward(&ds);
            }
            let new_idx = stage_idx + 1;
            if new_idx < self.cfg.num_streams && ds.len() == new_idx + 1 {
                let dnew = ds.pop().expect("stream gradient present");
                let dlast = self.transitions[new_idx - 1].backward(&dnew);
                ds.last_mut().expect("streams never empty").add_assign(&dlast);
            }
        }
        let d = self.stage1.backward(&ds[0]);
        self.stem.backward(&d)
    }

    /// Pyramid shapes for batch `n` at the configured resolution.
    pub fn pyramid_shapes(&self, n: usize) -> Vec<Shape> {
        self.pyramid_shapes_at(n, self.cfg.resolution)
    }

    /// Pyramid shapes at an arbitrary resolution.
    pub fn pyramid_shapes_at(&self, n: usize, res: usize) -> Vec<Shape> {
        (0..self.cfg.num_streams)
            .map(|i| Shape::new(n, self.cfg.stream_channels(i), res / (4 << i), res / (4 << i)))
            .collect()
    }

    fn walk<FM: FnMut(&WalkPart<'_>, &[Shape])>(&self, n: usize, res: usize, mut f: FM) {
        let img = Shape::new(n, 3, res, res);
        f(&WalkPart::Single(&self.stem), &[img]);
        let s0 = self.stem.out_shape(img);
        f(&WalkPart::Single(&self.stage1), &[s0]);
        let mut shapes = vec![self.stage1.out_shape(s0)];
        for (stage_idx, stage) in self.stages.iter().enumerate() {
            let new_idx = stage_idx + 1;
            if new_idx < self.cfg.num_streams && shapes.len() == new_idx {
                let last = *shapes.last().expect("shape present");
                f(&WalkPart::Single(self.transitions[new_idx - 1].as_ref()), &[last]);
                shapes.push(self.transitions[new_idx - 1].out_shape(last));
            }
            for module in stage {
                f(&WalkPart::Module(module), &shapes);
            }
        }
    }

    /// Total MACs at batch `n`, resolution `res`.
    pub fn macs_at(&self, n: usize, res: usize) -> u64 {
        let mut total = 0;
        self.walk(n, res, |part, shapes| {
            total += match part {
                WalkPart::Single(l) => l.macs(shapes[0]),
                WalkPart::Module(m) => m.macs(shapes),
            };
        });
        total
    }

    /// Total MACs at the configured resolution.
    pub fn macs(&self, n: usize) -> u64 {
        self.macs_at(n, self.cfg.resolution)
    }

    /// Analytic activation-cache bytes of a training forward.
    pub fn activation_bytes_at(&self, n: usize, res: usize) -> u64 {
        let mut total = 0;
        self.walk(n, res, |part, shapes| {
            total += match part {
                WalkPart::Single(l) => l.cache_bytes(shapes[0], CacheMode::Full),
                WalkPart::Module(m) => m.cache_bytes(shapes, CacheMode::Full),
            };
        });
        total
    }

    /// Scalar parameter count.
    pub fn param_count(&mut self) -> u64 {
        let mut t = 0u64;
        self.visit_params(&mut |p| t += p.numel() as u64);
        t
    }

    /// Visits all parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.visit_params(f);
        self.stage1.visit_params(f);
        for t in &mut self.transitions {
            t.visit_params(f);
        }
        for stage in &mut self.stages {
            for m in stage {
                m.visit_params(f);
            }
        }
    }

    /// Clears all caches.
    pub fn clear_cache(&mut self) {
        self.stem.clear_cache();
        self.stage1.clear_cache();
        for t in &mut self.transitions {
            t.clear_cache();
        }
        for stage in &mut self.stages {
            for m in stage {
                m.clear_cache();
            }
        }
    }
}

enum WalkPart<'a> {
    Single(&'a dyn Layer),
    Module(&'a HrModule),
}

impl std::fmt::Debug for WalkPart<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WalkPart")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn micro_forward_backward_shapes() {
        let mut net = HrNet::new(HrNetConfig::micro());
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let pyr = net.forward(&x, CacheMode::Full);
        let shapes = net.pyramid_shapes(2);
        assert_eq!(pyr.len(), 3);
        for (p, s) in pyr.iter().zip(shapes) {
            assert_eq!(p.shape(), s);
        }
        let _ = rng.random::<f32>();
        let dpyr: Vec<Tensor> = pyr.iter().map(|p| Tensor::ones(p.shape())).collect();
        let dx = net.backward(dpyr);
        assert_eq!(dx.shape(), x.shape());
        net.clear_cache();
    }

    #[test]
    fn w18_params_near_paper() {
        // HRNet-W18-C has 21.3M params (paper Table 11); the backbone alone
        // (no classification head) is somewhat smaller.
        let mut net = HrNet::new(HrNetConfig::w18());
        let p = net.param_count();
        assert!((8_000_000..=30_000_000).contains(&p), "params {p}");
    }

    #[test]
    fn widths_scale_params() {
        let mut w18 = HrNet::new(HrNetConfig::w18());
        let mut w32 = HrNet::new(HrNetConfig::w32());
        assert!(w32.param_count() > 2 * w18.param_count());
    }

    #[test]
    fn meter_matches_analytic_cache() {
        revbifpn_nn::meter::reset();
        let mut net = HrNet::new(HrNetConfig::micro());
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let _ = net.forward(&x, CacheMode::Full);
        assert_eq!(revbifpn_nn::meter::current() as u64, net.activation_bytes_at(1, 32));
        net.clear_cache();
        assert_eq!(revbifpn_nn::meter::current(), 0);
    }

    #[test]
    fn macs_grow_with_resolution() {
        let net = HrNet::new(HrNetConfig::micro());
        assert!(net.macs_at(1, 64) > 3 * net.macs_at(1, 32));
    }
}
