//! Published numbers from the paper, carried verbatim so that every bench
//! table can print "paper" columns next to our measured/modelled values.
//! Sources: Tables 1, 2, 9, 10, 11 of Chiley et al., MLSys 2023.

/// One row of the ImageNet comparison (paper Tables 1 / 11).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImagenetRow {
    /// Model name.
    pub model: &'static str,
    /// Parameters, millions.
    pub params_m: f64,
    /// Train/eval resolution.
    pub res: usize,
    /// MACs, billions.
    pub macs_b: f64,
    /// Top-1 accuracy, percent.
    pub top1: f64,
}

/// RevBiFPN-S0..S6 (paper Table 1).
pub const REVBIFPN_IMAGENET: [ImagenetRow; 7] = [
    ImagenetRow { model: "RevBiFPN-S0", params_m: 3.42, res: 224, macs_b: 0.31, top1: 72.8 },
    ImagenetRow { model: "RevBiFPN-S1", params_m: 5.11, res: 256, macs_b: 0.62, top1: 75.9 },
    ImagenetRow { model: "RevBiFPN-S2", params_m: 10.6, res: 256, macs_b: 1.37, top1: 79.0 },
    ImagenetRow { model: "RevBiFPN-S3", params_m: 19.6, res: 288, macs_b: 3.33, top1: 81.1 },
    ImagenetRow { model: "RevBiFPN-S4", params_m: 48.7, res: 320, macs_b: 10.6, top1: 83.0 },
    ImagenetRow { model: "RevBiFPN-S5", params_m: 82.0, res: 352, macs_b: 21.8, top1: 83.7 },
    ImagenetRow { model: "RevBiFPN-S6", params_m: 142.3, res: 352, macs_b: 38.1, top1: 84.2 },
];

/// EfficientNet-B0..B7 (paper Table 11, Tan & Le 2019 column).
pub const EFFICIENTNET_IMAGENET: [ImagenetRow; 8] = [
    ImagenetRow { model: "EfficientNet-B0", params_m: 5.3, res: 224, macs_b: 0.39, top1: 77.1 },
    ImagenetRow { model: "EfficientNet-B1", params_m: 7.8, res: 240, macs_b: 0.70, top1: 79.1 },
    ImagenetRow { model: "EfficientNet-B2", params_m: 9.2, res: 260, macs_b: 1.0, top1: 80.1 },
    ImagenetRow { model: "EfficientNet-B3", params_m: 12.0, res: 300, macs_b: 1.8, top1: 81.6 },
    ImagenetRow { model: "EfficientNet-B4", params_m: 19.0, res: 380, macs_b: 4.2, top1: 82.9 },
    ImagenetRow { model: "EfficientNet-B5", params_m: 30.0, res: 456, macs_b: 9.9, top1: 83.6 },
    ImagenetRow { model: "EfficientNet-B6", params_m: 43.0, res: 528, macs_b: 19.0, top1: 84.0 },
    ImagenetRow { model: "EfficientNet-B7", params_m: 66.0, res: 600, macs_b: 37.0, top1: 84.3 },
];

/// HRNet-WxC classification rows (paper Table 11).
pub const HRNET_IMAGENET: [ImagenetRow; 3] = [
    ImagenetRow { model: "HRNet-W18-C", params_m: 21.3, res: 224, macs_b: 3.99, top1: 76.8 },
    ImagenetRow { model: "HRNet-W32-C", params_m: 41.2, res: 224, macs_b: 8.31, top1: 78.5 },
    ImagenetRow { model: "HRNet-W48-C", params_m: 77.5, res: 224, macs_b: 16.1, top1: 79.3 },
];

/// Paper Table 2: training memory (GB) per sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryRow {
    /// Model name.
    pub model: &'static str,
    /// GB/sample at the model's training resolution.
    pub train_res_gb: f64,
    /// GB/sample at 224 (None when not reported).
    pub at224_gb: Option<f64>,
    /// GB/sample at 384.
    pub at384_gb: f64,
}

/// Table 2 rows.
pub const TABLE2: [MemoryRow; 2] = [
    MemoryRow { model: "RevBiFPN-S6", train_res_gb: 0.254, at224_gb: None, at384_gb: 0.291 },
    MemoryRow { model: "EfficientNet-B7", train_res_gb: 5.047, at224_gb: Some(0.673), at384_gb: 1.786 },
];

/// One row of the COCO detection table (paper Table 9, Faster R-CNN).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectionRow {
    /// Backbone name.
    pub backbone: &'static str,
    /// Parameters, millions (incl. detector head).
    pub params_m: f64,
    /// MACs, billions (at 800x1333, incl. head).
    pub macs_b: f64,
    /// Training memory per sample, GB.
    pub mem_gb: f64,
    /// Schedule ("1x" or "2x").
    pub schedule: &'static str,
    /// Box AP.
    pub ap: f64,
    /// AP at IoU 0.5.
    pub ap50: f64,
    /// AP at IoU 0.75.
    pub ap75: f64,
    /// AP small / medium / large.
    pub ap_sml: [f64; 3],
}

/// Paper Table 9 (selected rows: all RevBiFPN + all baselines at 1x, plus 2x
/// baselines used in the text's comparisons).
pub const TABLE9: [DetectionRow; 17] = [
    DetectionRow { backbone: "RevBiFPN-S0", params_m: 19.55, macs_b: 135.12, mem_gb: 0.84, schedule: "1x", ap: 31.4, ap50: 51.5, ap75: 33.3, ap_sml: [17.8, 34.3, 40.9] },
    DetectionRow { backbone: "RevBiFPN-S1", params_m: 20.48, macs_b: 140.66, mem_gb: 0.89, schedule: "1x", ap: 32.0, ap50: 52.0, ap75: 34.1, ap_sml: [18.3, 35.7, 43.0] },
    DetectionRow { backbone: "RevBiFPN-S2", params_m: 23.86, macs_b: 157.42, mem_gb: 1.07, schedule: "1x", ap: 36.3, ap50: 57.4, ap75: 39.3, ap_sml: [20.8, 39.6, 46.6] },
    DetectionRow { backbone: "RevBiFPN-S3", params_m: 30.40, macs_b: 180.99, mem_gb: 1.31, schedule: "1x", ap: 38.7, ap50: 60.0, ap75: 41.4, ap_sml: [23.1, 42.0, 50.4] },
    DetectionRow { backbone: "RevBiFPN-S4", params_m: 52.88, macs_b: 251.02, mem_gb: 2.03, schedule: "1x", ap: 40.3, ap50: 60.5, ap75: 44.0, ap_sml: [23.7, 44.3, 52.4] },
    DetectionRow { backbone: "RevBiFPN-S5", params_m: 77.83, macs_b: 328.91, mem_gb: 2.75, schedule: "1x", ap: 41.3, ap50: 62.7, ap75: 44.8, ap_sml: [24.8, 45.6, 52.5] },
    DetectionRow { backbone: "RevBiFPN-S6", params_m: 127.51, macs_b: 465.43, mem_gb: 3.69, schedule: "1x", ap: 42.2, ap50: 63.5, ap75: 45.8, ap_sml: [25.7, 46.5, 54.0] },
    DetectionRow { backbone: "HRNetV2p-W18", params_m: 27.48, macs_b: 196.18, mem_gb: 3.13, schedule: "1x", ap: 36.2, ap50: 57.3, ap75: 39.3, ap_sml: [20.7, 39.0, 46.8] },
    DetectionRow { backbone: "HRNetV2p-W18", params_m: 27.48, macs_b: 196.18, mem_gb: 3.13, schedule: "2x", ap: 38.0, ap50: 58.9, ap75: 41.5, ap_sml: [22.6, 40.8, 49.6] },
    DetectionRow { backbone: "HRNetV2p-W32", params_m: 47.28, macs_b: 298.96, mem_gb: 4.31, schedule: "1x", ap: 39.6, ap50: 61.0, ap75: 43.3, ap_sml: [23.7, 42.5, 50.5] },
    DetectionRow { backbone: "HRNetV2p-W32", params_m: 47.28, macs_b: 298.96, mem_gb: 4.31, schedule: "2x", ap: 40.9, ap50: 61.8, ap75: 44.8, ap_sml: [24.4, 43.7, 53.3] },
    DetectionRow { backbone: "HRNetV2p-W48", params_m: 83.36, macs_b: 481.92, mem_gb: 5.82, schedule: "1x", ap: 41.3, ap50: 62.8, ap75: 45.1, ap_sml: [25.1, 44.5, 52.9] },
    DetectionRow { backbone: "HRNetV2p-W48", params_m: 83.36, macs_b: 481.92, mem_gb: 5.82, schedule: "2x", ap: 41.8, ap50: 62.8, ap75: 45.9, ap_sml: [25.0, 44.7, 54.6] },
    DetectionRow { backbone: "ResNet-50-FPN", params_m: 41.53, macs_b: 216.70, mem_gb: 1.81, schedule: "1x", ap: 36.7, ap50: 58.3, ap75: 39.9, ap_sml: [20.9, 39.8, 47.9] },
    DetectionRow { backbone: "ResNet-50-FPN", params_m: 41.53, macs_b: 216.70, mem_gb: 1.81, schedule: "2x", ap: 37.6, ap50: 58.7, ap75: 41.3, ap_sml: [21.4, 40.8, 49.7] },
    DetectionRow { backbone: "ResNet-101-FPN", params_m: 60.52, macs_b: 296.58, mem_gb: 2.72, schedule: "1x", ap: 39.2, ap50: 61.1, ap75: 43.0, ap_sml: [22.3, 42.9, 50.9] },
    DetectionRow { backbone: "ResNet-101-FPN", params_m: 60.52, macs_b: 296.58, mem_gb: 2.72, schedule: "2x", ap: 39.8, ap50: 61.4, ap75: 43.4, ap_sml: [22.9, 43.6, 52.4] },
];

/// One row of the COCO instance-segmentation table (paper Table 10, Mask
/// R-CNN).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegmentationRow {
    /// Backbone name.
    pub backbone: &'static str,
    /// Parameters, millions.
    pub params_m: f64,
    /// MACs, billions.
    pub macs_b: f64,
    /// Training memory per sample, GB.
    pub mem_gb: f64,
    /// Schedule.
    pub schedule: &'static str,
    /// Mask AP.
    pub mask_ap: f64,
    /// Box AP.
    pub bbox_ap: f64,
}

/// Paper Table 10 (1x rows plus the 2x baselines quoted in Section 4.2).
pub const TABLE10: [SegmentationRow; 13] = [
    SegmentationRow { backbone: "RevBiFPN-S0", params_m: 22.19, macs_b: 188.20, mem_gb: 0.87, schedule: "1x", mask_ap: 29.7, bbox_ap: 31.4 },
    SegmentationRow { backbone: "RevBiFPN-S1", params_m: 23.12, macs_b: 193.73, mem_gb: 0.91, schedule: "1x", mask_ap: 31.0, bbox_ap: 34.0 },
    SegmentationRow { backbone: "RevBiFPN-S2", params_m: 26.50, macs_b: 210.49, mem_gb: 1.06, schedule: "1x", mask_ap: 33.7, bbox_ap: 37.1 },
    SegmentationRow { backbone: "RevBiFPN-S3", params_m: 33.04, macs_b: 232.92, mem_gb: 1.32, schedule: "1x", mask_ap: 35.5, bbox_ap: 39.4 },
    SegmentationRow { backbone: "RevBiFPN-S4", params_m: 55.50, macs_b: 304.09, mem_gb: 2.05, schedule: "1x", mask_ap: 37.1, bbox_ap: 41.5 },
    SegmentationRow { backbone: "RevBiFPN-S5", params_m: 80.47, macs_b: 381.99, mem_gb: 2.77, schedule: "1x", mask_ap: 37.8, bbox_ap: 42.2 },
    SegmentationRow { backbone: "RevBiFPN-S6", params_m: 130.15, macs_b: 518.50, mem_gb: 3.71, schedule: "1x", mask_ap: 38.7, bbox_ap: 43.3 },
    SegmentationRow { backbone: "HRNetV2p-W18", params_m: 30.13, macs_b: 249.25, mem_gb: 3.33, schedule: "1x", mask_ap: 33.8, bbox_ap: 37.1 },
    SegmentationRow { backbone: "HRNetV2p-W18", params_m: 30.13, macs_b: 249.25, mem_gb: 3.33, schedule: "2x", mask_ap: 35.3, bbox_ap: 39.2 },
    SegmentationRow { backbone: "HRNetV2p-W32", params_m: 49.92, macs_b: 352.03, mem_gb: 4.51, schedule: "1x", mask_ap: 36.7, bbox_ap: 40.9 },
    SegmentationRow { backbone: "HRNetV2p-W32", params_m: 49.92, macs_b: 352.03, mem_gb: 4.51, schedule: "2x", mask_ap: 37.6, bbox_ap: 42.3 },
    SegmentationRow { backbone: "ResNet-50-FPN", params_m: 44.17, macs_b: 269.78, mem_gb: 2.09, schedule: "1x", mask_ap: 34.2, bbox_ap: 37.8 },
    SegmentationRow { backbone: "ResNet-101-FPN", params_m: 63.16, macs_b: 349.65, mem_gb: 2.88, schedule: "1x", mask_ap: 36.1, bbox_ap: 40.0 },
];

/// Ablation rows (Tables 3, 4, 5): 96x96 inputs, 150-epoch runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AblationRow {
    /// Option label.
    pub option: &'static str,
    /// Parameters, millions.
    pub params_m: f64,
    /// MACs, millions.
    pub macs_m: f64,
    /// Top-1 accuracy, percent.
    pub top1: f64,
}

/// Table 3: down/up-sampling operators.
pub const TABLE3: [AblationRow; 3] = [
    AblationRow { option: "LD / SU", params_m: 3.49, macs_m: 75.7, top1: 61.5 },
    AblationRow { option: "SD / SU", params_m: 3.28, macs_m: 67.2, top1: 60.8 },
    AblationRow { option: "SD / LU", params_m: 3.47, macs_m: 69.5, top1: 61.5 },
];

/// Table 4: stem.
pub const TABLE4: [AblationRow; 2] = [
    AblationRow { option: "Convolutional", params_m: 3.49, macs_m: 75.7, top1: 61.5 },
    AblationRow { option: "SpaceToDepth", params_m: 3.49, macs_m: 73.7, top1: 61.5 },
];

/// Table 5: squeeze-excite placement.
pub const TABLE5: [AblationRow; 3] = [
    AblationRow { option: "None", params_m: 3.40, macs_m: 75.5, top1: 61.3 },
    AblationRow { option: "Low-res path", params_m: 3.49, macs_m: 75.7, top1: 61.4 },
    AblationRow { option: "High-res path", params_m: 3.46, macs_m: 76.1, top1: 61.6 },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revbifpn_rows_monotone_in_accuracy() {
        for w in REVBIFPN_IMAGENET.windows(2) {
            assert!(w[1].top1 > w[0].top1);
            assert!(w[1].params_m > w[0].params_m);
        }
    }

    #[test]
    fn headline_comparison_holds() {
        // S6 vs B7: comparable MACs and accuracy (the Figure 1 headline).
        let s6 = REVBIFPN_IMAGENET[6];
        let b7 = EFFICIENTNET_IMAGENET[7];
        assert!((s6.macs_b - b7.macs_b).abs() < 2.0);
        assert!((s6.top1 - b7.top1).abs() < 0.5);
        // Table 2: 19.8x memory ratio at train res.
        let ratio = TABLE2[1].train_res_gb / TABLE2[0].train_res_gb;
        assert!((ratio - 19.8).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn table9_claims_from_text() {
        // "RevBiFPN-S3 achieves an absolute gain of 2.5% AP over
        // HRNetV2p-W18 using fewer MACs and ~2.4x less training memory."
        let s3 = TABLE9.iter().find(|r| r.backbone == "RevBiFPN-S3").unwrap();
        let w18 = TABLE9.iter().find(|r| r.backbone == "HRNetV2p-W18" && r.schedule == "1x").unwrap();
        assert!((s3.ap - w18.ap - 2.5).abs() < 0.1);
        assert!(s3.macs_b < w18.macs_b);
        assert!((w18.mem_gb / s3.mem_gb - 2.4).abs() < 0.1);
    }
}
