//! # revbifpn-baselines
//!
//! Every baseline the paper compares against, built in the same framework:
//!
//! * [`EfficientNet`] — B0–B7 compound-scaled classification family
//!   (Figure 1, Tables 2/11);
//! * [`HrNet`] — the bidirectional multi-stream but *non-reversible*
//!   relative (Tables 9/10);
//! * [`RevShNet`] — the reversible stacked-hourglass strawman of
//!   Appendix A.1 (Figures 8–10);
//! * [`ResNetFpn`] — the classic detection backbone (Tables 9/10);
//! * [`published`] — the paper's reported numbers, carried verbatim for the
//!   side-by-side bench tables.

#![warn(missing_docs)]

mod effnet;
mod hrnet;
pub mod published;
mod resnet_fpn;
mod revshnet;

pub use effnet::{EfficientNet, EfficientNetConfig};
pub use hrnet::{HrNet, HrNetConfig};
pub use resnet_fpn::{ResNetFpn, ResNetFpnConfig};
pub use revshnet::{RevShNet, RevShNetConfig};
