//! RevSHNet (paper Appendix A.1): a fully reversible **stacked hourglass**
//! network — the strawman alternative to RevBiFPN. Each hourglass
//! (encoder–decoder over the resolution pyramid) is placed inside a
//! reversible residual block, so the network as a whole is reversible, but
//! during the reversible backward an *entire hourglass* of activations must
//! be rematerialized at once. That is exactly why its memory (Figures 8, 9)
//! and MACs (Figure 10) scale worse than RevBiFPN's.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_nn::layers::{MBConv, MBConvCfg, SpaceToDepth};
use revbifpn_nn::{CacheMode, Layer, Param, Sequential};
use revbifpn_rev::{BlockStage, RevBlock, ReversibleSequence, TrainMode};
use revbifpn_tensor::{Shape, Tensor};

/// Configuration of a RevSHNet.
#[derive(Clone, Debug, PartialEq)]
pub struct RevShNetConfig {
    /// Variant name.
    pub name: String,
    /// Channels at full (stream-0) resolution (split in half by the
    /// reversible coupling).
    pub channels: usize,
    /// Per-coupling-branch channel widths of the hourglass levels below the
    /// top: `level_widths[l]` is the width after `l + 1` downsamplings
    /// (mirrors RevBiFPN's stream-channel ladder).
    pub level_widths: Vec<usize>,
    /// Same-resolution MBConv blocks per hourglass level (encoder and
    /// decoder each), as in the real Stacked Hourglass design.
    pub blocks_per_level: usize,
    /// Number of stacked reversible hourglass blocks (the depth `d` swept in
    /// Figures 8–10).
    pub depth: usize,
    /// Input resolution.
    pub resolution: usize,
    /// SpaceToDepth stem block.
    pub stem_block: usize,
    /// MBConv expansion inside the hourglass.
    pub expansion: f32,
    /// Init seed.
    pub seed: u64,
}

impl RevShNetConfig {
    /// Baseline comparable to RevBiFPN-S0 (paper A.1: "channel counts
    /// similar to RevBiFPN-S0 channel counts", SpaceToDepth stem, MBConv).
    /// Each coupling branch carries half of 48 channels at full resolution
    /// and the S0 ladder (64, 80, 160 halved) below.
    pub fn s0_like() -> Self {
        Self {
            name: "RevSHNet".into(),
            channels: 48,
            level_widths: vec![32, 40, 80],
            blocks_per_level: 1,
            depth: 2,
            resolution: 224,
            stem_block: 4,
            expansion: 2.0,
            seed: 0,
        }
    }

    /// Miniature runnable variant.
    pub fn micro() -> Self {
        Self {
            name: "RevSHNet-micro".into(),
            channels: 16,
            level_widths: vec![12, 16],
            blocks_per_level: 1,
            depth: 2,
            resolution: 32,
            stem_block: 2,
            expansion: 1.5,
            seed: 0,
        }
    }

    /// Number of 2x downsampling levels.
    pub fn levels(&self) -> usize {
        self.level_widths.len()
    }

    /// Returns a copy with a different stack depth.
    pub fn with_depth(mut self, d: usize) -> Self {
        self.depth = d;
        self
    }

    /// Returns a copy with a different resolution.
    pub fn with_resolution(mut self, r: usize) -> Self {
        self.resolution = r;
        self
    }
}

/// Builds one hourglass transform on `half` channels: per level, same-res
/// residual blocks and a strided MBConv downward, then the mirror image
/// upward (shape-preserving overall, as required inside a RevBlock
/// coupling). The whole encoder–decoder must be rematerialized at once
/// during the reversible backward — Appendix A.1.1's overhead.
fn hourglass(cfg: &RevShNetConfig, half: usize, rng: &mut StdRng) -> Box<dyn Layer> {
    let mut s = Sequential::new();
    let mut c = half;
    for l in 0..cfg.levels() {
        for _ in 0..cfg.blocks_per_level {
            s.add(Box::new(MBConv::new(MBConvCfg::same(c, 3, cfg.expansion), rng)));
        }
        let c_out = cfg.level_widths[l];
        s.add(Box::new(MBConv::new(MBConvCfg::down(c, c_out, 1, cfg.expansion).plain(), rng)));
        c = c_out;
    }
    for _ in 0..cfg.blocks_per_level {
        s.add(Box::new(MBConv::new(MBConvCfg::same(c, 3, cfg.expansion), rng)));
    }
    for l in (0..cfg.levels()).rev() {
        let c_out = if l == 0 { half } else { cfg.level_widths[l - 1] };
        let mut mb = MBConvCfg::up(c, c_out, 1, cfg.expansion).plain();
        if l == 0 {
            mb = mb.with_zero_init();
        }
        s.add(Box::new(MBConv::new(mb, rng)));
        c = c_out;
        if l > 0 {
            for _ in 0..cfg.blocks_per_level {
                s.add(Box::new(MBConv::new(MBConvCfg::same(c, 3, cfg.expansion), rng)));
            }
        }
    }
    Box::new(s)
}

/// A fully reversible stacked hourglass network producing a single
/// full-resolution feature map.
#[derive(Debug)]
pub struct RevShNet {
    cfg: RevShNetConfig,
    stem: SpaceToDepth,
    body: ReversibleSequence,
}

impl RevShNet {
    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if the resolution is not divisible by
    /// `stem_block * 2^levels`.
    pub fn new(cfg: RevShNetConfig) -> Self {
        assert_eq!(
            cfg.resolution % (cfg.stem_block << cfg.levels()),
            0,
            "resolution must be divisible by stem * 2^levels"
        );
        assert_eq!(cfg.channels % (cfg.stem_block * cfg.stem_block), 0, "channels must fit the stem");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut body = ReversibleSequence::new();
        let half = cfg.channels / 2;
        for _ in 0..cfg.depth {
            let f = hourglass(&cfg, half, &mut rng);
            let g = hourglass(&cfg, half, &mut rng);
            body.add(Box::new(BlockStage::new(vec![vec![RevBlock::new(cfg.channels, f, g)]])));
        }
        Self { stem: SpaceToDepth::new(cfg.stem_block), cfg, body }
    }

    /// The configuration.
    pub fn cfg(&self) -> &RevShNetConfig {
        &self.cfg
    }

    /// Forward: image (channel-padded internally) to the feature map.
    ///
    /// The input's channels are replicated to `channels / stem_block^2`
    /// first, mirroring the RevBiFPN stem.
    pub fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        let dup = self.cfg.channels / (self.cfg.stem_block * self.cfg.stem_block);
        let times = dup.div_ceil(x.shape().c);
        let xd = x.repeat_channels(times);
        let xd = if xd.shape().c > dup {
            xd.split_channels(dup).0
        } else {
            xd
        };
        let s = self.stem.forward(&xd, mode);
        let outs = self.body.forward(vec![s], mode);
        outs.into_iter().next().expect("one stream")
    }

    /// Reversible backward from the saved output.
    pub fn backward_rev(&mut self, y: &Tensor, dy: Tensor) {
        let _ = self.body.backward(std::slice::from_ref(y), vec![dy], TrainMode::Reversible);
    }

    /// Conventional backward.
    pub fn backward_cached(&mut self, dy: Tensor) {
        let _ = self.body.backward(&[], vec![dy], TrainMode::Conventional);
    }

    fn stream_shape(&self, n: usize, res: usize) -> Shape {
        Shape::new(n, self.cfg.channels, res / self.cfg.stem_block, res / self.cfg.stem_block)
    }

    /// MACs at batch `n`, resolution `res`.
    pub fn macs_at(&self, n: usize, res: usize) -> u64 {
        self.body.macs(&[self.stream_shape(n, res)])
    }

    /// Scalar parameter count.
    pub fn param_count(&mut self) -> u64 {
        let mut t = 0u64;
        self.body.visit_params(&mut |p| t += p.numel() as u64);
        t
    }

    /// Visits parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.body.visit_params(f);
    }

    /// Clears caches.
    pub fn clear_cache(&mut self) {
        self.body.clear_cache();
    }

    /// Activation bytes of reversible training: the retained output plus the
    /// transient rematerialization of one whole hourglass block — the
    /// Appendix A.1.1 overhead.
    pub fn activation_bytes_rev(&self, n: usize, res: usize) -> u64 {
        let s = self.stream_shape(n, res);
        s.bytes() as u64
            + self.body.cache_bytes(&[s], CacheMode::Stats)
            + self.body.peak_transient_bytes(&[s])
    }

    /// Activation bytes of conventional training.
    pub fn activation_bytes_conv(&self, n: usize, res: usize) -> u64 {
        let s = self.stream_shape(n, res);
        self.body.cache_bytes(&[s], CacheMode::Full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_forward_shape() {
        let mut net = RevShNet::new(RevShNetConfig::micro());
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let y = net.forward(&x, CacheMode::None);
        assert_eq!(y.shape(), Shape::new(1, 16, 16, 16));
    }

    #[test]
    fn reversible_training_reduces_memory_but_less_than_revbifpn() {
        // The transient term (a whole hourglass) keeps RevSHNet's reversible
        // footprint well above its own retained output.
        let net = RevShNet::new(RevShNetConfig::micro().with_depth(4));
        let rev = net.activation_bytes_rev(1, 32);
        let conv = net.activation_bytes_conv(1, 32);
        assert!(rev < conv, "rev {rev} conv {conv}");
        let out_bytes = net.stream_shape(1, 32).bytes() as u64;
        assert!(rev > 2 * out_bytes, "hourglass transient should dominate: {rev} vs {out_bytes}");
    }

    #[test]
    fn reversible_memory_constant_in_depth() {
        let d2 = RevShNet::new(RevShNetConfig::micro().with_depth(2));
        let d6 = RevShNet::new(RevShNetConfig::micro().with_depth(6));
        let r2 = d2.activation_bytes_rev(1, 32);
        let r6 = d6.activation_bytes_rev(1, 32);
        assert!((r6 as f64) < 1.1 * r2 as f64, "{r2} -> {r6}");
        // Conventional grows ~linearly.
        assert!(d6.activation_bytes_conv(1, 32) > 2 * d2.activation_bytes_conv(1, 32));
    }

    #[test]
    fn gradient_flow_reversible() {
        let mut net = RevShNet::new(RevShNetConfig::micro());
        // Make transforms non-trivial.
        let mut rng = StdRng::seed_from_u64(9);
        net.visit_params(&mut |p| {
            if p.name == "bn.gamma" {
                p.value = Tensor::uniform(p.value.shape(), 0.5, 1.5, &mut rng);
            }
        });
        let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let y = net.forward(&x, CacheMode::Stats);
        net.visit_params(&mut |p| p.zero_grad());
        net.backward_rev(&y, Tensor::ones(y.shape()));
        let mut nonzero = 0;
        net.visit_params(&mut |p| {
            if p.grad.abs_max() > 0.0 {
                nonzero += 1;
            }
        });
        assert!(nonzero > 10, "only {nonzero} grads");
    }

    #[test]
    fn macs_scale_linearly_with_depth() {
        let d2 = RevShNet::new(RevShNetConfig::micro().with_depth(2));
        let d4 = RevShNet::new(RevShNetConfig::micro().with_depth(4));
        let m2 = d2.macs_at(1, 32);
        let m4 = d4.macs_at(1, 32);
        assert!((m4 as f64 / m2 as f64 - 2.0).abs() < 0.05);
    }
}
