//! Cross-checks between this repository's analytic baseline models and the
//! paper's published numbers, plus internal consistency of the published
//! tables themselves (the textual claims of Sections 4.1/4.2 must follow
//! from the tables we carry).

use revbifpn_baselines::published::{
    EFFICIENTNET_IMAGENET, HRNET_IMAGENET, REVBIFPN_IMAGENET, TABLE10, TABLE2, TABLE9,
};
use revbifpn_baselines::{EfficientNet, EfficientNetConfig, HrNet, HrNetConfig, ResNetFpn, ResNetFpnConfig};

#[test]
fn our_efficientnets_match_published_budgets() {
    // B0..B2 (cheap to build): params within 15%, MACs within 15% of the
    // published Table 11 values.
    for x in 0..=2usize {
        let mut net = EfficientNet::new(EfficientNetConfig::bx(x, 1000));
        let pub_row = EFFICIENTNET_IMAGENET[x];
        let params_m = net.param_count() as f64 / 1e6;
        let macs_b = net.macs(1) as f64 / 1e9;
        assert!(
            (params_m / pub_row.params_m - 1.0).abs() < 0.15,
            "B{x} params {params_m:.2}M vs {:.2}M",
            pub_row.params_m
        );
        assert!(
            (macs_b / pub_row.macs_b - 1.0).abs() < 0.15,
            "B{x} MACs {macs_b:.2}B vs {:.2}B",
            pub_row.macs_b
        );
    }
}

#[test]
fn our_hrnets_scale_quadratically_in_width() {
    // Backbone parameters scale ~(W'/W)^2 (convolutions are width-squared).
    // The *published* classification ratios (41.2/21.3 = 1.93x for W32/W18)
    // are diluted by HRNet-C's large width-independent classification head;
    // our backbones must instead track the quadratic law.
    let mut w18 = HrNet::new(HrNetConfig::w18());
    let mut w32 = HrNet::new(HrNetConfig::w32());
    let mut w48 = HrNet::new(HrNetConfig::w48());
    let (p18, p32, p48) = (w18.param_count() as f64, w32.param_count() as f64, w48.param_count() as f64);
    let q32 = (32.0f64 / 18.0).powi(2);
    let q48 = (48.0f64 / 18.0).powi(2);
    assert!(((p32 / p18) / q32 - 1.0).abs() < 0.2, "{} vs {}", p32 / p18, q32);
    assert!(((p48 / p18) / q48 - 1.0).abs() < 0.25, "{} vs {}", p48 / p18, q48);
    // Published ordering still holds for our backbones.
    assert!(HRNET_IMAGENET[0].params_m < HRNET_IMAGENET[1].params_m);
    assert!(p18 < p32 && p32 < p48);
}

#[test]
fn our_resnets_match_published_ratio() {
    let mut r50 = ResNetFpn::new(ResNetFpnConfig::r50());
    let mut r101 = ResNetFpn::new(ResNetFpnConfig::r101());
    // Published detection rows: 41.53M vs 60.52M (including heads); the
    // backbone-only delta is the C4 stage, ~19M params — ours must match
    // that delta within 25%.
    let delta = r101.param_count() as f64 - r50.param_count() as f64;
    let pub_delta = (60.52 - 41.53) * 1e6;
    assert!((delta / pub_delta - 1.0).abs() < 0.25, "delta {delta} vs {pub_delta}");
}

#[test]
fn published_tables_support_section_4_claims() {
    // "RevBiFPN-S5 achieves an absolute gain of 3.3% AP over HRNetV2p-W18
    // trained using the 2x schedule while uses 0.75GB less memory."
    let s5 = TABLE9.iter().find(|r| r.backbone == "RevBiFPN-S5").unwrap();
    let w18_2x = TABLE9.iter().find(|r| r.backbone == "HRNetV2p-W18" && r.schedule == "2x").unwrap();
    assert!((s5.ap - w18_2x.ap - 3.3).abs() < 0.05);
    assert!((w18_2x.mem_gb - s5.mem_gb - 0.38).abs() < 0.5); // 3.13 - 2.75 = 0.38GB
    // "HRNetV2p-W48 trained 2x uses ~1.6x the memory and still does not
    // outperform RevBiFPN-S6 trained 1x."
    let s6 = TABLE9.iter().find(|r| r.backbone == "RevBiFPN-S6").unwrap();
    let w48_2x = TABLE9.iter().find(|r| r.backbone == "HRNetV2p-W48" && r.schedule == "2x").unwrap();
    assert!(w48_2x.ap < s6.ap);
    assert!((w48_2x.mem_gb / s6.mem_gb - 1.6).abs() < 0.05);
}

#[test]
fn published_segmentation_claims_hold() {
    // "RevBiFPN-S6 outperforms HRNetV2p-W32 by 2% Mask AP and 2.4% Bbox AP
    // while using 1.6GB less memory."
    let s6 = TABLE10.iter().find(|r| r.backbone == "RevBiFPN-S6").unwrap();
    let w32 = TABLE10.iter().find(|r| r.backbone == "HRNetV2p-W32" && r.schedule == "1x").unwrap();
    assert!((s6.mask_ap - w32.mask_ap - 2.0).abs() < 0.05);
    assert!((s6.bbox_ap - w32.bbox_ap - 2.4).abs() < 0.05);
    assert!((w32.mem_gb - s6.mem_gb - 0.8).abs() < 0.05);
}

#[test]
fn figure1_headline_is_table_consistent() {
    // S6 (38.1B, 84.2%) vs B7 (37B, 84.3%): comparable MACs and accuracy,
    // 19.8x memory (Table 2).
    let s6 = REVBIFPN_IMAGENET[6];
    let b7 = EFFICIENTNET_IMAGENET[7];
    assert!((s6.macs_b / b7.macs_b - 1.0).abs() < 0.05);
    assert!((s6.top1 - b7.top1).abs() < 0.2);
    let ratio = TABLE2[1].train_res_gb / TABLE2[0].train_res_gb;
    assert!((ratio - 19.87).abs() < 0.1, "ratio {ratio}");
}
