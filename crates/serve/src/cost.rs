//! Online-calibrated service-time cost model shared by the batcher, the
//! admission path, the degradation ladder, and tenant fair-share accounting.
//!
//! Per (variant, precision, rung) service key the model maintains an affine
//! estimate of batch service time
//!
//! ```text
//! t(b) ≈ a + b·c        (milliseconds)
//! ```
//!
//! where `a` is the fixed per-dispatch overhead (panel packing, epilogue
//! setup, scheduling) and `c` the marginal per-item cost. Entries are seeded
//! by a one-shot calibration at freeze time (two timed forwards) and then
//! refined online from observed batch timings with exponentially-forgotten
//! least squares: the sufficient statistics (Σ1, Σb, Σt, Σb², Σbt) decay by
//! `lambda` per observation, so the fit tracks drift (thermal throttling,
//! co-tenancy) without a training loop. A residual EWMA (|observed −
//! predicted|) is kept per entry as a calibration-quality gauge surfaced in
//! [`HealthSnapshot`](crate::health::HealthSnapshot).
//!
//! Everything the model drives reads through this one table:
//! - the batcher's deadline-aware closing margin uses `predict_ms`;
//! - admission rejects requests whose budget cannot cover even a
//!   single-item dispatch (`ServeError::Infeasible`);
//! - the degradation ladder's level-1 rung caps batches at
//!   [`CostModel::optimal_batch`] instead of blind halving;
//! - tenant DRR charging uses [`CostModel::cost_units`] (predicted marginal
//!   cost, quantized) instead of request counts.

use crate::engine::Precision;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Cost-model units per millisecond of predicted marginal service time.
/// One cost unit = 100 µs, so sub-millisecond requests still resolve to
/// distinct integer costs across rungs.
pub const UNITS_PER_MS: f64 = 10.0;

/// Upper clamp on a single ticket's cost units; bounds the number of DRR
/// rotations a queue visit can spin before the front ticket is affordable.
pub const MAX_COST_UNITS: u32 = 10_000;

/// Service key: which compiled path a batch runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CostKey {
    /// 0 = primary variant, 1 = fallback variant (degrade level 3).
    pub variant: u8,
    /// Numeric precision of the frozen path actually serving the batch.
    pub precision: Precision,
    /// Serving resolution in pixels (the degrade rung, not the request's
    /// native resolution — admission pins inputs to the model resolution).
    pub rung: u16,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    /// Exponentially-decayed sufficient statistics over (b, t_ms) pairs.
    n: f64,
    sb: f64,
    st: f64,
    sbb: f64,
    sbt: f64,
    /// Current affine fit (refreshed on every observe; seeded values until
    /// enough variance accumulates to regress).
    a_ms: f64,
    c_ms: f64,
    /// EWMA of |observed − predicted| in ms.
    residual_ewma_ms: f64,
    /// Total observations folded in (seed counts as 0).
    samples: u64,
}

impl Entry {
    /// Anchors the decayed sums on two synthetic points `(1, a+c)` and
    /// `(2, a+2c)` so the first real observations blend into a consistent
    /// fit instead of overwhelming it.
    fn seeded(a_ms: f64, c_ms: f64) -> Self {
        let t1 = a_ms + c_ms;
        let t2 = a_ms + 2.0 * c_ms;
        Entry {
            n: 2.0,
            sb: 3.0,
            st: t1 + t2,
            sbb: 5.0,
            sbt: t1 + 2.0 * t2,
            a_ms,
            c_ms,
            residual_ewma_ms: 0.0,
            samples: 0,
        }
    }
}

/// Public, comparable view of one cost-table entry (health snapshots).
#[derive(Clone, Debug, PartialEq)]
pub struct CostReading {
    pub key: CostKey,
    /// Fixed per-dispatch overhead estimate, ms.
    pub a_ms: f64,
    /// Marginal per-item cost estimate, ms.
    pub c_ms: f64,
    /// EWMA of |observed − predicted| batch service time, ms.
    pub residual_ewma_ms: f64,
    /// Observed batch timings folded into the fit (seed excluded).
    pub samples: u64,
}

/// Online-calibrated table of affine service-time estimates.
///
/// Thread-safe; every reader/writer takes one short mutex. The table is
/// tiny (a handful of service keys), so a `BTreeMap` under a `Mutex` is
/// cheaper than anything clever.
#[derive(Debug)]
pub struct CostModel {
    /// Decay applied to the sufficient statistics per observation.
    lambda: f64,
    /// EWMA factor for the residual gauge.
    resid_alpha: f64,
    entries: Mutex<BTreeMap<CostKey, Entry>>,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new()
    }
}

impl CostModel {
    pub fn new() -> Self {
        CostModel {
            lambda: 0.9,
            resid_alpha: 0.2,
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// Installs a freeze-time calibration for `key` unless an entry already
    /// exists (later freezes of the same path — e.g. a second worker's bank
    /// — must not clobber an online-refined fit).
    pub fn seed(&self, key: CostKey, a_ms: f64, c_ms: f64) {
        let mut entries = self.entries.lock().unwrap();
        entries
            .entry(key)
            .or_insert_with(|| Entry::seeded(a_ms.max(0.0), c_ms.max(1e-6)));
    }

    /// `true` once `key` has a seeded or learned fit.
    pub fn has(&self, key: &CostKey) -> bool {
        self.entries.lock().unwrap().contains_key(key)
    }

    /// Folds one observed batch timing into the fit for `key`.
    ///
    /// An unseeded key bootstraps from the single observation (treated as
    /// pure marginal cost until a second batch size shows up).
    pub fn observe(&self, key: CostKey, batch: usize, elapsed_ms: f64) {
        if batch == 0 || !elapsed_ms.is_finite() || elapsed_ms < 0.0 {
            return;
        }
        let b = batch as f64;
        let mut entries = self.entries.lock().unwrap();
        let e = entries.entry(key).or_insert_with(|| {
            let c = (elapsed_ms / b).max(1e-6);
            Entry::seeded(0.0, c)
        });
        let predicted = e.a_ms + b * e.c_ms;
        let resid = (elapsed_ms - predicted).abs();
        e.residual_ewma_ms = if e.samples == 0 {
            resid
        } else {
            (1.0 - self.resid_alpha) * e.residual_ewma_ms + self.resid_alpha * resid
        };
        e.n = self.lambda * e.n + 1.0;
        e.sb = self.lambda * e.sb + b;
        e.st = self.lambda * e.st + elapsed_ms;
        e.sbb = self.lambda * e.sbb + b * b;
        e.sbt = self.lambda * e.sbt + b * elapsed_ms;
        e.samples += 1;
        // Refresh the fit. With degenerate batch-size variance (all
        // observations at one size) keep the current slope and re-anchor
        // the intercept on the decayed means.
        let mean_b = e.sb / e.n;
        let mean_t = e.st / e.n;
        let var_b = (e.sbb / e.n - mean_b * mean_b).max(0.0);
        if var_b > 1e-9 {
            let cov = e.sbt / e.n - mean_b * mean_t;
            let c = (cov / var_b).max(1e-6);
            e.c_ms = c;
        }
        // Anchor the fit on the decayed centroid: t(mean_b) == mean_t. A
        // negative intercept (slope transiently over-estimated) folds back
        // into the slope instead of being silently clamped away, so
        // predictions at the observed batch size always track reality.
        let a = mean_t - e.c_ms * mean_b;
        if a < 0.0 {
            e.a_ms = 0.0;
            e.c_ms = (mean_t / mean_b).max(1e-6);
        } else {
            e.a_ms = a;
        }
    }

    /// Predicted service time for a batch of `batch` items, ms. `None`
    /// until the key is calibrated.
    pub fn predict_ms(&self, key: &CostKey, batch: usize) -> Option<f64> {
        let entries = self.entries.lock().unwrap();
        entries
            .get(key)
            .map(|e| e.a_ms + batch as f64 * e.c_ms)
    }

    /// Marginal per-item cost estimate `c`, ms. `None` until calibrated.
    pub fn marginal_ms(&self, key: &CostKey) -> Option<f64> {
        let entries = self.entries.lock().unwrap();
        entries.get(key).map(|e| e.c_ms)
    }

    /// Cost-model-optimal batch size for `key`: the smallest batch at which
    /// the amortized dispatch overhead `a/b` falls below `overhead_frac`
    /// of the marginal item cost `c`, clamped to `[1, max_batch]`.
    ///
    /// This is the knee of the throughput curve under the affine model —
    /// past it, larger batches buy little amortization but keep inflating
    /// first-item latency. `None` until the key is calibrated.
    pub fn optimal_batch(
        &self,
        key: &CostKey,
        max_batch: usize,
        overhead_frac: f64,
    ) -> Option<usize> {
        let entries = self.entries.lock().unwrap();
        let e = entries.get(key)?;
        let frac = overhead_frac.max(1e-3);
        let b = if e.c_ms <= 1e-6 {
            max_batch
        } else {
            (e.a_ms / (frac * e.c_ms)).ceil() as usize
        };
        Some(b.clamp(1, max_batch.max(1)))
    }

    /// Predicted marginal cost of one request under `key`, quantized to
    /// scheduler cost units ([`UNITS_PER_MS`]). Uncalibrated keys charge 1
    /// unit, which degenerates to the PR-8 request-count DRR.
    pub fn cost_units(&self, key: &CostKey) -> u32 {
        let entries = self.entries.lock().unwrap();
        match entries.get(key) {
            Some(e) => {
                let units = (e.c_ms * UNITS_PER_MS).round();
                (units as u32).clamp(1, MAX_COST_UNITS)
            }
            None => 1,
        }
    }

    /// Comparable snapshot of every entry, for health reporting.
    pub fn snapshot(&self) -> Vec<CostReading> {
        let entries = self.entries.lock().unwrap();
        entries
            .iter()
            .map(|(key, e)| CostReading {
                key: *key,
                a_ms: e.a_ms,
                c_ms: e.c_ms,
                residual_ewma_ms: e.residual_ewma_ms,
                samples: e.samples,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(rung: u16) -> CostKey {
        CostKey {
            variant: 0,
            precision: Precision::F32,
            rung,
        }
    }

    #[test]
    fn seed_then_predict_is_affine() {
        let m = CostModel::new();
        m.seed(key(32), 2.0, 0.5);
        assert!(m.has(&key(32)));
        let t1 = m.predict_ms(&key(32), 1).unwrap();
        let t8 = m.predict_ms(&key(32), 8).unwrap();
        assert!((t1 - 2.5).abs() < 1e-9);
        assert!((t8 - 6.0).abs() < 1e-9);
        assert_eq!(m.predict_ms(&key(64), 1), None);
    }

    #[test]
    fn seed_does_not_clobber_existing_entry() {
        let m = CostModel::new();
        m.seed(key(32), 2.0, 0.5);
        m.seed(key(32), 99.0, 99.0);
        assert!((m.predict_ms(&key(32), 1).unwrap() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn observations_converge_to_true_affine_law() {
        let m = CostModel::new();
        m.seed(key(32), 10.0, 10.0); // deliberately wrong seed
        // True law: t = 3 + 0.25 b, fed at alternating batch sizes.
        for _ in 0..40 {
            for &b in &[1usize, 4, 8] {
                m.observe(key(32), b, 3.0 + 0.25 * b as f64);
            }
        }
        let a = m.predict_ms(&key(32), 0).unwrap();
        let c = m.marginal_ms(&key(32)).unwrap();
        assert!((a - 3.0).abs() < 0.3, "a = {a}");
        assert!((c - 0.25).abs() < 0.05, "c = {c}");
        // Residual gauge settles near zero on a noiseless law.
        let snap = m.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(snap[0].residual_ewma_ms < 0.5);
        assert!(snap[0].samples >= 120);
    }

    #[test]
    fn unseeded_observe_bootstraps_an_entry() {
        let m = CostModel::new();
        m.observe(key(48), 4, 2.0);
        assert!(m.has(&key(48)));
        assert!(m.predict_ms(&key(48), 4).unwrap() > 0.0);
    }

    #[test]
    fn degenerate_single_batch_size_keeps_slope_and_tracks_mean() {
        let m = CostModel::new();
        m.seed(key(32), 1.0, 0.5);
        for _ in 0..50 {
            m.observe(key(32), 2, 8.0); // always b=2, much slower than seed
        }
        // Slope can't be identified from one batch size; the intercept must
        // absorb the drift so predictions at b=2 track reality.
        let t2 = m.predict_ms(&key(32), 2).unwrap();
        assert!((t2 - 8.0).abs() < 0.5, "t2 = {t2}");
    }

    #[test]
    fn optimal_batch_is_the_amortization_knee() {
        let m = CostModel::new();
        assert_eq!(m.optimal_batch(&key(32), 16, 0.25), None);
        // a = 2ms, c = 0.5ms: a/b <= 0.25*0.5 = 0.125 at b = 16.
        m.seed(key(32), 2.0, 0.5);
        assert_eq!(m.optimal_batch(&key(32), 64, 0.25), Some(16));
        assert_eq!(m.optimal_batch(&key(32), 8, 0.25), Some(8)); // clamped
        // No fixed overhead => batching buys nothing => 1.
        m.seed(key(64), 0.0, 0.5);
        assert_eq!(m.optimal_batch(&key(64), 8, 0.25), Some(1));
    }

    #[test]
    fn cost_units_quantize_marginal_cost() {
        let m = CostModel::new();
        assert_eq!(m.cost_units(&key(32)), 1); // uncalibrated => unit cost
        m.seed(key(32), 1.0, 0.35);
        assert_eq!(m.cost_units(&key(32)), 4); // 0.35ms * 10/ms = 3.5 -> 4
        m.seed(key(96), 5.0, 2_000.0);
        assert_eq!(m.cost_units(&key(96)), MAX_COST_UNITS);
    }

    #[test]
    fn residual_gauge_reports_miscalibration() {
        let m = CostModel::new();
        m.seed(key(32), 1.0, 1.0);
        m.observe(key(32), 2, 30.0); // prediction was 3ms, observed 30ms
        let snap = m.snapshot();
        assert!(snap[0].residual_ewma_ms > 10.0);
    }
}
