//! Admission-time input validation and the quarantine ring buffer.
//!
//! Every payload is checked *before* it can occupy queue budget: shape
//! contract, non-finite scan (via [`Tensor::count_nonfinite`]), and dynamic
//! range. Rejected payloads leave a digest record in a fixed-size ring so a
//! misbehaving client can be debugged after the fact without retaining the
//! (possibly large, possibly hostile) payloads themselves.

use crate::error::ServeError;
use revbifpn_tensor::{Shape, ShapeError, Tensor};
use std::collections::VecDeque;
use std::sync::Mutex;

/// What the engine accepts at admission.
#[derive(Clone, Copy, Debug)]
pub struct ValidationPolicy {
    /// Required request shape: `[1, 3, resolution, resolution]`.
    pub expected: Shape,
    /// Maximum accepted absolute value; anything larger (while finite) is
    /// rejected as out-of-range.
    pub max_abs: f32,
}

impl ValidationPolicy {
    /// Policy for a model served at `resolution`.
    pub fn for_resolution(resolution: usize, max_abs: f32) -> Self {
        Self { expected: Shape::new(1, 3, resolution, resolution), max_abs }
    }

    /// Classifies a payload. `Ok(())` admits it.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidShape`] on any dimension disagreement,
    /// [`ServeError::NonFiniteInput`] if the scan finds NaN/Inf,
    /// [`ServeError::OutOfRange`] if magnitudes exceed the policy limit.
    pub fn check(&self, image: &Tensor) -> Result<(), ServeError> {
        let got = image.shape();
        if got != self.expected {
            return Err(ServeError::InvalidShape(ShapeError::DimMismatch {
                what: "request image shape",
                expected: self.expected,
                got,
            }));
        }
        let bad = image.count_nonfinite();
        if bad > 0 {
            return Err(ServeError::NonFiniteInput { count: bad });
        }
        let max_abs = image.abs_max();
        if max_abs > self.max_abs {
            return Err(ServeError::OutOfRange { max_abs, limit: self.max_abs });
        }
        Ok(())
    }
}

/// A digest of one rejected or quarantined payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// FNV-1a digest of the payload bits (see [`payload_digest`]).
    pub digest: u64,
    /// Shape the payload arrived with.
    pub shape: Shape,
    /// Stable reason label ([`ServeError::label`]).
    pub reason: &'static str,
}

/// Fixed-capacity ring of the most recent [`QuarantineRecord`]s.
#[derive(Debug)]
pub struct Quarantine {
    ring: Mutex<VecDeque<QuarantineRecord>>,
    capacity: usize,
}

impl Quarantine {
    /// A ring retaining the last `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self { ring: Mutex::new(VecDeque::with_capacity(capacity)), capacity }
    }

    /// Records a rejected payload, evicting the oldest record when full.
    pub fn record(&self, image: &Tensor, reason: &'static str) {
        let rec =
            QuarantineRecord { digest: payload_digest(image), shape: image.shape(), reason };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// Snapshot of the ring, oldest first.
    pub fn records(&self) -> Vec<QuarantineRecord> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Number of records currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// `true` when no payload has been quarantined yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FNV-1a over the payload's bit pattern (sampled for large payloads: the
/// first 256 elements, every 997th element after that, and the shape), so
/// identical hostile payloads map to identical digests at O(1)-ish cost.
pub fn payload_digest(image: &Tensor) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    let s = image.shape();
    mix(s.n as u64);
    mix(s.c as u64);
    mix(s.h as u64);
    mix(s.w as u64);
    let data = image.data();
    for (i, &v) in data.iter().enumerate() {
        if i >= 256 && i % 997 != 0 {
            continue;
        }
        mix(v.to_bits() as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(shape: Shape, fill: f32) -> Tensor {
        Tensor::full(shape, fill)
    }

    #[test]
    fn policy_accepts_conforming_input() {
        let p = ValidationPolicy::for_resolution(32, 8.0);
        assert!(p.check(&img(Shape::new(1, 3, 32, 32), 0.5)).is_ok());
    }

    #[test]
    fn policy_rejects_shape_nan_and_range() {
        let p = ValidationPolicy::for_resolution(32, 8.0);
        // Wrong spatial size.
        assert!(matches!(
            p.check(&img(Shape::new(1, 3, 64, 64), 0.5)),
            Err(ServeError::InvalidShape(_))
        ));
        // Wrong channel count.
        assert!(matches!(
            p.check(&img(Shape::new(1, 1, 32, 32), 0.5)),
            Err(ServeError::InvalidShape(_))
        ));
        // Batched payloads are refused (one image per request).
        assert!(matches!(
            p.check(&img(Shape::new(2, 3, 32, 32), 0.5)),
            Err(ServeError::InvalidShape(_))
        ));
        // NaN.
        let mut x = img(Shape::new(1, 3, 32, 32), 0.5);
        x.data_mut()[7] = f32::NAN;
        x.data_mut()[11] = f32::INFINITY;
        assert_eq!(p.check(&x), Err(ServeError::NonFiniteInput { count: 2 }));
        // Range.
        assert!(matches!(
            p.check(&img(Shape::new(1, 3, 32, 32), 100.0)),
            Err(ServeError::OutOfRange { .. })
        ));
    }

    #[test]
    fn quarantine_ring_evicts_oldest() {
        let q = Quarantine::new(2);
        assert!(q.is_empty());
        q.record(&img(Shape::new(1, 3, 4, 4), 1.0), "non_finite");
        q.record(&img(Shape::new(1, 3, 4, 4), 2.0), "out_of_range");
        q.record(&img(Shape::new(1, 3, 4, 4), 3.0), "poisoned");
        let recs = q.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].reason, "out_of_range");
        assert_eq!(recs[1].reason, "poisoned");
    }

    #[test]
    fn digest_is_deterministic_and_payload_sensitive() {
        let a = img(Shape::new(1, 3, 8, 8), 1.0);
        let b = img(Shape::new(1, 3, 8, 8), 1.0);
        let c = img(Shape::new(1, 3, 8, 8), 2.0);
        assert_eq!(payload_digest(&a), payload_digest(&b));
        assert_ne!(payload_digest(&a), payload_digest(&c));
        // Shape-sensitive even with identical data values.
        let d = img(Shape::new(1, 3, 4, 16), 1.0);
        assert_ne!(payload_digest(&a), payload_digest(&d));
    }
}
