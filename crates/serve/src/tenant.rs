//! Multi-tenant isolation primitives: identities, admission quotas, and
//! per-tenant circuit breakers.
//!
//! Every request entering the engine carries a [`TenantId`]. Admission runs
//! three tenant-scoped gates before the shared bounded queue is even
//! consulted:
//!
//! 1. **Circuit breaker** — a tenant whose recent requests keep failing
//!    (panics, deadline misses, worker deaths) stops being admitted at all
//!    ([`crate::ServeError::CircuitOpen`]) until a half-open probe proves
//!    the poison has passed. One tenant's pathological inputs must not burn
//!    worker time for everyone else.
//! 2. **Token-bucket rate quota** — sustained request rate is capped at
//!    [`TenantQuota::rate_per_sec`] with burst headroom
//!    [`TenantQuota::burst`]; beyond it the request is shed with a typed
//!    [`crate::ServeError::QuotaExceeded`].
//! 3. **In-flight cap** — at most [`TenantQuota::max_in_flight`] admitted
//!    requests may be unresolved at once, bounding the queue memory any one
//!    tenant can pin.
//!
//! All three are *explicit-clock* state machines (milliseconds on any
//! monotonic clock): transitions are pure functions of the observation
//! sequence, so every policy is unit-testable with synthetic timelines and
//! chaos runs replay deterministically.

use std::collections::VecDeque;
use std::fmt;

/// A tenant identity. Cheap, copyable, and carried on every ticket.
///
/// Tenant 0 ([`TenantId::DEFAULT`]) is the identity used by the
/// single-tenant [`crate::ServeEngine::submit`] path; it is subject to the
/// same machinery with the engine's default quota.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant used when a caller does not specify one.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Which tenant quota a request exceeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuotaScope {
    /// The token-bucket rate quota was empty.
    Rate,
    /// The tenant already had `max_in_flight` unresolved requests.
    InFlight,
}

impl QuotaScope {
    /// Stable short label for counters and logs.
    pub fn label(self) -> &'static str {
        match self {
            QuotaScope::Rate => "rate",
            QuotaScope::InFlight => "in_flight",
        }
    }
}

/// Per-tenant admission quota and scheduling weight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantQuota {
    /// Sustained admissions per second (token-bucket refill rate).
    /// `f64::INFINITY` disables rate limiting.
    pub rate_per_sec: f64,
    /// Burst headroom: the bucket holds at most this many tokens.
    pub burst: u32,
    /// Maximum admitted-but-unresolved requests at any instant.
    pub max_in_flight: u32,
    /// Deficit-round-robin weight (dequeue quantum). Relative service share
    /// under contention is `weight / Σ active weights`. Clamped to ≥ 1.
    pub weight: u32,
}

impl Default for TenantQuota {
    /// Fully permissive: infinite rate, no in-flight cap, weight 1. A
    /// single-tenant deployment never notices the quota layer exists;
    /// multi-tenant deployments opt in with real limits.
    fn default() -> Self {
        Self { rate_per_sec: f64::INFINITY, burst: 256, max_in_flight: u32::MAX, weight: 1 }
    }
}

impl TenantQuota {
    /// The DRR quantum this quota grants (weights below 1 are meaningless).
    pub fn quantum(&self) -> u64 {
        u64::from(self.weight.max(1))
    }
}

/// Classic token bucket on an explicit millisecond clock.
///
/// The bucket starts full (burst headroom is immediately available) and
/// refills continuously at `rate_per_sec`, capped at `burst` tokens.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    tokens: f64,
    last_ms: u64,
    rate_per_sec: f64,
    burst: f64,
}

impl TokenBucket {
    /// A full bucket for `quota`, timestamped `now_ms`.
    pub fn new(quota: &TenantQuota, now_ms: u64) -> Self {
        let burst = f64::from(quota.burst.max(1));
        Self { tokens: burst, last_ms: now_ms, rate_per_sec: quota.rate_per_sec, burst }
    }

    /// Reconfigures rate and burst in place, keeping earned tokens (capped
    /// at the new burst). Used by runtime quota updates / quota-flap chaos.
    pub fn reconfigure(&mut self, quota: &TenantQuota) {
        self.rate_per_sec = quota.rate_per_sec;
        self.burst = f64::from(quota.burst.max(1));
        self.tokens = self.tokens.min(self.burst);
    }

    fn refill(&mut self, now_ms: u64) {
        let dt_ms = now_ms.saturating_sub(self.last_ms);
        self.last_ms = self.last_ms.max(now_ms);
        if self.rate_per_sec.is_infinite() {
            self.tokens = self.burst;
        } else if dt_ms > 0 {
            self.tokens = (self.tokens + self.rate_per_sec * dt_ms as f64 / 1_000.0).min(self.burst);
        }
    }

    /// Takes one token if available. Deterministic in `(call sequence,
    /// now_ms)`.
    pub fn try_take(&mut self, now_ms: u64) -> bool {
        self.refill(now_ms);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now_ms`).
    pub fn available(&mut self, now_ms: u64) -> f64 {
        self.refill(now_ms);
        self.tokens
    }
}

/// Circuit-breaker thresholds and timing.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Sliding window of recent terminal outcomes the trip decision is
    /// computed over.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip (a single
    /// early failure must not open the circuit).
    pub min_samples: usize,
    /// Failure fraction at or above which the breaker trips open.
    pub trip_ratio: f64,
    /// Milliseconds the breaker stays fully open before probing.
    pub open_ms: u64,
    /// Concurrent probe requests allowed while half-open.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { window: 32, min_samples: 8, trip_ratio: 0.5, open_ms: 2_000, half_open_probes: 2 }
    }
}

/// Externally visible breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: admitting normally, watching the failure window.
    Closed,
    /// Tripped: rejecting everything until `open_ms` elapses.
    Open,
    /// Probing: a bounded number of requests admitted to test the waters.
    HalfOpen,
}

impl BreakerState {
    /// Stable short label for counters and snapshots.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Admission verdict from [`CircuitBreaker::admit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Admit normally (breaker closed).
    Admit,
    /// Admit as a half-open probe: the ticket must be marked so its outcome
    /// is reported with `probe = true`.
    AdmitProbe,
    /// Reject: circuit open (or half-open with all probe slots taken).
    /// Carries the milliseconds until the next probe opportunity (0 when
    /// only waiting on in-flight probes).
    Reject {
        /// Milliseconds until the breaker will consider probing again.
        retry_in_ms: u64,
    },
}

/// Per-tenant circuit breaker: trips on error/deadline-miss rate, recovers
/// through half-open probing.
///
/// Only *worker-burning* outcomes count toward the trip decision: a request
/// that completed (success) or panicked / missed its deadline / died with a
/// worker (failure). Admission-time sheds never reach the breaker — they
/// consumed no worker time and say nothing about the tenant's payloads.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Recent outcomes, `true` = failure.
    window: VecDeque<bool>,
    failures_in_window: usize,
    opened_at_ms: u64,
    probes_outstanding: u32,
    probes_returned: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with an empty window.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed,
            window: VecDeque::with_capacity(cfg.window.max(1)),
            failures_in_window: 0,
            opened_at_ms: 0,
            probes_outstanding: 0,
            probes_returned: 0,
            trips: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open over its lifetime.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    fn trip(&mut self, now_ms: u64) {
        self.state = BreakerState::Open;
        self.opened_at_ms = now_ms;
        self.window.clear();
        self.failures_in_window = 0;
        self.probes_outstanding = 0;
        self.probes_returned = 0;
        self.trips += 1;
    }

    /// Admission check at time `now_ms`.
    pub fn admit(&mut self, now_ms: u64) -> BreakerDecision {
        match self.state {
            BreakerState::Closed => BreakerDecision::Admit,
            BreakerState::Open => {
                let elapsed = now_ms.saturating_sub(self.opened_at_ms);
                if elapsed >= self.cfg.open_ms {
                    self.state = BreakerState::HalfOpen;
                    self.probes_outstanding = 0;
                    self.probes_returned = 0;
                    self.admit(now_ms)
                } else {
                    BreakerDecision::Reject { retry_in_ms: self.cfg.open_ms - elapsed }
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_outstanding + self.probes_returned
                    < self.cfg.half_open_probes.max(1)
                {
                    self.probes_outstanding += 1;
                    BreakerDecision::AdmitProbe
                } else {
                    BreakerDecision::Reject { retry_in_ms: 0 }
                }
            }
        }
    }

    /// Records one terminal outcome. `probe` must be the flag handed out at
    /// admission ([`BreakerDecision::AdmitProbe`]); `failure` is `true` for
    /// worker-burning failures (panic, deadline miss, worker death).
    pub fn record(&mut self, failure: bool, probe: bool, now_ms: u64) {
        if probe {
            self.probes_outstanding = self.probes_outstanding.saturating_sub(1);
            self.probes_returned += 1;
            if self.state == BreakerState::HalfOpen {
                if failure {
                    // The waters are not safe: snap back open.
                    self.trip(now_ms);
                } else if self.probes_returned >= self.cfg.half_open_probes.max(1) {
                    // Every probe came back clean: close and start fresh.
                    self.state = BreakerState::Closed;
                    self.window.clear();
                    self.failures_in_window = 0;
                }
            }
            return;
        }
        if self.state != BreakerState::Closed {
            // A pre-trip straggler resolving after the breaker opened: its
            // verdict is stale, ignore it.
            return;
        }
        if self.window.len() == self.cfg.window.max(1)
            && self.window.pop_front() == Some(true)
        {
            self.failures_in_window -= 1;
        }
        self.window.push_back(failure);
        if failure {
            self.failures_in_window += 1;
        }
        if self.window.len() >= self.cfg.min_samples.max(1)
            && (self.failures_in_window as f64)
                >= self.cfg.trip_ratio * self.window.len() as f64
        {
            self.trip(now_ms);
        }
    }

    /// Releases a probe slot without a verdict (e.g. the probe was flushed
    /// at shutdown before any worker touched it).
    pub fn release_probe(&mut self) {
        self.probes_outstanding = self.probes_outstanding.saturating_sub(1);
    }
}

/// Cumulative per-tenant accounting, readable in health snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests admitted past all tenant gates into the queue.
    pub admitted: u64,
    /// Requests completed with a response.
    pub completed: u64,
    /// Worker-burning failures (poisoned, deadline-missed, worker lost).
    pub failed: u64,
    /// Requests shed by the rate or in-flight quota.
    pub shed_quota: u64,
    /// Requests rejected by an open circuit breaker.
    pub shed_breaker: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quota(rate: f64, burst: u32) -> TenantQuota {
        TenantQuota { rate_per_sec: rate, burst, max_in_flight: 8, weight: 1 }
    }

    #[test]
    fn bucket_starts_full_and_refills_at_rate() {
        let mut b = TokenBucket::new(&quota(10.0, 3), 0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "burst exhausted");
        // 10 tokens/s => one token per 100 ms.
        assert!(!b.try_take(99));
        assert!(b.try_take(100));
        assert!(!b.try_take(100));
        // Refill caps at burst no matter how long the idle stretch.
        assert!(b.available(1_000_000) <= 3.0 + 1e-9);
    }

    #[test]
    fn infinite_rate_never_limits() {
        let mut b = TokenBucket::new(&quota(f64::INFINITY, 1), 0);
        for t in 0..100 {
            assert!(b.try_take(t), "infinite rate must always admit");
        }
    }

    #[test]
    fn bucket_is_monotonic_against_clock_skew() {
        let mut b = TokenBucket::new(&quota(10.0, 1), 1_000);
        assert!(b.try_take(1_000));
        // A now_ms earlier than last seen must not mint tokens or panic.
        assert!(!b.try_take(500));
        assert!(b.try_take(1_100));
    }

    #[test]
    fn reconfigure_keeps_earned_tokens_capped() {
        let mut b = TokenBucket::new(&quota(10.0, 8), 0);
        b.reconfigure(&quota(10.0, 2));
        assert!(b.available(0) <= 2.0, "tokens cap at the new burst");
        b.reconfigure(&quota(10.0, 16));
        assert!(b.available(0) <= 2.0 + 1e-9, "a raise does not mint tokens");
    }

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 8,
            min_samples: 4,
            trip_ratio: 0.5,
            open_ms: 100,
            half_open_probes: 2,
        })
    }

    #[test]
    fn breaker_trips_on_failure_rate_not_single_failure() {
        let mut b = breaker();
        b.record(true, false, 0);
        assert_eq!(b.state(), BreakerState::Closed, "below min_samples");
        b.record(false, false, 1);
        b.record(true, false, 2);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(true, false, 3); // 3 failures / 4 samples >= 0.5
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(matches!(b.admit(10), BreakerDecision::Reject { retry_in_ms: 93 }));
    }

    #[test]
    fn window_slides_old_failures_out() {
        let mut b = breaker();
        for t in 0..4 {
            b.record(t < 2, false, t); // 2 fail, 2 ok -> exactly at ratio? 2/4 = 0.5 trips
        }
        // 2/4 >= 0.5 trips immediately; rebuild a gentler sequence instead.
        let mut b = breaker();
        b.record(true, false, 0);
        for t in 1..8 {
            b.record(false, false, t);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // Window is full of successes now; the old failure aged out, so four
        // more successes plus one failure stays under the ratio.
        b.record(true, false, 9);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_half_opens_probes_and_recloses() {
        let mut b = breaker();
        for t in 0..4 {
            b.record(true, false, t);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Before open_ms: rejected.
        assert!(matches!(b.admit(50), BreakerDecision::Reject { .. }));
        // After open_ms: exactly two probes, then reject while they fly.
        assert_eq!(b.admit(103), BreakerDecision::AdmitProbe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(104), BreakerDecision::AdmitProbe);
        assert!(matches!(b.admit(105), BreakerDecision::Reject { retry_in_ms: 0 }));
        // Both probes succeed: closed, admitting again.
        b.record(false, true, 110);
        b.record(false, true, 115);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(116), BreakerDecision::Admit);
    }

    #[test]
    fn failed_probe_snaps_back_open() {
        let mut b = breaker();
        for t in 0..4 {
            b.record(true, false, t);
        }
        assert_eq!(b.admit(150), BreakerDecision::AdmitProbe);
        b.record(true, true, 151);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // The open timer restarted at the failed probe.
        assert!(matches!(b.admit(200), BreakerDecision::Reject { .. }));
        assert_eq!(b.admit(260), BreakerDecision::AdmitProbe);
    }

    #[test]
    fn stale_outcomes_do_not_poison_an_open_breaker() {
        let mut b = breaker();
        for t in 0..4 {
            b.record(true, false, t);
        }
        let trips = b.trips();
        // Stragglers from before the trip resolve now: ignored.
        b.record(true, false, 50);
        b.record(false, false, 51);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), trips);
    }

    #[test]
    fn released_probe_frees_the_slot() {
        let mut b = breaker();
        for t in 0..4 {
            b.record(true, false, t);
        }
        assert_eq!(b.admit(150), BreakerDecision::AdmitProbe);
        assert_eq!(b.admit(151), BreakerDecision::AdmitProbe);
        assert!(matches!(b.admit(152), BreakerDecision::Reject { .. }));
        b.release_probe();
        assert_eq!(b.admit(153), BreakerDecision::AdmitProbe, "released slot is reusable");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(QuotaScope::Rate.label(), "rate");
        assert_eq!(QuotaScope::InFlight.label(), "in_flight");
        assert_eq!(BreakerState::Closed.label(), "closed");
        assert_eq!(BreakerState::Open.label(), "open");
        assert_eq!(BreakerState::HalfOpen.label(), "half_open");
        assert_eq!(TenantId(3).to_string(), "tenant-3");
    }
}
