//! Resident-memory governance for packed panels.
//!
//! The reversible architecture's selling point is bounded memory; the
//! serving layer honors the same discipline for its *weights*. Every
//! worker's `ModelBank` holds frozen variants whose packed GEMM panels are
//! anonymous allocations tracked by the `nn::meter` packed gauges. The
//! [`MemoryGovernor`] is the shared ledger those banks check with before
//! freezing: it enforces a byte budget by LRU-evicting the coldest
//! unpinned variants, whose panels are simply dropped and re-frozen on
//! demand from the mmap'd `RBFNFRZ1` artifact (a ~ms cold start, not a
//! recompute).
//!
//! Mechanics, in order:
//!
//! 1. A bank wanting to freeze variant `v` on slot `s` calls
//!    [`MemoryGovernor::reserve`] with a size estimate. Estimates are
//!    *learned*: the first commit of each variant records its true panel
//!    bytes and later reservations use that instead of the caller's guess.
//! 2. If the bytes fit, the reservation is granted and counted resident
//!    immediately (so concurrent reservers cannot jointly overshoot).
//! 3. If not, the governor flags the least-recently-used unpinned entries
//!    for eviction and answers [`Reserve::Pending`]. Owning workers poll
//!    [`MemoryGovernor::take_evictions`] between batches, drop the panels,
//!    and call [`MemoryGovernor::released`]; the reserver retries.
//! 4. If evicting *everything* evictable still cannot cover the deficit
//!    (budget smaller than the active working set), the reservation is
//!    granted oversize rather than deadlocking serving — metered so the
//!    operator sees the budget is unrealistic.
//!
//! Pinning keeps each worker's currently-selected variant immune: you
//! cannot serve from panels you just dropped. Published mmap-borrowed
//! panels are *not* governed — they are file-backed and reclaimable by the
//! OS page cache; the budget covers anonymous (heap) panel memory only.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Identifies one frozen variant's panels: worker slot x variant index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PanelKey {
    /// Worker slot owning the panels.
    pub slot: usize,
    /// Variant index within the bank (0 = primary, 1 = fallback).
    pub variant: u32,
}

impl PanelKey {
    /// Convenience constructor.
    pub fn new(slot: usize, variant: u32) -> Self {
        Self { slot, variant }
    }
}

/// Governor policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct GovernorConfig {
    /// Resident packed-panel budget in bytes. `0` disables governance
    /// entirely (every reservation granted, nothing tracked as pressure).
    pub budget_bytes: u64,
    /// When non-zero, variants idle at least this long are flagged for
    /// eviction proactively (by the watchdog tick), not just under
    /// pressure. `0` = evict only when the budget demands it.
    pub cold_after_ms: u64,
}

/// Outcome of a reservation attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reserve {
    /// Bytes fit under the budget; the entry is now counted resident.
    Granted,
    /// The budget cannot be met even after evicting every unpinned entry;
    /// granted anyway so serving never deadlocks. Victims were still
    /// flagged to shrink the overshoot. Counted in
    /// [`MemoryGovernor::oversize_grants`].
    GrantedOversize,
    /// Victims have been flagged for eviction but their bytes are still
    /// resident. The entry was NOT inserted; process own-slot evictions
    /// ([`MemoryGovernor::take_evictions`]), yield, and retry.
    Pending,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    bytes: u64,
    last_used_ms: u64,
    pinned: bool,
    flagged: bool,
}

#[derive(Default)]
struct Inner {
    entries: BTreeMap<PanelKey, Entry>,
    /// Actual panel bytes observed at the last commit of each variant
    /// index — better than any caller estimate for subsequent freezes.
    learned: BTreeMap<u32, u64>,
}

impl Inner {
    fn resident(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    /// Flags LRU unpinned entries until at least `deficit` bytes are
    /// pending release. Returns the bytes now pending (flagged), which may
    /// be short of `deficit` when there is nothing left to evict.
    fn flag_lru(&mut self, deficit: u64) -> u64 {
        let mut order: Vec<PanelKey> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.pinned)
            .map(|(k, _)| *k)
            .collect();
        order.sort_by_key(|k| self.entries[k].last_used_ms);
        let mut pending: u64 =
            self.entries.values().filter(|e| e.flagged && !e.pinned).map(|e| e.bytes).sum();
        for key in order {
            if pending >= deficit {
                break;
            }
            let e = self.entries.get_mut(&key).expect("key from entries");
            if !e.flagged {
                e.flagged = true;
                pending += e.bytes;
            }
        }
        pending
    }
}

/// Shared byte ledger enforcing the packed-panel budget. See the module
/// docs for the protocol.
pub struct MemoryGovernor {
    /// Atomic so chaos faults can squeeze the budget at runtime without
    /// taking the ledger lock.
    budget: AtomicU64,
    cold_after_ms: u64,
    inner: Mutex<Inner>,
    evictions: AtomicU64,
    oversize: AtomicU64,
}

impl MemoryGovernor {
    /// A governor with the given policy and an empty ledger.
    pub fn new(cfg: GovernorConfig) -> Self {
        Self {
            budget: AtomicU64::new(cfg.budget_bytes),
            cold_after_ms: cfg.cold_after_ms,
            inner: Mutex::new(Inner::default()),
            evictions: AtomicU64::new(0),
            oversize: AtomicU64::new(0),
        }
    }

    /// Current budget in bytes (`0` = unlimited).
    pub fn budget_bytes(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Retargets the budget at runtime (budget-squeeze chaos / operator
    /// action). Shrinking does not evict by itself; the next reservation
    /// or [`Self::enforce`] call applies the pressure.
    pub fn set_budget_bytes(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
    }

    /// Completed evictions (entries released after being flagged).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Reservations granted over budget to preserve liveness.
    pub fn oversize_grants(&self) -> u64 {
        self.oversize.load(Ordering::Relaxed)
    }

    /// Bytes currently counted resident (committed + reserved).
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().unwrap().resident()
    }

    /// Best known size for `variant`: the learned commit size if any
    /// freeze has completed, else `fallback`.
    pub fn estimate(&self, variant: u32, fallback: u64) -> u64 {
        self.inner.lock().unwrap().learned.get(&variant).copied().unwrap_or(fallback)
    }

    /// Attempts to reserve `est_bytes` (upgraded to the learned size when
    /// known) for `key`. See [`Reserve`] for the contract.
    pub fn reserve(&self, key: PanelKey, est_bytes: u64, now_ms: u64) -> Reserve {
        let mut inner = self.inner.lock().unwrap();
        let est = inner.learned.get(&key.variant).copied().unwrap_or(est_bytes);
        let budget = self.budget.load(Ordering::Relaxed);
        let insert = |inner: &mut Inner| {
            inner
                .entries
                .insert(key, Entry { bytes: est, last_used_ms: now_ms, pinned: false, flagged: false });
        };
        if budget == 0 {
            insert(&mut inner);
            return Reserve::Granted;
        }
        let resident = inner.resident();
        if resident.saturating_add(est) <= budget {
            insert(&mut inner);
            return Reserve::Granted;
        }
        let deficit = resident.saturating_add(est) - budget;
        let pending = inner.flag_lru(deficit);
        if pending < deficit {
            // Even a full purge cannot fit this reservation: grant it
            // anyway (serving must not deadlock) and record the overshoot.
            insert(&mut inner);
            self.oversize.fetch_add(1, Ordering::Relaxed);
            Reserve::GrantedOversize
        } else {
            Reserve::Pending
        }
    }

    /// Liveness valve for a reserver that waited out its patience on
    /// [`Reserve::Pending`] (e.g. the flagged victim belongs to a stalled
    /// worker that will never process its eviction): inserts the entry
    /// unconditionally and counts an oversize grant if the ledger is over
    /// budget afterwards.
    pub fn force_reserve(&self, key: PanelKey, est_bytes: u64, now_ms: u64) {
        let mut inner = self.inner.lock().unwrap();
        let est = inner.learned.get(&key.variant).copied().unwrap_or(est_bytes);
        inner
            .entries
            .insert(key, Entry { bytes: est, last_used_ms: now_ms, pinned: false, flagged: false });
        let budget = self.budget.load(Ordering::Relaxed);
        if budget > 0 && inner.resident() > budget {
            self.oversize.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the true panel bytes after a freeze completes, teaching the
    /// size estimator. If the correction pushes the ledger over budget,
    /// LRU victims are flagged immediately to drain it back under.
    pub fn commit(&self, key: PanelKey, actual_bytes: u64, now_ms: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.entries.get_mut(&key) {
            e.bytes = actual_bytes;
            e.last_used_ms = now_ms;
        }
        inner.learned.insert(key.variant, actual_bytes);
        let budget = self.budget.load(Ordering::Relaxed);
        if budget > 0 {
            let resident = inner.resident();
            if resident > budget {
                inner.flag_lru(resident - budget);
            }
        }
    }

    /// Marks `key` as used now (LRU recency).
    pub fn touch(&self, key: PanelKey, now_ms: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.entries.get_mut(&key) {
            e.last_used_ms = now_ms;
        }
    }

    /// Pins (or unpins) `key`. Pinned entries are never flagged for
    /// eviction — a worker's currently-selected variant must stay
    /// resident. Pinning clears any not-yet-taken eviction flag.
    pub fn set_pinned(&self, key: PanelKey, pinned: bool) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.entries.get_mut(&key) {
            e.pinned = pinned;
            if pinned {
                e.flagged = false;
            }
        }
    }

    /// Collects (and clears) the eviction flags for `slot`. The caller
    /// owns dropping those panels and MUST follow up with
    /// [`Self::released`] for each returned variant.
    pub fn take_evictions(&self, slot: usize) -> Vec<u32> {
        let mut inner = self.inner.lock().unwrap();
        let mut out = Vec::new();
        for (k, e) in inner.entries.iter_mut() {
            if k.slot == slot && e.flagged && !e.pinned {
                e.flagged = false;
                out.push(k.variant);
            }
        }
        out
    }

    /// Removes `key` from the ledger after its panels were dropped.
    /// `evicted` distinguishes governor-driven eviction (counted in
    /// [`Self::evictions`]) from ordinary withdrawal (republish, drop).
    /// Returns the bytes that were resident for the entry.
    pub fn released(&self, key: PanelKey, evicted: bool) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let bytes = inner.entries.remove(&key).map(|e| e.bytes).unwrap_or(0);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        bytes
    }

    /// Applies proactive cold eviction and any standing budget pressure:
    /// flags unpinned entries idle at least `cold_after_ms` (when
    /// configured), plus LRU victims if the ledger is over budget (e.g.
    /// after a runtime squeeze). Returns how many entries are now flagged.
    pub fn enforce(&self, now_ms: u64) -> usize {
        let mut inner = self.inner.lock().unwrap();
        if self.cold_after_ms > 0 {
            let horizon = self.cold_after_ms;
            for e in inner.entries.values_mut() {
                if !e.pinned && !e.flagged && now_ms.saturating_sub(e.last_used_ms) >= horizon {
                    e.flagged = true;
                }
            }
        }
        let budget = self.budget.load(Ordering::Relaxed);
        if budget > 0 {
            let resident = inner.resident();
            if resident > budget {
                inner.flag_lru(resident - budget);
            }
        }
        inner.entries.values().filter(|e| e.flagged).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: u64 = 1024;

    fn gov(budget: u64) -> MemoryGovernor {
        MemoryGovernor::new(GovernorConfig { budget_bytes: budget, cold_after_ms: 0 })
    }

    #[test]
    fn unlimited_budget_always_grants() {
        let g = gov(0);
        for slot in 0..4 {
            assert_eq!(g.reserve(PanelKey::new(slot, 0), 10 * KIB, 0), Reserve::Granted);
        }
        assert_eq!(g.resident_bytes(), 40 * KIB);
        assert_eq!(g.evictions(), 0);
    }

    #[test]
    fn grants_until_budget_then_flags_lru_victim() {
        let g = gov(3 * KIB);
        assert_eq!(g.reserve(PanelKey::new(0, 0), KIB, 10), Reserve::Granted);
        assert_eq!(g.reserve(PanelKey::new(1, 0), KIB, 20), Reserve::Granted);
        assert_eq!(g.reserve(PanelKey::new(2, 0), KIB, 30), Reserve::Granted);
        // Fourth kilobyte does not fit; slot 0 is coldest.
        assert_eq!(g.reserve(PanelKey::new(3, 0), KIB, 40), Reserve::Pending);
        assert_eq!(g.take_evictions(1), Vec::<u32>::new());
        assert_eq!(g.take_evictions(0), vec![0]);
        assert_eq!(g.released(PanelKey::new(0, 0), true), KIB);
        assert_eq!(g.evictions(), 1);
        // Retry now fits.
        assert_eq!(g.reserve(PanelKey::new(3, 0), KIB, 41), Reserve::Granted);
        assert!(g.resident_bytes() <= g.budget_bytes());
    }

    #[test]
    fn pinned_entries_are_never_victims() {
        let g = gov(2 * KIB);
        assert_eq!(g.reserve(PanelKey::new(0, 0), KIB, 0), Reserve::Granted);
        assert_eq!(g.reserve(PanelKey::new(1, 0), KIB, 1), Reserve::Granted);
        g.set_pinned(PanelKey::new(0, 0), true);
        assert_eq!(g.reserve(PanelKey::new(2, 0), KIB, 2), Reserve::Pending);
        // Only the unpinned slot 1 was flagged, despite slot 0 being colder.
        assert_eq!(g.take_evictions(0), Vec::<u32>::new());
        assert_eq!(g.take_evictions(1), vec![0]);
    }

    #[test]
    fn touch_changes_the_victim() {
        let g = gov(2 * KIB);
        assert_eq!(g.reserve(PanelKey::new(0, 0), KIB, 0), Reserve::Granted);
        assert_eq!(g.reserve(PanelKey::new(1, 0), KIB, 1), Reserve::Granted);
        g.touch(PanelKey::new(0, 0), 100); // slot 1 is now coldest
        assert_eq!(g.reserve(PanelKey::new(2, 0), KIB, 101), Reserve::Pending);
        assert_eq!(g.take_evictions(1), vec![0]);
        assert_eq!(g.take_evictions(0), Vec::<u32>::new());
    }

    #[test]
    fn oversize_grant_when_nothing_can_be_evicted() {
        let g = gov(KIB);
        assert_eq!(g.reserve(PanelKey::new(0, 0), KIB, 0), Reserve::Granted);
        g.set_pinned(PanelKey::new(0, 0), true);
        // Nothing evictable: grant oversize rather than deadlock.
        assert_eq!(g.reserve(PanelKey::new(1, 0), KIB, 1), Reserve::GrantedOversize);
        assert_eq!(g.oversize_grants(), 1);
        assert_eq!(g.resident_bytes(), 2 * KIB);
    }

    #[test]
    fn commit_teaches_the_size_estimator_and_self_heals() {
        let g = gov(4 * KIB);
        assert_eq!(g.reserve(PanelKey::new(0, 7), KIB, 0), Reserve::Granted);
        // The freeze turned out 3x larger than estimated.
        g.commit(PanelKey::new(0, 7), 3 * KIB, 1);
        assert_eq!(g.estimate(7, KIB), 3 * KIB);
        // Later reservations of the same variant use the learned size:
        // 3 + 3 > 4 KiB, and the only other entry is the would-be victim.
        assert_eq!(g.reserve(PanelKey::new(1, 7), KIB, 2), Reserve::Pending);
        assert_eq!(g.take_evictions(0), vec![7]);
    }

    #[test]
    fn commit_overshoot_flags_victims_immediately() {
        let g = gov(2 * KIB);
        assert_eq!(g.reserve(PanelKey::new(0, 0), KIB, 0), Reserve::Granted);
        assert_eq!(g.reserve(PanelKey::new(1, 1), KIB, 1), Reserve::Granted);
        g.set_pinned(PanelKey::new(1, 1), true);
        // Slot 0 committed far over its reservation: ledger now over budget,
        // and slot 0 itself (the only unpinned entry) gets flagged.
        g.commit(PanelKey::new(0, 0), 4 * KIB, 2);
        assert_eq!(g.take_evictions(0), vec![0]);
    }

    #[test]
    fn runtime_budget_squeeze_applies_on_enforce() {
        let g = gov(8 * KIB);
        for slot in 0..4 {
            assert_eq!(g.reserve(PanelKey::new(slot, 0), 2 * KIB, slot as u64), Reserve::Granted);
        }
        g.set_pinned(PanelKey::new(3, 0), true);
        g.set_budget_bytes(4 * KIB);
        assert_eq!(g.enforce(100), 2, "two coldest unpinned entries flagged");
        assert_eq!(g.take_evictions(0), vec![0]);
        assert_eq!(g.take_evictions(1), vec![0]);
        g.released(PanelKey::new(0, 0), true);
        g.released(PanelKey::new(1, 0), true);
        assert!(g.resident_bytes() <= 4 * KIB);
        assert_eq!(g.evictions(), 2);
    }

    #[test]
    fn cold_entries_are_flagged_proactively() {
        let g = MemoryGovernor::new(GovernorConfig { budget_bytes: 0, cold_after_ms: 50 });
        assert_eq!(g.reserve(PanelKey::new(0, 0), KIB, 0), Reserve::Granted);
        assert_eq!(g.reserve(PanelKey::new(1, 0), KIB, 40), Reserve::Granted);
        assert_eq!(g.enforce(60), 1, "only the entry idle >= 50ms is cold");
        assert_eq!(g.take_evictions(0), vec![0]);
        assert_eq!(g.take_evictions(1), Vec::<u32>::new());
    }

    #[test]
    fn pinning_clears_a_standing_flag() {
        let g = gov(KIB);
        assert_eq!(g.reserve(PanelKey::new(0, 0), KIB, 0), Reserve::Granted);
        assert_eq!(g.reserve(PanelKey::new(1, 0), KIB, 1), Reserve::Pending);
        g.set_pinned(PanelKey::new(0, 0), true);
        assert_eq!(g.take_evictions(0), Vec::<u32>::new(), "pin beat the eviction");
    }

    #[test]
    fn released_unknown_key_is_harmless() {
        let g = gov(KIB);
        assert_eq!(g.released(PanelKey::new(9, 9), true), 0);
        assert_eq!(g.evictions(), 1, "caller said it evicted; trust the count");
    }
}
