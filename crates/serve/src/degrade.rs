//! The graceful-degradation ladder and its hysteresis controller.
//!
//! Under sustained overload the engine steps *down* the ladder, trading
//! quality for throughput; once load subsides it steps back *up* after a
//! calm hold. Transitions are a pure function of the observed signals and
//! an explicit clock, so the state machine is deterministic and unit-testable
//! with synthetic event sequences.
//!
//! | level | meaning |
//! |-------|---------|
//! | 0 | full quality |
//! | 1 | max batch halved (bounds per-batch latency and memory) |
//! | 2 | + inputs bilinear-downscaled to the next-lower resolution rung |
//! | 3 | + requests routed to the registered fallback (smaller) variant |

use revbifpn::RevBiFPNConfig;
use std::sync::Mutex;

/// Thresholds and timing of the degradation state machine.
#[derive(Clone, Copy, Debug)]
pub struct DegradeConfig {
    /// Deepest level the engine may step down to (settable to 2 when no
    /// fallback variant is registered).
    pub max_level: u8,
    /// Step down when the queue depth reaches this watermark.
    pub high_depth: usize,
    /// Depth at or below which the system counts as calm.
    pub low_depth: usize,
    /// Step down when the p99 latency exceeds this, in milliseconds.
    pub p99_high_ms: f64,
    /// p99 at or below which the system counts as calm.
    pub p99_low_ms: f64,
    /// Minimum milliseconds between any two transitions (anti-flap).
    pub cooldown_ms: u64,
    /// The system must stay calm this long before a step up.
    pub calm_hold_ms: u64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        Self {
            max_level: 3,
            high_depth: 12,
            low_depth: 2,
            p99_high_ms: 250.0,
            p99_low_ms: 100.0,
            cooldown_ms: 200,
            calm_hold_ms: 400,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct State {
    level: u8,
    last_transition_ms: Option<u64>,
    calm_since_ms: Option<u64>,
}

/// Hysteresis controller driving the ladder level from load observations.
#[derive(Debug)]
pub struct DegradeController {
    cfg: DegradeConfig,
    state: Mutex<State>,
}

impl DegradeController {
    /// A controller starting at level 0.
    pub fn new(cfg: DegradeConfig) -> Self {
        Self { cfg, state: Mutex::new(State { level: 0, last_transition_ms: None, calm_since_ms: None }) }
    }

    /// The configuration in force.
    pub fn cfg(&self) -> &DegradeConfig {
        &self.cfg
    }

    /// Current ladder level without recording an observation.
    pub fn level(&self) -> u8 {
        self.state.lock().unwrap().level
    }

    /// Feeds one load observation at time `now_ms` (milliseconds on any
    /// monotonic clock) and returns the level in force afterwards.
    ///
    /// Deterministic: the same sequence of `(queue_depth, p99_ms, now_ms)`
    /// observations always produces the same sequence of levels.
    pub fn observe(&self, queue_depth: usize, p99_ms: f64, now_ms: u64) -> u8 {
        let mut st = self.state.lock().unwrap();
        let overloaded = queue_depth >= self.cfg.high_depth || p99_ms > self.cfg.p99_high_ms;
        let calm = queue_depth <= self.cfg.low_depth && p99_ms <= self.cfg.p99_low_ms;
        let cooled = st
            .last_transition_ms
            .is_none_or(|t| now_ms.saturating_sub(t) >= self.cfg.cooldown_ms);

        if overloaded {
            st.calm_since_ms = None;
            if st.level < self.cfg.max_level && cooled {
                st.level += 1;
                st.last_transition_ms = Some(now_ms);
                revbifpn_nn::meter::count("serve.degrade_step_down");
            }
        } else if calm {
            let since = *st.calm_since_ms.get_or_insert(now_ms);
            if st.level > 0 && cooled && now_ms.saturating_sub(since) >= self.cfg.calm_hold_ms {
                st.level -= 1;
                st.last_transition_ms = Some(now_ms);
                // Each step up must re-earn its calm hold: prevents a single
                // long-calm stretch from collapsing the ladder in one poll.
                st.calm_since_ms = Some(now_ms);
                revbifpn_nn::meter::count("serve.degrade_step_up");
            }
        } else {
            // Between the watermarks: neither escalate nor recover.
            st.calm_since_ms = None;
        }
        st.level
    }
}

/// The next-lower resolution rung for a config: half the input resolution,
/// rounded down to the model's total downsampling factor (the stem and
/// stream pyramid require divisibility; e.g. S0's 224 drops to 96, not 112).
///
/// Returns `None` when the config cannot be downscaled further (the ladder
/// then skips level 2 behaviour and serves full-resolution inputs).
pub fn downscale_rung(cfg: &RevBiFPNConfig) -> Option<usize> {
    let n = cfg.num_streams();
    let total_down = cfg.stem_block << (n - 1);
    let rung = (cfg.resolution / 2) / total_down * total_down;
    (rung >= total_down).then_some(rung)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> DegradeConfig {
        DegradeConfig {
            max_level: 3,
            high_depth: 8,
            low_depth: 1,
            p99_high_ms: 100.0,
            p99_low_ms: 40.0,
            cooldown_ms: 10,
            calm_hold_ms: 30,
        }
    }

    #[test]
    fn steps_down_under_depth_overload_with_cooldown() {
        let c = DegradeController::new(quick_cfg());
        assert_eq!(c.observe(10, 0.0, 0), 1);
        // Cooldown not yet elapsed: holds.
        assert_eq!(c.observe(10, 0.0, 5), 1);
        assert_eq!(c.observe(10, 0.0, 10), 2);
        assert_eq!(c.observe(10, 0.0, 20), 3);
        // Clamped at max_level.
        assert_eq!(c.observe(50, 500.0, 40), 3);
    }

    #[test]
    fn p99_alone_can_escalate() {
        let c = DegradeController::new(quick_cfg());
        assert_eq!(c.observe(0, 150.0, 0), 1);
    }

    #[test]
    fn steps_up_only_after_calm_hold() {
        let c = DegradeController::new(quick_cfg());
        c.observe(10, 0.0, 0); // -> 1
        // Calm starts at t=20; hold is 30ms.
        assert_eq!(c.observe(0, 10.0, 20), 1);
        assert_eq!(c.observe(0, 10.0, 40), 1); // 20ms calm < 30
        assert_eq!(c.observe(0, 10.0, 51), 0); // 31ms calm
    }

    #[test]
    fn each_step_up_re_earns_the_hold() {
        let c = DegradeController::new(quick_cfg());
        c.observe(10, 0.0, 0);
        c.observe(10, 0.0, 10);
        assert_eq!(c.level(), 2);
        // One long calm stretch must not collapse both levels at once.
        assert_eq!(c.observe(0, 0.0, 20), 2);
        assert_eq!(c.observe(0, 0.0, 60), 1);
        assert_eq!(c.observe(0, 0.0, 70), 1);
        assert_eq!(c.observe(0, 0.0, 95), 0);
    }

    #[test]
    fn middle_band_freezes_the_ladder() {
        let c = DegradeController::new(quick_cfg());
        c.observe(10, 0.0, 0); // -> 1
        // Depth between low (1) and high (8): no transitions ever.
        for t in 0..20 {
            assert_eq!(c.observe(4, 60.0, 20 + t * 50), 1);
        }
    }

    #[test]
    fn transition_sequence_is_deterministic() {
        let events: Vec<(usize, f64, u64)> = vec![
            (0, 10.0, 0),
            (9, 10.0, 10),
            (12, 10.0, 25),
            (12, 200.0, 40),
            (3, 60.0, 55),
            (0, 10.0, 70),
            (0, 10.0, 105),
            (0, 10.0, 140),
            (0, 10.0, 175),
            (10, 10.0, 190),
            (0, 10.0, 205),
            (0, 10.0, 240),
        ];
        let run = || {
            let c = DegradeController::new(quick_cfg());
            events.iter().map(|&(d, p, t)| c.observe(d, p, t)).collect::<Vec<u8>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 1, 2, 3, 3, 3, 2, 1, 0, 1, 1, 0]);
    }

    #[test]
    fn downscale_rungs_for_the_family() {
        // Every paper variant S0..S6 has a valid lower rung.
        for s in 0..=6 {
            let cfg = RevBiFPNConfig::scaled(s, 10);
            let n = cfg.num_streams();
            let total_down = cfg.stem_block << (n - 1);
            let rung = downscale_rung(&cfg).expect("S-variant must have a rung");
            assert!(rung <= cfg.resolution / 2, "S{s} rung must halve or better");
            assert!(rung >= total_down && rung.is_multiple_of(total_down));
            assert!(cfg.clone().with_resolution(rung).validate().is_ok(), "S{s} rung invalid");
        }
        // tiny: 32 -> 16 with total_down 8.
        let tiny = RevBiFPNConfig::tiny(10);
        assert_eq!(downscale_rung(&tiny), Some(16));
        // A config already at its minimum has no rung.
        let floor = tiny.with_resolution(8);
        assert_eq!(downscale_rung(&floor), None);
    }
}
