//! The serving engine: worker pool, batch assembly, panic bisection,
//! degradation routing, and the watchdog.
//!
//! Ownership layout: all cross-thread state lives in one `Arc<Shared>`.
//! Worker threads own their model replicas outright as a [`ModelBank`] of
//! *frozen* models ([`revbifpn::FrozenClassifier`]): BN folded into the
//! convs, activations in the GEMM epilogues, weight panels pre-packed once
//! at freeze time. Replicas are built from the same seeded config, so every
//! worker holds identical weights. The watchdog owns nothing but the `Arc`
//! and the right to replace worker slots.

use crate::degrade::{downscale_rung, DegradeConfig, DegradeController};
use crate::error::ServeError;
use crate::health::{Counters, HealthSnapshot, LatencyWindow};
use crate::queue::BoundedQueue;
use crate::request::{InferResponse, Outcome, PendingResponse, Ticket};
use crate::validate::{Quarantine, ValidationPolicy};
use revbifpn::{FrozenClassifier, RevBiFPNClassifier, RevBiFPNConfig};
use revbifpn_nn::meter;
use revbifpn_tensor::{try_resize, ResizeMode, Shape, Tensor};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Numeric precision a model variant is served at.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Precision {
    /// f32 fused kernels (the PR-4 frozen fast path).
    #[default]
    F32,
    /// Per-channel int8 weights with dynamic activation quantization; falls
    /// back to [`Precision::F32`] when the accuracy gate trips.
    Int8,
}

/// Accuracy gate applied before an [`Precision::Int8`] variant is allowed
/// to serve: the int8 model must agree with its f32 twin on a batch of
/// seeded calibration inputs, otherwise the worker keeps f32 and counts
/// `serve.quant_gate_trip`.
#[derive(Clone, Copy, Debug)]
pub struct QuantGateConfig {
    /// Calibration images generated (deterministically) per gate check.
    pub calibration_images: usize,
    /// Minimum fraction of calibration images whose argmax must match
    /// between the int8 and f32 variants. Values above 1.0 always trip the
    /// gate (test hook).
    pub min_agreement: f64,
}

impl Default for QuantGateConfig {
    fn default() -> Self {
        Self { calibration_images: 8, min_agreement: 0.75 }
    }
}

/// Everything needed to start a [`ServeEngine`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Primary model variant served at level 0..=2.
    pub model: RevBiFPNConfig,
    /// Optional smaller variant served at degradation level 3.
    pub fallback: Option<RevBiFPNConfig>,
    /// Precision the primary variant is served at.
    pub precision: Precision,
    /// Precision the fallback variant is served at.
    pub fallback_precision: Precision,
    /// Accuracy gate for [`Precision::Int8`] variants.
    pub quant_gate: QuantGateConfig,
    /// Worker threads (each owns a model replica).
    pub workers: usize,
    /// Bounded queue capacity; admissions beyond it are shed.
    pub queue_capacity: usize,
    /// Largest batch a worker assembles at level 0 (halved at level >= 1).
    pub max_batch: usize,
    /// Default per-request deadline, milliseconds from admission.
    pub default_timeout_ms: u64,
    /// Validation bound on input magnitude.
    pub max_abs_input: f32,
    /// Degradation-ladder thresholds.
    pub degrade: DegradeConfig,
    /// Watchdog poll period, milliseconds.
    pub watchdog_poll_ms: u64,
    /// A worker whose heartbeat is older than this is declared stalled and
    /// replaced.
    pub stall_limit_ms: u64,
    /// Capacity of the rejected-payload quarantine ring.
    pub quarantine_capacity: usize,
    /// Latency samples retained for the p50/p99 window.
    pub latency_window: usize,
}

impl ServeConfig {
    /// Defaults around a model config; fields are public for tuning.
    pub fn new(model: RevBiFPNConfig) -> Self {
        Self {
            model,
            fallback: None,
            precision: Precision::F32,
            fallback_precision: Precision::F32,
            quant_gate: QuantGateConfig::default(),
            workers: 2,
            queue_capacity: 32,
            max_batch: 4,
            default_timeout_ms: 2_000,
            max_abs_input: 64.0,
            degrade: DegradeConfig::default(),
            watchdog_poll_ms: 20,
            stall_limit_ms: 2_000,
            quarantine_capacity: 64,
            latency_window: 256,
        }
    }
}

/// State shared by clients, workers, and the watchdog.
struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue,
    policy: ValidationPolicy,
    quarantine: Quarantine,
    degrade: DegradeController,
    latency: LatencyWindow,
    counters: Arc<Counters>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    start: Instant,
    /// Per-slot wall-clock heartbeat (ms since `start`).
    heartbeats: Vec<AtomicU64>,
    /// Per-slot generation; a worker exits when its generation is stale.
    generations: Vec<AtomicU64>,
    /// Test hook: a set flag makes the slot's worker panic outside the
    /// batch `catch_unwind`, killing the thread (watchdog must recover).
    crash_flags: Vec<AtomicBool>,
    /// Test hook: milliseconds the slot's worker should sleep without
    /// heart-beating (stall simulation; watchdog must replace it).
    stall_flags: Vec<AtomicU64>,
    workers: Mutex<Vec<Option<JoinHandle<()>>>>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A running inference engine. Submit with [`ServeEngine::submit`], poll
/// with [`ServeEngine::health`], stop with [`ServeEngine::shutdown`] (also
/// runs on drop).
pub struct ServeEngine {
    shared: Arc<Shared>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl ServeEngine {
    /// Tag value that makes the batch runner panic on the tagged request —
    /// the test hook behind the panic-isolation soak.
    pub const POISON_TAG: u64 = 0xDEAD_BEEF;

    /// Builds replicas, spawns the worker pool and the watchdog.
    ///
    /// # Panics
    ///
    /// Panics if the model (or fallback) configuration fails
    /// [`RevBiFPNConfig::validate`] — a construction-time error, not a
    /// serving-path one.
    pub fn start(cfg: ServeConfig) -> Self {
        cfg.model.validate().unwrap_or_else(|e| panic!("serve: invalid model config: {e}"));
        if let Some(fb) = &cfg.fallback {
            fb.validate().unwrap_or_else(|e| panic!("serve: invalid fallback config: {e}"));
        }
        assert!(cfg.workers > 0, "serve: need at least one worker");
        assert!(cfg.max_batch > 0, "serve: max_batch must be positive");

        let n = cfg.workers;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            policy: ValidationPolicy::for_resolution(cfg.model.resolution, cfg.max_abs_input),
            quarantine: Quarantine::new(cfg.quarantine_capacity),
            degrade: DegradeController::new(cfg.degrade),
            latency: LatencyWindow::new(cfg.latency_window),
            counters: Arc::new(Counters::default()),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            start: Instant::now(),
            heartbeats: (0..n).map(|_| AtomicU64::new(0)).collect(),
            generations: (0..n).map(|_| AtomicU64::new(0)).collect(),
            crash_flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
            stall_flags: (0..n).map(|_| AtomicU64::new(0)).collect(),
            workers: Mutex::new(Vec::new()),
            cfg,
        });

        {
            let mut workers = shared.workers.lock().unwrap();
            for slot in 0..n {
                workers.push(Some(spawn_worker(Arc::clone(&shared), slot, 0)));
            }
        }
        let watchdog = spawn_watchdog(Arc::clone(&shared));
        Self { shared, watchdog: Mutex::new(Some(watchdog)) }
    }

    /// Submits one image with the default deadline.
    ///
    /// # Errors
    ///
    /// Any admission-time [`ServeError`]: validation rejections, queue-full
    /// shedding, or shutdown.
    pub fn submit(&self, image: Tensor) -> Result<PendingResponse, ServeError> {
        self.submit_with(image, self.shared.cfg.default_timeout_ms, None)
    }

    /// Submits one image with an explicit deadline and optional test tag.
    ///
    /// # Errors
    ///
    /// See [`ServeEngine::submit`].
    pub fn submit_with(
        &self,
        image: Tensor,
        timeout_ms: u64,
        tag: Option<u64>,
    ) -> Result<PendingResponse, ServeError> {
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return Err(ServeError::ShuttingDown);
        }
        if let Err(e) = self.shared.policy.check(&image) {
            self.shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            self.shared.quarantine.record(&image, e.label());
            meter::count("serve.rejected_input");
            return Err(e);
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket {
            id,
            image,
            tag,
            enqueued: now,
            deadline: now + Duration::from_millis(timeout_ms),
            responder: tx,
        };
        match self.shared.queue.push(ticket) {
            Ok(()) => Ok(PendingResponse { id, rx }),
            Err(rejected) => {
                let (_, e) = *rejected;
                if e.is_shed() {
                    self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                    meter::count("serve.shed_admission");
                }
                Err(e)
            }
        }
    }

    /// One health poll; cheap and callable from any thread.
    pub fn health(&self) -> HealthSnapshot {
        let s = &self.shared;
        HealthSnapshot {
            queue_depth: s.queue.depth(),
            shed_count: s.counters.shed.load(Ordering::Relaxed),
            rejected_count: s.counters.rejected.load(Ordering::Relaxed),
            completed_count: s.counters.completed.load(Ordering::Relaxed),
            quarantined_count: s.counters.quarantined.load(Ordering::Relaxed),
            batch_panic_count: s.counters.batch_panics.load(Ordering::Relaxed),
            degrade_level: s.degrade.level(),
            p50_ms: s.latency.percentile(0.50),
            p99_ms: s.latency.percentile(0.99),
            worker_restarts: s.counters.worker_restarts.load(Ordering::Relaxed),
            peak_cached_bytes: s.counters.peak_cached_bytes.load(Ordering::Relaxed),
            peak_scratch_bytes: s.counters.peak_scratch_bytes.load(Ordering::Relaxed),
            quant_gate_trips: s.counters.quant_gate_trips.load(Ordering::Relaxed),
            resident_f32_bytes: s.counters.resident_f32_bytes.load(Ordering::Relaxed),
            resident_int8_bytes: s.counters.resident_int8_bytes.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the quarantine ring, oldest first.
    pub fn quarantine_records(&self) -> Vec<crate::validate::QuarantineRecord> {
        self.shared.quarantine.records()
    }

    /// Current degradation level (0 = full quality).
    pub fn degrade_level(&self) -> u8 {
        self.shared.degrade.level()
    }

    /// Test hook: kill worker `slot`'s thread with a panic outside the
    /// batch guard. The watchdog must observe the death and respawn.
    pub fn inject_worker_crash(&self, slot: usize) {
        self.shared.crash_flags[slot].store(true, Ordering::Relaxed);
    }

    /// Test hook: make worker `slot` sleep `ms` without heart-beating, so
    /// the watchdog declares it stalled and replaces it.
    pub fn inject_worker_stall(&self, slot: usize, ms: u64) {
        self.shared.stall_flags[slot].store(ms, Ordering::Relaxed);
    }

    /// Stops admission, delivers [`ServeError::ShuttingDown`] to every
    /// queued request, and joins all threads. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.queue.close();
        for ticket in self.shared.queue.drain() {
            ticket.respond(Err(ServeError::ShuttingDown));
        }
        if let Some(h) = self.watchdog.lock().unwrap().take() {
            let _ = h.join();
        }
        let mut workers = self.shared.workers.lock().unwrap();
        for slot in workers.iter_mut() {
            if let Some(h) = slot.take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A worker's resident frozen models: at most one variant's packed weight
/// panels live at a time. The primary is frozen eagerly at worker start;
/// routing to the fallback (ladder level 3) drops the primary's panels and
/// freezes the fallback, and recovery does the reverse — weights are
/// deterministic per config, so a rebuilt variant is identical to the one
/// dropped. Every swap is metered as `serve.variant_swap`.
///
/// Variants configured as [`Precision::Int8`] pass through the quantization
/// accuracy gate at build time: the int8 model must agree with its f32 twin
/// on seeded calibration inputs, else the worker serves f32 and counts
/// `serve.quant_gate_trip`. The bank publishes its resident f32/int8 panel
/// bytes to the engine [`Counters`] (delta-adjusted, so totals across
/// workers stay exact) and withdraws them on drop.
struct ModelBank {
    primary_cfg: RevBiFPNConfig,
    fallback_cfg: Option<RevBiFPNConfig>,
    primary_precision: Precision,
    fallback_precision: Precision,
    gate: QuantGateConfig,
    counters: Arc<Counters>,
    primary: Option<FrozenClassifier>,
    fallback: Option<FrozenClassifier>,
    published_f32: usize,
    published_int8: usize,
}

impl ModelBank {
    fn new(cfg: &ServeConfig, counters: Arc<Counters>) -> Self {
        let mut bank = Self {
            primary_cfg: cfg.model.clone(),
            fallback_cfg: cfg.fallback.clone(),
            primary_precision: cfg.precision,
            fallback_precision: cfg.fallback_precision,
            gate: cfg.quant_gate,
            counters,
            primary: None,
            fallback: None,
            published_f32: 0,
            published_int8: 0,
        };
        bank.primary =
            Some(freeze_gated(&bank.primary_cfg, bank.primary_precision, &bank.gate, &bank.counters));
        bank.republish();
        bank
    }

    /// Whether ladder level `level` routes to the fallback variant.
    fn uses_fallback(&self, level: u8) -> bool {
        level >= 3 && self.fallback_cfg.is_some()
    }

    /// The frozen model serving at ladder level `level`, building (and
    /// invalidating the other variant's packed panels) on a swap.
    fn select(&mut self, level: u8) -> &FrozenClassifier {
        if self.uses_fallback(level) {
            if self.fallback.is_none() {
                self.primary = None; // release the primary's packed panels first
                let cfg = self.fallback_cfg.clone().expect("uses_fallback checked the config");
                self.fallback =
                    Some(freeze_gated(&cfg, self.fallback_precision, &self.gate, &self.counters));
                meter::count("serve.variant_swap");
                self.republish();
            }
            self.fallback.as_ref().expect("fallback frozen above")
        } else {
            if self.primary.is_none() {
                self.fallback = None;
                self.primary = Some(freeze_gated(
                    &self.primary_cfg,
                    self.primary_precision,
                    &self.gate,
                    &self.counters,
                ));
                meter::count("serve.variant_swap");
                self.republish();
            }
            self.primary.as_ref().expect("primary frozen above")
        }
    }

    /// Re-publishes this bank's resident panel bytes to the engine
    /// counters by delta, so the gauges stay a true sum across workers.
    fn republish(&mut self) {
        let f32_now = self.primary.as_ref().map_or(0, |m| m.packed_bytes())
            + self.fallback.as_ref().map_or(0, |m| m.packed_bytes());
        let int8_now = self.primary.as_ref().map_or(0, |m| m.quant_packed_bytes())
            + self.fallback.as_ref().map_or(0, |m| m.quant_packed_bytes());
        adjust_gauge(&self.counters.resident_f32_bytes, self.published_f32, f32_now);
        adjust_gauge(&self.counters.resident_int8_bytes, self.published_int8, int8_now);
        self.published_f32 = f32_now;
        self.published_int8 = int8_now;
    }
}

impl Drop for ModelBank {
    fn drop(&mut self) {
        // Runs during unwinding too, so a crashed worker's contribution is
        // withdrawn before the watchdog's replacement publishes its own.
        self.primary = None;
        self.fallback = None;
        self.republish();
    }
}

/// Moves a shared gauge from `prev` to `now` without ever underflowing.
fn adjust_gauge(gauge: &std::sync::atomic::AtomicUsize, prev: usize, now: usize) {
    if now >= prev {
        gauge.fetch_add(now - prev, Ordering::Relaxed);
    } else {
        gauge.fetch_sub(prev - now, Ordering::Relaxed);
    }
}

/// Builds the seeded replica for `cfg` and compiles its frozen form.
fn freeze_variant(cfg: &RevBiFPNConfig, precision: Precision) -> FrozenClassifier {
    let model = RevBiFPNClassifier::new(cfg.clone());
    let frozen = match precision {
        Precision::F32 => model.freeze(),
        Precision::Int8 => model.freeze_int8(),
    };
    frozen.unwrap_or_else(|e| panic!("serve: model config does not freeze: {e}"))
}

/// Builds the variant at the requested precision, applying the quantization
/// accuracy gate to int8 builds. A gate trip keeps the f32 twin.
fn freeze_gated(
    cfg: &RevBiFPNConfig,
    precision: Precision,
    gate: &QuantGateConfig,
    counters: &Counters,
) -> FrozenClassifier {
    match precision {
        Precision::F32 => freeze_variant(cfg, Precision::F32),
        Precision::Int8 => {
            let f32_twin = freeze_variant(cfg, Precision::F32);
            let int8 = freeze_variant(cfg, Precision::Int8);
            if quant_gate_passes(&f32_twin, &int8, gate) {
                int8
            } else {
                counters.quant_gate_trips.fetch_add(1, Ordering::Relaxed);
                meter::count("serve.quant_gate_trip");
                f32_twin
            }
        }
    }
}

/// Runs the calibration batch through both variants and compares per-image
/// argmax agreement against the gate threshold.
fn quant_gate_passes(
    f32_twin: &FrozenClassifier,
    int8: &FrozenClassifier,
    gate: &QuantGateConfig,
) -> bool {
    let n = gate.calibration_images.max(1);
    let res = f32_twin.cfg().resolution;
    let input = calibration_batch(n, res);
    let want = argmaxes(&f32_twin.forward(&input));
    let got = argmaxes(&int8.forward(&input));
    let matches = want.iter().zip(&got).filter(|(a, b)| a == b).count();
    (matches as f64) >= gate.min_agreement * n as f64
}

/// Deterministic pseudo-random calibration images in roughly `[-1, 1]`
/// (xorshift; no RNG dependency, identical on every worker).
fn calibration_batch(n: usize, res: usize) -> Tensor {
    let len = n * 3 * res * res;
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let data = (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / 8_388_608.0) - 1.0
        })
        .collect();
    Tensor::from_vec(Shape::new(n, 3, res, res), data)
        .expect("serve: calibration batch length is exact by construction")
}

/// Per-image argmax over logits `[n, classes, 1, 1]`.
fn argmaxes(logits: &Tensor) -> Vec<usize> {
    let classes = logits.shape().c;
    logits
        .data()
        .chunks_exact(classes)
        .map(|row| {
            row.iter()
                .copied()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map_or(0, |(i, _)| i)
        })
        .collect()
}

fn spawn_worker(shared: Arc<Shared>, slot: usize, generation: u64) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("serve-worker-{slot}"))
        .spawn(move || worker_loop(shared, slot, generation))
        .expect("serve: failed to spawn worker thread")
}

fn worker_loop(shared: Arc<Shared>, slot: usize, generation: u64) {
    let mut bank = ModelBank::new(&shared.cfg, Arc::clone(&shared.counters));
    let rung = downscale_rung(&shared.cfg.model);

    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        if shared.generations[slot].load(Ordering::Relaxed) != generation {
            // The watchdog declared this thread stalled and replaced it;
            // bow out quietly instead of double-serving the slot.
            return;
        }
        shared.heartbeats[slot].store(shared.now_ms(), Ordering::Relaxed);
        let stall_ms = shared.stall_flags[slot].swap(0, Ordering::Relaxed);
        if stall_ms > 0 {
            std::thread::sleep(Duration::from_millis(stall_ms));
            continue;
        }
        if shared.crash_flags[slot].swap(false, Ordering::Relaxed) {
            // Deliberately OUTSIDE any catch_unwind: the thread dies and
            // recovery is the watchdog's job, not ours.
            panic!("injected worker crash (slot {slot})");
        }

        let level = shared.degrade.level();
        let max_batch = if level >= 1 {
            (shared.cfg.max_batch / 2).max(1)
        } else {
            shared.cfg.max_batch
        };
        let (batch, shed) = shared.queue.pop_batch(max_batch, Duration::from_millis(20));
        if shed > 0 {
            shared.counters.shed.fetch_add(shed as u64, Ordering::Relaxed);
            meter::count_n("serve.shed_deadline", shed as u64);
        }
        if batch.is_empty() {
            continue;
        }
        run_partition(&shared, &mut bank, rung, batch, level);
    }
}

/// Runs one partition of a batch, bisecting on panic until the poisoned
/// request is isolated and quarantined. Well-behaved co-batched requests
/// are always eventually served.
fn run_partition(
    shared: &Shared,
    bank: &mut ModelBank,
    rung: Option<usize>,
    mut tickets: Vec<Ticket>,
    level: u8,
) {
    if tickets.is_empty() {
        return;
    }
    // The frozen models are fully convolutional, so the level-2 rung needs
    // no model swap: the same packed panels serve any input resolution.
    let use_fallback = bank.uses_fallback(level);
    let model = bank.select(level);
    let target_res = if use_fallback {
        model.cfg().resolution
    } else if level >= 2 {
        rung.unwrap_or(shared.cfg.model.resolution)
    } else {
        shared.cfg.model.resolution
    };

    // Assemble the input outside the guard: any per-request preparation
    // failure is delivered individually, not allowed to sink the batch.
    let mut kept: Vec<Ticket> = Vec::with_capacity(tickets.len());
    let mut data: Vec<f32> = Vec::new();
    for ticket in tickets.drain(..) {
        if ticket.image.shape().h == target_res {
            data.extend_from_slice(ticket.image.data());
            kept.push(ticket);
            continue;
        }
        match try_resize(&ticket.image, target_res, target_res, ResizeMode::Bilinear) {
            Ok(img) => {
                data.extend_from_slice(img.data());
                kept.push(ticket);
            }
            Err(e) => {
                shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                ticket.respond(Err(ServeError::InvalidShape(e)));
            }
        }
    }
    if kept.is_empty() {
        return;
    }
    let input = Tensor::from_vec(Shape::new(kept.len(), 3, target_res, target_res), data)
        .expect("serve: batch assembly produced a mis-sized buffer");

    let poison = kept.iter().any(|t| t.tag == Some(ServeEngine::POISON_TAG));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        assert!(!poison, "poisoned request in batch (injected)");
        model.forward(&input)
    }));

    match result {
        Ok(logits) => {
            // Publish memory peaks before delivering, so a client that polls
            // health() right after its response sees this batch accounted.
            let report = meter::report();
            Counters::raise_peak(&shared.counters.peak_cached_bytes, report.cached_peak);
            Counters::raise_peak(
                &shared.counters.peak_scratch_bytes,
                report.scratch.peak_bytes as usize,
            );
            deliver(shared, kept, &logits, level);
        }
        Err(_) => {
            shared.counters.batch_panics.fetch_add(1, Ordering::Relaxed);
            meter::count("serve.batch_panic");
            // Frozen models are stateless across forwards (`&self`, no
            // activation caches), so an aborted batch leaves nothing to
            // clear — bisect and retry directly.
            if kept.len() == 1 {
                let ticket = kept.pop().unwrap();
                shared.quarantine.record(&ticket.image, "poisoned");
                shared.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                meter::count("serve.quarantined");
                ticket.respond(Err(ServeError::Poisoned));
            } else {
                let right = kept.split_off(kept.len() / 2);
                run_partition(shared, bank, rung, kept, level);
                run_partition(shared, bank, rung, right, level);
            }
        }
    }
}

/// Splits batched logits `[n, classes, 1, 1]` back into per-ticket
/// responses.
fn deliver(shared: &Shared, tickets: Vec<Ticket>, logits: &Tensor, level: u8) {
    let classes = logits.shape().c;
    let now = Instant::now();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let lvec = logits.data()[i * classes..(i + 1) * classes].to_vec();
        let (class, score) = lvec
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((0, f32::NEG_INFINITY));
        let latency_ms = ticket.waited_ms(now) as f64;
        shared.latency.record(latency_ms);
        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
        let response = InferResponse {
            id: ticket.id,
            class,
            score,
            logits: lvec,
            degrade_level: level,
            latency_ms,
        };
        let outcome: Outcome = Ok(response);
        ticket.respond(outcome);
    }
}

fn spawn_watchdog(shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("serve-watchdog".into())
        .spawn(move || watchdog_loop(shared))
        .expect("serve: failed to spawn watchdog thread")
}

fn watchdog_loop(shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        std::thread::sleep(Duration::from_millis(shared.cfg.watchdog_poll_ms));
        let now = shared.now_ms();
        shared.degrade.observe(shared.queue.depth(), shared.latency.percentile(0.99), now);

        let mut workers = shared.workers.lock().unwrap();
        for slot in 0..workers.len() {
            let dead = workers[slot].as_ref().is_none_or(|h| h.is_finished());
            let stalled = !dead
                && now.saturating_sub(shared.heartbeats[slot].load(Ordering::Relaxed))
                    > shared.cfg.stall_limit_ms;
            if dead || stalled {
                if shared.shutdown.load(Ordering::Relaxed) {
                    // Workers exiting at shutdown are not casualties.
                    return;
                }
                // Bump the generation first so a merely-stalled thread
                // retires itself when it wakes instead of double-serving.
                let gen = shared.generations[slot].fetch_add(1, Ordering::Relaxed) + 1;
                shared.counters.worker_restarts.fetch_add(1, Ordering::Relaxed);
                shared.heartbeats[slot].store(now, Ordering::Relaxed);
                let handle = spawn_worker(Arc::clone(&shared), slot, gen);
                // Dropping the old handle detaches a stalled-but-alive
                // thread; it exits on its own at the generation check.
                let _old = workers[slot].replace(handle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_engine(workers: usize, queue: usize) -> ServeEngine {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = workers;
        cfg.queue_capacity = queue;
        cfg.max_batch = 2;
        cfg.watchdog_poll_ms = 10;
        ServeEngine::start(cfg)
    }

    fn image(fill: f32) -> Tensor {
        Tensor::full(Shape::new(1, 3, 32, 32), fill)
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let engine = tiny_engine(1, 8);
        let pending = engine.submit(image(0.1)).unwrap();
        let resp = pending.wait().expect("inference should succeed");
        assert_eq!(resp.logits.len(), 10);
        assert!(resp.logits.iter().all(|v| v.is_finite()));
        assert_eq!(resp.degrade_level, 0);
        let h = engine.health();
        assert_eq!(h.completed_count, 1);
        assert!(h.peak_scratch_bytes > 0);
        engine.shutdown();
    }

    #[test]
    fn batching_preserves_per_request_results() {
        let engine = tiny_engine(1, 8);
        // Identical inputs through a deterministic model: identical logits,
        // whether batched together or not.
        let a = engine.submit(image(0.2)).unwrap();
        let b = engine.submit(image(0.2)).unwrap();
        let ra = a.wait().unwrap();
        let rb = b.wait().unwrap();
        assert_eq!(ra.logits, rb.logits);
        engine.shutdown();
    }

    #[test]
    fn invalid_inputs_are_rejected_and_quarantined() {
        let engine = tiny_engine(1, 8);
        let bad_shape = Tensor::zeros(Shape::new(1, 3, 16, 16));
        assert!(matches!(
            engine.submit(bad_shape),
            Err(ServeError::InvalidShape(_))
        ));
        let mut nan = image(0.0);
        nan.data_mut()[0] = f32::NAN;
        assert!(matches!(
            engine.submit(nan),
            Err(ServeError::NonFiniteInput { count: 1 })
        ));
        assert!(matches!(
            engine.submit(image(1e9)),
            Err(ServeError::OutOfRange { .. })
        ));
        let h = engine.health();
        assert_eq!(h.rejected_count, 3);
        assert_eq!(h.completed_count, 0);
        assert_eq!(engine.quarantine_records().len(), 3);
        engine.shutdown();
    }

    #[test]
    fn poison_pill_is_bisected_out_and_neighbours_survive() {
        let engine = tiny_engine(1, 8);
        let good1 = engine.submit(image(0.1)).unwrap();
        let poison = engine
            .submit_with(image(0.2), 5_000, Some(ServeEngine::POISON_TAG))
            .unwrap();
        let good2 = engine.submit(image(0.3)).unwrap();
        assert_eq!(poison.wait(), Err(ServeError::Poisoned));
        assert!(good1.wait().is_ok());
        assert!(good2.wait().is_ok());
        let h = engine.health();
        assert_eq!(h.quarantined_count, 1);
        assert!(h.batch_panic_count >= 1);
        assert_eq!(h.completed_count, 2);
        // The worker survived: serve one more.
        assert!(engine.submit(image(0.4)).unwrap().wait().is_ok());
        engine.shutdown();
    }

    #[test]
    fn watchdog_restarts_a_crashed_worker() {
        let engine = tiny_engine(1, 8);
        assert!(engine.submit(image(0.1)).unwrap().wait().is_ok());
        engine.inject_worker_crash(0);
        // The crash fires on the worker's next loop pass; the watchdog then
        // respawns. Serve again to prove recovery.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if engine.health().worker_restarts >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "watchdog never restarted the worker");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(engine.submit(image(0.2)).unwrap().wait().is_ok());
        engine.shutdown();
    }

    #[test]
    fn watchdog_replaces_a_stalled_worker() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.watchdog_poll_ms = 10;
        cfg.stall_limit_ms = 50;
        let engine = ServeEngine::start(cfg);
        assert!(engine.submit(image(0.1)).unwrap().wait().is_ok());
        engine.inject_worker_stall(0, 400);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if engine.health().worker_restarts >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "watchdog never replaced the stalled worker");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(engine.submit(image(0.2)).unwrap().wait().is_ok());
        engine.shutdown();
    }

    #[test]
    fn queue_overflow_sheds_with_typed_error() {
        // No workers draining: fill the queue synchronously.
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.queue_capacity = 2;
        cfg.max_batch = 1;
        // Stall the only worker so nothing drains while we overfill.
        let engine = ServeEngine::start(cfg);
        engine.inject_worker_stall(0, 300);
        std::thread::sleep(Duration::from_millis(30));
        let mut shed = 0;
        let mut pendings = Vec::new();
        for _ in 0..6 {
            match engine.submit(image(0.1)) {
                Ok(p) => pendings.push(p),
                Err(ServeError::QueueFull { .. }) => shed += 1,
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(shed >= 1, "overfill should shed at least one request");
        assert!(engine.health().shed_count >= shed);
        engine.shutdown();
    }

    #[test]
    fn model_bank_swaps_packed_panels_with_the_ladder() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.fallback = Some(RevBiFPNConfig::tiny(10).with_resolution(16));
        let swaps_before = meter::event_count("serve.variant_swap");

        let counters = Arc::new(Counters::default());
        let mut bank = ModelBank::new(&cfg, Arc::clone(&counters));
        let resident = meter::packed_current();
        assert!(resident > 0, "primary must be frozen eagerly");

        // Levels 0..=2 serve the primary without touching the panels.
        for level in 0..=2 {
            assert_eq!(bank.select(level).cfg().resolution, 32);
        }
        assert_eq!(meter::packed_current(), resident);
        assert_eq!(meter::event_count("serve.variant_swap"), swaps_before);

        // Level 3 swaps to the fallback: the primary's panels are gone,
        // the (identical-plan, same channel widths) fallback's are resident.
        assert_eq!(bank.select(3).cfg().resolution, 16);
        assert_eq!(meter::event_count("serve.variant_swap"), swaps_before + 1);
        assert!(bank.primary.is_none(), "primary must be dropped on swap");
        assert!(meter::packed_current() > 0);

        // Steady state at level 3: no re-freeze, no extra swap events.
        let at_fallback = meter::packed_current();
        assert_eq!(bank.select(3).cfg().resolution, 16);
        assert_eq!(meter::packed_current(), at_fallback);
        assert_eq!(meter::event_count("serve.variant_swap"), swaps_before + 1);

        // Recovery below level 3 rebuilds the primary deterministically.
        assert_eq!(bank.select(0).cfg().resolution, 32);
        assert_eq!(meter::event_count("serve.variant_swap"), swaps_before + 2);
        assert!(bank.fallback.is_none(), "fallback must be dropped on recovery");
        assert_eq!(meter::packed_current(), resident, "rebuilt primary packs the same bytes");

        assert_eq!(
            counters.resident_f32_bytes.load(Ordering::Relaxed),
            meter::packed_current(),
            "published gauge must track the thread-local meter"
        );
        drop(bank);
        assert_eq!(meter::packed_current(), 0, "dropping the bank releases all panels");
        assert_eq!(counters.resident_f32_bytes.load(Ordering::Relaxed), 0);
        assert_eq!(counters.resident_int8_bytes.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn int8_precision_serves_and_reports_resident_bytes() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.precision = Precision::Int8;
        cfg.quant_gate = QuantGateConfig { calibration_images: 4, min_agreement: 0.0 };
        let engine = ServeEngine::start(cfg);
        let resp = engine.submit(image(0.1)).unwrap().wait().expect("int8 serving must work");
        assert!(resp.logits.iter().all(|v| v.is_finite()));
        let h = engine.health();
        assert_eq!(h.completed_count, 1);
        assert_eq!(h.quant_gate_trips, 0);
        assert!(h.resident_int8_bytes > 0, "int8 panels must be resident");
        assert!(
            h.resident_int8_bytes > h.resident_f32_bytes,
            "int8 panels ({}) should dominate the residual f32 (squeeze-excite) panels ({})",
            h.resident_int8_bytes,
            h.resident_f32_bytes
        );
        engine.shutdown();
    }

    #[test]
    fn quant_gate_trip_falls_back_to_f32_serving() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.precision = Precision::Int8;
        // min_agreement above 1.0 cannot be met: the gate must trip.
        cfg.quant_gate = QuantGateConfig { calibration_images: 2, min_agreement: 1.5 };
        let engine = ServeEngine::start(cfg);
        let resp = engine.submit(image(0.1)).unwrap().wait().expect("f32 fallback must serve");
        assert!(resp.logits.iter().all(|v| v.is_finite()));
        let h = engine.health();
        assert!(h.quant_gate_trips >= 1, "the impossible gate must trip");
        assert_eq!(h.resident_int8_bytes, 0, "tripped gate must not keep int8 panels");
        assert!(h.resident_f32_bytes > 0, "the f32 twin must serve instead");
        engine.shutdown();
    }

    #[test]
    fn overload_routes_to_fallback_variant_and_recovers() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.fallback = Some(RevBiFPNConfig::tiny(10).with_resolution(16));
        cfg.workers = 1;
        cfg.queue_capacity = 16;
        cfg.max_batch = 2;
        cfg.watchdog_poll_ms = 5;
        cfg.default_timeout_ms = 20_000;
        cfg.degrade = DegradeConfig {
            max_level: 3,
            high_depth: 4,
            low_depth: 1,
            p99_high_ms: f64::INFINITY, // depth-driven
            p99_low_ms: f64::INFINITY,
            cooldown_ms: 10,
            calm_hold_ms: 20,
        };
        let engine = ServeEngine::start(cfg);

        // Stall the only worker so the queue provably fills; the watchdog
        // walks the ladder down to level 3 while the backlog sits.
        engine.inject_worker_stall(0, 200);
        std::thread::sleep(Duration::from_millis(20));
        let mut pendings = Vec::new();
        for _ in 0..10 {
            if let Ok(p) = engine.submit(image(0.1)) {
                pendings.push(p);
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.degrade_level() < 3 {
            assert!(Instant::now() < deadline, "backlog never drove the ladder to level 3");
            std::thread::sleep(Duration::from_millis(5));
        }

        // The stalled worker wakes into level 3 and serves the backlog from
        // the frozen fallback variant.
        let mut served_at_fallback = 0;
        for p in pendings {
            let resp = p.wait().expect("backlog requests must be served");
            assert!(resp.logits.iter().all(|v| v.is_finite()));
            if resp.degrade_level >= 3 {
                served_at_fallback += 1;
            }
        }
        assert!(served_at_fallback > 0, "some responses must come from the fallback variant");

        // Load gone: the ladder must recover to 0, and full-quality serving
        // must work again (the worker re-freezes the primary on demand).
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.degrade_level() != 0 {
            assert!(Instant::now() < deadline, "ladder never recovered after the backlog drained");
            std::thread::sleep(Duration::from_millis(10));
        }
        // The worker samples the level once per loop pass, so the first
        // response after recovery may still carry a stale (higher) level;
        // retry until one is served at full quality.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let resp = engine.submit(image(0.2)).unwrap().wait().unwrap();
            if resp.degrade_level == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "full-quality serving never resumed");
            std::thread::sleep(Duration::from_millis(10));
        }
        engine.shutdown();
    }

    #[test]
    fn shutdown_delivers_typed_error_to_queued_requests() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.queue_capacity = 8;
        let engine = ServeEngine::start(cfg);
        engine.inject_worker_stall(0, 500);
        std::thread::sleep(Duration::from_millis(30));
        let pending = engine.submit(image(0.1)).unwrap();
        engine.shutdown();
        // Either the worker drained it just before the stall took effect,
        // or it was still queued and must get ShuttingDown — never a hang.
        match pending.wait() {
            Ok(_) | Err(ServeError::ShuttingDown) => {}
            Err(e) => panic!("unexpected outcome: {e}"),
        }
        assert!(matches!(engine.submit(image(0.2)), Err(ServeError::ShuttingDown)));
    }
}
