//! The serving engine: worker pool, batch assembly, panic bisection,
//! degradation routing, and the watchdog.
//!
//! Ownership layout: all cross-thread state lives in one `Arc<Shared>`.
//! Worker threads own their model replicas outright as a [`ModelBank`] of
//! *frozen* models ([`revbifpn::FrozenClassifier`]): BN folded into the
//! convs, activations in the GEMM epilogues, weight panels pre-packed once
//! at freeze time. Replicas are built from the same seeded config, so every
//! worker holds identical weights. The watchdog owns nothing but the `Arc`
//! and the right to replace worker slots.

use crate::batcher::{BatchConfig, Batcher, BucketKey};
use crate::cost::{CostKey, CostModel};
use crate::degrade::{downscale_rung, DegradeConfig, DegradeController};
use crate::error::{ReloadError, ServeError};
use crate::health::BucketHealth;
use crate::governor::{GovernorConfig, MemoryGovernor, PanelKey, Reserve};
use crate::health::{Counters, HealthSnapshot, LatencyWindow, TenantHealth};
use crate::queue::BoundedQueue;
use crate::request::{InferResponse, Outcome, PendingResponse, Ticket};
use crate::tenant::{
    BreakerConfig, BreakerDecision, CircuitBreaker, QuotaScope, TenantId, TenantQuota,
    TenantStats, TokenBucket,
};
use crate::validate::{Quarantine, ValidationPolicy};
use revbifpn::artifact::load_classifier_artifact;
use revbifpn::{FrozenClassifier, RevBiFPNClassifier, RevBiFPNConfig};
use revbifpn_nn::artifact::{prune_quarantine, quarantine_path, rename_with_retries};
use revbifpn_nn::meter;
use revbifpn_tensor::{try_resize, ResizeMode, Shape, Tensor};
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Numeric precision a model variant is served at.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Precision {
    /// f32 fused kernels (the PR-4 frozen fast path).
    #[default]
    F32,
    /// Per-channel int8 weights with dynamic activation quantization; falls
    /// back to [`Precision::F32`] when the accuracy gate trips.
    Int8,
}

/// Accuracy gate applied before an [`Precision::Int8`] variant is allowed
/// to serve: the int8 model must agree with its f32 twin on a batch of
/// seeded calibration inputs, otherwise the worker keeps f32 and counts
/// `serve.quant_gate_trip`.
#[derive(Clone, Copy, Debug)]
pub struct QuantGateConfig {
    /// Calibration images generated (deterministically) per gate check.
    pub calibration_images: usize,
    /// Minimum fraction of calibration images whose argmax must match
    /// between the int8 and f32 variants. Values above 1.0 always trip the
    /// gate (test hook).
    pub min_agreement: f64,
}

impl Default for QuantGateConfig {
    fn default() -> Self {
        Self { calibration_images: 8, min_agreement: 0.75 }
    }
}

/// Everything needed to start a [`ServeEngine`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Primary model variant served at level 0..=2.
    pub model: RevBiFPNConfig,
    /// Optional smaller variant served at degradation level 3.
    pub fallback: Option<RevBiFPNConfig>,
    /// Precision the primary variant is served at.
    pub precision: Precision,
    /// Precision the fallback variant is served at.
    pub fallback_precision: Precision,
    /// Accuracy gate for [`Precision::Int8`] variants.
    pub quant_gate: QuantGateConfig,
    /// Worker threads (each owns a model replica).
    pub workers: usize,
    /// Bounded queue capacity; admissions beyond it are shed.
    pub queue_capacity: usize,
    /// Largest batch a worker assembles at level 0. At degradation
    /// level 1 and deeper the effective cap comes from the cost model
    /// when calibrated (see [`effective_max_batch`]), else falls back to
    /// halving.
    pub max_batch: usize,
    /// Continuous-batching knobs: linger, deadline closing margin, and the
    /// freeze-time cost-model calibration switch.
    pub batch: BatchConfig,
    /// Default per-request deadline, milliseconds from admission.
    pub default_timeout_ms: u64,
    /// Validation bound on input magnitude.
    pub max_abs_input: f32,
    /// Degradation-ladder thresholds.
    pub degrade: DegradeConfig,
    /// Watchdog poll period, milliseconds.
    pub watchdog_poll_ms: u64,
    /// A worker whose heartbeat is older than this is declared stalled and
    /// replaced.
    pub stall_limit_ms: u64,
    /// Capacity of the rejected-payload quarantine ring.
    pub quarantine_capacity: usize,
    /// Latency samples retained for the p50/p99 window.
    pub latency_window: usize,
    /// Restart-storm window: worker restarts within this many milliseconds
    /// count against [`ServeConfig::max_restarts_per_window`].
    pub restart_window_ms: u64,
    /// Restarts a slot may consume inside one window before the watchdog
    /// retires it as lost ([`ServeError::WorkerLost`]).
    pub max_restarts_per_window: u32,
    /// Base delay between consecutive restarts of the same slot,
    /// milliseconds; doubles per restart while the storm persists.
    pub restart_backoff_ms: u64,
    /// Quota applied to tenants without an explicit entry in
    /// [`ServeConfig::tenant_quotas`] (including [`TenantId::DEFAULT`]).
    /// The default is fully permissive, so single-tenant deployments never
    /// notice the quota layer.
    pub default_quota: TenantQuota,
    /// Per-tenant quota overrides installed at startup (later updates via
    /// [`ServeEngine::set_tenant_quota`]).
    pub tenant_quotas: Vec<(TenantId, TenantQuota)>,
    /// Per-tenant circuit-breaker thresholds. The default `trip_ratio`
    /// here is above 1.0, i.e. breakers never trip unless explicitly
    /// configured — opting multi-tenant deployments in, leaving
    /// single-tenant behavior untouched.
    pub breaker: BreakerConfig,
    /// Resident packed-panel byte budget across all workers' `ModelBank`s
    /// (0 = unlimited). Under a budget, cold variants' panels are
    /// LRU-evicted and re-frozen on demand; without one, a variant swap
    /// eagerly drops the other variant's panels (the pre-governor
    /// behavior).
    pub memory_budget_bytes: u64,
    /// When non-zero, bank variants idle at least this long are evicted
    /// proactively by the watchdog, not just under budget pressure.
    pub cold_after_ms: u64,
    /// Quarantined (`.corrupt`) artifacts retained next to the artifact
    /// path; older ones are pruned after each new quarantine.
    pub quarantine_keep: usize,
}

impl ServeConfig {
    /// Defaults around a model config; fields are public for tuning.
    pub fn new(model: RevBiFPNConfig) -> Self {
        Self {
            model,
            fallback: None,
            precision: Precision::F32,
            fallback_precision: Precision::F32,
            quant_gate: QuantGateConfig::default(),
            workers: 2,
            queue_capacity: 32,
            max_batch: 4,
            batch: BatchConfig::default(),
            default_timeout_ms: 2_000,
            max_abs_input: 64.0,
            degrade: DegradeConfig::default(),
            watchdog_poll_ms: 20,
            stall_limit_ms: 2_000,
            quarantine_capacity: 64,
            latency_window: 256,
            restart_window_ms: 10_000,
            max_restarts_per_window: 5,
            restart_backoff_ms: 25,
            default_quota: TenantQuota::default(),
            tenant_quotas: Vec::new(),
            // trip_ratio > 1.0 can never be reached: breakers are inert
            // until a deployment opts in with a real ratio.
            breaker: BreakerConfig { trip_ratio: 1.1, ..BreakerConfig::default() },
            memory_budget_bytes: 0,
            cold_after_ms: 0,
            quarantine_keep: 8,
        }
    }
}

/// A hot-reloaded model generation, shared read-only across workers.
///
/// Workers hold an `Arc` clone while serving, so in-flight batches finish
/// on the generation they started on even if a newer one is published
/// mid-batch; the old mapping is unmapped when the last `Arc` drops.
struct Published {
    model: FrozenClassifier,
    digest: u64,
}

/// What [`ServeEngine::reload_artifact`] reports on success.
#[derive(Clone, Debug, PartialEq)]
pub struct ReloadReport {
    /// Generation number the new model was published under.
    pub generation: u64,
    /// Content digest of the artifact (FNV-1a over TOC + structure).
    pub digest: u64,
    /// Whether the weights are served straight out of the file mapping.
    pub mapped: bool,
    /// Calibration argmax agreement against the previously published
    /// generation, when there was one to compare against.
    pub agreement: Option<f64>,
}

/// What [`ServeEngine::drain`] reports.
#[derive(Clone, Debug, PartialEq)]
pub struct DrainStats {
    /// `true` when the queue emptied before the deadline.
    pub drained_in_time: bool,
    /// Requests still queued at the deadline, each answered with
    /// [`ServeError::ShuttingDown`] — never silently dropped.
    pub flushed: usize,
}

/// Per-tenant live state: quota machinery plus accounting. Lives behind
/// one Mutex keyed by tenant — admission takes the lock once, outcome
/// settlement once; both critical sections are a few arithmetic ops.
struct TenantState {
    quota: TenantQuota,
    bucket: TokenBucket,
    breaker: CircuitBreaker,
    in_flight: u32,
    stats: TenantStats,
}

impl TenantState {
    fn new(quota: TenantQuota, breaker: BreakerConfig, now_ms: u64) -> Self {
        Self {
            quota,
            bucket: TokenBucket::new(&quota, now_ms),
            breaker: CircuitBreaker::new(breaker),
            in_flight: 0,
            stats: TenantStats::default(),
        }
    }
}

/// State shared by clients, workers, and the watchdog.
struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue,
    policy: ValidationPolicy,
    quarantine: Quarantine,
    degrade: DegradeController,
    latency: LatencyWindow,
    counters: Arc<Counters>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    start: Instant,
    /// Per-slot wall-clock heartbeat (ms since `start`).
    heartbeats: Vec<AtomicU64>,
    /// Per-slot generation; a worker exits when its generation is stale.
    generations: Vec<AtomicU64>,
    /// Test hook: a set flag makes the slot's worker panic outside the
    /// batch `catch_unwind`, killing the thread (watchdog must recover).
    crash_flags: Vec<AtomicBool>,
    /// Test hook: milliseconds the slot's worker should sleep without
    /// heart-beating (stall simulation; watchdog must replace it).
    stall_flags: Vec<AtomicU64>,
    /// Test hook: a sticky crash flag makes the slot's worker panic on
    /// *every* loop pass, so replacements die too — the restart-storm case.
    sticky_crash_flags: Vec<AtomicBool>,
    /// Slots the watchdog has permanently retired after a restart storm.
    lost_flags: Vec<AtomicBool>,
    /// Count of retired slots; admission fails once all slots are lost.
    lost_slots: AtomicUsize,
    /// The hot-reloaded model generation currently published, if any.
    /// `None` means workers serve the config-frozen baseline.
    published: Mutex<Option<Arc<Published>>>,
    /// Monotone generation counter; workers re-fetch `published` when this
    /// differs from the generation they last loaded.
    model_generation: AtomicU64,
    /// Graceful drain in progress: admission refuses with `ShuttingDown`
    /// but workers keep flushing the queue.
    draining: AtomicBool,
    /// Per-tenant quota/breaker state, created lazily on first submit.
    tenants: Mutex<BTreeMap<TenantId, TenantState>>,
    /// Shared packed-panel byte ledger all `ModelBank`s freeze through.
    governor: Arc<MemoryGovernor>,
    /// The continuous batcher between the tenant queue and the workers.
    batcher: Batcher,
    /// Affine service-time estimates per (variant, precision, rung),
    /// seeded at freeze time and refined from observed batch timings.
    cost: Arc<CostModel>,
    workers: Mutex<Vec<Option<JoinHandle<()>>>>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Runs `f` on the (lazily created) state for `tenant`.
    fn with_tenant<R>(&self, tenant: TenantId, f: impl FnOnce(&mut TenantState) -> R) -> R {
        let now_ms = self.now_ms();
        let mut tenants = self.tenants.lock().unwrap();
        let state = tenants
            .entry(tenant)
            .or_insert_with(|| TenantState::new(self.cfg.default_quota, self.cfg.breaker, now_ms));
        f(state)
    }
}

/// Settles one post-admission ticket: tenant accounting, breaker feedback,
/// then outcome delivery. EVERY path that resolves an admitted ticket goes
/// through here — deliver, bisection, deadline sheds (dequeue and sweep),
/// drain flushes, and the watchdog's all-lost flush — so the in-flight
/// ledger and breaker windows can never leak.
fn finish(shared: &Shared, ticket: Ticket, outcome: Outcome) {
    let now_ms = shared.now_ms();
    shared.with_tenant(ticket.tenant, |st| {
        st.in_flight = st.in_flight.saturating_sub(1);
        match &outcome {
            Ok(_) => {
                st.stats.completed += 1;
                st.breaker.record(false, ticket.probe, now_ms);
            }
            // Worker-burning failures feed the breaker: the tenant's
            // payloads panicked, missed deadlines, failed batch assembly,
            // or rode a worker down.
            Err(
                ServeError::Poisoned
                | ServeError::WorkerLost
                | ServeError::DeadlineExceeded { .. }
                | ServeError::InvalidShape(_),
            ) => {
                st.stats.failed += 1;
                st.breaker.record(true, ticket.probe, now_ms);
            }
            // Shutdown/global sheds say nothing about the tenant; just
            // hand a probe slot back if this was one.
            Err(_) => {
                if ticket.probe {
                    st.breaker.release_probe();
                }
            }
        }
    });
    ticket.respond(outcome);
}

/// The cost key describing the serving context the engine would dispatch a
/// request under *right now*: variant and precision from the config plus
/// the current degradation level, rung from the level's target resolution.
///
/// Precision is the *configured* one even when the quantization gate trips
/// back to f32 at freeze time — the key labels the serving intent, and
/// calibration/observation both use the same labeling, so the fits stay
/// coherent (documented skew: a tripped gate serves f32 under the int8
/// label).
fn serving_cost_key(cfg: &ServeConfig, level: u8) -> CostKey {
    let use_fallback = level >= 3 && cfg.fallback.is_some();
    let (variant, precision, base_res) = if use_fallback {
        let fb = cfg.fallback.as_ref().expect("checked above");
        (1u8, cfg.fallback_precision, fb.resolution)
    } else {
        (0u8, cfg.precision, cfg.model.resolution)
    };
    let rung = if !use_fallback && level >= 2 {
        downscale_rung(&cfg.model).unwrap_or(base_res)
    } else {
        base_res
    };
    CostKey { variant, precision, rung: rung as u16 }
}

/// End-to-end latency estimate for a newly admitted request, ms:
/// its own single-item dispatch (`a + c` from the calibrated fit) plus
/// the `backlog` items already waiting, each costing the marginal
/// per-item time amortized across the `workers` pool (the per-flush
/// setup cost amortizes across batches and is charged only once, on the
/// request's own dispatch). `None` until the key is calibrated —
/// uncalibrated contexts must admit everything.
fn predict_with_backlog(
    cost: &CostModel,
    key: &CostKey,
    backlog: usize,
    workers: usize,
) -> Option<f64> {
    let own = cost.predict_ms(key, 1)?;
    let marginal = cost.marginal_ms(key).unwrap_or(0.0);
    Some(own + marginal * backlog as f64 / workers.max(1) as f64)
}

/// The batch-size cap the degradation ladder imposes at `level`.
///
/// Level 0 serves the configured `max_batch`. At level >= 1 the ladder's
/// batch-shrink rung consults the cost model: the cap becomes the
/// cost-optimal batch (the knee where amortized dispatch overhead falls
/// below `overhead_frac` of the marginal item cost) — usually smaller than
/// the configured cap, and never larger. Uncalibrated keys fall back to the
/// classic unconditional halving.
pub fn effective_max_batch(
    cost: &CostModel,
    key: &CostKey,
    level: u8,
    configured: usize,
    overhead_frac: f64,
) -> usize {
    let configured = configured.max(1);
    if level == 0 {
        return configured;
    }
    match cost.optimal_batch(key, configured, overhead_frac) {
        Some(b) => b,
        None => (configured / 2).max(1),
    }
}

/// One-shot freeze-time calibration: time single-image and 4-image
/// forwards on deterministic calibration inputs and seed the cost model
/// with the implied affine fit. Seeding is only-if-absent, so a second
/// worker freezing the same variant (or a reload re-publishing it) never
/// clobbers an online-refined fit.
fn calibrate_service_time(cost: &CostModel, key: CostKey, model: &FrozenClassifier) {
    if cost.has(&key) {
        return;
    }
    let res = model.cfg().resolution;
    let one = calibration_batch(1, res);
    let four = calibration_batch(4, res);
    // Warmup pass: first-touch page faults and lazily allocated scratch
    // would otherwise pollute the intercept.
    let _ = model.forward(&one);
    let t0 = Instant::now();
    let _ = model.forward(&one);
    let t1 = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let _ = model.forward(&four);
    let t4 = t0.elapsed().as_secs_f64() * 1e3;
    let c = ((t4 - t1) / 3.0).max(1e-6);
    let a = (t1 - c).max(0.0);
    cost.seed(key, a, c);
    meter::count("serve.cost_calibrated");
}

/// A running inference engine. Submit with [`ServeEngine::submit`], poll
/// with [`ServeEngine::health`], stop with [`ServeEngine::shutdown`] (also
/// runs on drop).
pub struct ServeEngine {
    shared: Arc<Shared>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl ServeEngine {
    /// Tag value that makes the batch runner panic on the tagged request —
    /// the test hook behind the panic-isolation soak.
    pub const POISON_TAG: u64 = 0xDEAD_BEEF;

    /// Builds replicas, spawns the worker pool and the watchdog.
    ///
    /// # Panics
    ///
    /// Panics if the model (or fallback) configuration fails
    /// [`RevBiFPNConfig::validate`] — a construction-time error, not a
    /// serving-path one.
    pub fn start(cfg: ServeConfig) -> Self {
        let shared = Self::build_shared(cfg);
        Self::spawn_threads(shared)
    }

    /// Like [`ServeEngine::start`], but publishes a pre-frozen artifact as
    /// generation 1 *before* the workers spawn. Workers then skip the
    /// expensive config freeze entirely and serve straight off the file
    /// mapping — the millisecond cold-start path.
    ///
    /// # Errors
    ///
    /// Any [`ReloadError`]; no threads are started on failure.
    ///
    /// # Panics
    ///
    /// Same construction-time panics as [`ServeEngine::start`].
    pub fn start_with_artifact(cfg: ServeConfig, path: &Path) -> Result<Self, ReloadError> {
        let shared = Self::build_shared(cfg);
        reload_into(&shared, path)?;
        Ok(Self::spawn_threads(shared))
    }

    fn build_shared(cfg: ServeConfig) -> Arc<Shared> {
        cfg.model.validate().unwrap_or_else(|e| panic!("serve: invalid model config: {e}"));
        if let Some(fb) = &cfg.fallback {
            fb.validate().unwrap_or_else(|e| panic!("serve: invalid fallback config: {e}"));
        }
        assert!(cfg.workers > 0, "serve: need at least one worker");
        assert!(cfg.max_batch > 0, "serve: max_batch must be positive");

        // Startup quota overrides; everyone else is created lazily with the
        // default quota on first submit.
        let mut tenants = BTreeMap::new();
        for (tid, quota) in &cfg.tenant_quotas {
            tenants.insert(*tid, TenantState::new(*quota, cfg.breaker, 0));
        }

        let n = cfg.workers;
        Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            policy: ValidationPolicy::for_resolution(cfg.model.resolution, cfg.max_abs_input),
            quarantine: Quarantine::new(cfg.quarantine_capacity),
            degrade: DegradeController::new(cfg.degrade),
            latency: LatencyWindow::new(cfg.latency_window),
            counters: Arc::new(Counters::default()),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            start: Instant::now(),
            heartbeats: (0..n).map(|_| AtomicU64::new(0)).collect(),
            generations: (0..n).map(|_| AtomicU64::new(0)).collect(),
            crash_flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
            stall_flags: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sticky_crash_flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
            lost_flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
            lost_slots: AtomicUsize::new(0),
            published: Mutex::new(None),
            model_generation: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            tenants: Mutex::new(tenants),
            governor: Arc::new(MemoryGovernor::new(GovernorConfig {
                budget_bytes: cfg.memory_budget_bytes,
                cold_after_ms: cfg.cold_after_ms,
            })),
            batcher: Batcher::new(cfg.batch),
            cost: Arc::new(CostModel::new()),
            workers: Mutex::new(Vec::new()),
            cfg,
        })
    }

    fn spawn_threads(shared: Arc<Shared>) -> Self {
        {
            let mut workers = shared.workers.lock().unwrap();
            for slot in 0..shared.cfg.workers {
                workers.push(Some(spawn_worker(Arc::clone(&shared), slot, 0)));
            }
        }
        let watchdog = spawn_watchdog(Arc::clone(&shared));
        Self { shared, watchdog: Mutex::new(Some(watchdog)) }
    }

    /// Submits one image with the default deadline as [`TenantId::DEFAULT`].
    ///
    /// # Errors
    ///
    /// Any admission-time [`ServeError`]: validation rejections, queue-full
    /// shedding, tenant quota/breaker rejections, or shutdown.
    pub fn submit(&self, image: Tensor) -> Result<PendingResponse, ServeError> {
        self.submit_tenant_with(
            TenantId::DEFAULT,
            image,
            self.shared.cfg.default_timeout_ms,
            None,
        )
    }

    /// Submits one image with an explicit deadline and optional test tag as
    /// [`TenantId::DEFAULT`].
    ///
    /// # Errors
    ///
    /// See [`ServeEngine::submit`].
    pub fn submit_with(
        &self,
        image: Tensor,
        timeout_ms: u64,
        tag: Option<u64>,
    ) -> Result<PendingResponse, ServeError> {
        self.submit_tenant_with(TenantId::DEFAULT, image, timeout_ms, tag)
    }

    /// Submits one image on behalf of `tenant` with the default deadline.
    ///
    /// # Errors
    ///
    /// See [`ServeEngine::submit`].
    pub fn submit_tenant(
        &self,
        tenant: TenantId,
        image: Tensor,
    ) -> Result<PendingResponse, ServeError> {
        self.submit_tenant_with(tenant, image, self.shared.cfg.default_timeout_ms, None)
    }

    /// The full admission pipeline: engine liveness, input validation, then
    /// the tenant gates (circuit breaker, rate quota, in-flight cap), then
    /// the shared bounded queue. Every rejection is a typed [`ServeError`].
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] / [`ServeError::WorkerLost`] when the
    /// engine cannot serve at all; a validation error for bad inputs;
    /// [`ServeError::CircuitOpen`] / [`ServeError::QuotaExceeded`] from the
    /// tenant gates; [`ServeError::QueueFull`] from the shared queue.
    pub fn submit_tenant_with(
        &self,
        tenant: TenantId,
        image: Tensor,
        timeout_ms: u64,
        tag: Option<u64>,
    ) -> Result<PendingResponse, ServeError> {
        let shared = &self.shared;
        if shared.shutdown.load(Ordering::Relaxed) || shared.draining.load(Ordering::Relaxed) {
            return Err(ServeError::ShuttingDown);
        }
        if shared.lost_slots.load(Ordering::Relaxed) >= shared.cfg.workers {
            return Err(ServeError::WorkerLost);
        }
        if let Err(e) = shared.policy.check(&image) {
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            shared.quarantine.record(&image, e.label());
            meter::count("serve.rejected_input");
            return Err(e);
        }

        // Deadline feasibility: when the cost model is calibrated for the
        // current serving context and the request cannot make its budget,
        // shed now instead of burning a worker on a guaranteed deadline
        // miss. The estimate folds the waiting work ahead of this request
        // (tenant queue plus whatever the batcher currently holds) through
        // the same cost model: each backlog item costs the marginal
        // per-item time amortized across the worker pool, on top of the
        // request's own single-item dispatch. Uncalibrated contexts admit
        // everything.
        let ckey = serving_cost_key(&shared.cfg, shared.degrade.level());
        let backlog = shared.queue.depth() + shared.batcher.depth();
        if let Some(predicted) =
            predict_with_backlog(&shared.cost, &ckey, backlog, shared.cfg.workers)
        {
            if (timeout_ms as f64) < predicted {
                shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                shared.counters.infeasible.fetch_add(1, Ordering::Relaxed);
                meter::count("serve.shed_infeasible");
                return Err(ServeError::Infeasible {
                    predicted_ms: predicted.ceil() as u64,
                    budget_ms: timeout_ms,
                });
            }
        }
        let cost = shared.cost.cost_units(&ckey);

        // Tenant gates, all under one short lock. A probe slot taken by the
        // breaker is handed back if a later gate refuses.
        enum Gate {
            Admit { probe: bool, weight: u32 },
            BreakerOpen { retry_in_ms: u64 },
            Quota(QuotaScope),
        }
        let now_ms = shared.now_ms();
        let gate = shared.with_tenant(tenant, |st| {
            let probe = match st.breaker.admit(now_ms) {
                BreakerDecision::Admit => false,
                BreakerDecision::AdmitProbe => true,
                BreakerDecision::Reject { retry_in_ms } => {
                    st.stats.shed_breaker += 1;
                    return Gate::BreakerOpen { retry_in_ms };
                }
            };
            if !st.bucket.try_take(now_ms) {
                if probe {
                    st.breaker.release_probe();
                }
                st.stats.shed_quota += 1;
                return Gate::Quota(QuotaScope::Rate);
            }
            if st.in_flight >= st.quota.max_in_flight {
                if probe {
                    st.breaker.release_probe();
                }
                st.stats.shed_quota += 1;
                return Gate::Quota(QuotaScope::InFlight);
            }
            st.in_flight += 1;
            st.stats.admitted += 1;
            Gate::Admit { probe, weight: st.quota.weight.max(1) }
        });
        let (probe, weight) = match gate {
            Gate::Admit { probe, weight } => (probe, weight),
            Gate::BreakerOpen { retry_in_ms } => {
                shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                meter::count("serve.shed_breaker");
                return Err(ServeError::CircuitOpen { tenant, retry_in_ms });
            }
            Gate::Quota(scope) => {
                shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                meter::count("serve.shed_quota");
                return Err(ServeError::QuotaExceeded { tenant, scope });
            }
        };

        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket {
            id,
            image,
            tag,
            tenant,
            weight,
            cost,
            probe,
            enqueued: now,
            deadline: now + Duration::from_millis(timeout_ms),
            responder: tx,
        };
        match shared.queue.push(ticket) {
            Ok(()) => Ok(PendingResponse { id, rx }),
            Err(rejected) => {
                // Past the tenant gates but refused by the shared queue:
                // unwind the tenant accounting (a queue-full shed is global,
                // not a verdict on this tenant).
                let (_, e) = *rejected;
                shared.with_tenant(tenant, |st| {
                    st.in_flight = st.in_flight.saturating_sub(1);
                    if probe {
                        st.breaker.release_probe();
                    }
                });
                if e.is_shed() {
                    shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                    meter::count("serve.shed_admission");
                }
                Err(e)
            }
        }
    }

    /// Installs (or replaces) `tenant`'s quota at runtime. The token bucket
    /// is reconfigured in place, keeping already-earned tokens capped at
    /// the new burst; the DRR weight applies to subsequent admissions.
    pub fn set_tenant_quota(&self, tenant: TenantId, quota: TenantQuota) {
        self.shared.with_tenant(tenant, |st| {
            st.quota = quota;
            st.bucket.reconfigure(&quota);
        });
    }

    /// Retargets the resident packed-panel budget at runtime (`0` =
    /// unlimited). Shrinking takes effect at the next reservation or
    /// watchdog enforcement tick.
    pub fn set_memory_budget(&self, bytes: u64) {
        self.shared.governor.set_budget_bytes(bytes);
    }

    /// The engine's service-time cost model. Exposed so operators (and
    /// tests) can pre-seed fits — e.g. carry calibration across restarts —
    /// or inspect the live estimates beyond the [`HealthSnapshot`] view.
    pub fn cost_model(&self) -> &CostModel {
        &self.shared.cost
    }

    /// One health poll; cheap and callable from any thread.
    pub fn health(&self) -> HealthSnapshot {
        let s = &self.shared;
        let (batch_size_closes, batch_deadline_closes, batch_linger_closes,
            batch_generation_closes, batch_flush_closes) = s.batcher.close_counts();
        HealthSnapshot {
            queue_depth: s.queue.depth(),
            batcher_depth: s.batcher.depth(),
            batch_size_closes,
            batch_deadline_closes,
            batch_linger_closes,
            batch_generation_closes,
            batch_flush_closes,
            infeasible_count: s.counters.infeasible.load(Ordering::Relaxed),
            batch_buckets: s
                .batcher
                .bucket_stats()
                .iter()
                .map(|(key, stats)| BucketHealth::from_stats(*key, stats))
                .collect(),
            cost_model: s.cost.snapshot(),
            shed_count: s.counters.shed.load(Ordering::Relaxed),
            rejected_count: s.counters.rejected.load(Ordering::Relaxed),
            completed_count: s.counters.completed.load(Ordering::Relaxed),
            quarantined_count: s.counters.quarantined.load(Ordering::Relaxed),
            batch_panic_count: s.counters.batch_panics.load(Ordering::Relaxed),
            degrade_level: s.degrade.level(),
            p50_ms: s.latency.percentile(0.50),
            p99_ms: s.latency.percentile(0.99),
            worker_restarts: s.counters.worker_restarts.load(Ordering::Relaxed),
            peak_cached_bytes: s.counters.peak_cached_bytes.load(Ordering::Relaxed),
            peak_scratch_bytes: s.counters.peak_scratch_bytes.load(Ordering::Relaxed),
            quant_gate_trips: s.counters.quant_gate_trips.load(Ordering::Relaxed),
            resident_f32_bytes: s.counters.resident_f32_bytes.load(Ordering::Relaxed),
            resident_int8_bytes: s.counters.resident_int8_bytes.load(Ordering::Relaxed),
            model_generation: s.model_generation.load(Ordering::Relaxed),
            artifact_digest: s.published.lock().unwrap().as_ref().map(|p| p.digest),
            reloads_ok: s.counters.reloads_ok.load(Ordering::Relaxed),
            reloads_failed: s.counters.reloads_failed.load(Ordering::Relaxed),
            workers_lost: s.counters.worker_lost.load(Ordering::Relaxed),
            swept_expired: s.counters.swept_expired.load(Ordering::Relaxed),
            resident_budget_bytes: s.governor.budget_bytes(),
            resident_governed_bytes: s.governor.resident_bytes(),
            resident_evictions: s.governor.evictions(),
            governor_oversize_grants: s.governor.oversize_grants(),
            tenants: s
                .tenants
                .lock()
                .unwrap()
                .iter()
                .map(|(tid, st)| TenantHealth {
                    tenant: *tid,
                    in_flight: st.in_flight,
                    breaker: st.breaker.state(),
                    breaker_trips: st.breaker.trips(),
                    stats: st.stats,
                })
                .collect(),
        }
    }

    /// Validates the artifact at `path` and, if it passes, publishes it as
    /// the new model generation. In-flight and already-queued requests
    /// finish on the generation they started with; new batches pick up the
    /// new one at their next loop pass.
    ///
    /// Validation runs in this caller's thread, not on the serving path:
    /// structural CRCs, a full per-section payload scan, a serving-contract
    /// check, and a calibration forward that must produce finite logits of
    /// the right shape and (when a previous generation is published) agree
    /// with it on at least `quant_gate.min_agreement` of the calibration
    /// argmaxes.
    ///
    /// # Errors
    ///
    /// Any [`ReloadError`]. Corrupt and gate-rejected artifacts are moved
    /// to `<path>.corrupt` so a retry loop cannot re-publish them; the
    /// previously published generation keeps serving in every failure case.
    pub fn reload_artifact(&self, path: &Path) -> Result<ReloadReport, ReloadError> {
        reload_into(&self.shared, path)
    }

    /// Stops admission (new submissions get [`ServeError::ShuttingDown`]),
    /// lets the workers flush the queue for up to `deadline`, then shuts
    /// down. Every request still queued at the deadline is answered with a
    /// typed [`ServeError::ShuttingDown`] — nothing is dropped silently.
    pub fn drain(&self, deadline: Duration) -> DrainStats {
        self.shared.draining.store(true, Ordering::Relaxed);
        let until = Instant::now() + deadline;
        let mut drained_in_time = true;
        while self.shared.queue.depth() + self.shared.batcher.depth() > 0 {
            if Instant::now() >= until {
                drained_in_time = false;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let flushed = self.shutdown_inner();
        DrainStats { drained_in_time, flushed }
    }

    /// Snapshot of the quarantine ring, oldest first.
    pub fn quarantine_records(&self) -> Vec<crate::validate::QuarantineRecord> {
        self.shared.quarantine.records()
    }

    /// Current degradation level (0 = full quality).
    pub fn degrade_level(&self) -> u8 {
        self.shared.degrade.level()
    }

    /// Test hook: kill worker `slot`'s thread with a panic outside the
    /// batch guard. The watchdog must observe the death and respawn.
    pub fn inject_worker_crash(&self, slot: usize) {
        self.shared.crash_flags[slot].store(true, Ordering::Relaxed);
    }

    /// Test hook: make worker `slot` sleep `ms` without heart-beating, so
    /// the watchdog declares it stalled and replaces it.
    pub fn inject_worker_stall(&self, slot: usize, ms: u64) {
        self.shared.stall_flags[slot].store(ms, Ordering::Relaxed);
    }

    /// Test hook: make worker `slot` crash on *every* loop pass, including
    /// in watchdog-spawned replacements — a restart storm. The watchdog
    /// must retire the slot once its restart budget is exhausted instead
    /// of respawning forever.
    pub fn inject_worker_crash_sticky(&self, slot: usize) {
        self.shared.sticky_crash_flags[slot].store(true, Ordering::Relaxed);
    }

    /// Test hook: clear a sticky crash flag so the slot can recover on its
    /// next (post-backoff) restart.
    pub fn clear_sticky_crash(&self, slot: usize) {
        self.shared.sticky_crash_flags[slot].store(false, Ordering::Relaxed);
    }

    /// Stops admission, delivers [`ServeError::ShuttingDown`] to every
    /// queued request, and joins all threads. Idempotent.
    pub fn shutdown(&self) {
        let _ = self.shutdown_inner();
    }

    /// The single teardown path behind [`ServeEngine::shutdown`] and
    /// [`ServeEngine::drain`]: close the queue, flush it, join the
    /// threads, then flush whatever the batcher still held (workers are
    /// gone, so its contents are final). Returns the flush count so drain
    /// can report it exactly.
    fn shutdown_inner(&self) -> usize {
        // Close first so the flush count is exact: nothing can slip into
        // the queue between measuring and joining (admission is already
        // refusing, but workers racing pop_batch are not).
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.queue.close();
        let mut flushed = 0;
        for ticket in self.shared.queue.drain() {
            flushed += 1;
            finish(&self.shared, ticket, Err(ServeError::ShuttingDown));
        }
        if let Some(h) = self.watchdog.lock().unwrap().take() {
            let _ = h.join();
        }
        {
            let mut workers = self.shared.workers.lock().unwrap();
            for slot in workers.iter_mut() {
                if let Some(h) = slot.take() {
                    let _ = h.join();
                }
            }
        }
        // Workers joined: any tickets parked in open buckets can no longer
        // be dispatched. Answer them typed instead of dropping.
        for ticket in self.shared.batcher.drain() {
            flushed += 1;
            finish(&self.shared, ticket, Err(ServeError::ShuttingDown));
        }
        flushed
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Variant index of the primary model within a bank / the governor ledger.
const VAR_PRIMARY: u32 = 0;
/// Variant index of the fallback model.
const VAR_FALLBACK: u32 = 1;

/// Total patience for a [`Reserve::Pending`] reservation before the
/// [`MemoryGovernor::force_reserve`] liveness valve fires. Kept well under
/// the default `stall_limit_ms` (2 s) so a worker waiting on another slot's
/// eviction is never mistaken for a stalled worker.
const RESERVE_PATIENCE: Duration = Duration::from_millis(250);

/// A worker's resident frozen models, governed by the engine's shared
/// [`MemoryGovernor`].
///
/// Under a byte budget (`memory_budget_bytes > 0`), both variants may stay
/// resident while they fit; the coldest unpinned variants across all
/// workers are LRU-evicted when a reservation needs room, and evicted
/// variants are re-frozen on demand (deterministic per config, so a rebuilt
/// variant is identical to the one dropped). Ungoverned (budget 0), the
/// bank keeps the classic hard-swap discipline: at most one variant's
/// panels live at a time, a swap eagerly drops the other. Every swap is
/// metered `serve.variant_swap`; every governed eviction
/// `serve.panel_evicted`.
///
/// Variants configured as [`Precision::Int8`] pass through the quantization
/// accuracy gate at build time: the int8 model must agree with its f32 twin
/// on seeded calibration inputs, else the worker serves f32 and counts
/// `serve.quant_gate_trip`. The bank publishes its resident f32/int8 panel
/// bytes to the engine [`Counters`] (delta-adjusted, so totals across
/// workers stay exact) and withdraws them on drop.
struct ModelBank {
    primary_cfg: RevBiFPNConfig,
    fallback_cfg: Option<RevBiFPNConfig>,
    primary_precision: Precision,
    fallback_precision: Precision,
    gate: QuantGateConfig,
    counters: Arc<Counters>,
    governor: Arc<MemoryGovernor>,
    /// Shared cost model, seeded after each first freeze of a variant.
    cost: Arc<CostModel>,
    /// Whether install() runs the one-shot service-time calibration.
    calibrate: bool,
    slot: usize,
    /// The engine's epoch, so this bank's ledger timestamps are comparable
    /// with every other worker's (the LRU order is global).
    epoch: Instant,
    primary: Option<FrozenClassifier>,
    fallback: Option<FrozenClassifier>,
    published_f32: usize,
    published_int8: usize,
}

impl ModelBank {
    /// `eager` freezes the primary up front (the classic worker start).
    /// Workers that begin life serving a published artifact generation pass
    /// `false` and never pay the config freeze unless the degradation
    /// ladder routes to the fallback variant.
    fn new(
        cfg: &ServeConfig,
        counters: Arc<Counters>,
        governor: Arc<MemoryGovernor>,
        cost: Arc<CostModel>,
        slot: usize,
        epoch: Instant,
        eager: bool,
    ) -> Self {
        let mut bank = Self {
            primary_cfg: cfg.model.clone(),
            fallback_cfg: cfg.fallback.clone(),
            primary_precision: cfg.precision,
            fallback_precision: cfg.fallback_precision,
            gate: cfg.quant_gate,
            counters,
            governor,
            cost,
            calibrate: cfg.batch.calibrate_on_freeze,
            slot,
            epoch,
            primary: None,
            fallback: None,
            published_f32: 0,
            published_int8: 0,
        };
        if eager {
            bank.install(VAR_PRIMARY);
            bank.governor.set_pinned(bank.key(VAR_PRIMARY), true);
        }
        bank
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn key(&self, variant: u32) -> PanelKey {
        PanelKey::new(self.slot, variant)
    }

    /// Freezes `variant` through the governor: reserve (waiting out victim
    /// evictions if the budget demands them) → pin → freeze → commit the
    /// true panel bytes. The first freeze of a variant reserves 0 bytes
    /// (size unknown); its commit teaches the governor the real size and
    /// self-heals any overshoot by flagging LRU victims.
    fn install(&mut self, variant: u32) {
        let key = self.key(variant);
        let est = self.governor.estimate(variant, 0);
        let patience = Instant::now() + RESERVE_PATIENCE;
        loop {
            match self.governor.reserve(key, est, self.now_ms()) {
                Reserve::Granted => break,
                Reserve::GrantedOversize => {
                    meter::count("serve.governor_oversize");
                    break;
                }
                Reserve::Pending => {
                    // Our own flagged variants we can evict right now; other
                    // slots' victims drain when their workers poll. Past the
                    // patience window (victim owner stalled/dead), take the
                    // liveness valve instead of wedging the serving path.
                    if !self.process_evictions() {
                        if Instant::now() >= patience {
                            self.governor.force_reserve(key, est, self.now_ms());
                            meter::count("serve.governor_oversize");
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
        // Pin before the freeze so a concurrent enforcement tick cannot
        // flag the panels we are about to build.
        self.governor.set_pinned(key, true);
        let (cfg, precision) = match variant {
            VAR_FALLBACK => (
                self.fallback_cfg.clone().expect("install(VAR_FALLBACK) requires a fallback"),
                self.fallback_precision,
            ),
            _ => (self.primary_cfg.clone(), self.primary_precision),
        };
        let frozen = freeze_gated(&cfg, precision, &self.gate, &self.counters);
        let actual = (frozen.packed_bytes() + frozen.quant_packed_bytes()) as u64;
        self.governor.commit(key, actual, self.now_ms());
        if self.calibrate {
            // Key under the *configured* precision even if the quant gate
            // tripped back to f32 — admission and dispatch look the fit up
            // under the configured label (see `serving_cost_key`).
            let ckey = CostKey {
                variant: variant as u8,
                precision,
                rung: cfg.resolution as u16,
            };
            calibrate_service_time(&self.cost, ckey, &frozen);
        }
        match variant {
            VAR_FALLBACK => self.fallback = Some(frozen),
            _ => self.primary = Some(frozen),
        }
        self.republish();
    }

    /// Drops every variant the governor flagged for this slot. Returns
    /// whether anything was actually released.
    fn process_evictions(&mut self) -> bool {
        let mut released = false;
        for variant in self.governor.take_evictions(self.slot) {
            released |= self.drop_variant(variant, true);
        }
        released
    }

    /// Drops one variant's panels and clears its ledger entry. `evicted`
    /// marks a governor-driven eviction (metered) as opposed to an
    /// ordinary withdrawal (hard swap, hot-reload release, drop).
    fn drop_variant(&mut self, variant: u32, evicted: bool) -> bool {
        let model = match variant {
            VAR_FALLBACK => self.fallback.take(),
            _ => self.primary.take(),
        };
        let dropped = model.is_some();
        drop(model);
        self.governor.released(self.key(variant), evicted && dropped);
        if dropped {
            if evicted {
                meter::count("serve.panel_evicted");
            }
            self.republish();
        }
        dropped
    }

    /// Drops the config-frozen primary's packed panels: a hot-reloaded
    /// generation is serving in its place, so keeping both resident would
    /// double the weight footprint. The primary rebuilds deterministically
    /// via [`ModelBank::select`] if it is ever needed again.
    fn release_primary(&mut self) {
        self.drop_variant(VAR_PRIMARY, false);
    }

    /// Whether ladder level `level` routes to the fallback variant.
    fn uses_fallback(&self, level: u8) -> bool {
        level >= 3 && self.fallback_cfg.is_some()
    }

    /// The frozen model serving at ladder level `level`, freezing it on
    /// demand. The selected variant is pinned (never an eviction victim)
    /// and touched for LRU recency; the deselected one is unpinned and —
    /// ungoverned only — dropped eagerly.
    fn select(&mut self, level: u8) -> &FrozenClassifier {
        let governed = self.governor.budget_bytes() > 0;
        let (want, other) = if self.uses_fallback(level) {
            (VAR_FALLBACK, VAR_PRIMARY)
        } else {
            (VAR_PRIMARY, VAR_FALLBACK)
        };
        let missing = match want {
            VAR_FALLBACK => self.fallback.is_none(),
            _ => self.primary.is_none(),
        };
        if missing {
            self.governor.set_pinned(self.key(other), false);
            if !governed {
                self.drop_variant(other, false);
            }
            self.install(want);
            meter::count("serve.variant_swap");
        }
        self.governor.set_pinned(self.key(want), true);
        self.governor.set_pinned(self.key(other), false);
        self.governor.touch(self.key(want), self.now_ms());
        match want {
            VAR_FALLBACK => self.fallback.as_ref().expect("fallback frozen above"),
            _ => self.primary.as_ref().expect("primary frozen above"),
        }
    }

    /// Re-publishes this bank's resident panel bytes to the engine
    /// counters by delta, so the gauges stay a true sum across workers.
    fn republish(&mut self) {
        let f32_now = self.primary.as_ref().map_or(0, |m| m.packed_bytes())
            + self.fallback.as_ref().map_or(0, |m| m.packed_bytes());
        let int8_now = self.primary.as_ref().map_or(0, |m| m.quant_packed_bytes())
            + self.fallback.as_ref().map_or(0, |m| m.quant_packed_bytes());
        adjust_gauge(&self.counters.resident_f32_bytes, self.published_f32, f32_now);
        adjust_gauge(&self.counters.resident_int8_bytes, self.published_int8, int8_now);
        self.published_f32 = f32_now;
        self.published_int8 = int8_now;
    }
}

impl Drop for ModelBank {
    fn drop(&mut self) {
        // Runs during unwinding too, so a crashed worker's contribution is
        // withdrawn (gauges and governor ledger both) before the watchdog's
        // replacement publishes its own.
        self.drop_variant(VAR_PRIMARY, false);
        self.drop_variant(VAR_FALLBACK, false);
    }
}

/// Moves a shared gauge from `prev` to `now` without ever underflowing.
fn adjust_gauge(gauge: &std::sync::atomic::AtomicUsize, prev: usize, now: usize) {
    if now >= prev {
        gauge.fetch_add(now - prev, Ordering::Relaxed);
    } else {
        gauge.fetch_sub(prev - now, Ordering::Relaxed);
    }
}

/// Builds the seeded replica for `cfg` and compiles its frozen form.
fn freeze_variant(cfg: &RevBiFPNConfig, precision: Precision) -> FrozenClassifier {
    let model = RevBiFPNClassifier::new(cfg.clone());
    let frozen = match precision {
        Precision::F32 => model.freeze(),
        Precision::Int8 => model.freeze_int8(),
    };
    frozen.unwrap_or_else(|e| panic!("serve: model config does not freeze: {e}"))
}

/// Builds the variant at the requested precision, applying the quantization
/// accuracy gate to int8 builds. A gate trip keeps the f32 twin.
fn freeze_gated(
    cfg: &RevBiFPNConfig,
    precision: Precision,
    gate: &QuantGateConfig,
    counters: &Counters,
) -> FrozenClassifier {
    match precision {
        Precision::F32 => freeze_variant(cfg, Precision::F32),
        Precision::Int8 => {
            let f32_twin = freeze_variant(cfg, Precision::F32);
            let int8 = freeze_variant(cfg, Precision::Int8);
            if quant_gate_passes(&f32_twin, &int8, gate) {
                int8
            } else {
                counters.quant_gate_trips.fetch_add(1, Ordering::Relaxed);
                meter::count("serve.quant_gate_trip");
                f32_twin
            }
        }
    }
}

/// Runs the calibration batch through both variants and compares per-image
/// argmax agreement against the gate threshold.
fn quant_gate_passes(
    f32_twin: &FrozenClassifier,
    int8: &FrozenClassifier,
    gate: &QuantGateConfig,
) -> bool {
    let n = gate.calibration_images.max(1);
    let res = f32_twin.cfg().resolution;
    let input = calibration_batch(n, res);
    let want = argmaxes(&f32_twin.forward(&input));
    let got = argmaxes(&int8.forward(&input));
    let matches = want.iter().zip(&got).filter(|(a, b)| a == b).count();
    (matches as f64) >= gate.min_agreement * n as f64
}

/// Deterministic pseudo-random calibration images in roughly `[-1, 1]`
/// (xorshift; no RNG dependency, identical on every worker).
fn calibration_batch(n: usize, res: usize) -> Tensor {
    let len = n * 3 * res * res;
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let data = (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / 8_388_608.0) - 1.0
        })
        .collect();
    Tensor::from_vec(Shape::new(n, 3, res, res), data)
        .expect("serve: calibration batch length is exact by construction")
}

/// Per-image argmax over logits `[n, classes, 1, 1]`.
fn argmaxes(logits: &Tensor) -> Vec<usize> {
    let classes = logits.shape().c;
    logits
        .data()
        .chunks_exact(classes)
        .map(|row| {
            row.iter()
                .copied()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map_or(0, |(i, _)| i)
        })
        .collect()
}

/// Moves a failed artifact to its `.corrupt` quarantine path so retry
/// loops cannot re-publish it, then prunes the quarantine directory down
/// to the `keep` newest `.corrupt` files so a reload-retry storm cannot
/// fill the disk. Best-effort: reports whether the move landed, and never
/// masks the original failure.
fn quarantine_artifact(path: &Path, keep: usize) -> bool {
    let ok = rename_with_retries(path, &quarantine_path(path)).is_ok();
    if ok {
        meter::count("serve.artifact_quarantined");
        if let Some(dir) = path.parent() {
            let _ = prune_quarantine(dir, keep);
        }
    }
    ok
}

/// The reload pipeline shared by [`ServeEngine::reload_artifact`] and
/// [`ServeEngine::start_with_artifact`]: load → validate → gate → publish.
fn reload_into(shared: &Arc<Shared>, path: &Path) -> Result<ReloadReport, ReloadError> {
    let fail = |e: ReloadError| -> ReloadError {
        shared.counters.reloads_failed.fetch_add(1, Ordering::Relaxed);
        meter::count("serve.reload_failed");
        e
    };

    // 1. Open and structurally validate (magic, header/TOC/structure CRCs).
    let (model, reader) = match load_classifier_artifact(path, true) {
        Ok(pair) => pair,
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            let quarantined = quarantine_artifact(path, shared.cfg.quarantine_keep);
            return Err(fail(ReloadError::Corrupt { detail: e.to_string(), quarantined }));
        }
        Err(e) => return Err(fail(ReloadError::Io { detail: e.to_string() })),
    };

    // 2. Full payload scan. Reload is off the serving path, so unlike the
    // cold start we can afford to touch every section before publishing.
    if let Err(e) = reader.verify_sections() {
        let quarantined = quarantine_artifact(path, shared.cfg.quarantine_keep);
        return Err(fail(ReloadError::Corrupt { detail: e.to_string(), quarantined }));
    }

    // 3. Serving-contract compatibility (not quarantined: the artifact may
    // be valid for some other deployment).
    let want = &shared.cfg.model;
    if model.cfg().resolution != want.resolution {
        return Err(fail(ReloadError::Incompatible {
            detail: format!(
                "artifact resolution {} but engine serves {}",
                model.cfg().resolution,
                want.resolution
            ),
        }));
    }
    if model.cfg().num_classes != want.num_classes {
        return Err(fail(ReloadError::Incompatible {
            detail: format!(
                "artifact has {} classes but engine serves {}",
                model.cfg().num_classes,
                want.num_classes
            ),
        }));
    }

    // 4. Calibration forward: must not panic and must produce finite logits
    // of the contracted shape.
    let gate = &shared.cfg.quant_gate;
    let n = gate.calibration_images.max(1);
    let input = calibration_batch(n, want.resolution);
    let logits = match panic::catch_unwind(AssertUnwindSafe(|| model.forward(&input))) {
        Ok(l) => l,
        Err(_) => {
            let quarantined = quarantine_artifact(path, shared.cfg.quarantine_keep);
            return Err(fail(ReloadError::Corrupt {
                detail: "model panicked on calibration inputs".into(),
                quarantined,
            }));
        }
    };
    if logits.shape() != model.logit_shape(n) {
        let quarantined = quarantine_artifact(path, shared.cfg.quarantine_keep);
        return Err(fail(ReloadError::Corrupt {
            detail: "calibration logits have the wrong shape".into(),
            quarantined,
        }));
    }
    if !logits.data().iter().all(|v| v.is_finite()) {
        let quarantined = quarantine_artifact(path, shared.cfg.quarantine_keep);
        return Err(fail(ReloadError::Corrupt {
            detail: "calibration logits contain non-finite values".into(),
            quarantined,
        }));
    }

    // 5. Argmax agreement against the generation currently serving, when
    // there is one. First publish has no reference — the finite/shape
    // checks above are the whole gate.
    let previous = shared.published.lock().unwrap().clone();
    let agreement = previous.as_ref().map(|prev| {
        let want_args = argmaxes(&prev.model.forward(&input));
        let got_args = argmaxes(&logits);
        let matches = want_args.iter().zip(&got_args).filter(|(a, b)| a == b).count();
        matches as f64 / n as f64
    });
    if let Some(agr) = agreement {
        if agr < gate.min_agreement {
            let quarantined = quarantine_artifact(path, shared.cfg.quarantine_keep);
            return Err(fail(ReloadError::GateRejected {
                agreement: agr,
                threshold: gate.min_agreement,
                quarantined,
            }));
        }
    }

    // 5b. Service-time calibration for the cost model, off the serving
    // path like the rest of reload validation. Seed-if-absent: an engine
    // that already refined this key online keeps its fit.
    if shared.cfg.batch.calibrate_on_freeze {
        let key = CostKey {
            variant: 0,
            precision: shared.cfg.precision,
            rung: model.cfg().resolution as u16,
        };
        calibrate_service_time(&shared.cost, key, &model);
    }

    // 6. Publish. The generation counter bumps after the slot swap so a
    // worker that observes the new number always finds the new Arc.
    let digest = reader.digest();
    let mapped = reader.is_mapped();
    let generation = shared.model_generation.load(Ordering::Relaxed) + 1;
    *shared.published.lock().unwrap() =
        Some(Arc::new(Published { model, digest }));
    shared.model_generation.store(generation, Ordering::Release);
    shared.counters.reloads_ok.fetch_add(1, Ordering::Relaxed);
    meter::count("serve.reload_ok");
    Ok(ReloadReport { generation, digest, mapped, agreement })
}

fn spawn_worker(shared: Arc<Shared>, slot: usize, generation: u64) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("serve-worker-{slot}"))
        .spawn(move || worker_loop(shared, slot, generation))
        .expect("serve: failed to spawn worker thread")
}

fn worker_loop(shared: Arc<Shared>, slot: usize, generation: u64) {
    // A worker born while an artifact generation is published serves it
    // straight off the mapping and skips the config freeze entirely — the
    // cold-start path.
    let mut published_gen = shared.model_generation.load(Ordering::Acquire);
    let mut published: Option<Arc<Published>> = if published_gen > 0 {
        shared.published.lock().unwrap().clone()
    } else {
        None
    };
    let mut bank = ModelBank::new(
        &shared.cfg,
        Arc::clone(&shared.counters),
        Arc::clone(&shared.governor),
        Arc::clone(&shared.cost),
        slot,
        shared.start,
        published.is_none(),
    );
    let rung = downscale_rung(&shared.cfg.model);

    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        if shared.generations[slot].load(Ordering::Relaxed) != generation {
            // The watchdog declared this thread stalled and replaced it;
            // bow out quietly instead of double-serving the slot.
            return;
        }
        shared.heartbeats[slot].store(shared.now_ms(), Ordering::Relaxed);
        let stall_ms = shared.stall_flags[slot].swap(0, Ordering::Relaxed);
        if stall_ms > 0 {
            std::thread::sleep(Duration::from_millis(stall_ms));
            continue;
        }
        if shared.crash_flags[slot].swap(false, Ordering::Relaxed)
            || shared.sticky_crash_flags[slot].load(Ordering::Relaxed)
        {
            // Deliberately OUTSIDE any catch_unwind: the thread dies and
            // recovery is the watchdog's job, not ours.
            panic!("injected worker crash (slot {slot})");
        }

        // Pick up a newly published generation between batches — never
        // mid-batch, so every request is answered by exactly one model.
        let gen_now = shared.model_generation.load(Ordering::Acquire);
        if gen_now != published_gen {
            published = shared.published.lock().unwrap().clone();
            published_gen = gen_now;
            if published.is_some() {
                bank.release_primary();
            }
        }

        // Honor any eviction flags the governor raised against this slot
        // before pulling more work (panels drop between batches, never
        // under an in-flight forward).
        bank.process_evictions();

        // The serving context this pass dispatches under: the cost key
        // labels (variant, precision, rung); the bucket key adds the model
        // generation so a bucket can never span a generation swap.
        let level = shared.degrade.level();
        let use_fallback = bank.uses_fallback(level);
        let ckey = serving_cost_key(&shared.cfg, level);
        let bkey = BucketKey { generation: published_gen, key: ckey };
        let cap = effective_max_batch(
            &shared.cost,
            &ckey,
            level,
            shared.cfg.max_batch,
            shared.cfg.batch.overhead_frac,
        );
        let target = if shared.cfg.batch.enabled {
            shared.cost.optimal_batch(&ckey, cap, shared.cfg.batch.overhead_frac).unwrap_or(1)
        } else {
            cap
        };

        // With tickets lingering in open buckets, poll fast so linger and
        // deadline-margin edges are honored at millisecond granularity;
        // idle, block the full poll period as before.
        let wait = if shared.batcher.depth() > 0 { 1 } else { 20 };
        let popped = shared.queue.pop_batch(cap, Duration::from_millis(wait));
        if !popped.expired.is_empty() {
            let n = popped.expired.len() as u64;
            shared.counters.shed.fetch_add(n, Ordering::Relaxed);
            meter::count_n("serve.shed_deadline", n);
            let now = Instant::now();
            for ticket in popped.expired {
                let waited_ms = ticket.waited_ms(now);
                finish(&shared, ticket, Err(ServeError::DeadlineExceeded { waited_ms }));
            }
        }
        let now = Instant::now();
        shared.batcher.offer(bkey, popped.batch, now);
        let Some(closed) = shared.batcher.try_close(
            &bkey,
            target,
            cap,
            |b| shared.cost.predict_ms(&ckey, b),
            now,
        ) else {
            continue;
        };

        // Tickets can expire while lingering in a bucket; shed them typed
        // at dispatch instead of wasting forward work on them.
        let dispatch_at = Instant::now();
        let mut batch = Vec::with_capacity(closed.tickets.len());
        for ticket in closed.tickets {
            if ticket.deadline <= dispatch_at {
                shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                meter::count("serve.shed_deadline");
                let waited_ms = ticket.waited_ms(dispatch_at);
                finish(&shared, ticket, Err(ServeError::DeadlineExceeded { waited_ms }));
            } else {
                batch.push(ticket);
            }
        }
        if batch.is_empty() {
            continue;
        }
        let dispatched = batch.len();
        // The fallback route always comes from the bank (a published
        // artifact replaces the *primary* variant only); otherwise the
        // published generation wins over the config-frozen primary.
        let model: &FrozenClassifier = match (&published, use_fallback) {
            (Some(p), false) => &p.model,
            _ => bank.select(level),
        };
        let panics_before = shared.counters.batch_panics.load(Ordering::Relaxed);
        let t0 = Instant::now();
        run_partition(&shared, model, use_fallback, rung, batch, level);
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Bisected batches re-run partitions serially; their timings say
        // nothing about a clean forward, so only clean runs feed the fit.
        if shared.counters.batch_panics.load(Ordering::Relaxed) == panics_before {
            shared.cost.observe(ckey, dispatched, elapsed_ms);
        }
    }
}

/// Runs one partition of a batch, bisecting on panic until the poisoned
/// request is isolated and quarantined. Well-behaved co-batched requests
/// are always eventually served.
fn run_partition(
    shared: &Shared,
    model: &FrozenClassifier,
    use_fallback: bool,
    rung: Option<usize>,
    mut tickets: Vec<Ticket>,
    level: u8,
) {
    if tickets.is_empty() {
        return;
    }
    // The frozen models are fully convolutional, so the level-2 rung needs
    // no model swap: the same packed panels serve any input resolution.
    let target_res = if use_fallback {
        model.cfg().resolution
    } else if level >= 2 {
        rung.unwrap_or(shared.cfg.model.resolution)
    } else {
        shared.cfg.model.resolution
    };

    // Assemble the input outside the guard: any per-request preparation
    // failure is delivered individually, not allowed to sink the batch.
    let mut kept: Vec<Ticket> = Vec::with_capacity(tickets.len());
    let mut data: Vec<f32> = Vec::new();
    for ticket in tickets.drain(..) {
        if ticket.image.shape().h == target_res {
            data.extend_from_slice(ticket.image.data());
            kept.push(ticket);
            continue;
        }
        match try_resize(&ticket.image, target_res, target_res, ResizeMode::Bilinear) {
            Ok(img) => {
                data.extend_from_slice(img.data());
                kept.push(ticket);
            }
            Err(e) => {
                shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                finish(shared, ticket, Err(ServeError::InvalidShape(e)));
            }
        }
    }
    if kept.is_empty() {
        return;
    }
    let input = Tensor::from_vec(Shape::new(kept.len(), 3, target_res, target_res), data)
        .expect("serve: batch assembly produced a mis-sized buffer");

    let poison = kept.iter().any(|t| t.tag == Some(ServeEngine::POISON_TAG));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        assert!(!poison, "poisoned request in batch (injected)");
        model.forward(&input)
    }));

    match result {
        Ok(logits) => {
            // Publish memory peaks before delivering, so a client that polls
            // health() right after its response sees this batch accounted.
            let report = meter::report();
            Counters::raise_peak(&shared.counters.peak_cached_bytes, report.cached_peak);
            Counters::raise_peak(
                &shared.counters.peak_scratch_bytes,
                report.scratch.peak_bytes as usize,
            );
            deliver(shared, kept, &logits, level);
        }
        Err(_) => {
            shared.counters.batch_panics.fetch_add(1, Ordering::Relaxed);
            meter::count("serve.batch_panic");
            // Frozen models are stateless across forwards (`&self`, no
            // activation caches), so an aborted batch leaves nothing to
            // clear — bisect and retry directly.
            if kept.len() == 1 {
                let ticket = kept.pop().unwrap();
                shared.quarantine.record(&ticket.image, "poisoned");
                shared.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                meter::count("serve.quarantined");
                finish(shared, ticket, Err(ServeError::Poisoned));
            } else {
                let right = kept.split_off(kept.len() / 2);
                run_partition(shared, model, use_fallback, rung, kept, level);
                run_partition(shared, model, use_fallback, rung, right, level);
            }
        }
    }
}

/// Splits batched logits `[n, classes, 1, 1]` back into per-ticket
/// responses.
fn deliver(shared: &Shared, tickets: Vec<Ticket>, logits: &Tensor, level: u8) {
    let classes = logits.shape().c;
    let now = Instant::now();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let lvec = logits.data()[i * classes..(i + 1) * classes].to_vec();
        let (class, score) = lvec
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((0, f32::NEG_INFINITY));
        let latency_ms = ticket.waited_ms(now) as f64;
        shared.latency.record(latency_ms);
        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
        let response = InferResponse {
            id: ticket.id,
            class,
            score,
            logits: lvec,
            degrade_level: level,
            latency_ms,
        };
        let outcome: Outcome = Ok(response);
        finish(shared, ticket, outcome);
    }
}

fn spawn_watchdog(shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("serve-watchdog".into())
        .spawn(move || watchdog_loop(shared))
        .expect("serve: failed to spawn watchdog thread")
}

fn watchdog_loop(shared: Arc<Shared>) {
    let n = shared.cfg.workers;
    // Restart-storm bookkeeping is watchdog-local: per-slot restart
    // timestamps inside the sliding window, the next instant a restart is
    // allowed (exponential backoff), and the current backoff step.
    let mut history: Vec<std::collections::VecDeque<u64>> =
        (0..n).map(|_| std::collections::VecDeque::new()).collect();
    let mut next_ok = vec![0u64; n];
    let mut backoff = vec![shared.cfg.restart_backoff_ms.max(1); n];

    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        std::thread::sleep(Duration::from_millis(shared.cfg.watchdog_poll_ms));
        let now = shared.now_ms();
        // Tickets lingering in open buckets are queue pressure too: the
        // degrade controller must see the true backlog.
        shared.degrade.observe(
            shared.queue.depth() + shared.batcher.depth(),
            shared.latency.percentile(0.99),
            now,
        );

        // Proactive deadline sweep: long-deadline floods must not pin queue
        // slots (or bucket slots) until a worker happens to dequeue them.
        let mut swept = shared.queue.sweep_expired(Instant::now());
        swept.extend(shared.batcher.sweep_expired(Instant::now()));
        if !swept.is_empty() {
            let n = swept.len() as u64;
            shared.counters.swept_expired.fetch_add(n, Ordering::Relaxed);
            shared.counters.shed.fetch_add(n, Ordering::Relaxed);
            meter::count_n("queue.swept_expired", n);
            let at = Instant::now();
            for ticket in swept {
                let waited_ms = ticket.waited_ms(at);
                finish(&shared, ticket, Err(ServeError::DeadlineExceeded { waited_ms }));
            }
        }

        // Apply standing memory pressure (cold variants, runtime budget
        // squeezes); owning workers drop flagged panels between batches.
        shared.governor.enforce(now);

        let mut workers = shared.workers.lock().unwrap();
        for slot in 0..workers.len() {
            if shared.lost_flags[slot].load(Ordering::Relaxed) {
                continue; // retired: no more respawns for this slot
            }
            let dead = workers[slot].as_ref().is_none_or(|h| h.is_finished());
            let stalled = !dead
                && now.saturating_sub(shared.heartbeats[slot].load(Ordering::Relaxed))
                    > shared.cfg.stall_limit_ms;
            if dead || stalled {
                if shared.shutdown.load(Ordering::Relaxed) {
                    // Workers exiting at shutdown are not casualties.
                    return;
                }
                let hist = &mut history[slot];
                while hist
                    .front()
                    .is_some_and(|&t| now.saturating_sub(t) > shared.cfg.restart_window_ms)
                {
                    hist.pop_front();
                }
                if hist.is_empty() {
                    // The storm (if any) has aged out: restart cheap again.
                    backoff[slot] = shared.cfg.restart_backoff_ms.max(1);
                }
                if hist.len() >= shared.cfg.max_restarts_per_window as usize {
                    // Restart storm: retire the slot instead of burning CPU
                    // respawning a worker that dies every time.
                    shared.lost_flags[slot].store(true, Ordering::Relaxed);
                    shared.counters.worker_lost.fetch_add(1, Ordering::Relaxed);
                    shared.lost_slots.fetch_add(1, Ordering::Relaxed);
                    meter::count("serve.worker_lost");
                    continue;
                }
                if now < next_ok[slot] {
                    continue; // still backing off
                }
                // Bump the generation first so a merely-stalled thread
                // retires itself when it wakes instead of double-serving.
                let gen = shared.generations[slot].fetch_add(1, Ordering::Relaxed) + 1;
                shared.counters.worker_restarts.fetch_add(1, Ordering::Relaxed);
                shared.heartbeats[slot].store(now, Ordering::Relaxed);
                let handle = spawn_worker(Arc::clone(&shared), slot, gen);
                // Dropping the old handle detaches a stalled-but-alive
                // thread; it exits on its own at the generation check.
                let _old = workers[slot].replace(handle);
                hist.push_back(now);
                next_ok[slot] = now + backoff[slot];
                backoff[slot] = (backoff[slot] * 2).min(shared.cfg.restart_window_ms.max(1));
            }
        }
        drop(workers);

        if shared.lost_slots.load(Ordering::Relaxed) >= n {
            // Nobody left to serve: answer the backlog with the typed
            // error instead of letting tickets wait out their deadlines.
            for ticket in shared.queue.drain() {
                finish(&shared, ticket, Err(ServeError::WorkerLost));
            }
            for ticket in shared.batcher.drain() {
                finish(&shared, ticket, Err(ServeError::WorkerLost));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::BreakerState;

    fn tiny_engine(workers: usize, queue: usize) -> ServeEngine {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = workers;
        cfg.queue_capacity = queue;
        cfg.max_batch = 2;
        cfg.watchdog_poll_ms = 10;
        ServeEngine::start(cfg)
    }

    fn image(fill: f32) -> Tensor {
        Tensor::full(Shape::new(1, 3, 32, 32), fill)
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let engine = tiny_engine(1, 8);
        let pending = engine.submit(image(0.1)).unwrap();
        let resp = pending.wait().expect("inference should succeed");
        assert_eq!(resp.logits.len(), 10);
        assert!(resp.logits.iter().all(|v| v.is_finite()));
        assert_eq!(resp.degrade_level, 0);
        let h = engine.health();
        assert_eq!(h.completed_count, 1);
        assert!(h.peak_scratch_bytes > 0);
        engine.shutdown();
    }

    #[test]
    fn batching_preserves_per_request_results() {
        let engine = tiny_engine(1, 8);
        // Identical inputs through a deterministic model: identical logits,
        // whether batched together or not.
        let a = engine.submit(image(0.2)).unwrap();
        let b = engine.submit(image(0.2)).unwrap();
        let ra = a.wait().unwrap();
        let rb = b.wait().unwrap();
        assert_eq!(ra.logits, rb.logits);
        engine.shutdown();
    }

    #[test]
    fn invalid_inputs_are_rejected_and_quarantined() {
        let engine = tiny_engine(1, 8);
        let bad_shape = Tensor::zeros(Shape::new(1, 3, 16, 16));
        assert!(matches!(
            engine.submit(bad_shape),
            Err(ServeError::InvalidShape(_))
        ));
        let mut nan = image(0.0);
        nan.data_mut()[0] = f32::NAN;
        assert!(matches!(
            engine.submit(nan),
            Err(ServeError::NonFiniteInput { count: 1 })
        ));
        assert!(matches!(
            engine.submit(image(1e9)),
            Err(ServeError::OutOfRange { .. })
        ));
        let h = engine.health();
        assert_eq!(h.rejected_count, 3);
        assert_eq!(h.completed_count, 0);
        assert_eq!(engine.quarantine_records().len(), 3);
        engine.shutdown();
    }

    #[test]
    fn poison_pill_is_bisected_out_and_neighbours_survive() {
        let engine = tiny_engine(1, 8);
        let good1 = engine.submit(image(0.1)).unwrap();
        let poison = engine
            .submit_with(image(0.2), 5_000, Some(ServeEngine::POISON_TAG))
            .unwrap();
        let good2 = engine.submit(image(0.3)).unwrap();
        assert_eq!(poison.wait(), Err(ServeError::Poisoned));
        assert!(good1.wait().is_ok());
        assert!(good2.wait().is_ok());
        let h = engine.health();
        assert_eq!(h.quarantined_count, 1);
        assert!(h.batch_panic_count >= 1);
        assert_eq!(h.completed_count, 2);
        // The worker survived: serve one more.
        assert!(engine.submit(image(0.4)).unwrap().wait().is_ok());
        engine.shutdown();
    }

    #[test]
    fn watchdog_restarts_a_crashed_worker() {
        let engine = tiny_engine(1, 8);
        assert!(engine.submit(image(0.1)).unwrap().wait().is_ok());
        engine.inject_worker_crash(0);
        // The crash fires on the worker's next loop pass; the watchdog then
        // respawns. Serve again to prove recovery.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if engine.health().worker_restarts >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "watchdog never restarted the worker");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(engine.submit(image(0.2)).unwrap().wait().is_ok());
        engine.shutdown();
    }

    #[test]
    fn watchdog_replaces_a_stalled_worker() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.watchdog_poll_ms = 10;
        cfg.stall_limit_ms = 50;
        let engine = ServeEngine::start(cfg);
        assert!(engine.submit(image(0.1)).unwrap().wait().is_ok());
        engine.inject_worker_stall(0, 400);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if engine.health().worker_restarts >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "watchdog never replaced the stalled worker");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(engine.submit(image(0.2)).unwrap().wait().is_ok());
        engine.shutdown();
    }

    #[test]
    fn queue_overflow_sheds_with_typed_error() {
        // No workers draining: fill the queue synchronously.
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.queue_capacity = 2;
        cfg.max_batch = 1;
        // Stall the only worker so nothing drains while we overfill.
        let engine = ServeEngine::start(cfg);
        engine.inject_worker_stall(0, 300);
        std::thread::sleep(Duration::from_millis(30));
        let mut shed = 0;
        let mut pendings = Vec::new();
        for _ in 0..6 {
            match engine.submit(image(0.1)) {
                Ok(p) => pendings.push(p),
                Err(ServeError::QueueFull { .. }) => shed += 1,
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(shed >= 1, "overfill should shed at least one request");
        assert!(engine.health().shed_count >= shed);
        engine.shutdown();
    }

    #[test]
    fn model_bank_swaps_packed_panels_with_the_ladder() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.fallback = Some(RevBiFPNConfig::tiny(10).with_resolution(16));
        cfg.batch.calibrate_on_freeze = false;
        let swaps_before = meter::event_count("serve.variant_swap");

        let counters = Arc::new(Counters::default());
        // Ungoverned (budget 0): the classic hard-swap discipline.
        let governor = Arc::new(MemoryGovernor::new(GovernorConfig::default()));
        let mut bank = ModelBank::new(
            &cfg,
            Arc::clone(&counters),
            governor,
            Arc::new(CostModel::new()),
            0,
            Instant::now(),
            true,
        );
        let resident = meter::packed_current();
        assert!(resident > 0, "primary must be frozen eagerly");

        // Levels 0..=2 serve the primary without touching the panels.
        for level in 0..=2 {
            assert_eq!(bank.select(level).cfg().resolution, 32);
        }
        assert_eq!(meter::packed_current(), resident);
        assert_eq!(meter::event_count("serve.variant_swap"), swaps_before);

        // Level 3 swaps to the fallback: the primary's panels are gone,
        // the (identical-plan, same channel widths) fallback's are resident.
        assert_eq!(bank.select(3).cfg().resolution, 16);
        assert_eq!(meter::event_count("serve.variant_swap"), swaps_before + 1);
        assert!(bank.primary.is_none(), "primary must be dropped on swap");
        assert!(meter::packed_current() > 0);

        // Steady state at level 3: no re-freeze, no extra swap events.
        let at_fallback = meter::packed_current();
        assert_eq!(bank.select(3).cfg().resolution, 16);
        assert_eq!(meter::packed_current(), at_fallback);
        assert_eq!(meter::event_count("serve.variant_swap"), swaps_before + 1);

        // Recovery below level 3 rebuilds the primary deterministically.
        assert_eq!(bank.select(0).cfg().resolution, 32);
        assert_eq!(meter::event_count("serve.variant_swap"), swaps_before + 2);
        assert!(bank.fallback.is_none(), "fallback must be dropped on recovery");
        assert_eq!(meter::packed_current(), resident, "rebuilt primary packs the same bytes");

        assert_eq!(
            counters.resident_f32_bytes.load(Ordering::Relaxed),
            meter::packed_current(),
            "published gauge must track the thread-local meter"
        );
        drop(bank);
        assert_eq!(meter::packed_current(), 0, "dropping the bank releases all panels");
        assert_eq!(counters.resident_f32_bytes.load(Ordering::Relaxed), 0);
        assert_eq!(counters.resident_int8_bytes.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn governed_bank_keeps_both_variants_until_budget_presses() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.fallback = Some(RevBiFPNConfig::tiny(10).with_resolution(16));
        cfg.batch.calibrate_on_freeze = false;

        // Learn the primary's true panel size with a throwaway ungoverned
        // bank, then set a budget that fits exactly one variant.
        let counters = Arc::new(Counters::default());
        let probe_gov = Arc::new(MemoryGovernor::new(GovernorConfig::default()));
        let probe = ModelBank::new(
            &cfg,
            Arc::clone(&counters),
            probe_gov,
            Arc::new(CostModel::new()),
            0,
            Instant::now(),
            true,
        );
        let one_variant = meter::packed_current() as u64;
        drop(probe);
        assert!(one_variant > 0);

        let governor = Arc::new(MemoryGovernor::new(GovernorConfig {
            budget_bytes: one_variant + one_variant / 2,
            cold_after_ms: 0,
        }));
        let mut bank = ModelBank::new(
            &cfg,
            Arc::clone(&counters),
            Arc::clone(&governor),
            Arc::new(CostModel::new()),
            0,
            Instant::now(),
            true,
        );
        assert_eq!(bank.select(0).cfg().resolution, 32);

        // Routing to the fallback must NOT hard-drop the primary: the
        // governor decides. Freezing the (equal-sized) fallback overflows
        // the 1.5x budget, so the unpinned primary is flagged; the worker
        // loop's eviction poll (process_evictions here) drops it.
        assert_eq!(bank.select(3).cfg().resolution, 16);
        assert!(bank.process_evictions(), "budget pressure must evict the cold primary");
        assert!(bank.primary.is_none());
        assert!(bank.fallback.is_some());
        assert!(governor.evictions() >= 1);
        assert!(governor.resident_bytes() <= governor.budget_bytes());
        assert_eq!(governor.oversize_grants(), 0);

        // Recovery re-freezes the primary; now the fallback is the victim,
        // processed inside install()'s own reservation loop.
        assert_eq!(bank.select(0).cfg().resolution, 32);
        bank.process_evictions();
        assert!(bank.fallback.is_none(), "budget fits one variant; fallback must go");
        assert!(governor.evictions() >= 2);
        assert!(governor.resident_bytes() <= governor.budget_bytes());
        assert_eq!(governor.oversize_grants(), 0, "no oversize grant was ever needed");

        drop(bank);
        assert_eq!(governor.resident_bytes(), 0, "drop clears the ledger");
        assert_eq!(meter::packed_current(), 0);
    }

    #[test]
    fn rate_quota_sheds_with_typed_error_and_counts() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.queue_capacity = 16;
        // Effectively no refill, burst of 2: the third submit must shed.
        cfg.default_quota =
            TenantQuota { rate_per_sec: 0.001, burst: 2, max_in_flight: 64, weight: 1 };
        let engine = ServeEngine::start(cfg);
        let t = TenantId(7);
        let a = engine.submit_tenant(t, image(0.1)).unwrap();
        let b = engine.submit_tenant(t, image(0.1)).unwrap();
        match engine.submit_tenant(t, image(0.1)) {
            Err(ServeError::QuotaExceeded { tenant, scope }) => {
                assert_eq!(tenant, t);
                assert_eq!(scope, QuotaScope::Rate);
            }
            other => panic!("expected a rate-quota shed, got {other:?}"),
        }
        assert!(a.wait().is_ok());
        assert!(b.wait().is_ok());
        let h = engine.health();
        let th = h.tenant(t).expect("tenant must appear in health");
        assert_eq!(th.stats.admitted, 2);
        assert_eq!(th.stats.shed_quota, 1);
        assert_eq!(th.stats.completed, 2);
        assert_eq!(th.in_flight, 0, "finish() must settle the in-flight ledger");
        // Another tenant is untouched by tenant 7's empty bucket.
        assert!(engine.submit_tenant(TenantId(8), image(0.1)).unwrap().wait().is_ok());
        engine.shutdown();
    }

    #[test]
    fn in_flight_cap_sheds_until_requests_resolve() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.queue_capacity = 16;
        cfg.default_quota =
            TenantQuota { rate_per_sec: f64::INFINITY, burst: 8, max_in_flight: 2, weight: 1 };
        let engine = ServeEngine::start(cfg);
        engine.inject_worker_stall(0, 200);
        std::thread::sleep(Duration::from_millis(20));
        let t = TenantId(3);
        let a = engine.submit_tenant(t, image(0.1)).unwrap();
        let b = engine.submit_tenant(t, image(0.1)).unwrap();
        match engine.submit_tenant(t, image(0.1)) {
            Err(ServeError::QuotaExceeded { tenant, scope }) => {
                assert_eq!(tenant, t);
                assert_eq!(scope, QuotaScope::InFlight);
            }
            other => panic!("expected an in-flight shed, got {other:?}"),
        }
        assert!(a.wait().is_ok());
        assert!(b.wait().is_ok());
        // Both resolved: capacity is available again.
        assert!(engine.submit_tenant(t, image(0.2)).unwrap().wait().is_ok());
        engine.shutdown();
    }

    #[test]
    fn breaker_trips_on_poison_and_recovers_through_probes() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.queue_capacity = 16;
        cfg.max_batch = 1; // keep poison isolation out of the picture
        cfg.breaker = BreakerConfig {
            window: 8,
            min_samples: 4,
            trip_ratio: 0.5,
            open_ms: 100,
            half_open_probes: 1,
        };
        let engine = ServeEngine::start(cfg);
        let t = TenantId(9);

        // Four poison pills: every outcome is a worker-burning failure, so
        // the breaker must trip at the window minimum.
        for _ in 0..4 {
            let p = engine
                .submit_tenant_with(t, image(0.2), 5_000, Some(ServeEngine::POISON_TAG))
                .unwrap();
            assert_eq!(p.wait(), Err(ServeError::Poisoned));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let retry_hint = loop {
            match engine.submit_tenant(t, image(0.1)) {
                Err(ServeError::CircuitOpen { tenant, retry_in_ms }) => {
                    assert_eq!(tenant, t);
                    break retry_in_ms;
                }
                Ok(p) => {
                    // A pre-trip straggler outcome may still be settling;
                    // drain and retry.
                    let _ = p.wait();
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
            assert!(Instant::now() < deadline, "breaker never opened");
        };
        assert!(retry_hint <= 100);
        let th = engine.health();
        let slice = th.tenant(t).expect("tenant slice");
        assert_eq!(slice.breaker, BreakerState::Open);
        assert!(slice.breaker_trips >= 1);
        assert!(slice.stats.shed_breaker >= 1);

        // Other tenants keep serving while tenant 9 is locked out.
        assert!(engine.submit_tenant(TenantId(1), image(0.1)).unwrap().wait().is_ok());

        // After open_ms, a clean probe closes the breaker again.
        std::thread::sleep(Duration::from_millis(120));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match engine.submit_tenant(t, image(0.1)) {
                Ok(p) => {
                    assert!(p.wait().is_ok());
                    break;
                }
                Err(ServeError::CircuitOpen { .. }) => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
            assert!(Instant::now() < deadline, "breaker never re-admitted");
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if engine.health().tenant(t).unwrap().breaker == BreakerState::Closed {
                break;
            }
            assert!(Instant::now() < deadline, "breaker never re-closed");
            std::thread::sleep(Duration::from_millis(10));
        }
        engine.shutdown();
    }

    #[test]
    fn runtime_quota_update_applies_immediately() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        let engine = ServeEngine::start(cfg);
        let t = TenantId(5);
        assert!(engine.submit_tenant(t, image(0.1)).unwrap().wait().is_ok());
        // Choke the tenant: no refill, burst 1. Reconfiguration keeps one
        // earned token (capped at the new burst), then the bucket is dry.
        engine.set_tenant_quota(
            t,
            TenantQuota { rate_per_sec: 0.001, burst: 1, max_in_flight: 64, weight: 1 },
        );
        assert!(engine.submit_tenant(t, image(0.1)).unwrap().wait().is_ok());
        assert!(matches!(
            engine.submit_tenant(t, image(0.1)),
            Err(ServeError::QuotaExceeded { scope: QuotaScope::Rate, .. })
        ));
        // And re-open it.
        engine.set_tenant_quota(t, TenantQuota::default());
        assert!(engine.submit_tenant(t, image(0.1)).unwrap().wait().is_ok());
        engine.shutdown();
    }

    #[test]
    fn int8_precision_serves_and_reports_resident_bytes() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.precision = Precision::Int8;
        cfg.quant_gate = QuantGateConfig { calibration_images: 4, min_agreement: 0.0 };
        let engine = ServeEngine::start(cfg);
        let resp = engine.submit(image(0.1)).unwrap().wait().expect("int8 serving must work");
        assert!(resp.logits.iter().all(|v| v.is_finite()));
        let h = engine.health();
        assert_eq!(h.completed_count, 1);
        assert_eq!(h.quant_gate_trips, 0);
        assert!(h.resident_int8_bytes > 0, "int8 panels must be resident");
        assert!(
            h.resident_int8_bytes > h.resident_f32_bytes,
            "int8 panels ({}) should dominate the residual f32 (squeeze-excite) panels ({})",
            h.resident_int8_bytes,
            h.resident_f32_bytes
        );
        engine.shutdown();
    }

    #[test]
    fn quant_gate_trip_falls_back_to_f32_serving() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.precision = Precision::Int8;
        // min_agreement above 1.0 cannot be met: the gate must trip.
        cfg.quant_gate = QuantGateConfig { calibration_images: 2, min_agreement: 1.5 };
        let engine = ServeEngine::start(cfg);
        let resp = engine.submit(image(0.1)).unwrap().wait().expect("f32 fallback must serve");
        assert!(resp.logits.iter().all(|v| v.is_finite()));
        let h = engine.health();
        assert!(h.quant_gate_trips >= 1, "the impossible gate must trip");
        assert_eq!(h.resident_int8_bytes, 0, "tripped gate must not keep int8 panels");
        assert!(h.resident_f32_bytes > 0, "the f32 twin must serve instead");
        engine.shutdown();
    }

    #[test]
    fn overload_routes_to_fallback_variant_and_recovers() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.fallback = Some(RevBiFPNConfig::tiny(10).with_resolution(16));
        cfg.workers = 1;
        cfg.queue_capacity = 16;
        cfg.max_batch = 2;
        cfg.watchdog_poll_ms = 5;
        cfg.default_timeout_ms = 20_000;
        cfg.degrade = DegradeConfig {
            max_level: 3,
            high_depth: 4,
            low_depth: 1,
            p99_high_ms: f64::INFINITY, // depth-driven
            p99_low_ms: f64::INFINITY,
            cooldown_ms: 10,
            calm_hold_ms: 20,
        };
        let engine = ServeEngine::start(cfg);

        // Stall the only worker so the queue provably fills; the watchdog
        // walks the ladder down to level 3 while the backlog sits.
        engine.inject_worker_stall(0, 200);
        std::thread::sleep(Duration::from_millis(20));
        let mut pendings = Vec::new();
        for _ in 0..10 {
            if let Ok(p) = engine.submit(image(0.1)) {
                pendings.push(p);
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.degrade_level() < 3 {
            assert!(Instant::now() < deadline, "backlog never drove the ladder to level 3");
            std::thread::sleep(Duration::from_millis(5));
        }

        // The stalled worker wakes into level 3 and serves the backlog from
        // the frozen fallback variant.
        let mut served_at_fallback = 0;
        for p in pendings {
            let resp = p.wait().expect("backlog requests must be served");
            assert!(resp.logits.iter().all(|v| v.is_finite()));
            if resp.degrade_level >= 3 {
                served_at_fallback += 1;
            }
        }
        assert!(served_at_fallback > 0, "some responses must come from the fallback variant");

        // Load gone: the ladder must recover to 0, and full-quality serving
        // must work again (the worker re-freezes the primary on demand).
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.degrade_level() != 0 {
            assert!(Instant::now() < deadline, "ladder never recovered after the backlog drained");
            std::thread::sleep(Duration::from_millis(10));
        }
        // The worker samples the level once per loop pass, so the first
        // response after recovery may still carry a stale (higher) level;
        // retry until one is served at full quality.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let resp = engine.submit(image(0.2)).unwrap().wait().unwrap();
            if resp.degrade_level == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "full-quality serving never resumed");
            std::thread::sleep(Duration::from_millis(10));
        }
        engine.shutdown();
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("revbifpn_serve_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn saved_artifact(dir: &Path, name: &str, seed: u64) -> (std::path::PathBuf, FrozenClassifier) {
        let model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_seed(seed));
        let frozen = model.freeze().unwrap();
        let path = dir.join(name);
        revbifpn::artifact::save_classifier_artifact(&path, &frozen).unwrap();
        (path, frozen)
    }

    #[test]
    fn reload_publishes_new_generation_and_serves_it_bitwise() {
        let dir = tmp_dir("reload_ok");
        let (path, frozen) = saved_artifact(&dir, "m.frz", 9);
        let x = image(0.1);
        let want = frozen.forward(&x);

        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.quant_gate.min_agreement = 0.0; // differently-seeded weights may disagree
        let engine = ServeEngine::start(cfg);
        assert!(engine.submit(x.clone()).unwrap().wait().is_ok());
        assert_eq!(engine.health().model_generation, 0);

        let report = engine.reload_artifact(&path).expect("valid artifact must publish");
        assert_eq!(report.generation, 1);
        assert_eq!(report.agreement, None, "first publish has no reference generation");
        let h = engine.health();
        assert_eq!((h.model_generation, h.reloads_ok, h.reloads_failed), (1, 1, 0));
        assert_eq!(h.artifact_digest, Some(report.digest));

        // Workers pick the new generation up between batches; retry until a
        // response is bitwise equal to the artifact model's own forward.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let resp = engine.submit(x.clone()).unwrap().wait().unwrap();
            if resp.logits == want.data() {
                break;
            }
            assert!(Instant::now() < deadline, "reloaded generation never started serving");
            std::thread::sleep(Duration::from_millis(5));
        }
        engine.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reload_failures_are_typed_and_roll_back() {
        let dir = tmp_dir("reload_fail");
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.quant_gate.min_agreement = 0.0;
        let engine = ServeEngine::start(cfg);

        // Missing file: Io, nothing quarantined, generation unchanged.
        let missing = dir.join("nope.frz");
        let err = engine.reload_artifact(&missing).unwrap_err();
        assert!(matches!(err, ReloadError::Io { .. }), "{err}");

        // Truncated file: Corrupt + quarantined to .corrupt.
        let (good, _) = saved_artifact(&dir, "good.frz", 3);
        let bytes = std::fs::read(&good).unwrap();
        let torn = dir.join("torn.frz");
        std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
        let err = engine.reload_artifact(&torn).unwrap_err();
        assert!(matches!(err, ReloadError::Corrupt { quarantined: true, .. }), "{err}");
        assert!(!torn.exists(), "corrupt artifact must move aside");
        assert!(quarantine_path(&torn).exists(), "quarantine file must exist");

        // Wrong resolution: Incompatible, file left in place (not our kind
        // of corruption).
        let other = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_resolution(16));
        let incompat = dir.join("incompat.frz");
        revbifpn::artifact::save_classifier_artifact(&incompat, &other.freeze().unwrap())
            .unwrap();
        let err = engine.reload_artifact(&incompat).unwrap_err();
        assert!(matches!(err, ReloadError::Incompatible { .. }), "{err}");
        assert!(incompat.exists(), "incompatible artifacts are not quarantined");

        // After three failures: still generation 0 and still serving.
        let h = engine.health();
        assert_eq!((h.model_generation, h.reloads_ok, h.reloads_failed), (0, 0, 3));
        assert!(engine.submit(image(0.2)).unwrap().wait().is_ok());
        engine.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reload_gate_rejects_against_published_generation() {
        let dir = tmp_dir("reload_gate");
        let (path_a, _) = saved_artifact(&dir, "a.frz", 1);
        let (path_b, _) = saved_artifact(&dir, "b.frz", 2);

        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        // Impossible threshold: the first publish passes (no reference to
        // compare against), every later one must gate-reject.
        cfg.quant_gate = QuantGateConfig { calibration_images: 4, min_agreement: 1.5 };
        let engine = ServeEngine::start(cfg);

        assert_eq!(engine.reload_artifact(&path_a).unwrap().generation, 1);
        let err = engine.reload_artifact(&path_b).unwrap_err();
        match err {
            ReloadError::GateRejected { agreement, threshold, quarantined } => {
                assert!(agreement <= 1.0);
                assert_eq!(threshold, 1.5);
                assert!(quarantined);
            }
            other => panic!("expected gate rejection, got {other}"),
        }
        assert!(quarantine_path(&path_b).exists());
        // The previous generation keeps serving.
        let h = engine.health();
        assert_eq!((h.model_generation, h.reloads_ok, h.reloads_failed), (1, 1, 1));
        assert!(engine.submit(image(0.1)).unwrap().wait().is_ok());
        engine.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cold_start_from_artifact_serves_bitwise_without_config_freeze() {
        let dir = tmp_dir("coldstart");
        let (path, frozen) = saved_artifact(&dir, "m.frz", 7);
        let x = image(0.3);
        let want = frozen.forward(&x);

        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.quant_gate.min_agreement = 0.0;
        let engine = ServeEngine::start_with_artifact(cfg, &path).unwrap();
        let h = engine.health();
        assert_eq!(h.model_generation, 1);
        assert!(h.artifact_digest.is_some());
        // Every response comes from the artifact generation — there is no
        // config-frozen baseline to race against.
        let resp = engine.submit(x).unwrap().wait().unwrap();
        assert_eq!(resp.logits, want.data(), "mmap-served logits must be bitwise equal");
        engine.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drain_flushes_queue_with_typed_errors_only() {
        // Generous deadline: everything queued is served.
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.queue_capacity = 8;
        cfg.default_timeout_ms = 30_000;
        let engine = ServeEngine::start(cfg);
        engine.inject_worker_stall(0, 50);
        std::thread::sleep(Duration::from_millis(10));
        let pendings: Vec<_> =
            (0..4).map(|_| engine.submit(image(0.1)).unwrap()).collect();
        let stats = engine.drain(Duration::from_secs(30));
        assert!(stats.drained_in_time);
        assert_eq!(stats.flushed, 0);
        for p in pendings {
            p.wait().expect("drained-in-time requests must be served");
        }
        assert!(matches!(engine.submit(image(0.2)), Err(ServeError::ShuttingDown)));

        // Zero deadline with a stalled worker: queued requests are flushed
        // with typed ShuttingDown — never dropped, never hung.
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.queue_capacity = 8;
        cfg.default_timeout_ms = 30_000;
        let engine = ServeEngine::start(cfg);
        engine.inject_worker_stall(0, 2_000);
        std::thread::sleep(Duration::from_millis(20));
        let pendings: Vec<_> =
            (0..3).map(|_| engine.submit(image(0.1)).unwrap()).collect();
        let stats = engine.drain(Duration::ZERO);
        let mut outcomes = 0;
        for p in pendings {
            match p.wait() {
                Ok(_) | Err(ServeError::ShuttingDown) | Err(ServeError::DeadlineExceeded { .. }) => {
                    outcomes += 1;
                }
                Err(e) => panic!("untyped drain outcome: {e}"),
            }
        }
        assert_eq!(outcomes, 3, "every request must resolve");
        assert!(stats.flushed >= 1, "the stalled worker cannot have drained everything");
        assert!(!stats.drained_in_time);
    }

    #[test]
    fn restart_storm_retires_the_slot_and_escalates_worker_lost() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.watchdog_poll_ms = 5;
        cfg.restart_backoff_ms = 1;
        cfg.restart_window_ms = 60_000;
        cfg.max_restarts_per_window = 3;
        let engine = ServeEngine::start(cfg);
        assert!(engine.submit(image(0.1)).unwrap().wait().is_ok());

        engine.inject_worker_crash_sticky(0);
        let deadline = Instant::now() + Duration::from_secs(30);
        while engine.health().workers_lost == 0 {
            assert!(Instant::now() < deadline, "watchdog never retired the crashing slot");
            std::thread::sleep(Duration::from_millis(10));
        }
        let h = engine.health();
        assert_eq!(h.workers_lost, 1);
        assert!(
            h.worker_restarts <= 3,
            "restarts ({}) must stay within the per-window budget",
            h.worker_restarts
        );
        // All slots lost: admission escalates with the typed error.
        assert!(matches!(engine.submit(image(0.2)), Err(ServeError::WorkerLost)));
        engine.shutdown();
    }

    #[test]
    fn shutdown_delivers_typed_error_to_queued_requests() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.queue_capacity = 8;
        let engine = ServeEngine::start(cfg);
        engine.inject_worker_stall(0, 500);
        std::thread::sleep(Duration::from_millis(30));
        let pending = engine.submit(image(0.1)).unwrap();
        engine.shutdown();
        // Either the worker drained it just before the stall took effect,
        // or it was still queued and must get ShuttingDown — never a hang.
        match pending.wait() {
            Ok(_) | Err(ServeError::ShuttingDown) => {}
            Err(e) => panic!("unexpected outcome: {e}"),
        }
        assert!(matches!(engine.submit(image(0.2)), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn infeasible_deadlines_are_shed_at_admission() {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.queue_capacity = 8;
        // Seed manually instead of racing the worker's freeze calibration,
        // so the fit is exactly known when the submissions land.
        cfg.batch.calibrate_on_freeze = false;
        let engine = ServeEngine::start(cfg);
        let key = CostKey { variant: 0, precision: Precision::F32, rung: 32 };
        engine.cost_model().seed(key, 50.0, 50.0); // predict(1) = 100 ms

        match engine.submit_with(image(0.1), 10, None) {
            Err(ServeError::Infeasible { predicted_ms, budget_ms }) => {
                assert_eq!(budget_ms, 10);
                assert!(predicted_ms >= 100, "predicted_ms = {predicted_ms}");
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
        let h = engine.health();
        assert_eq!(h.infeasible_count, 1);
        assert!(h.shed_count >= 1);
        // A budget that covers the prediction is admitted and served.
        assert!(engine.submit_with(image(0.2), 5_000, None).unwrap().wait().is_ok());
        engine.shutdown();
    }

    /// The admission estimate folds waiting work through the cost model:
    /// `backlog` items ahead each cost the marginal per-item time divided
    /// across the worker pool, on top of the request's own dispatch. A
    /// budget that covers an empty system therefore stops covering a
    /// backlogged one, and the uncalibrated model predicts nothing.
    #[test]
    fn backlog_raises_the_admission_estimate() {
        let m = CostModel::new();
        let key = CostKey { variant: 0, precision: Precision::F32, rung: 32 };
        assert_eq!(predict_with_backlog(&m, &key, 64, 2), None);
        m.seed(key, 10.0, 5.0); // own dispatch: 10 + 5 = 15 ms
        assert_eq!(predict_with_backlog(&m, &key, 0, 2), Some(15.0));
        // 8 waiting items * 5 ms / 2 workers = +20 ms.
        assert_eq!(predict_with_backlog(&m, &key, 8, 2), Some(35.0));
        // A degenerate worker count is clamped, never a division by zero.
        assert_eq!(predict_with_backlog(&m, &key, 8, 0), Some(55.0));
    }

    /// Satellite: the degradation ladder's batch-shrink rung consults the
    /// cost model, and the resulting cap trace is deterministic — two
    /// identical replays of (level, key) sequences produce identical caps,
    /// with calibrated caps coming from the amortization knee rather than
    /// blind halving.
    #[test]
    fn degrade_batch_rung_follows_cost_model_deterministically() {
        let key = CostKey { variant: 0, precision: Precision::F32, rung: 32 };
        let levels: [u8; 6] = [0, 1, 2, 1, 3, 0];
        let configured = 16;

        // Uncalibrated: level >= 1 falls back to the classic halving.
        let cold = CostModel::new();
        let cold_trace: Vec<usize> = levels
            .iter()
            .map(|&l| effective_max_batch(&cold, &key, l, configured, 0.25))
            .collect();
        assert_eq!(cold_trace, vec![16, 8, 8, 8, 8, 16]);

        // Calibrated: a = 2ms, c = 0.5ms → knee at ceil(2 / (0.25 * 0.5))
        // = 16, clamped to the configured cap.
        let warm = CostModel::new();
        warm.seed(key, 2.0, 0.5);
        let warm_trace: Vec<usize> = levels
            .iter()
            .map(|&l| effective_max_batch(&warm, &key, l, configured, 0.25))
            .collect();
        // Steeper marginal cost moves the knee below the halving point.
        let steep = CostModel::new();
        steep.seed(key, 0.5, 1.0);
        let steep_trace: Vec<usize> = levels
            .iter()
            .map(|&l| effective_max_batch(&steep, &key, l, configured, 0.25))
            .collect();
        assert_eq!(warm_trace, vec![16, 16, 16, 16, 16, 16]);
        assert_eq!(steep_trace, vec![16, 2, 2, 2, 2, 16]);

        // Determinism under replay: same model state, same trace.
        let replay: Vec<usize> = levels
            .iter()
            .map(|&l| effective_max_batch(&steep, &key, l, configured, 0.25))
            .collect();
        assert_eq!(replay, steep_trace);
    }
}
