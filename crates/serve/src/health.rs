//! Engine observability: latency window, atomic counters, and the
//! poll-style [`HealthSnapshot`].

use crate::batcher::{BucketStats, HIST_BINS};
use crate::cost::{CostKey, CostReading};
use crate::tenant::{BreakerState, TenantId, TenantStats};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sliding window of recent request latencies with percentile queries.
#[derive(Debug)]
pub struct LatencyWindow {
    window: Mutex<VecDeque<f64>>,
    capacity: usize,
}

impl LatencyWindow {
    /// A window over the last `capacity` latencies.
    pub fn new(capacity: usize) -> Self {
        Self { window: Mutex::new(VecDeque::with_capacity(capacity)), capacity }
    }

    /// Records one latency in milliseconds.
    pub fn record(&self, ms: f64) {
        let mut w = self.window.lock().unwrap();
        if w.len() == self.capacity {
            w.pop_front();
        }
        w.push_back(ms);
    }

    /// Nearest-rank percentile (`p` in `[0, 1]`) over the window; 0.0 when
    /// empty.
    pub fn percentile(&self, p: f64) -> f64 {
        let w = self.window.lock().unwrap();
        if w.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = w.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize)
            .clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Number of recorded samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.lock().unwrap().len()
    }

    /// `true` before the first sample.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Cross-thread engine counters (the meter is thread-local; these are the
/// authoritative whole-engine statistics).
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests completed with an [`crate::InferResponse`].
    pub completed: AtomicU64,
    /// Requests shed by admission control or deadline expiry.
    pub shed: AtomicU64,
    /// Requests rejected by input validation.
    pub rejected: AtomicU64,
    /// Requests quarantined after poisoning a batch.
    pub quarantined: AtomicU64,
    /// Batch panics caught (a single poison pill can contribute several
    /// while bisection narrows it down).
    pub batch_panics: AtomicU64,
    /// Worker threads restarted by the watchdog.
    pub worker_restarts: AtomicU64,
    /// Peak cached activation bytes observed on any worker (from
    /// `nn::meter`).
    pub peak_cached_bytes: AtomicUsize,
    /// Peak kernel scratch-arena bytes observed on any worker.
    pub peak_scratch_bytes: AtomicUsize,
    /// Quantization accuracy-gate trips (an int8 variant disagreed with its
    /// f32 twin on calibration inputs and the worker kept f32).
    pub quant_gate_trips: AtomicU64,
    /// f32 packed weight-panel bytes currently resident across all workers.
    pub resident_f32_bytes: AtomicUsize,
    /// int8 quantized weight-panel bytes currently resident across all
    /// workers.
    pub resident_int8_bytes: AtomicUsize,
    /// Hot reloads that published a new model generation.
    pub reloads_ok: AtomicU64,
    /// Hot reloads rejected (corrupt, incompatible, or gate-failed); the
    /// previous generation kept serving.
    pub reloads_failed: AtomicU64,
    /// Worker slots permanently retired after exhausting their restart
    /// budget (crash storms).
    pub worker_lost: AtomicU64,
    /// Expired tickets removed by the proactive queue sweep (as opposed to
    /// shedding at dequeue).
    pub swept_expired: AtomicU64,
    /// Requests shed at admission because their deadline budget cannot
    /// cover a single-item dispatch under the calibrated cost model.
    pub infeasible: AtomicU64,
}

impl Counters {
    /// Raises a peak gauge to at least `value`.
    pub fn raise_peak(gauge: &AtomicUsize, value: usize) {
        gauge.fetch_max(value, Ordering::Relaxed);
    }
}

/// Per-tenant slice of a [`HealthSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantHealth {
    /// The tenant.
    pub tenant: TenantId,
    /// Admitted-but-unresolved requests right now.
    pub in_flight: u32,
    /// Circuit-breaker state at snapshot time.
    pub breaker: BreakerState,
    /// Times the tenant's breaker has tripped open.
    pub breaker_trips: u64,
    /// Cumulative admission/outcome counters.
    pub stats: TenantStats,
}

/// Per-service-key slice of a [`HealthSnapshot`]: achieved batch sizes for
/// one batcher bucket key (variant, precision, rung).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BucketHealth {
    /// Service key the stats are for.
    pub key: CostKey,
    /// Achieved-batch-size histogram, bins 1 / 2 / 3–4 / 5–8 / 9–16 / 17+
    /// (see [`HIST_BINS`]).
    pub hist: [u64; HIST_BINS],
    /// Batches dispatched under this key.
    pub closes: u64,
    /// Mean achieved batch size.
    pub mean_batch: f64,
}

impl BucketHealth {
    pub(crate) fn from_stats(key: CostKey, stats: &BucketStats) -> Self {
        Self { key, hist: stats.hist, closes: stats.closes, mean_batch: stats.mean_batch() }
    }
}

/// One poll of the engine's health, safe to call from any thread at any
/// time (all sources are atomics or short critical sections).
#[derive(Clone, Debug, PartialEq)]
pub struct HealthSnapshot {
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Requests shed so far (queue-full + deadline).
    pub shed_count: u64,
    /// Requests rejected by validation so far.
    pub rejected_count: u64,
    /// Requests completed successfully so far.
    pub completed_count: u64,
    /// Requests quarantined after panicking the model.
    pub quarantined_count: u64,
    /// Caught batch panics.
    pub batch_panic_count: u64,
    /// Current degradation-ladder level (0 = full quality).
    pub degrade_level: u8,
    /// Median request latency over the recent window, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency over the recent window, milliseconds.
    pub p99_ms: f64,
    /// Worker threads restarted by the watchdog.
    pub worker_restarts: u64,
    /// Peak cached activation bytes on any worker thread.
    pub peak_cached_bytes: usize,
    /// Peak kernel scratch bytes on any worker thread.
    pub peak_scratch_bytes: usize,
    /// Quantization accuracy-gate trips across all workers.
    pub quant_gate_trips: u64,
    /// f32 packed weight-panel bytes resident across all workers.
    pub resident_f32_bytes: usize,
    /// int8 quantized weight-panel bytes resident across all workers.
    pub resident_int8_bytes: usize,
    /// Model generation currently published (0 = config-frozen baseline,
    /// bumped once per successful hot reload).
    pub model_generation: u64,
    /// Content digest of the published artifact, when one is serving.
    pub artifact_digest: Option<u64>,
    /// Successful hot reloads.
    pub reloads_ok: u64,
    /// Failed hot reloads (the previous generation kept serving).
    pub reloads_failed: u64,
    /// Worker slots permanently lost to restart storms.
    pub workers_lost: u64,
    /// Expired tickets removed by the proactive queue sweep.
    pub swept_expired: u64,
    /// Configured resident packed-panel budget in bytes (0 = unlimited).
    pub resident_budget_bytes: u64,
    /// Bytes the memory governor currently counts resident (committed
    /// panels plus in-flight reservations across all workers).
    pub resident_governed_bytes: u64,
    /// Packed-panel evictions completed by the memory governor.
    pub resident_evictions: u64,
    /// Reservations the governor granted over budget to keep serving live
    /// (non-zero means the budget is smaller than the active working set).
    pub governor_oversize_grants: u64,
    /// Tickets currently waiting in open batcher buckets (admitted and
    /// dequeued, not yet dispatched).
    pub batcher_depth: usize,
    /// Batches closed because they reached the cost-model-optimal size.
    pub batch_size_closes: u64,
    /// Batches closed because the earliest deadline minus predicted
    /// service time hit the closing margin.
    pub batch_deadline_closes: u64,
    /// Batches closed because the max linger expired before filling.
    pub batch_linger_closes: u64,
    /// Buckets force-closed on a generation swap or degrade-rung move.
    pub batch_generation_closes: u64,
    /// Pass-through dispatches (batching disabled).
    pub batch_flush_closes: u64,
    /// Requests shed at admission as deadline-infeasible under the cost
    /// model.
    pub infeasible_count: u64,
    /// Per-service-key achieved-batch-size histograms, sorted by key.
    pub batch_buckets: Vec<BucketHealth>,
    /// Cost-model table: affine fit plus residual gauge per service key,
    /// sorted by key. Residual is the EWMA of |observed − predicted|
    /// batch service time in ms — a calibration-quality signal.
    pub cost_model: Vec<CostReading>,
    /// Per-tenant counters and breaker states, sorted by tenant id. Only
    /// tenants that have submitted at least one request appear.
    pub tenants: Vec<TenantHealth>,
}

impl HealthSnapshot {
    /// The [`TenantHealth`] slice for `tenant`, if it has submitted.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantHealth> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let w = LatencyWindow::new(10);
        assert_eq!(w.percentile(0.5), 0.0);
        for v in [10.0, 20.0, 30.0, 40.0] {
            w.record(v);
        }
        assert_eq!(w.percentile(0.5), 20.0);
        assert_eq!(w.percentile(0.99), 40.0);
        assert_eq!(w.percentile(0.0), 10.0);
    }

    #[test]
    fn window_evicts_oldest() {
        let w = LatencyWindow::new(3);
        for v in [1.0, 2.0, 3.0, 100.0] {
            w.record(v);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.percentile(0.0), 2.0);
        assert_eq!(w.percentile(1.0), 100.0);
    }

    #[test]
    fn raise_peak_is_monotone() {
        let g = AtomicUsize::new(0);
        Counters::raise_peak(&g, 100);
        Counters::raise_peak(&g, 40);
        assert_eq!(g.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn snapshot_tenant_lookup_finds_the_right_slice() {
        let snap = HealthSnapshot {
            queue_depth: 0,
            shed_count: 3,
            rejected_count: 0,
            completed_count: 10,
            quarantined_count: 0,
            batch_panic_count: 0,
            degrade_level: 0,
            p50_ms: 1.0,
            p99_ms: 2.0,
            worker_restarts: 0,
            peak_cached_bytes: 0,
            peak_scratch_bytes: 0,
            quant_gate_trips: 0,
            resident_f32_bytes: 0,
            resident_int8_bytes: 0,
            model_generation: 0,
            artifact_digest: None,
            reloads_ok: 0,
            reloads_failed: 0,
            workers_lost: 0,
            swept_expired: 1,
            resident_budget_bytes: 1 << 20,
            resident_governed_bytes: 1 << 19,
            resident_evictions: 2,
            governor_oversize_grants: 0,
            batcher_depth: 0,
            batch_size_closes: 5,
            batch_deadline_closes: 1,
            batch_linger_closes: 2,
            batch_generation_closes: 0,
            batch_flush_closes: 0,
            infeasible_count: 0,
            batch_buckets: Vec::new(),
            cost_model: Vec::new(),
            tenants: vec![
                TenantHealth {
                    tenant: TenantId(1),
                    in_flight: 2,
                    breaker: BreakerState::Closed,
                    breaker_trips: 0,
                    stats: TenantStats { admitted: 8, completed: 6, ..Default::default() },
                },
                TenantHealth {
                    tenant: TenantId(2),
                    in_flight: 0,
                    breaker: BreakerState::Open,
                    breaker_trips: 1,
                    stats: TenantStats { shed_breaker: 4, ..Default::default() },
                },
            ],
        };
        let t1 = snap.tenant(TenantId(1)).expect("tenant 1 present");
        assert_eq!((t1.in_flight, t1.stats.admitted), (2, 8));
        let t2 = snap.tenant(TenantId(2)).expect("tenant 2 present");
        assert_eq!(t2.breaker, BreakerState::Open);
        assert_eq!(t2.stats.shed_breaker, 4);
        assert!(snap.tenant(TenantId(9)).is_none());
        // The snapshot stays cloneable/comparable for test harnesses.
        assert_eq!(snap.clone(), snap);
    }
}
