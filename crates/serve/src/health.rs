//! Engine observability: latency window, atomic counters, and the
//! poll-style [`HealthSnapshot`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sliding window of recent request latencies with percentile queries.
#[derive(Debug)]
pub struct LatencyWindow {
    window: Mutex<VecDeque<f64>>,
    capacity: usize,
}

impl LatencyWindow {
    /// A window over the last `capacity` latencies.
    pub fn new(capacity: usize) -> Self {
        Self { window: Mutex::new(VecDeque::with_capacity(capacity)), capacity }
    }

    /// Records one latency in milliseconds.
    pub fn record(&self, ms: f64) {
        let mut w = self.window.lock().unwrap();
        if w.len() == self.capacity {
            w.pop_front();
        }
        w.push_back(ms);
    }

    /// Nearest-rank percentile (`p` in `[0, 1]`) over the window; 0.0 when
    /// empty.
    pub fn percentile(&self, p: f64) -> f64 {
        let w = self.window.lock().unwrap();
        if w.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = w.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize)
            .clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Number of recorded samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.lock().unwrap().len()
    }

    /// `true` before the first sample.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Cross-thread engine counters (the meter is thread-local; these are the
/// authoritative whole-engine statistics).
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests completed with an [`crate::InferResponse`].
    pub completed: AtomicU64,
    /// Requests shed by admission control or deadline expiry.
    pub shed: AtomicU64,
    /// Requests rejected by input validation.
    pub rejected: AtomicU64,
    /// Requests quarantined after poisoning a batch.
    pub quarantined: AtomicU64,
    /// Batch panics caught (a single poison pill can contribute several
    /// while bisection narrows it down).
    pub batch_panics: AtomicU64,
    /// Worker threads restarted by the watchdog.
    pub worker_restarts: AtomicU64,
    /// Peak cached activation bytes observed on any worker (from
    /// `nn::meter`).
    pub peak_cached_bytes: AtomicUsize,
    /// Peak kernel scratch-arena bytes observed on any worker.
    pub peak_scratch_bytes: AtomicUsize,
    /// Quantization accuracy-gate trips (an int8 variant disagreed with its
    /// f32 twin on calibration inputs and the worker kept f32).
    pub quant_gate_trips: AtomicU64,
    /// f32 packed weight-panel bytes currently resident across all workers.
    pub resident_f32_bytes: AtomicUsize,
    /// int8 quantized weight-panel bytes currently resident across all
    /// workers.
    pub resident_int8_bytes: AtomicUsize,
    /// Hot reloads that published a new model generation.
    pub reloads_ok: AtomicU64,
    /// Hot reloads rejected (corrupt, incompatible, or gate-failed); the
    /// previous generation kept serving.
    pub reloads_failed: AtomicU64,
    /// Worker slots permanently retired after exhausting their restart
    /// budget (crash storms).
    pub worker_lost: AtomicU64,
}

impl Counters {
    /// Raises a peak gauge to at least `value`.
    pub fn raise_peak(gauge: &AtomicUsize, value: usize) {
        gauge.fetch_max(value, Ordering::Relaxed);
    }
}

/// One poll of the engine's health, safe to call from any thread at any
/// time (all sources are atomics or short critical sections).
#[derive(Clone, Debug, PartialEq)]
pub struct HealthSnapshot {
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Requests shed so far (queue-full + deadline).
    pub shed_count: u64,
    /// Requests rejected by validation so far.
    pub rejected_count: u64,
    /// Requests completed successfully so far.
    pub completed_count: u64,
    /// Requests quarantined after panicking the model.
    pub quarantined_count: u64,
    /// Caught batch panics.
    pub batch_panic_count: u64,
    /// Current degradation-ladder level (0 = full quality).
    pub degrade_level: u8,
    /// Median request latency over the recent window, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency over the recent window, milliseconds.
    pub p99_ms: f64,
    /// Worker threads restarted by the watchdog.
    pub worker_restarts: u64,
    /// Peak cached activation bytes on any worker thread.
    pub peak_cached_bytes: usize,
    /// Peak kernel scratch bytes on any worker thread.
    pub peak_scratch_bytes: usize,
    /// Quantization accuracy-gate trips across all workers.
    pub quant_gate_trips: u64,
    /// f32 packed weight-panel bytes resident across all workers.
    pub resident_f32_bytes: usize,
    /// int8 quantized weight-panel bytes resident across all workers.
    pub resident_int8_bytes: usize,
    /// Model generation currently published (0 = config-frozen baseline,
    /// bumped once per successful hot reload).
    pub model_generation: u64,
    /// Content digest of the published artifact, when one is serving.
    pub artifact_digest: Option<u64>,
    /// Successful hot reloads.
    pub reloads_ok: u64,
    /// Failed hot reloads (the previous generation kept serving).
    pub reloads_failed: u64,
    /// Worker slots permanently lost to restart storms.
    pub workers_lost: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let w = LatencyWindow::new(10);
        assert_eq!(w.percentile(0.5), 0.0);
        for v in [10.0, 20.0, 30.0, 40.0] {
            w.record(v);
        }
        assert_eq!(w.percentile(0.5), 20.0);
        assert_eq!(w.percentile(0.99), 40.0);
        assert_eq!(w.percentile(0.0), 10.0);
    }

    #[test]
    fn window_evicts_oldest() {
        let w = LatencyWindow::new(3);
        for v in [1.0, 2.0, 3.0, 100.0] {
            w.record(v);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.percentile(0.0), 2.0);
        assert_eq!(w.percentile(1.0), 100.0);
    }

    #[test]
    fn raise_peak_is_monotone() {
        let g = AtomicUsize::new(0);
        Counters::raise_peak(&g, 100);
        Counters::raise_peak(&g, 40);
        assert_eq!(g.load(Ordering::Relaxed), 100);
    }
}
