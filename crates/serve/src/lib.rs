//! Hardened inference serving for RevBiFPN.
//!
//! A synchronous multi-threaded engine wrapping [`revbifpn::RevBiFPNClassifier`]
//! behind a bounded-queue batching pipeline, built so that hostile inputs,
//! overload, and model panics degrade service instead of crashing it:
//!
//! - **Admission control & load shedding** — a bounded MPMC queue is the
//!   only way in ([`queue::BoundedQueue`]). Beyond capacity, requests are
//!   refused with [`ServeError::QueueFull`]; requests that outlive their
//!   deadline are shed at dequeue with [`ServeError::DeadlineExceeded`].
//!   Nothing queues unboundedly.
//! - **Input validation & quarantine** — shape, non-finite scan, and
//!   dynamic-range checks run at admission ([`ValidationPolicy`]); rejected
//!   payloads leave digest records in a fixed-size [`Quarantine`] ring.
//! - **Panic isolation** — batches run under `catch_unwind`; on panic the
//!   batch is bisected until the poisoned request is isolated, quarantined,
//!   and answered with [`ServeError::Poisoned`]. Co-batched requests are
//!   served; the worker survives.
//! - **Graceful degradation** — under sustained overload a hysteresis
//!   controller ([`DegradeController`]) steps down a ladder: halve the max
//!   batch, bilinear-downscale inputs to the next resolution rung, route to
//!   a smaller fallback variant. It steps back up only after a calm hold.
//! - **Watchdog & health** — a watchdog thread replaces crashed or stalled
//!   workers (heartbeat + generation tokens) and drives the degradation
//!   controller; [`ServeEngine::health`] returns a [`HealthSnapshot`] with
//!   queue depth, shed/rejection counts, latency percentiles, and memory
//!   peaks from the [`revbifpn_nn::meter`].
//!
//! ```no_run
//! use revbifpn::RevBiFPNConfig;
//! use revbifpn_serve::{ServeConfig, ServeEngine};
//! use revbifpn_tensor::{Shape, Tensor};
//!
//! let engine = ServeEngine::start(ServeConfig::new(RevBiFPNConfig::tiny(10)));
//! let image = Tensor::zeros(Shape::new(1, 3, 32, 32));
//! let response = engine.submit(image).unwrap().wait().unwrap();
//! println!("class {} at level {}", response.class, response.degrade_level);
//! engine.shutdown();
//! ```

pub mod batcher;
pub mod chaos;
pub mod cost;
pub mod degrade;
pub mod engine;
pub mod error;
pub mod governor;
pub mod health;
pub mod queue;
pub mod request;
pub mod tenant;
pub mod validate;

pub use batcher::{BatchConfig, Batcher, BucketKey, BucketStats, CloseReason, ClosedBatch};
pub use chaos::{FaultClock, LifecycleFault, TenantFault};
pub use cost::{CostKey, CostModel, CostReading};
pub use degrade::{downscale_rung, DegradeConfig, DegradeController};
pub use engine::{
    DrainStats, Precision, QuantGateConfig, ReloadReport, ServeConfig, ServeEngine,
};
pub use error::{ReloadError, ServeError};
pub use governor::{GovernorConfig, MemoryGovernor, PanelKey, Reserve};
pub use health::{BucketHealth, HealthSnapshot, LatencyWindow, TenantHealth};
pub use queue::starvation_bound_dequeues;
pub use request::{InferResponse, Outcome, PendingResponse};
pub use tenant::{
    BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker, QuotaScope, TenantId,
    TenantQuota, TenantStats, TokenBucket,
};
pub use validate::{payload_digest, Quarantine, QuarantineRecord, ValidationPolicy};
