//! Deterministic chaos harness for the model lifecycle.
//!
//! A [`FaultClock`] is a seeded xorshift stream turned into a schedule of
//! [`LifecycleFault`]s: the same seed always yields the same fault
//! sequence, so a chaos soak that trips a bug is replayable by seed alone.
//! The faults cover the whole artifact lifecycle — torn and short writes,
//! disk-full, directory-fsync loss, transient I/O, bit rot in the stored
//! file, worker crashes and stalls, and reloads raced against overload.
//!
//! Write-path faults are applied by converting them into the
//! [`revbifpn_nn::artifact::IoFaults`] hooks via
//! [`LifecycleFault::io_faults`]; storage rot is applied directly with
//! [`flip_bit_in_file`]. The lifecycle soak in `tests/lifecycle_chaos.rs`
//! drives a live [`crate::ServeEngine`] through the schedule and asserts
//! the invariant this crate is built around: **every fault resolves to a
//! typed error, a rollback, or a quarantine — never a crash and never a
//! wrong answer.**

use revbifpn_nn::artifact::IoFaults;
use std::fs;
use std::io;
use std::path::Path;

/// One fault drawn from a [`FaultClock`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifecycleFault {
    /// No fault this tick: the control case — everything must succeed.
    None,
    /// The process "dies" mid-write: a partial tmp file, no rename.
    TornWrite,
    /// A lying lower layer drops tail bytes but completes the rename.
    ShortWrite,
    /// `ENOSPC` partway through the tmp write.
    DiskFull,
    /// The parent-directory fsync after the rename fails.
    DirFsyncFail,
    /// A burst of transient (`EINTR`-class) errors that retries must absorb.
    TransientIo,
    /// One bit of the stored artifact flips (storage rot).
    BitFlip,
    /// A worker thread is killed outside the batch guard.
    WorkerCrash,
    /// A worker stalls without heart-beating.
    WorkerStall,
    /// A hot reload races a queue-overflowing request burst.
    ReloadDuringOverload,
}

/// All faults a [`FaultClock`] can schedule, in draw order.
pub const ALL_FAULTS: [LifecycleFault; 10] = [
    LifecycleFault::None,
    LifecycleFault::TornWrite,
    LifecycleFault::ShortWrite,
    LifecycleFault::DiskFull,
    LifecycleFault::DirFsyncFail,
    LifecycleFault::TransientIo,
    LifecycleFault::BitFlip,
    LifecycleFault::WorkerCrash,
    LifecycleFault::WorkerStall,
    LifecycleFault::ReloadDuringOverload,
];

impl LifecycleFault {
    /// The write-path fault hooks this fault corresponds to, when it is a
    /// write-path fault. `offset` positions byte-count faults inside the
    /// artifact (clamped by the injection layer to the payload size).
    pub fn io_faults(self, offset: usize) -> Option<IoFaults> {
        match self {
            LifecycleFault::TornWrite => {
                Some(IoFaults { torn_write: Some(offset), ..IoFaults::default() })
            }
            LifecycleFault::ShortWrite => Some(IoFaults {
                short_write: Some((offset % 64) + 1),
                ..IoFaults::default()
            }),
            LifecycleFault::DiskFull => {
                Some(IoFaults { enospc_after: Some(offset), ..IoFaults::default() })
            }
            LifecycleFault::DirFsyncFail => {
                Some(IoFaults { fail_dir_fsync: true, ..IoFaults::default() })
            }
            LifecycleFault::TransientIo => {
                Some(IoFaults { transient_errors: 2, ..IoFaults::default() })
            }
            _ => None,
        }
    }

    /// `true` when the fault corrupts or suppresses the *written* artifact
    /// (so a subsequent reload must fail or serve the previous generation).
    pub fn breaks_artifact(self) -> bool {
        matches!(
            self,
            LifecycleFault::TornWrite
                | LifecycleFault::ShortWrite
                | LifecycleFault::DiskFull
                | LifecycleFault::BitFlip
        )
    }
}

/// One multi-tenant overload fault drawn from a [`FaultClock`].
///
/// These live in their own schedule (see [`TENANT_FAULTS`] and
/// [`FaultClock::next_tenant_fault`]) so adding tenant chaos does not
/// perturb the [`ALL_FAULTS`] draw order that seeded lifecycle soaks
/// replay by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantFault {
    /// No fault this tick: the control case — fair serving must hold.
    None,
    /// One tenant floods far past its rate quota; the others' goodput and
    /// latency must stay within the fairness bounds.
    TenantFlood,
    /// A tenant's quota is flapped (choked, then restored); admission must
    /// track it immediately and never leak in-flight accounting.
    QuotaFlap,
    /// A tenant turns poisonous (panicking payloads); its circuit breaker
    /// must trip and later recover through probes.
    PoisonBurst,
    /// The resident packed-panel budget is squeezed at runtime; the
    /// governor must evict down toward the new budget without killing
    /// serving.
    BudgetSqueeze,
}

/// All tenant faults a [`FaultClock`] can schedule, in draw order.
pub const TENANT_FAULTS: [TenantFault; 5] = [
    TenantFault::None,
    TenantFault::TenantFlood,
    TenantFault::QuotaFlap,
    TenantFault::PoisonBurst,
    TenantFault::BudgetSqueeze,
];

/// A seeded, replayable fault schedule.
///
/// Deterministic by construction: the stream is pure xorshift64 state, so
/// `FaultClock::new(seed)` produces the identical draw sequence on every
/// platform and run. There is no wall-clock or OS entropy anywhere.
#[derive(Clone, Debug)]
pub struct FaultClock {
    state: u64,
    seed: u64,
    ticks: u64,
}

impl FaultClock {
    /// A clock over `seed`; equal seeds yield equal schedules.
    pub fn new(seed: u64) -> Self {
        // Zero state would lock xorshift at zero forever; displace it.
        let state = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        Self { state, seed, ticks: 0 }
    }

    /// The seed this clock replays.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws drawn so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Next raw pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.ticks += 1;
        self.state
    }

    /// Uniform draw in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "chaos: empty draw range");
        (self.next_u64() % bound as u64) as usize
    }

    /// The next scheduled fault.
    pub fn next_fault(&mut self) -> LifecycleFault {
        ALL_FAULTS[self.next_below(ALL_FAULTS.len())]
    }

    /// The next scheduled multi-tenant fault (independent schedule; shares
    /// the same deterministic stream).
    pub fn next_tenant_fault(&mut self) -> TenantFault {
        TENANT_FAULTS[self.next_below(TENANT_FAULTS.len())]
    }
}

/// Flips bit `bit` (counting from the file's first byte, LSB first) of the
/// file at `path`, in place — simulated storage rot. Deliberately *not*
/// atomic: rot does not go through `write_atomic`.
///
/// # Errors
///
/// I/O errors, or `InvalidInput` when the file is empty (no bit to flip).
pub fn flip_bit_in_file(path: &Path, bit: u64) -> io::Result<()> {
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "cannot flip a bit in an empty file"));
    }
    let idx = (bit / 8) as usize % bytes.len();
    bytes[idx] ^= 1 << (bit % 8);
    fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let mut a = FaultClock::new(42);
        let mut b = FaultClock::new(42);
        let sa: Vec<LifecycleFault> = (0..64).map(|_| a.next_fault()).collect();
        let sb: Vec<LifecycleFault> = (0..64).map(|_| b.next_fault()).collect();
        assert_eq!(sa, sb);
        assert_eq!(a.ticks(), 64);

        let mut c = FaultClock::new(43);
        let sc: Vec<LifecycleFault> = (0..64).map(|_| c.next_fault()).collect();
        assert_ne!(sa, sc, "different seeds should diverge");
    }

    #[test]
    fn schedule_covers_every_fault_kind() {
        let mut clock = FaultClock::new(7);
        let mut seen = [false; ALL_FAULTS.len()];
        for _ in 0..512 {
            let f = clock.next_fault();
            seen[ALL_FAULTS.iter().position(|&x| x == f).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s), "512 draws should hit every fault kind");
    }

    #[test]
    fn tenant_schedule_is_deterministic_and_covers_all_kinds() {
        let mut a = FaultClock::new(11);
        let mut b = FaultClock::new(11);
        let sa: Vec<TenantFault> = (0..64).map(|_| a.next_tenant_fault()).collect();
        let sb: Vec<TenantFault> = (0..64).map(|_| b.next_tenant_fault()).collect();
        assert_eq!(sa, sb);
        let mut seen = [false; TENANT_FAULTS.len()];
        for f in sa {
            seen[TENANT_FAULTS.iter().position(|&x| x == f).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 draws should hit every tenant fault kind");
    }

    #[test]
    fn zero_seed_still_ticks() {
        let mut clock = FaultClock::new(0);
        assert_ne!(clock.next_u64(), 0);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let dir = std::env::temp_dir().join(format!("revbifpn_chaos_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        let original = vec![0u8; 32];
        fs::write(&path, &original).unwrap();
        flip_bit_in_file(&path, 9).unwrap();
        let got = fs::read(&path).unwrap();
        let diff: u32 = original
            .iter()
            .zip(&got)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
        assert_eq!(got[1], 0b10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_fault_mapping_matches_kind() {
        assert!(LifecycleFault::TornWrite.io_faults(100).unwrap().torn_write.is_some());
        assert!(LifecycleFault::DiskFull.io_faults(100).unwrap().enospc_after.is_some());
        assert!(LifecycleFault::DirFsyncFail.io_faults(0).unwrap().fail_dir_fsync);
        assert_eq!(LifecycleFault::TransientIo.io_faults(0).unwrap().transient_errors, 2);
        assert!(LifecycleFault::BitFlip.io_faults(0).is_none());
        assert!(LifecycleFault::TornWrite.breaks_artifact());
        assert!(!LifecycleFault::DirFsyncFail.breaks_artifact());
    }
}
