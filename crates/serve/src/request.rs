//! Request/response plumbing: the in-flight ticket, the completed response,
//! and the client-side handle used to await one.

use crate::error::ServeError;
use crate::tenant::TenantId;
use revbifpn_tensor::Tensor;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One completed inference.
#[derive(Clone, Debug, PartialEq)]
pub struct InferResponse {
    /// Engine-assigned request id (monotonic per engine).
    pub id: u64,
    /// Argmax class index.
    pub class: usize,
    /// Raw logit of the argmax class.
    pub score: f32,
    /// Full logit vector, one entry per class.
    pub logits: Vec<f32>,
    /// Degradation level the request was served at (0 = full quality).
    pub degrade_level: u8,
    /// Wall-clock latency from admission to response, in milliseconds.
    pub latency_ms: f64,
}

/// The terminal outcome of a request: response or typed error.
pub type Outcome = Result<InferResponse, ServeError>;

/// An admitted request travelling through the engine.
#[derive(Debug)]
pub struct Ticket {
    /// Engine-assigned request id.
    pub id: u64,
    /// Validated input image `[1, 3, r, r]`.
    pub image: Tensor,
    /// Test-only poison tag (see `ServeEngine::POISON_TAG`); `None` in
    /// production traffic.
    pub tag: Option<u64>,
    /// Tenant the request was admitted for.
    pub tenant: TenantId,
    /// Fair-scheduler weight snapshotted from the tenant's quota at
    /// admission (the DRR quantum; see `queue`).
    pub weight: u32,
    /// Predicted cost units this request charges against its tenant's
    /// deficit when dequeued (see `cost::CostModel::cost_units`; >= 1).
    /// Expired-and-swept tickets charge nothing regardless of this value.
    pub cost: u32,
    /// `true` when this request is a circuit-breaker half-open probe; its
    /// outcome must be reported back to the breaker with the probe flag.
    pub probe: bool,
    /// When the request was admitted.
    pub enqueued: Instant,
    /// When the request stops being worth serving.
    pub deadline: Instant,
    /// Channel the outcome is delivered on.
    pub responder: mpsc::Sender<Outcome>,
}

impl Ticket {
    /// Delivers the outcome, ignoring a client that stopped listening.
    pub fn respond(self, outcome: Outcome) {
        let _ = self.responder.send(outcome);
    }

    /// Milliseconds the ticket has been waiting since admission.
    pub fn waited_ms(&self, now: Instant) -> u64 {
        now.saturating_duration_since(self.enqueued).as_millis() as u64
    }
}

/// Client-side handle to a submitted request.
///
/// Dropping the handle abandons the response (the engine still completes
/// the work); [`PendingResponse::wait`] blocks until the outcome arrives.
#[derive(Debug)]
pub struct PendingResponse {
    pub(crate) id: u64,
    pub(crate) rx: mpsc::Receiver<Outcome>,
}

impl PendingResponse {
    /// The engine-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the outcome arrives. A worker dying with the request in
    /// flight surfaces as [`ServeError::WorkerLost`], never a hang-forever.
    pub fn wait(self) -> Outcome {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }

    /// Blocks up to `timeout`; `None` means the outcome is still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Outcome> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => Some(outcome),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::WorkerLost)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revbifpn_tensor::Shape;

    fn ticket() -> (Ticket, mpsc::Receiver<Outcome>) {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        (
            Ticket {
                id: 7,
                image: Tensor::zeros(Shape::new(1, 3, 8, 8)),
                tag: None,
                tenant: TenantId::DEFAULT,
                weight: 1,
                cost: 1,
                probe: false,
                enqueued: now,
                deadline: now + Duration::from_secs(1),
                responder: tx,
            },
            rx,
        )
    }

    #[test]
    fn respond_delivers_outcome() {
        let (t, rx) = ticket();
        t.respond(Err(ServeError::Poisoned));
        assert_eq!(rx.recv().unwrap(), Err(ServeError::Poisoned));
    }

    #[test]
    fn respond_survives_dropped_client() {
        let (t, rx) = ticket();
        drop(rx);
        t.respond(Err(ServeError::ShuttingDown)); // must not panic
    }

    #[test]
    fn pending_wait_reports_worker_loss_on_disconnect() {
        let (tx, rx) = mpsc::channel();
        let p = PendingResponse { id: 1, rx };
        drop(tx);
        assert_eq!(p.wait(), Err(ServeError::WorkerLost));
    }
}
