//! Continuous cross-request batcher.
//!
//! Sits between the deficit-weighted tenant queue and the workers: workers
//! pull admitted tickets off the fair queue and *offer* them into buckets
//! keyed by (model generation, variant, precision, rung). A bucket closes —
//! and its contents dispatch as one batch — when any of these fire:
//!
//! - **Size**: the bucket reached the cost-model-optimal batch size for its
//!   service key ([`crate::cost::CostModel::optimal_batch`]).
//! - **Deadline margin**: the earliest deadline in the bucket, minus the
//!   predicted service time of the batch as it stands, minus
//!   [`BatchConfig::close_margin_ms`], has arrived. Waiting any longer
//!   would make the batch unservable for its most urgent member.
//! - **Linger**: the bucket has been open [`BatchConfig::linger_ms`]
//!   without filling. Bounds the latency a lone request pays for batching.
//! - **Generation/key change**: the bucket's key no longer matches the
//!   worker's current serving context (a hot reload published a new
//!   generation, or the degrade ladder moved the rung). Such buckets close
//!   immediately so a batch never spans model generations.
//!
//! All decisions take an explicit `now: Instant`, so closing behavior is
//! deterministically testable without sleeping.
//!
//! The batcher holds no locks while batches run; workers race to
//! [`Batcher::try_close`] and the mutex hands each closed batch to exactly
//! one of them. Tickets stranded in buckets are visible to the watchdog's
//! deadline sweep ([`Batcher::sweep_expired`]) and to drain/shutdown
//! ([`Batcher::drain`]) — nothing is silently dropped.

use crate::cost::CostKey;
use crate::request::Ticket;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Knobs for the continuous batcher.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchConfig {
    /// `false` reverts to pass-through dispatch: whatever one queue pop
    /// returns runs immediately as its own batch (the pre-batcher
    /// behavior; used as the A/B baseline in the throughput bench).
    pub enabled: bool,
    /// Longest a bucket may stay open waiting to fill, milliseconds.
    pub linger_ms: u64,
    /// Safety margin subtracted from the earliest deadline when deciding
    /// the latest moment a bucket can close and still be served in time,
    /// milliseconds. Covers dispatch jitter and cost-model residual.
    pub close_margin_ms: u64,
    /// Knee threshold for [`crate::cost::CostModel::optimal_batch`]: close
    /// on size once amortized overhead per item falls below this fraction
    /// of the marginal item cost.
    pub overhead_frac: f64,
    /// Run the one-shot timing calibration (two timed forwards) when a
    /// variant is frozen into a worker's bank, seeding the cost model.
    pub calibrate_on_freeze: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            linger_ms: 2,
            close_margin_ms: 5,
            overhead_frac: 0.25,
            calibrate_on_freeze: true,
        }
    }
}

/// Full bucket identity: service key plus the model generation it was
/// opened under. Generation is part of the key, so tickets offered after a
/// hot reload land in a fresh bucket and a batch never spans generations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BucketKey {
    /// `ServeEngine` publish generation (0 = serving from the built-in
    /// bank, before any artifact publish).
    pub generation: u64,
    /// Service key (variant, precision, rung).
    pub key: CostKey,
}

/// Why a batch was closed and dispatched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// Reached the cost-model-optimal size.
    Size,
    /// Earliest deadline minus predicted service time hit the margin.
    Deadline,
    /// Max linger expired before the bucket filled.
    Linger,
    /// Bucket key no longer matches the serving context (generation swap
    /// or degrade-rung move).
    Generation,
    /// Pass-through dispatch (batching disabled).
    Flush,
}

/// A closed bucket handed to exactly one worker for dispatch.
#[derive(Debug)]
pub struct ClosedBatch {
    pub key: BucketKey,
    pub reason: CloseReason,
    pub tickets: Vec<Ticket>,
}

/// Histogram bins over achieved batch sizes: 1, 2, 3–4, 5–8, 9–16, 17+.
pub const HIST_BINS: usize = 6;

fn hist_bin(size: usize) -> usize {
    match size {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

/// Per-service-key achieved-batch-size accounting (survives bucket churn).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BucketStats {
    /// Achieved-batch-size histogram (see [`HIST_BINS`]).
    pub hist: [u64; HIST_BINS],
    /// Batches dispatched for this key.
    pub closes: u64,
    /// Total tickets dispatched for this key.
    pub items: u64,
}

impl BucketStats {
    /// Mean achieved batch size for this key.
    pub fn mean_batch(&self) -> f64 {
        if self.closes == 0 {
            0.0
        } else {
            self.items as f64 / self.closes as f64
        }
    }
}

struct Bucket {
    tickets: Vec<Ticket>,
    opened: Instant,
}

/// The shared batcher. One per engine; all workers offer into it.
pub struct Batcher {
    cfg: BatchConfig,
    depth: AtomicUsize,
    buckets: Mutex<BTreeMap<BucketKey, Bucket>>,
    stats: Mutex<BTreeMap<CostKey, BucketStats>>,
    size_closes: AtomicU64,
    deadline_closes: AtomicU64,
    linger_closes: AtomicU64,
    generation_closes: AtomicU64,
    flush_closes: AtomicU64,
}

impl Batcher {
    pub fn new(cfg: BatchConfig) -> Self {
        Self {
            cfg,
            depth: AtomicUsize::new(0),
            buckets: Mutex::new(BTreeMap::new()),
            stats: Mutex::new(BTreeMap::new()),
            size_closes: AtomicU64::new(0),
            deadline_closes: AtomicU64::new(0),
            linger_closes: AtomicU64::new(0),
            generation_closes: AtomicU64::new(0),
            flush_closes: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// Tickets currently held in open buckets (admitted, not yet
    /// dispatched). Counted into queue-pressure signals so the degrade
    /// controller and drain see them.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Adds tickets to the bucket for `key`, opening it at `now` if empty.
    pub fn offer(&self, key: BucketKey, tickets: Vec<Ticket>, now: Instant) {
        if tickets.is_empty() {
            return;
        }
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = buckets
            .entry(key)
            .or_insert_with(|| Bucket { tickets: Vec::new(), opened: now });
        if bucket.tickets.is_empty() {
            bucket.opened = now;
        }
        self.depth.fetch_add(tickets.len(), Ordering::AcqRel);
        bucket.tickets.extend(tickets);
    }

    /// Closes at most one bucket and returns it for dispatch.
    ///
    /// `current` is the worker's serving context; any bucket under a
    /// different key closes first (reason [`CloseReason::Generation`]).
    /// The bucket under `current` closes by size (`target`), deadline
    /// margin (`predict` maps batch size to predicted service ms; `None`
    /// = uncalibrated, treated as 0), or linger. `cap` bounds the tickets
    /// taken per dispatch; a remainder stays bucketed and re-opens at
    /// `now`.
    pub fn try_close<F>(
        &self,
        current: &BucketKey,
        target: usize,
        cap: usize,
        predict: F,
        now: Instant,
    ) -> Option<ClosedBatch>
    where
        F: Fn(usize) -> Option<f64>,
    {
        let cap = cap.max(1);
        let target = target.clamp(1, cap);
        let mut buckets = self.buckets.lock().unwrap();
        // Stale buckets (generation swapped or rung moved) close first so
        // no ticket waits behind a context the workers have left.
        if let Some(stale) = buckets.keys().find(|k| *k != current).copied() {
            let batch = Self::take(&mut buckets, &stale, cap, now);
            drop(buckets);
            return Some(self.finish_close(stale, CloseReason::Generation, batch));
        }
        let bucket = buckets.get_mut(current)?;
        if bucket.tickets.is_empty() {
            return None;
        }
        let reason = self.close_reason(bucket, target, &predict, now)?;
        let batch = Self::take(&mut buckets, current, cap, now);
        drop(buckets);
        Some(self.finish_close(*current, reason, batch))
    }

    fn close_reason<F>(
        &self,
        bucket: &Bucket,
        target: usize,
        predict: &F,
        now: Instant,
    ) -> Option<CloseReason>
    where
        F: Fn(usize) -> Option<f64>,
    {
        if !self.cfg.enabled {
            return Some(CloseReason::Flush);
        }
        let len = bucket.tickets.len();
        if len >= target {
            return Some(CloseReason::Size);
        }
        let earliest = bucket.tickets.iter().map(|t| t.deadline).min()?;
        let predicted_ms = predict(len).unwrap_or(0.0).max(0.0);
        let lead_us = ((predicted_ms + self.cfg.close_margin_ms as f64) * 1_000.0) as u64;
        let close_edge = earliest.checked_sub(Duration::from_micros(lead_us));
        if close_edge.is_none_or(|edge| now >= edge) {
            return Some(CloseReason::Deadline);
        }
        let open_ms = now.saturating_duration_since(bucket.opened).as_millis() as u64;
        if open_ms >= self.cfg.linger_ms {
            return Some(CloseReason::Linger);
        }
        None
    }

    fn take(
        buckets: &mut BTreeMap<BucketKey, Bucket>,
        key: &BucketKey,
        cap: usize,
        now: Instant,
    ) -> Vec<Ticket> {
        let bucket = buckets.get_mut(key).expect("bucket present");
        if bucket.tickets.len() <= cap {
            buckets.remove(key).expect("bucket present").tickets
        } else {
            let rest = bucket.tickets.split_off(cap);
            let batch = std::mem::replace(&mut bucket.tickets, rest);
            bucket.opened = now;
            batch
        }
    }

    fn finish_close(&self, key: BucketKey, reason: CloseReason, batch: Vec<Ticket>) -> ClosedBatch {
        self.depth.fetch_sub(batch.len(), Ordering::AcqRel);
        match reason {
            CloseReason::Size => &self.size_closes,
            CloseReason::Deadline => &self.deadline_closes,
            CloseReason::Linger => &self.linger_closes,
            CloseReason::Generation => &self.generation_closes,
            CloseReason::Flush => &self.flush_closes,
        }
        .fetch_add(1, Ordering::Relaxed);
        let mut stats = self.stats.lock().unwrap();
        let s = stats.entry(key.key).or_default();
        s.hist[hist_bin(batch.len())] += 1;
        s.closes += 1;
        s.items += batch.len() as u64;
        ClosedBatch { key, reason, tickets: batch }
    }

    /// Removes and returns every ticket whose deadline has passed, across
    /// all buckets. The caller answers them with a typed
    /// `DeadlineExceeded`; emptied buckets are dropped.
    pub fn sweep_expired(&self, now: Instant) -> Vec<Ticket> {
        let mut buckets = self.buckets.lock().unwrap();
        let mut expired = Vec::new();
        buckets.retain(|_, bucket| {
            let mut kept = Vec::with_capacity(bucket.tickets.len());
            for t in bucket.tickets.drain(..) {
                if t.deadline <= now {
                    expired.push(t);
                } else {
                    kept.push(t);
                }
            }
            bucket.tickets = kept;
            !bucket.tickets.is_empty()
        });
        self.depth.fetch_sub(expired.len(), Ordering::AcqRel);
        expired
    }

    /// Empties every bucket (drain/shutdown). The caller answers the
    /// tickets with a typed `ShuttingDown`.
    pub fn drain(&self) -> Vec<Ticket> {
        let mut buckets = self.buckets.lock().unwrap();
        let mut out = Vec::new();
        for (_, bucket) in std::mem::take(&mut *buckets) {
            out.extend(bucket.tickets);
        }
        self.depth.fetch_sub(out.len(), Ordering::AcqRel);
        out
    }

    /// (size, deadline, linger, generation, flush) close counts.
    pub fn close_counts(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.size_closes.load(Ordering::Relaxed),
            self.deadline_closes.load(Ordering::Relaxed),
            self.linger_closes.load(Ordering::Relaxed),
            self.generation_closes.load(Ordering::Relaxed),
            self.flush_closes.load(Ordering::Relaxed),
        )
    }

    /// Per-service-key achieved-batch-size stats.
    pub fn bucket_stats(&self) -> Vec<(CostKey, BucketStats)> {
        let stats = self.stats.lock().unwrap();
        stats.iter().map(|(k, s)| (*k, *s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Precision;
    use crate::error::ServeError;
    use crate::request::Outcome;
    use crate::tenant::TenantId;
    use revbifpn_tensor::{Shape, Tensor};
    use std::sync::mpsc;

    fn ckey(rung: u16) -> CostKey {
        CostKey { variant: 0, precision: Precision::F32, rung }
    }

    fn bkey(generation: u64, rung: u16) -> BucketKey {
        BucketKey { generation, key: ckey(rung) }
    }

    fn ticket(id: u64, now: Instant, deadline_ms: u64) -> (Ticket, mpsc::Receiver<Outcome>) {
        let (tx, rx) = mpsc::channel();
        (
            Ticket {
                id,
                image: Tensor::zeros(Shape::new(1, 3, 4, 4)),
                tag: None,
                tenant: TenantId::DEFAULT,
                weight: 1,
                cost: 1,
                probe: false,
                enqueued: now,
                deadline: now + Duration::from_millis(deadline_ms),
                responder: tx,
            },
            rx,
        )
    }

    fn tickets(n: usize, now: Instant, deadline_ms: u64) -> Vec<Ticket> {
        (0..n).map(|i| ticket(i as u64, now, deadline_ms).0).collect()
    }

    fn batcher() -> Batcher {
        Batcher::new(BatchConfig { linger_ms: 10, close_margin_ms: 5, ..BatchConfig::default() })
    }

    #[test]
    fn size_triggered_close_fires_at_target() {
        let b = batcher();
        let now = Instant::now();
        b.offer(bkey(1, 32), tickets(3, now, 1_000), now);
        // Below target: no close before linger/deadline pressure.
        assert!(b.try_close(&bkey(1, 32), 4, 8, |_| Some(1.0), now).is_none());
        b.offer(bkey(1, 32), tickets(1, now, 1_000), now);
        let closed = b.try_close(&bkey(1, 32), 4, 8, |_| Some(1.0), now).unwrap();
        assert_eq!(closed.reason, CloseReason::Size);
        assert_eq!(closed.tickets.len(), 4);
        assert_eq!(b.depth(), 0);
        assert_eq!(b.close_counts().0, 1);
    }

    #[test]
    fn deadline_margin_close_uses_predicted_service_time() {
        let b = batcher();
        let now = Instant::now();
        // Deadline 20ms out; predicted service 8ms + margin 5ms = 13ms
        // lead. At t=+6ms the edge (deadline-13ms = +7ms) hasn't arrived;
        // at +7ms it has.
        b.offer(bkey(1, 32), tickets(2, now, 20), now);
        let at = |ms: u64| now + Duration::from_millis(ms);
        assert!(b.try_close(&bkey(1, 32), 8, 8, |_| Some(8.0), at(6)).is_none());
        let closed = b.try_close(&bkey(1, 32), 8, 8, |_| Some(8.0), at(7)).unwrap();
        assert_eq!(closed.reason, CloseReason::Deadline);
        assert_eq!(closed.tickets.len(), 2);
        assert_eq!(b.close_counts().1, 1);
    }

    #[test]
    fn linger_close_fires_without_deadline_pressure() {
        let b = batcher();
        let now = Instant::now();
        b.offer(bkey(1, 32), tickets(1, now, 60_000), now);
        let at = |ms: u64| now + Duration::from_millis(ms);
        assert!(b.try_close(&bkey(1, 32), 8, 8, |_| Some(1.0), at(9)).is_none());
        let closed = b.try_close(&bkey(1, 32), 8, 8, |_| Some(1.0), at(10)).unwrap();
        assert_eq!(closed.reason, CloseReason::Linger);
        assert_eq!(b.close_counts().2, 1);
    }

    #[test]
    fn uncalibrated_bucket_closes_at_deadline_minus_margin_only() {
        let b = batcher();
        let now = Instant::now();
        b.offer(bkey(1, 32), tickets(1, now, 8), now);
        // predict = None => predicted 0; close edge = deadline - 5ms margin.
        let at = |ms: u64| now + Duration::from_millis(ms);
        assert!(b.try_close(&bkey(1, 32), 8, 8, |_| None, at(2)).is_none());
        let closed = b.try_close(&bkey(1, 32), 8, 8, |_| None, at(3)).unwrap();
        assert_eq!(closed.reason, CloseReason::Deadline);
    }

    #[test]
    fn bucket_never_spans_generations() {
        let b = batcher();
        let now = Instant::now();
        b.offer(bkey(1, 32), tickets(2, now, 1_000), now);
        // Generation swapped: new tickets land in a distinct bucket.
        b.offer(bkey(2, 32), tickets(3, now, 1_000), now);
        // The stale generation-1 bucket closes first and alone.
        let closed = b.try_close(&bkey(2, 32), 8, 8, |_| Some(1.0), now).unwrap();
        assert_eq!(closed.reason, CloseReason::Generation);
        assert_eq!(closed.key.generation, 1);
        assert_eq!(closed.tickets.len(), 2);
        assert!(closed.tickets.iter().all(|t| t.id < 2));
        assert_eq!(b.close_counts().3, 1);
        assert_eq!(b.depth(), 3);
    }

    #[test]
    fn rung_move_also_closes_stale_bucket() {
        let b = batcher();
        let now = Instant::now();
        b.offer(bkey(1, 32), tickets(1, now, 1_000), now);
        let closed = b.try_close(&bkey(1, 16), 8, 8, |_| Some(1.0), now).unwrap();
        assert_eq!(closed.reason, CloseReason::Generation);
        assert_eq!(closed.key.key.rung, 32);
    }

    #[test]
    fn pass_through_mode_flushes_immediately() {
        let b = Batcher::new(BatchConfig { enabled: false, ..BatchConfig::default() });
        let now = Instant::now();
        b.offer(bkey(0, 32), tickets(2, now, 1_000), now);
        let closed = b.try_close(&bkey(0, 32), 8, 8, |_| Some(1.0), now).unwrap();
        assert_eq!(closed.reason, CloseReason::Flush);
        assert_eq!(closed.tickets.len(), 2);
    }

    #[test]
    fn cap_splits_oversized_bucket_and_reopens_remainder() {
        let b = batcher();
        let now = Instant::now();
        b.offer(bkey(1, 32), tickets(7, now, 1_000), now);
        let closed = b.try_close(&bkey(1, 32), 4, 4, |_| Some(1.0), now).unwrap();
        assert_eq!(closed.tickets.len(), 4);
        assert_eq!(b.depth(), 3);
        // Remainder is still servable (FIFO preserved).
        let closed = b.try_close(&bkey(1, 32), 3, 4, |_| Some(1.0), now).unwrap();
        assert_eq!(closed.tickets.len(), 3);
        assert_eq!(closed.tickets[0].id, 4);
    }

    #[test]
    fn sweep_expired_removes_only_expired_tickets() {
        let b = batcher();
        let now = Instant::now();
        b.offer(bkey(1, 32), tickets(2, now, 5), now);
        b.offer(bkey(1, 32), tickets(1, now, 1_000), now);
        let expired = b.sweep_expired(now + Duration::from_millis(6));
        assert_eq!(expired.len(), 2);
        assert_eq!(b.depth(), 1);
        for t in expired {
            t.respond(Err(ServeError::DeadlineExceeded { waited_ms: 6 }));
        }
    }

    #[test]
    fn drain_empties_all_buckets() {
        let b = batcher();
        let now = Instant::now();
        b.offer(bkey(1, 32), tickets(2, now, 1_000), now);
        b.offer(bkey(2, 16), tickets(3, now, 1_000), now);
        let drained = b.drain();
        assert_eq!(drained.len(), 5);
        assert_eq!(b.depth(), 0);
        assert!(b.try_close(&bkey(2, 16), 1, 8, |_| None, now).is_none());
    }

    #[test]
    fn stats_track_achieved_batch_sizes() {
        let b = batcher();
        let now = Instant::now();
        b.offer(bkey(1, 32), tickets(4, now, 1_000), now);
        b.try_close(&bkey(1, 32), 4, 8, |_| None, now).unwrap();
        b.offer(bkey(1, 32), tickets(1, now, 1_000), now);
        b.try_close(&bkey(1, 32), 1, 8, |_| None, now).unwrap();
        let stats = b.bucket_stats();
        assert_eq!(stats.len(), 1);
        let (k, s) = stats[0];
        assert_eq!(k, ckey(32));
        assert_eq!(s.closes, 2);
        assert_eq!(s.items, 5);
        assert_eq!(s.hist[0], 1); // size-1 bin
        assert_eq!(s.hist[2], 1); // 3-4 bin
        assert!((s.mean_batch() - 2.5).abs() < 1e-9);
    }
}
