//! The serving error taxonomy.
//!
//! Every request submitted to the engine terminates in exactly one of two
//! ways: an [`crate::InferResponse`] or a [`ServeError`]. There are no
//! silent drops — rejection at admission, shedding under load, deadline
//! expiry, quarantine after a panic, and shutdown all produce a typed value
//! the client can branch on.

use crate::tenant::{QuotaScope, TenantId};
use revbifpn_tensor::ShapeError;
use std::fmt;

/// Why a request did not produce an inference result.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Admission control: the bounded queue was at capacity (load shedding).
    QueueFull {
        /// Queue depth observed at rejection.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The request's deadline passed before a worker could start it.
    DeadlineExceeded {
        /// How long the request waited before being shed, in milliseconds.
        waited_ms: u64,
    },
    /// Admission control: the tenant exhausted one of its quotas (rate
    /// token bucket or in-flight cap). Says nothing about the payload.
    QuotaExceeded {
        /// Tenant whose quota was exhausted.
        tenant: TenantId,
        /// Which quota: sustained rate or in-flight cap.
        scope: QuotaScope,
    },
    /// Admission control: the tenant's circuit breaker is open after too
    /// many of its recent requests failed (panics, deadline misses,
    /// worker deaths).
    CircuitOpen {
        /// Tenant whose breaker rejected the request.
        tenant: TenantId,
        /// Milliseconds until the breaker will consider a half-open probe
        /// (0 when probes are already in flight).
        retry_in_ms: u64,
    },
    /// Input validation: the payload violates the model's shape contract.
    InvalidShape(ShapeError),
    /// Input validation: the payload contains NaN or infinite values.
    NonFiniteInput {
        /// Number of non-finite elements found.
        count: usize,
    },
    /// Input validation: finite but outside the accepted dynamic range.
    OutOfRange {
        /// Largest absolute value in the payload.
        max_abs: f32,
        /// Configured admission limit.
        limit: f32,
    },
    /// Admission control: the request's deadline budget cannot cover even
    /// a single-item dispatch under the calibrated cost model, so serving
    /// it would only waste a worker on a guaranteed deadline miss.
    Infeasible {
        /// Predicted single-item service time for the current serving
        /// context, milliseconds.
        predicted_ms: u64,
        /// The request's deadline budget, milliseconds.
        budget_ms: u64,
    },
    /// The request made a batch panic and was quarantined after bisection
    /// isolated it.
    Poisoned,
    /// The worker processing the request died and the request could not be
    /// recovered.
    WorkerLost,
    /// The engine is shutting down and will not start new work.
    ShuttingDown,
}

impl ServeError {
    /// `true` for the load-shedding outcomes (queue overflow / deadline),
    /// which say nothing about the request's own validity.
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            ServeError::QueueFull { .. }
                | ServeError::DeadlineExceeded { .. }
                | ServeError::QuotaExceeded { .. }
                | ServeError::CircuitOpen { .. }
                | ServeError::Infeasible { .. }
        )
    }

    /// `true` for rejections caused by the request payload itself.
    pub fn is_rejected_input(&self) -> bool {
        matches!(
            self,
            ServeError::InvalidShape(_) | ServeError::NonFiniteInput { .. } | ServeError::OutOfRange { .. }
        )
    }

    /// Stable short label used for quarantine records and event counters.
    pub fn label(&self) -> &'static str {
        match self {
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::DeadlineExceeded { .. } => "deadline",
            ServeError::QuotaExceeded { .. } => "quota",
            ServeError::CircuitOpen { .. } => "breaker_open",
            ServeError::InvalidShape(_) => "invalid_shape",
            ServeError::NonFiniteInput { .. } => "non_finite",
            ServeError::OutOfRange { .. } => "out_of_range",
            ServeError::Infeasible { .. } => "infeasible",
            ServeError::Poisoned => "poisoned",
            ServeError::WorkerLost => "worker_lost",
            ServeError::ShuttingDown => "shutting_down",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { depth, capacity } => {
                write!(f, "queue full: depth {depth} at capacity {capacity}")
            }
            ServeError::DeadlineExceeded { waited_ms } => {
                write!(f, "deadline exceeded after waiting {waited_ms} ms")
            }
            ServeError::QuotaExceeded { tenant, scope } => {
                write!(f, "{tenant} exceeded its {} quota", scope.label())
            }
            ServeError::CircuitOpen { tenant, retry_in_ms } => {
                write!(f, "{tenant} circuit open; retry in {retry_in_ms} ms")
            }
            ServeError::InvalidShape(e) => write!(f, "invalid input: {e}"),
            ServeError::NonFiniteInput { count } => {
                write!(f, "input contains {count} non-finite value(s)")
            }
            ServeError::OutOfRange { max_abs, limit } => {
                write!(f, "input magnitude {max_abs} exceeds admission limit {limit}")
            }
            ServeError::Infeasible { predicted_ms, budget_ms } => write!(
                f,
                "deadline infeasible: predicted service {predicted_ms} ms exceeds budget {budget_ms} ms"
            ),
            ServeError::Poisoned => write!(f, "request quarantined: it repeatedly crashed the model"),
            ServeError::WorkerLost => write!(f, "worker died while holding the request"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::InvalidShape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for ServeError {
    fn from(e: ShapeError) -> Self {
        ServeError::InvalidShape(e)
    }
}

/// Why a hot-reload attempt did not publish a new model generation.
///
/// Every failure leaves the previously published generation serving —
/// reload is all-or-nothing. Variants that set `quarantined` have moved
/// the offending artifact aside (to `<path>.corrupt`) so a crash-looping
/// supervisor cannot retry the same bad file forever.
#[derive(Clone, Debug, PartialEq)]
pub enum ReloadError {
    /// The artifact could not be read at all (missing file, permission,
    /// transient I/O that exhausted its retry budget).
    Io {
        /// Human-readable cause from the underlying I/O error.
        detail: String,
    },
    /// The artifact was read but failed validation: bad magic, CRC
    /// mismatch, truncation, malformed structure, or a model that panics
    /// or emits non-finite logits on calibration inputs.
    Corrupt {
        /// What validation step rejected it.
        detail: String,
        /// Whether the artifact was moved to its `.corrupt` quarantine path.
        quarantined: bool,
    },
    /// The artifact is internally valid but does not fit this engine's
    /// serving contract (wrong resolution or class count). Not quarantined:
    /// the file may be perfectly good for a different deployment.
    Incompatible {
        /// Which contract field disagreed.
        detail: String,
    },
    /// The candidate model disagreed with the currently published
    /// generation on too many calibration inputs.
    GateRejected {
        /// Observed argmax agreement fraction in `[0, 1]`.
        agreement: f64,
        /// Configured minimum agreement.
        threshold: f64,
        /// Whether the artifact was moved to its `.corrupt` quarantine path.
        quarantined: bool,
    },
}

impl ReloadError {
    /// Stable short label for counters and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ReloadError::Io { .. } => "reload_io",
            ReloadError::Corrupt { .. } => "reload_corrupt",
            ReloadError::Incompatible { .. } => "reload_incompatible",
            ReloadError::GateRejected { .. } => "reload_gate",
        }
    }

    /// `true` when the failing artifact was quarantined to `.corrupt`.
    pub fn quarantined(&self) -> bool {
        matches!(
            self,
            ReloadError::Corrupt { quarantined: true, .. }
                | ReloadError::GateRejected { quarantined: true, .. }
        )
    }
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReloadError::Io { detail } => write!(f, "reload I/O failure: {detail}"),
            ReloadError::Corrupt { detail, quarantined } => write!(
                f,
                "artifact rejected: {detail}{}",
                if *quarantined { " (quarantined)" } else { "" }
            ),
            ReloadError::Incompatible { detail } => {
                write!(f, "artifact incompatible with serving config: {detail}")
            }
            ReloadError::GateRejected { agreement, threshold, quarantined } => write!(
                f,
                "calibration gate rejected reload: agreement {agreement:.3} < {threshold:.3}{}",
                if *quarantined { " (quarantined)" } else { "" }
            ),
        }
    }
}

impl std::error::Error for ReloadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use revbifpn_tensor::Shape;

    #[test]
    fn classification_helpers() {
        assert!(ServeError::QueueFull { depth: 8, capacity: 8 }.is_shed());
        assert!(ServeError::DeadlineExceeded { waited_ms: 5 }.is_shed());
        assert!(ServeError::QuotaExceeded { tenant: TenantId(2), scope: QuotaScope::Rate }
            .is_shed());
        assert!(ServeError::CircuitOpen { tenant: TenantId(2), retry_in_ms: 10 }.is_shed());
        assert!(ServeError::Infeasible { predicted_ms: 50, budget_ms: 10 }.is_shed());
        assert!(!ServeError::Poisoned.is_shed());
        assert!(ServeError::NonFiniteInput { count: 1 }.is_rejected_input());
        assert!(ServeError::OutOfRange { max_abs: 9.0, limit: 1.0 }.is_rejected_input());
        assert!(!ServeError::ShuttingDown.is_rejected_input());
    }

    #[test]
    fn displays_are_informative() {
        let e = ServeError::InvalidShape(ShapeError::DimMismatch {
            what: "request shape",
            expected: Shape::new(1, 3, 32, 32),
            got: Shape::new(1, 1, 32, 32),
        });
        let s = e.to_string();
        assert!(s.contains("request shape"), "{s}");
        assert_eq!(e.label(), "invalid_shape");
    }
}
