//! Bounded tenant-fair ticket queue: the admission-control choke point.
//!
//! Implemented with `Mutex + Condvar` rather than an unbounded channel: the
//! whole point is that `push` can refuse. Capacity is enforced at admission
//! (`QueueFull`), deadlines at dequeue and on a proactive sweep tick —
//! expired tickets are returned to the caller, who delivers the typed
//! `DeadlineExceeded` and settles the tenant's accounting in one place.
//!
//! # Deficit-weighted round robin
//!
//! Dequeue is not FIFO. Each tenant owns a sub-queue, and `pop_batch`
//! serves tenants in deficit round robin (Shreedhar & Varghese): every
//! visit in the rotation credits the tenant's deficit counter with its
//! *quantum* (= the admission-time quota weight carried on each ticket) and
//! serves the front ticket while the deficit covers its *cost*
//! ([`Ticket::cost`] — predicted cost units from the serve cost model, 1
//! when uncalibrated). Charging predicted cost instead of request counts
//! means a tenant flooding expensive (large-rung, high-marginal-cost)
//! requests drains its quantum proportionally faster, so it cannot starve a
//! tenant sending cheap requests under the same weight. A tenant whose
//! sub-queue empties leaves the rotation and forfeits its residual deficit,
//! so idle tenants accumulate nothing; a backlogged tenant that cannot yet
//! afford its front ticket keeps its deficit and accrues another quantum on
//! the next rotation (classic DRR).
//!
//! **Starvation bound.** Let `W = Σ weights of tenants with queued
//! tickets` and consider a ticket at position `k` (0-based) of a tenant
//! with weight `w`, with all costs equal to 1 (the uncalibrated case the
//! property test pins). Each full rotation serves at least `min(w, queued)`
//! tickets of that tenant (its deficit grows by `w` per rotation and every
//! service costs exactly 1) and at most `W` tickets in total (plus a
//! residual of at most one partially-served quantum, absorbed below by
//! rounding up one extra rotation). Hence the ticket departs within
//! `ceil((k+1)/w) + 1` rotations, i.e. within
//! [`starvation_bound_dequeues`]`(k, w, W)` non-expired dequeues — no
//! tenant can be starved regardless of how hard the others flood. With
//! heterogeneous costs the same bound holds with `k` and `W` measured in
//! cost units (cost-weighted position, Σ weights unchanged), because a
//! rotation still credits `w` units and serves at most `W` units overall.
//! Expired tickets consume no deficit and do not count against the bound.

use crate::error::ServeError;
use crate::request::Ticket;
use crate::tenant::TenantId;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Worst-case non-expired dequeues before the ticket at 0-based
/// `position` of a weight-`weight` tenant is served, with
/// `total_active_weight` = Σ weights of all tenants holding queued
/// tickets (including this one). This is the documented fairness
/// contract of [`BoundedQueue::pop_batch`]; the property test in
/// `tests/fair_queue_prop.rs` enforces it under adversarial mixes.
pub fn starvation_bound_dequeues(position: usize, weight: u32, total_active_weight: u64) -> u64 {
    let w = u64::from(weight.max(1));
    let rounds = (position as u64 + 1).div_ceil(w) + 1;
    rounds * total_active_weight.max(w)
}

/// The result of one [`BoundedQueue::pop_batch`] call.
#[derive(Debug, Default)]
pub struct PoppedBatch {
    /// Tickets to serve, in DRR order.
    pub batch: Vec<Ticket>,
    /// Tickets whose deadline had already passed. The caller must deliver
    /// `DeadlineExceeded` on each (and settle tenant accounting) — the
    /// queue does not respond on their behalf.
    pub expired: Vec<Ticket>,
}

/// Bounded multi-producer/multi-consumer queue of [`Ticket`]s with
/// per-tenant sub-queues and deficit-weighted fair dequeue.
#[derive(Debug)]
pub struct BoundedQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner {
    /// Per-tenant sub-queues. Entries persist across idle periods (the
    /// map is bounded by the tenant population, not traffic).
    queues: BTreeMap<TenantId, TenantQueue>,
    /// Round-robin rotation of tenants with at least one queued ticket.
    active: VecDeque<TenantId>,
    /// Total queued tickets across tenants.
    len: usize,
    closed: bool,
}

#[derive(Debug, Default)]
struct TenantQueue {
    tickets: VecDeque<Ticket>,
    deficit: u64,
    /// Set when a batch filled mid-quantum: the next visit resumes the
    /// residual deficit instead of crediting a fresh quantum.
    charged: bool,
}

impl Inner {
    /// Removes `tid` from the rotation bookkeeping after its sub-queue
    /// emptied: residual deficit is forfeited (DRR idle rule).
    fn retire(&mut self, tid: TenantId) {
        if let Some(tq) = self.queues.get_mut(&tid) {
            tq.deficit = 0;
            tq.charged = false;
        }
    }
}

impl BoundedQueue {
    /// A queue admitting at most `capacity` concurrent tickets (across all
    /// tenants; per-tenant bounds are the admission layer's in-flight caps).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                queues: BTreeMap::new(),
                active: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth across all tenants.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// Current queue depth of one tenant.
    pub fn depth_of(&self, tenant: TenantId) -> usize {
        self.inner.lock().unwrap().queues.get(&tenant).map_or(0, |q| q.tickets.len())
    }

    /// Admits a ticket into its tenant's sub-queue, or returns it with the
    /// typed rejection.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] at capacity, [`ServeError::ShuttingDown`]
    /// after [`BoundedQueue::close`].
    pub fn push(&self, ticket: Ticket) -> Result<(), Box<(Ticket, ServeError)>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(Box::new((ticket, ServeError::ShuttingDown)));
        }
        if inner.len >= self.capacity {
            let depth = inner.len;
            return Err(Box::new((ticket, ServeError::QueueFull { depth, capacity: self.capacity })));
        }
        let tid = ticket.tenant;
        let tq = inner.queues.entry(tid).or_default();
        let was_idle = tq.tickets.is_empty();
        tq.tickets.push_back(ticket);
        inner.len += 1;
        if was_idle {
            inner.active.push_back(tid);
        }
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops up to `max` tickets by deficit round robin, waiting up to
    /// `wait` for the first one. Already-expired tickets are pulled out
    /// into [`PoppedBatch::expired`] without consuming deficit. Returns an
    /// empty result on timeout or once closed-and-empty.
    pub fn pop_batch(&self, max: usize, wait: Duration) -> PoppedBatch {
        let deadline_wait = Instant::now() + wait;
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.len > 0 || inner.closed {
                break;
            }
            let now = Instant::now();
            if now >= deadline_wait {
                return PoppedBatch::default();
            }
            let (guard, _timeout) =
                self.not_empty.wait_timeout(inner, deadline_wait - now).unwrap();
            inner = guard;
        }
        let mut out = PoppedBatch::default();
        let now = Instant::now();
        while out.batch.len() < max && inner.len > 0 {
            let Some(tid) = inner.active.pop_front() else { break };
            let tq = inner.queues.get_mut(&tid).expect("active tenant has a sub-queue");
            if tq.charged {
                tq.charged = false;
            } else {
                let quantum =
                    tq.tickets.front().map_or(1, |t| u64::from(t.weight.max(1)));
                tq.deficit += quantum;
            }
            let mut popped = 0usize;
            while out.batch.len() < max {
                let Some(front) = tq.tickets.front() else { break };
                if now > front.deadline {
                    // Shed without charging the tenant's deficit: an
                    // expired ticket received no service, so it costs
                    // zero units regardless of its predicted cost.
                    let ticket = tq.tickets.pop_front().expect("front exists");
                    popped += 1;
                    out.expired.push(ticket);
                    continue;
                }
                let cost = u64::from(front.cost.max(1));
                if tq.deficit < cost {
                    // Can't afford the front ticket yet: keep the residual
                    // deficit and wait for the next rotation's quantum.
                    break;
                }
                let ticket = tq.tickets.pop_front().expect("front exists");
                popped += 1;
                tq.deficit -= cost;
                out.batch.push(ticket);
            }
            let emptied = tq.tickets.is_empty();
            let affordable = tq
                .tickets
                .front()
                .is_some_and(|t| tq.deficit >= u64::from(t.cost.max(1)));
            inner.len -= popped;
            if emptied {
                inner.retire(tid);
            } else if out.batch.len() == max && affordable {
                // Batch filled mid-quantum: resume this tenant first next
                // time, keeping the residual credit (no double-charge).
                let tq = inner.queues.get_mut(&tid).expect("sub-queue persists");
                tq.charged = true;
                inner.active.push_front(tid);
            } else {
                inner.active.push_back(tid);
            }
        }
        out
    }

    /// Proactive deadline sweep: removes and returns every queued ticket
    /// whose deadline has passed, so long-deadline floods cannot pin queue
    /// memory until a worker happens to dequeue them. The caller delivers
    /// `DeadlineExceeded` and meters `queue.swept_expired`.
    pub fn sweep_expired(&self, now: Instant) -> Vec<Ticket> {
        let mut inner = self.inner.lock().unwrap();
        let mut swept = Vec::new();
        let mut emptied = Vec::new();
        for (tid, tq) in inner.queues.iter_mut() {
            if tq.tickets.is_empty() {
                continue;
            }
            let before = tq.tickets.len();
            let mut kept = VecDeque::with_capacity(before);
            for ticket in tq.tickets.drain(..) {
                if now > ticket.deadline {
                    swept.push(ticket);
                } else {
                    kept.push_back(ticket);
                }
            }
            tq.tickets = kept;
            if tq.tickets.is_empty() {
                emptied.push(*tid);
            }
        }
        inner.len -= swept.len();
        for tid in emptied {
            inner.retire(tid);
            inner.active.retain(|t| *t != tid);
        }
        swept
    }

    /// Closes the queue: subsequent pushes fail and sleeping consumers wake.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }

    /// `true` once closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Removes and returns every queued ticket (used at shutdown to deliver
    /// `ShuttingDown` rather than dropping responders silently).
    pub fn drain(&self) -> Vec<Ticket> {
        let mut inner = self.inner.lock().unwrap();
        let mut out = Vec::with_capacity(inner.len);
        let tids: Vec<TenantId> = inner.queues.keys().copied().collect();
        for tid in tids {
            if let Some(tq) = inner.queues.get_mut(&tid) {
                out.extend(tq.tickets.drain(..));
            }
            inner.retire(tid);
        }
        inner.active.clear();
        inner.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Outcome;
    use revbifpn_tensor::{Shape, Tensor};
    use std::sync::mpsc;

    fn cost_ticket(
        tenant: TenantId,
        weight: u32,
        cost: u32,
        deadline_in: Duration,
    ) -> (Ticket, mpsc::Receiver<Outcome>) {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        (
            Ticket {
                id: 0,
                image: Tensor::zeros(Shape::new(1, 3, 4, 4)),
                tag: None,
                tenant,
                weight,
                cost,
                probe: false,
                enqueued: now,
                deadline: now + deadline_in,
                responder: tx,
            },
            rx,
        )
    }

    fn tenant_ticket(
        tenant: TenantId,
        weight: u32,
        deadline_in: Duration,
    ) -> (Ticket, mpsc::Receiver<Outcome>) {
        cost_ticket(tenant, weight, 1, deadline_in)
    }

    fn ticket(deadline_in: Duration) -> (Ticket, mpsc::Receiver<Outcome>) {
        tenant_ticket(TenantId::DEFAULT, 1, deadline_in)
    }

    #[test]
    fn capacity_is_enforced_with_typed_error() {
        let q = BoundedQueue::new(2);
        let (t1, _r1) = ticket(Duration::from_secs(1));
        let (t2, _r2) = ticket(Duration::from_secs(1));
        let (t3, _r3) = ticket(Duration::from_secs(1));
        q.push(t1).unwrap();
        q.push(t2).unwrap();
        let (_, err) = *q.push(t3).unwrap_err();
        assert_eq!(err, ServeError::QueueFull { depth: 2, capacity: 2 });
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn pop_batch_respects_max() {
        let q = BoundedQueue::new(8);
        let mut rxs = Vec::new();
        for _ in 0..5 {
            let (t, r) = ticket(Duration::from_secs(1));
            q.push(t).unwrap();
            rxs.push(r);
        }
        let out = q.pop_batch(3, Duration::from_millis(10));
        assert_eq!((out.batch.len(), out.expired.len()), (3, 0));
        let out = q.pop_batch(3, Duration::from_millis(10));
        assert_eq!(out.batch.len(), 2);
    }

    #[test]
    fn expired_tickets_are_returned_not_served() {
        let q = BoundedQueue::new(8);
        let (t, rx) = ticket(Duration::from_millis(0));
        q.push(t).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let out = q.pop_batch(4, Duration::from_millis(10));
        assert!(out.batch.is_empty());
        assert_eq!(out.expired.len(), 1);
        for t in out.expired {
            let waited = t.waited_ms(Instant::now());
            t.respond(Err(ServeError::DeadlineExceeded { waited_ms: waited }));
        }
        assert!(matches!(rx.recv().unwrap(), Err(ServeError::DeadlineExceeded { .. })));
    }

    #[test]
    fn close_rejects_pushes_and_wakes_poppers() {
        let q = BoundedQueue::new(2);
        q.close();
        let (t, _r) = ticket(Duration::from_secs(1));
        let (_, err) = *q.push(t).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
        let out = q.pop_batch(4, Duration::from_secs(5)); // returns fast
        assert!(out.batch.is_empty());
    }

    #[test]
    fn pop_times_out_when_empty() {
        let q = BoundedQueue::new(2);
        let start = Instant::now();
        let out = q.pop_batch(4, Duration::from_millis(20));
        assert!(out.batch.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn drr_interleaves_a_flooding_tenant_with_a_modest_one() {
        let q = BoundedQueue::new(64);
        let flood = TenantId(1);
        let modest = TenantId(2);
        let mut rxs = Vec::new();
        // Tenant 1 floods 20 tickets before tenant 2's 2 arrive.
        for _ in 0..20 {
            let (t, r) = tenant_ticket(flood, 1, Duration::from_secs(5));
            q.push(t).unwrap();
            rxs.push(r);
        }
        for _ in 0..2 {
            let (t, r) = tenant_ticket(modest, 1, Duration::from_secs(5));
            q.push(t).unwrap();
            rxs.push(r);
        }
        // Equal weights: the first batch of 4 must alternate, not serve the
        // flood FIFO. (flood, modest, flood, modest).
        let out = q.pop_batch(4, Duration::from_millis(10));
        let tenants: Vec<TenantId> = out.batch.iter().map(|t| t.tenant).collect();
        assert_eq!(tenants, vec![flood, modest, flood, modest]);
        assert_eq!(q.depth_of(modest), 0);
    }

    #[test]
    fn drr_respects_weights() {
        let q = BoundedQueue::new(64);
        let heavy = TenantId(1); // weight 3
        let light = TenantId(2); // weight 1
        for _ in 0..12 {
            let (t, _r) = tenant_ticket(heavy, 3, Duration::from_secs(5));
            q.push(t).unwrap();
            let (t, _r) = tenant_ticket(light, 1, Duration::from_secs(5));
            q.push(t).unwrap();
        }
        // One full rotation serves 3 heavy + 1 light.
        let out = q.pop_batch(8, Duration::from_millis(10));
        let heavy_served = out.batch.iter().filter(|t| t.tenant == heavy).count();
        let light_served = out.batch.iter().filter(|t| t.tenant == light).count();
        assert_eq!(heavy_served, 6, "weight-3 tenant gets 3 per rotation");
        assert_eq!(light_served, 2, "weight-1 tenant gets 1 per rotation");
    }

    #[test]
    fn residual_deficit_survives_a_full_batch_without_double_charge() {
        let q = BoundedQueue::new(64);
        let heavy = TenantId(1);
        let light = TenantId(2);
        for _ in 0..8 {
            let (t, _r) = tenant_ticket(heavy, 4, Duration::from_secs(5));
            q.push(t).unwrap();
        }
        for _ in 0..8 {
            let (t, _r) = tenant_ticket(light, 1, Duration::from_secs(5));
            q.push(t).unwrap();
        }
        // Batch of 2 fills mid-quantum for the heavy tenant; its residual
        // credit of 2 must carry over, then light gets its single slot.
        let out = q.pop_batch(2, Duration::from_millis(10));
        assert!(out.batch.iter().all(|t| t.tenant == heavy));
        let out = q.pop_batch(8, Duration::from_millis(10));
        let tenants: Vec<TenantId> = out.batch.iter().map(|t| t.tenant).collect();
        // Residual 2 heavy first (no fresh quantum), then light 1, then a
        // fresh heavy quantum of 4, then light again.
        assert_eq!(
            tenants,
            vec![heavy, heavy, light, heavy, heavy, heavy, heavy, light]
        );
    }

    #[test]
    fn cost_units_throttle_expensive_tenants_under_equal_weights() {
        let q = BoundedQueue::new(64);
        let pricey = TenantId(1); // every ticket predicted at 4 cost units
        let cheap = TenantId(2); // unit-cost tickets
        for _ in 0..8 {
            let (t, _r) = cost_ticket(pricey, 1, 4, Duration::from_secs(5));
            q.push(t).unwrap();
        }
        for _ in 0..8 {
            let (t, _r) = cost_ticket(cheap, 1, 1, Duration::from_secs(5));
            q.push(t).unwrap();
        }
        // Equal weights: the cheap tenant serves one per rotation while the
        // pricey one must accrue four quanta per ticket, yielding a 4:1
        // throughput ratio in requests (1:1 in predicted cost).
        let out = q.pop_batch(5, Duration::from_millis(10));
        let tenants: Vec<TenantId> = out.batch.iter().map(|t| t.tenant).collect();
        assert_eq!(tenants, vec![cheap, cheap, cheap, pricey, cheap]);
    }

    #[test]
    fn expired_tickets_charge_zero_cost_units() {
        let q = BoundedQueue::new(16);
        let a = TenantId(1);
        let b = TenantId(2);
        // Tenant A's front ticket expires (predicted cost 3); its live
        // follow-up costs 1. If the expired ticket were charged, A's
        // deficit (quantum 1) would go negative-equivalent and its live
        // ticket would lose its rotation slot to B.
        let (expired, _rx0) = cost_ticket(a, 1, 3, Duration::from_millis(0));
        let (live_a, _rx1) = cost_ticket(a, 1, 1, Duration::from_secs(5));
        let (live_b1, _rx2) = cost_ticket(b, 1, 1, Duration::from_secs(5));
        let (live_b2, _rx3) = cost_ticket(b, 1, 1, Duration::from_secs(5));
        q.push(expired).unwrap();
        q.push(live_a).unwrap();
        q.push(live_b1).unwrap();
        q.push(live_b2).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let out = q.pop_batch(3, Duration::from_millis(10));
        assert_eq!(out.expired.len(), 1);
        assert_eq!(out.expired[0].tenant, a);
        let tenants: Vec<TenantId> = out.batch.iter().map(|t| t.tenant).collect();
        // A's live ticket is served in A's first visit: the swept-expired
        // ticket charged zero units against the quantum.
        assert_eq!(tenants, vec![a, b, b]);
    }

    #[test]
    fn unaffordable_front_ticket_waits_for_more_quanta_not_forever() {
        let q = BoundedQueue::new(16);
        let t1 = TenantId(1);
        let (t, _r) = cost_ticket(t1, 1, 5, Duration::from_secs(5));
        q.push(t).unwrap();
        // A single pop call keeps rotating until the deficit covers the
        // ticket: cost 5 at quantum 1 takes five visits, then serves.
        let out = q.pop_batch(4, Duration::from_millis(10));
        assert_eq!(out.batch.len(), 1);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn sweep_removes_only_expired_tickets() {
        let q = BoundedQueue::new(16);
        let (t1, rx1) = tenant_ticket(TenantId(1), 1, Duration::from_millis(0));
        let (t2, _rx2) = tenant_ticket(TenantId(1), 1, Duration::from_secs(5));
        let (t3, rx3) = tenant_ticket(TenantId(2), 1, Duration::from_millis(0));
        q.push(t1).unwrap();
        q.push(t2).unwrap();
        q.push(t3).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let swept = q.sweep_expired(Instant::now());
        assert_eq!(swept.len(), 2);
        assert_eq!(q.depth(), 1);
        assert_eq!(q.depth_of(TenantId(2)), 0);
        for t in swept {
            t.respond(Err(ServeError::DeadlineExceeded { waited_ms: 5 }));
        }
        assert!(matches!(rx1.recv().unwrap(), Err(ServeError::DeadlineExceeded { .. })));
        assert!(matches!(rx3.recv().unwrap(), Err(ServeError::DeadlineExceeded { .. })));
        // The survivor still pops normally.
        let out = q.pop_batch(4, Duration::from_millis(10));
        assert_eq!(out.batch.len(), 1);
    }

    #[test]
    fn sweep_keeps_the_rotation_consistent() {
        let q = BoundedQueue::new(16);
        // Tenant 1's only ticket expires; tenant 2 survives. After the
        // sweep the rotation must still serve tenant 2 (and not panic on a
        // stale tenant 1 entry).
        let (t1, _rx1) = tenant_ticket(TenantId(1), 1, Duration::from_millis(0));
        let (t2, _rx2) = tenant_ticket(TenantId(2), 1, Duration::from_secs(5));
        q.push(t1).unwrap();
        q.push(t2).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(q.sweep_expired(Instant::now()).len(), 1);
        let out = q.pop_batch(4, Duration::from_millis(10));
        assert_eq!(out.batch.len(), 1);
        assert_eq!(out.batch[0].tenant, TenantId(2));
    }

    #[test]
    fn starvation_bound_is_sane() {
        // Head ticket, weight 1 of total 4: at most 2 rotations of 4.
        assert_eq!(starvation_bound_dequeues(0, 1, 4), 8);
        // Position 5 at weight 2 of total 8: ceil(6/2)+1 = 4 rotations.
        assert_eq!(starvation_bound_dequeues(5, 2, 8), 32);
        // Degenerate zero weight clamps to 1.
        assert_eq!(starvation_bound_dequeues(0, 0, 0), 2);
    }
}
