//! Bounded MPMC ticket queue: the admission-control choke point.
//!
//! Implemented with `Mutex<VecDeque> + Condvar` rather than an unbounded
//! channel: the whole point is that `push` can refuse. Capacity is enforced
//! at admission (`QueueFull`), deadlines at dequeue (`DeadlineExceeded`) —
//! a request that waited too long is shed by the worker that pops it, with
//! its typed error delivered on the ticket's responder.

use crate::error::ServeError;
use crate::request::Ticket;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Bounded multi-producer/multi-consumer queue of [`Ticket`]s.
#[derive(Debug)]
pub struct BoundedQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner {
    tickets: VecDeque<Ticket>,
    closed: bool,
}

impl BoundedQueue {
    /// A queue admitting at most `capacity` concurrent tickets.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner { tickets: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().tickets.len()
    }

    /// Admits a ticket, or returns it with the typed rejection.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] at capacity, [`ServeError::ShuttingDown`]
    /// after [`BoundedQueue::close`].
    pub fn push(&self, ticket: Ticket) -> Result<(), Box<(Ticket, ServeError)>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(Box::new((ticket, ServeError::ShuttingDown)));
        }
        if inner.tickets.len() >= self.capacity {
            let depth = inner.tickets.len();
            return Err(Box::new((ticket, ServeError::QueueFull { depth, capacity: self.capacity })));
        }
        inner.tickets.push_back(ticket);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops up to `max` tickets, waiting up to `wait` for the first one.
    ///
    /// Tickets whose deadline has already passed are shed here: each gets
    /// [`ServeError::DeadlineExceeded`] on its responder and is *not*
    /// returned. Returns an empty vec on timeout or once closed-and-empty;
    /// `shed` is incremented via the returned count's second element.
    pub fn pop_batch(&self, max: usize, wait: Duration) -> (Vec<Ticket>, usize) {
        let deadline_wait = Instant::now() + wait;
        let mut inner = self.inner.lock().unwrap();
        loop {
            if !inner.tickets.is_empty() || inner.closed {
                break;
            }
            let now = Instant::now();
            if now >= deadline_wait {
                return (Vec::new(), 0);
            }
            let (guard, _timeout) =
                self.not_empty.wait_timeout(inner, deadline_wait - now).unwrap();
            inner = guard;
        }
        let mut batch = Vec::new();
        let mut shed = 0usize;
        let now = Instant::now();
        while batch.len() < max {
            let Some(ticket) = inner.tickets.pop_front() else { break };
            if now > ticket.deadline {
                let waited = ticket.waited_ms(now);
                ticket.respond(Err(ServeError::DeadlineExceeded { waited_ms: waited }));
                shed += 1;
            } else {
                batch.push(ticket);
            }
        }
        (batch, shed)
    }

    /// Closes the queue: subsequent pushes fail and sleeping consumers wake.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }

    /// `true` once closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Removes and returns every queued ticket (used at shutdown to deliver
    /// `ShuttingDown` rather than dropping responders silently).
    pub fn drain(&self) -> Vec<Ticket> {
        let mut inner = self.inner.lock().unwrap();
        inner.tickets.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Outcome;
    use revbifpn_tensor::{Shape, Tensor};
    use std::sync::mpsc;

    fn ticket(deadline_in: Duration) -> (Ticket, mpsc::Receiver<Outcome>) {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        (
            Ticket {
                id: 0,
                image: Tensor::zeros(Shape::new(1, 3, 4, 4)),
                tag: None,
                enqueued: now,
                deadline: now + deadline_in,
                responder: tx,
            },
            rx,
        )
    }

    #[test]
    fn capacity_is_enforced_with_typed_error() {
        let q = BoundedQueue::new(2);
        let (t1, _r1) = ticket(Duration::from_secs(1));
        let (t2, _r2) = ticket(Duration::from_secs(1));
        let (t3, _r3) = ticket(Duration::from_secs(1));
        q.push(t1).unwrap();
        q.push(t2).unwrap();
        let (_, err) = *q.push(t3).unwrap_err();
        assert_eq!(err, ServeError::QueueFull { depth: 2, capacity: 2 });
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn pop_batch_respects_max() {
        let q = BoundedQueue::new(8);
        let mut rxs = Vec::new();
        for _ in 0..5 {
            let (t, r) = ticket(Duration::from_secs(1));
            q.push(t).unwrap();
            rxs.push(r);
        }
        let (batch, shed) = q.pop_batch(3, Duration::from_millis(10));
        assert_eq!((batch.len(), shed), (3, 0));
        let (batch, _) = q.pop_batch(3, Duration::from_millis(10));
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn expired_tickets_are_shed_at_dequeue() {
        let q = BoundedQueue::new(8);
        let (t, rx) = ticket(Duration::from_millis(0));
        q.push(t).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let (batch, shed) = q.pop_batch(4, Duration::from_millis(10));
        assert!(batch.is_empty());
        assert_eq!(shed, 1);
        assert!(matches!(rx.recv().unwrap(), Err(ServeError::DeadlineExceeded { .. })));
    }

    #[test]
    fn close_rejects_pushes_and_wakes_poppers() {
        let q = BoundedQueue::new(2);
        q.close();
        let (t, _r) = ticket(Duration::from_secs(1));
        let (_, err) = *q.push(t).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
        let (batch, _) = q.pop_batch(4, Duration::from_secs(5)); // returns fast
        assert!(batch.is_empty());
    }

    #[test]
    fn pop_times_out_when_empty() {
        let q = BoundedQueue::new(2);
        let start = Instant::now();
        let (batch, _) = q.pop_batch(4, Duration::from_millis(20));
        assert!(batch.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}
