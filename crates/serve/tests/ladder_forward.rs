//! Degradation-ladder coverage: for every paper variant's resolution rung,
//! a downscaled-input forward must produce finite, correctly-shaped pyramid
//! outputs. The real S-variants are too wide to forward on the test
//! machine, so each rung is exercised with the tiny channel plan at the
//! S-family input resolutions — the spatial contract (what the ladder
//! changes) is identical.

use revbifpn::{RevBiFPN, RevBiFPNConfig};
use revbifpn_nn::CacheMode;
use revbifpn_serve::downscale_rung;
use revbifpn_tensor::{resize, ResizeMode, Shape, Tensor};

/// Tiny channel plan at an S-family input resolution.
fn rung_probe_config(resolution: usize) -> RevBiFPNConfig {
    RevBiFPNConfig::tiny(10).with_resolution(resolution)
}

#[test]
fn every_family_rung_forwards_finite_and_correctly_shaped() {
    // The S0..S6 input resolutions from the paper's scaling table.
    let family: Vec<usize> =
        (0..=6).map(|s| RevBiFPNConfig::scaled(s, 10).resolution).collect();

    for (s, &res) in family.iter().enumerate() {
        let cfg = rung_probe_config(res);
        let rung = downscale_rung(&cfg)
            .unwrap_or_else(|| panic!("S{s} resolution {res} must have a lower rung"));
        assert!(rung < res, "rung must actually shrink the input");

        // The ladder's level-2 move: bilinear-downscale a full-resolution
        // input to the rung, then forward as usual.
        let full = Tensor::full(Shape::new(1, 3, res, res), 0.25);
        let small = resize(&full, rung, rung, ResizeMode::Bilinear);
        assert_eq!(small.shape(), Shape::new(1, 3, rung, rung));

        let rung_cfg = cfg.clone().with_resolution(rung);
        assert!(rung_cfg.validate().is_ok(), "S{s} rung config must validate");
        let mut backbone = RevBiFPN::new(rung_cfg.clone());
        let pyramid = backbone.forward(&small, CacheMode::None);

        assert_eq!(pyramid.len(), rung_cfg.num_streams(), "S{s}: stream count");
        let mut stream_res = rung / rung_cfg.stem_block;
        for (i, feat) in pyramid.iter().enumerate() {
            let expected = Shape::new(1, rung_cfg.channels[i], stream_res, stream_res);
            assert_eq!(feat.shape(), expected, "S{s} stream {i} shape");
            assert_eq!(
                feat.count_nonfinite(),
                0,
                "S{s} stream {i}: non-finite activations at rung {rung}"
            );
            stream_res /= 2;
        }
    }
}

#[test]
fn rung_forward_matches_native_resolution_forward() {
    // Serving a downscaled input through the full-resolution model must be
    // equivalent to a native forward at the rung resolution: the backbone
    // is fully convolutional, so only the spatial extent changes.
    let cfg = RevBiFPNConfig::tiny(10);
    let rung = downscale_rung(&cfg).unwrap();
    let x = Tensor::full(Shape::new(1, 3, rung, rung), 0.5);

    let mut at_full_cfg = RevBiFPN::new(cfg.clone());
    let mut at_rung_cfg = RevBiFPN::new(cfg.with_resolution(rung));
    let a = at_full_cfg.forward(&x, CacheMode::None);
    let b = at_rung_cfg.forward(&x, CacheMode::None);

    assert_eq!(a.len(), b.len());
    for (fa, fb) in a.iter().zip(&b) {
        assert_eq!(fa.shape(), fb.shape());
        assert_eq!(fa.data(), fb.data(), "weights are seeded: outputs must be bit-equal");
    }
}
