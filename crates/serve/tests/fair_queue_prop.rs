//! Property tests for the deficit-weighted fair queue: adversarial tenant
//! mixes must respect the documented starvation bound
//! ([`starvation_bound_dequeues`]), and under sustained backlog per-tenant
//! goodput must track quota weights. These are the two contracts the
//! multi-tenant admission layer advertises; breaking either is a fairness
//! regression even if every unit test still passes.

use proptest::prelude::*;
use revbifpn_serve::queue::BoundedQueue;
use revbifpn_serve::request::{Outcome, Ticket};
use revbifpn_serve::starvation_bound_dequeues;
use revbifpn_serve::tenant::TenantId;
use revbifpn_tensor::{Shape, Tensor};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Deterministic per-case stream used to derive weights, depths, and
/// adversarial interleavings from a single generated seed.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn ticket(id: u64, tenant: TenantId, weight: u32) -> (Ticket, mpsc::Receiver<Outcome>) {
    let (tx, rx) = mpsc::channel();
    let now = Instant::now();
    (
        Ticket {
            id,
            image: Tensor::zeros(Shape::new(1, 3, 4, 4)),
            tag: None,
            tenant,
            weight,
            cost: 1,
            probe: false,
            enqueued: now,
            deadline: now + Duration::from_secs(3600),
            responder: tx,
        },
        rx,
    )
}

/// One adversarial tenant mix: weights, per-tenant backlogs, and a
/// shuffled global arrival order.
struct Mix {
    weights: Vec<u32>,
    depths: Vec<usize>,
    /// Tenant index of each arrival, shuffled.
    arrivals: Vec<usize>,
}

fn build_mix(n_tenants: usize, seed: u64, max_depth: usize) -> Mix {
    let mut s = seed | 1; // zero seed would freeze the stream
    let weights: Vec<u32> =
        (0..n_tenants).map(|_| (xorshift(&mut s) % 8 + 1) as u32).collect();
    let depths: Vec<usize> =
        (0..n_tenants).map(|_| (xorshift(&mut s) as usize % max_depth) + 1).collect();
    let mut arrivals = Vec::new();
    for (tenant, &d) in depths.iter().enumerate() {
        arrivals.extend(std::iter::repeat_n(tenant, d));
    }
    // Fisher-Yates off the same stream: arrival order is part of the
    // adversarial input (floods may front-run, trickle, or sandwich).
    for i in (1..arrivals.len()).rev() {
        let j = (xorshift(&mut s) % (i as u64 + 1)) as usize;
        arrivals.swap(i, j);
    }
    Mix { weights, depths, arrivals }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No ticket departs later than the documented starvation bound, no
    /// ticket is lost or reordered within its tenant, and the bound holds
    /// for every tenant simultaneously — regardless of how the other
    /// tenants flood.
    #[test]
    fn starvation_bound_holds_under_adversarial_mixes(
        n_tenants in 2usize..7,
        seed in any::<u64>(),
        batch_max in 1usize..9,
    ) {
        let mix = build_mix(n_tenants, seed, 16);
        let total_weight: u64 = mix.weights.iter().map(|&w| u64::from(w)).sum();
        let total: usize = mix.depths.iter().sum();

        let q = BoundedQueue::new(total);
        let mut rxs = Vec::with_capacity(total);
        // id encodes (tenant, position-in-sub-queue) so departures can be
        // checked against the bound without side tables.
        let mut next_pos = vec![0u64; n_tenants];
        for &tenant in &mix.arrivals {
            let pos = next_pos[tenant];
            next_pos[tenant] += 1;
            let (t, rx) =
                ticket((tenant as u64) << 32 | pos, TenantId(tenant as u32), mix.weights[tenant]);
            q.push(t).expect("capacity sized to the mix");
            rxs.push(rx);
        }

        let mut dequeues = 0u64;
        let mut last_pos = vec![None::<u64>; n_tenants];
        let mut served_per_tenant = vec![0usize; n_tenants];
        while q.depth() > 0 {
            let out = q.pop_batch(batch_max, Duration::from_millis(1));
            prop_assert!(out.expired.is_empty(), "hour-long deadlines cannot expire");
            prop_assert!(!out.batch.is_empty(), "non-empty queue must make progress");
            for t in out.batch {
                dequeues += 1;
                let tenant = (t.id >> 32) as usize;
                let pos = t.id & 0xFFFF_FFFF;
                // FIFO within a tenant: positions depart in order.
                prop_assert_eq!(last_pos[tenant].map_or(0, |p| p + 1), pos);
                last_pos[tenant] = Some(pos);
                served_per_tenant[tenant] += 1;
                let bound = starvation_bound_dequeues(
                    pos as usize,
                    mix.weights[tenant],
                    total_weight,
                );
                prop_assert!(
                    dequeues <= bound,
                    "ticket (tenant {}, pos {}) departed at dequeue {} > bound {}",
                    tenant, pos, dequeues, bound,
                );
            }
        }
        // Totality: nothing starved forever, nothing duplicated.
        prop_assert_eq!(dequeues as usize, total);
        for (tenant, &served) in served_per_tenant.iter().enumerate() {
            prop_assert_eq!(served, mix.depths[tenant]);
        }
    }

    /// Under sustained backlog every tenant's share of served tickets
    /// matches its weight share to within one quantum: serving exactly R
    /// full rotations hands each tenant R * weight tickets, and arbitrary
    /// batch cuts may shift at most one quantum between tenants.
    #[test]
    fn goodput_tracks_weights_under_sustained_backlog(
        n_tenants in 2usize..7,
        seed in any::<u64>(),
        batch_max in 1usize..9,
        rotations in 2u64..6,
    ) {
        let mut s = seed | 1;
        let weights: Vec<u32> =
            (0..n_tenants).map(|_| (xorshift(&mut s) % 8 + 1) as u32).collect();
        let total_weight: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        // Deep enough that no tenant runs dry mid-measurement.
        let depths: Vec<usize> =
            weights.iter().map(|&w| (w as usize) * (rotations as usize + 2)).collect();
        let total: usize = depths.iter().sum();

        let q = BoundedQueue::new(total);
        let mut rxs = Vec::with_capacity(total);
        for (tenant, (&w, &d)) in weights.iter().zip(&depths).enumerate() {
            for pos in 0..d {
                let (t, rx) = ticket(pos as u64, TenantId(tenant as u32), w);
                q.push(t).expect("capacity sized to the mix");
                rxs.push(rx);
            }
        }

        let target = rotations * total_weight;
        let mut served = vec![0u64; n_tenants];
        let mut n = 0u64;
        while n < target {
            let room = ((target - n) as usize).min(batch_max);
            let out = q.pop_batch(room, Duration::from_millis(1));
            prop_assert!(out.expired.is_empty());
            prop_assert!(!out.batch.is_empty(), "backlogged queue must make progress");
            for t in &out.batch {
                served[t.tenant.0 as usize] += 1;
            }
            n += out.batch.len() as u64;
        }

        for (tenant, &got) in served.iter().enumerate() {
            let expected = rotations * u64::from(weights[tenant]);
            let tolerance = u64::from(weights[tenant]);
            prop_assert!(
                got.abs_diff(expected) <= tolerance,
                "tenant {} (weight {}): served {} vs expected {} ± {}",
                tenant, weights[tenant], got, expected, tolerance,
            );
        }
    }
}
