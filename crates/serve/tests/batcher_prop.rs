//! Property test for the continuous batcher + cost model pair, run as a
//! threadless simulation on an explicit clock: adversarial arrival
//! patterns and cost-model fits must never leave a request waiting past
//! its cost-model-feasible deadline without a typed shed, and every
//! request must depart exactly once (dispatched, or shed typed).
//!
//! Two regimes are asserted:
//! - Always: totality (no ticket lost or duplicated, none left bucketed),
//!   no ticket dispatched at or after its deadline, and expired tickets
//!   swept within one poll tick of expiry.
//! - Uncontended cases (bucket depth never exceeds the dispatch cap): the
//!   deadline-margin closing rule is strong enough that every dispatched
//!   batch's predicted completion lands before every member's deadline —
//!   the "no feasible deadline is missed" contract.

use proptest::prelude::*;
use revbifpn_serve::engine::Precision;
use revbifpn_serve::request::{Outcome, Ticket};
use revbifpn_serve::tenant::TenantId;
use revbifpn_serve::{BatchConfig, Batcher, BucketKey, CostKey, CostModel};
use revbifpn_tensor::{Shape, Tensor};
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn ticket(id: u64, now: Instant, deadline: Instant) -> (Ticket, mpsc::Receiver<Outcome>) {
    let (tx, rx) = mpsc::channel();
    (
        Ticket {
            id,
            image: Tensor::zeros(Shape::new(1, 3, 4, 4)),
            tag: None,
            tenant: TenantId::DEFAULT,
            weight: 1,
            cost: 1,
            probe: false,
            enqueued: now,
            deadline,
            responder: tx,
        },
        rx,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn no_feasible_deadline_is_missed_without_a_typed_shed(
        n in 1usize..40,
        seed in any::<u64>(),
        cap in 1usize..6,
        a_tenths in 0u32..50,     // fixed overhead a in [0, 5) ms
        c_tenths in 1u32..20,     // marginal cost c in (0, 2] ms
    ) {
        let a = f64::from(a_tenths) / 10.0;
        let c = f64::from(c_tenths) / 10.0;
        let key = CostKey { variant: 0, precision: Precision::F32, rung: 32 };
        let bkey = BucketKey { generation: 1, key };
        let model = CostModel::new();
        model.seed(key, a, c);
        let predict_cap = model.predict_ms(&key, cap).expect("seeded");

        // Margin sized so the 1ms poll granularity plus one tick's worth of
        // late arrivals can never push a Deadline close past feasibility.
        let margin_ms = 1 + (c * cap as f64).ceil() as u64 + 4;
        let batcher = Batcher::new(BatchConfig {
            enabled: true,
            linger_ms: 2,
            close_margin_ms: margin_ms,
            ..BatchConfig::default()
        });

        // Arrivals over 50 ticks; every deadline is cost-model-feasible at
        // admission (budget covers a full-cap dispatch plus the margin).
        let feasible_min = predict_cap.ceil() as u64 + margin_ms + 2;
        let mut s = seed | 1;
        let mut arrivals: Vec<(u64, u64, u64)> = (0..n as u64)
            .map(|id| {
                let at = xorshift(&mut s) % 50;
                let deadline = at + feasible_min + xorshift(&mut s) % 150;
                (at, id, deadline)
            })
            .collect();
        arrivals.sort_unstable();

        let base = Instant::now();
        let target = model.optimal_batch(&key, cap, 0.25).expect("seeded");
        let horizon = 50 + feasible_min + 150 + 5;

        let mut _rxs = Vec::new();
        let mut next = 0usize;
        let mut dispatched: Vec<(u64, u64, usize)> = Vec::new(); // (id, tick, batch len)
        let mut swept: Vec<(u64, u64)> = Vec::new(); // (id, tick)
        let mut deadline_of = vec![0u64; n];
        let mut contended = false;

        for tick in 0..=horizon {
            let now = base + Duration::from_millis(tick);
            // Arrivals due this tick enter their bucket.
            let mut fresh = Vec::new();
            while next < arrivals.len() && arrivals[next].0 == tick {
                let (_, id, dl) = arrivals[next];
                deadline_of[id as usize] = dl;
                let (t, rx) = ticket(id, now, base + Duration::from_millis(dl));
                fresh.push(t);
                _rxs.push(rx);
                next += 1;
            }
            batcher.offer(bkey, fresh, now);
            contended |= batcher.depth() > cap;

            // Watchdog sweep: expired tickets depart typed, promptly.
            for t in batcher.sweep_expired(now) {
                prop_assert!(
                    now.saturating_duration_since(t.deadline) <= Duration::from_millis(1),
                    "ticket {} swept {}us past its deadline",
                    t.id,
                    now.saturating_duration_since(t.deadline).as_micros(),
                );
                swept.push((t.id, tick));
            }

            // Worker passes: close until the tick has nothing ready.
            while let Some(closed) = batcher.try_close(
                &bkey,
                target,
                cap,
                |b| model.predict_ms(&key, b),
                now,
            ) {
                let len = closed.tickets.len();
                prop_assert!(len >= 1 && len <= cap);
                for t in closed.tickets {
                    // Survivors of this tick's sweep are strictly live.
                    prop_assert!(t.deadline > now, "ticket {} dispatched expired", t.id);
                    dispatched.push((t.id, tick, len));
                }
            }
        }

        // Totality: everything departed exactly once, nothing left behind.
        prop_assert_eq!(batcher.depth(), 0, "tickets left bucketed after the horizon");
        prop_assert_eq!(dispatched.len() + swept.len(), n);
        let mut seen = vec![false; n];
        for &(id, _, _) in &dispatched {
            prop_assert!(!seen[id as usize], "ticket {} departed twice", id);
            seen[id as usize] = true;
        }
        for &(id, _) in &swept {
            prop_assert!(!seen[id as usize], "ticket {} departed twice", id);
            seen[id as usize] = true;
        }

        // Uncontended regime: the closing rules guarantee the cost-model
        // contract outright — predicted completion precedes every member
        // deadline, so no feasible request needed a shed at all.
        if !contended {
            prop_assert!(swept.is_empty(), "uncontended run shed {} tickets", swept.len());
            for &(id, tick, len) in &dispatched {
                let done = tick as f64 + model.predict_ms(&key, len).expect("seeded");
                prop_assert!(
                    done <= deadline_of[id as usize] as f64,
                    "ticket {}: predicted completion {:.2}ms past deadline {}ms (batch {})",
                    id, done, deadline_of[id as usize], len,
                );
            }
        }
    }
}
