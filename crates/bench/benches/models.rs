//! Criterion model-level benchmarks: RevBiFPN-tiny forward / reversible
//! train step / conventional train step, and the RevSilo in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_tensor::{Shape, Tensor};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);

    let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    c.bench_function("tiny_forward_eval_b2", |b| {
        b.iter(|| model.forward(black_box(&x), RunMode::Eval))
    });

    c.bench_function("tiny_train_step_reversible_b2", |b| {
        b.iter(|| {
            let logits = model.forward(black_box(&x), RunMode::TrainReversible);
            let d = Tensor::full(logits.shape(), 0.01);
            model.zero_grads();
            model.backward(&d);
            model.clear_cache();
        })
    });

    c.bench_function("tiny_train_step_conventional_b2", |b| {
        b.iter(|| {
            let logits = model.forward(black_box(&x), RunMode::TrainConventional);
            let d = Tensor::full(logits.shape(), 0.01);
            model.zero_grads();
            model.backward(&d);
            model.clear_cache();
        })
    });

    // The reversible-recomputation compute overhead is the interesting number:
    // the paper trades ~one extra forward pass for O(1) activation memory.
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_models
}
criterion_main!(benches);
