//! Criterion microbenchmarks for the numeric kernels: GEMM, the three
//! convolution paths, bilinear resize, and SpaceToDepth.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_tensor::{
    conv2d, conv2d_backward, sgemm, space_to_depth, upsample, ConvSpec, ResizeMode, Shape, Tensor,
};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);

    let (m, k, n) = (64, 128, 256);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 * 0.1).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.1).collect();
    let mut out = vec![0.0f32; m * n];
    c.bench_function("sgemm_64x128x256", |bch| {
        bch.iter(|| sgemm(m, k, n, 1.0, black_box(&a), black_box(&b), 0.0, &mut out))
    });

    let x = Tensor::randn(Shape::new(1, 48, 56, 56), 1.0, &mut rng);
    let w_pw = Tensor::randn(Shape::new(64, 48, 1, 1), 0.1, &mut rng);
    let pw = ConvSpec::pointwise();
    c.bench_function("conv_pointwise_48to64_56px", |bch| {
        bch.iter(|| conv2d(black_box(&x), &w_pw, None, &pw))
    });

    let w_dw = Tensor::randn(Shape::new(48, 1, 3, 3), 0.1, &mut rng);
    let dw = ConvSpec::depthwise(3, 1, 48);
    c.bench_function("conv_depthwise3x3_48_56px", |bch| {
        bch.iter(|| conv2d(black_box(&x), &w_dw, None, &dw))
    });

    let w_gen = Tensor::randn(Shape::new(32, 48, 3, 3), 0.1, &mut rng);
    let gen = ConvSpec::kxk(3, 2);
    c.bench_function("conv_general3x3s2_48to32_56px", |bch| {
        bch.iter(|| conv2d(black_box(&x), &w_gen, None, &gen))
    });

    let y = conv2d(&x, &w_pw, None, &pw);
    c.bench_function("conv_pointwise_backward", |bch| {
        bch.iter(|| conv2d_backward(black_box(&x), &w_pw, &y, &pw, true))
    });

    let small = Tensor::randn(Shape::new(1, 64, 14, 14), 1.0, &mut rng);
    c.bench_function("bilinear_upsample_2x_64c_14px", |bch| {
        bch.iter(|| upsample(black_box(&small), 2, ResizeMode::Bilinear))
    });

    let img = Tensor::randn(Shape::new(1, 3, 224, 224), 1.0, &mut rng);
    c.bench_function("space_to_depth_4_224px", |bch| {
        bch.iter(|| space_to_depth(black_box(&img), 4))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
