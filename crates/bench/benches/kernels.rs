//! Criterion microbenchmarks for the numeric kernels: GEMM, the three
//! convolution paths, bilinear resize, and SpaceToDepth.
//!
//! The `*_ref` entries run the pre-optimisation seed algorithm (sequential
//! im2col + the scalar reference GEMM preserved in
//! `revbifpn_tensor::reference`), so one bench run records both the "before"
//! and "after" sides of the tiled/parallel kernel engine. The RevBiFPN-S0
//! entries use the paper's shapes: a 3x3/s2 stem (3 -> 48 channels at 224 px)
//! and the RevSilo cross-scale 1x1 fusion (48 -> 64 at 56 px), each at batch
//! 1 and batch 8.
//!
//! Set `CRITERION_JSON=<path>` to append one JSON line per benchmark (used to
//! produce `results/BENCH_kernels.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_tensor::{
    conv2d, conv2d_backward, reference, sgemm, space_to_depth, upsample, ConvSpec, ResizeMode,
    Shape, Tensor,
};
use std::hint::black_box;

/// Seed-style convolution: per-sample sequential im2col followed by the
/// scalar reference GEMM. This is the algorithm the optimised engine
/// replaced; it is kept here as the "before" side of the comparison.
fn conv2d_seed_ref(x: &Tensor, w: &Tensor, spec: &ConvSpec) -> Tensor {
    assert_eq!(spec.groups, 1, "reference path here only covers groups == 1");
    let xs = x.shape();
    let ws = w.shape();
    let os = spec.out_shape(xs, ws.n);
    let (oh, ow) = (os.h, os.w);
    let ohw = oh * ow;
    let rows = ws.c * spec.kh * spec.kw;
    let mut out = Tensor::zeros(os);
    let mut col = vec![0.0f32; rows * ohw];
    for n in 0..xs.n {
        for c in 0..ws.c {
            for ky in 0..spec.kh {
                for kx in 0..spec.kw {
                    let r = (c * spec.kh + ky) * spec.kw + kx;
                    for oy in 0..oh {
                        let iy = (oy * spec.sh + ky) as isize - spec.ph as isize;
                        for ox in 0..ow {
                            let ix = (ox * spec.sw + kx) as isize - spec.pw as isize;
                            let v = if iy >= 0 && (iy as usize) < xs.h && ix >= 0 && (ix as usize) < xs.w {
                                x.at(n, c, iy as usize, ix as usize)
                            } else {
                                0.0
                            };
                            col[r * ohw + oy * ow + ox] = v;
                        }
                    }
                }
            }
        }
        let yslice = &mut out.data_mut()[n * ws.n * ohw..(n + 1) * ws.n * ohw];
        reference::sgemm(ws.n, rows, ohw, 1.0, w.data(), &col, 0.0, yslice);
    }
    out
}

fn bench_gemm(c: &mut Criterion) {
    let (m, k, n) = (256, 256, 256);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 * 0.1).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.1).collect();
    let mut out = vec![0.0f32; m * n];
    c.bench_function("sgemm_ref_256x256x256", |bch| {
        bch.iter(|| reference::sgemm(m, k, n, 1.0, black_box(&a), black_box(&b), 0.0, &mut out))
    });
    c.bench_function("sgemm_256x256x256", |bch| {
        bch.iter(|| sgemm(m, k, n, 1.0, black_box(&a), black_box(&b), 0.0, &mut out))
    });
}

fn bench_s0_shapes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);

    // RevBiFPN-S0 stem: 3x3 stride-2 conv, 3 -> 48 channels at 224 px.
    let w_stem = Tensor::randn(Shape::new(48, 3, 3, 3), 0.1, &mut rng);
    let stem = ConvSpec::kxk(3, 2);
    // RevSilo cross-scale fusion: 1x1 conv, 48 -> 64 channels at 56 px.
    let w_silo = Tensor::randn(Shape::new(64, 48, 1, 1), 0.1, &mut rng);
    let silo = ConvSpec::pointwise();
    // S0 stream-1 depthwise 3x3 at 56 px.
    let w_dw = Tensor::randn(Shape::new(64, 1, 3, 3), 0.1, &mut rng);
    let dw = ConvSpec::depthwise(3, 1, 64);

    // The two sides of each comparison must compute the same function.
    {
        let img = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let a = conv2d_seed_ref(&img, &w_stem, &stem);
        let b = conv2d(&img, &w_stem, None, &stem);
        assert!(a.max_abs_diff(&b) < 1e-4, "reference and optimised stem conv disagree");
        let feat = Tensor::randn(Shape::new(1, 48, 16, 16), 1.0, &mut rng);
        let a = conv2d_seed_ref(&feat, &w_silo, &silo);
        let b = conv2d(&feat, &w_silo, None, &silo);
        assert!(a.max_abs_diff(&b) < 1e-4, "reference and optimised 1x1 conv disagree");
    }

    for &batch in &[1usize, 8] {
        let img = Tensor::randn(Shape::new(batch, 3, 224, 224), 1.0, &mut rng);
        let feat48 = Tensor::randn(Shape::new(batch, 48, 56, 56), 1.0, &mut rng);
        let feat64 = Tensor::randn(Shape::new(batch, 64, 56, 56), 1.0, &mut rng);

        c.bench_function(&format!("s0_stem3x3s2_b{batch}_ref"), |bch| {
            bch.iter(|| conv2d_seed_ref(black_box(&img), &w_stem, &stem))
        });
        c.bench_function(&format!("s0_stem3x3s2_b{batch}"), |bch| {
            bch.iter(|| conv2d(black_box(&img), &w_stem, None, &stem))
        });

        c.bench_function(&format!("s0_revsilo1x1_48to64_56px_b{batch}_ref"), |bch| {
            bch.iter(|| conv2d_seed_ref(black_box(&feat48), &w_silo, &silo))
        });
        c.bench_function(&format!("s0_revsilo1x1_48to64_56px_b{batch}"), |bch| {
            bch.iter(|| conv2d(black_box(&feat48), &w_silo, None, &silo))
        });

        c.bench_function(&format!("s0_dw3x3_64c_56px_b{batch}"), |bch| {
            bch.iter(|| conv2d(black_box(&feat64), &w_dw, None, &dw))
        });

        let y_stem = conv2d(&img, &w_stem, None, &stem);
        c.bench_function(&format!("s0_stem3x3s2_b{batch}_bwd"), |bch| {
            bch.iter(|| conv2d_backward(black_box(&img), &w_stem, &y_stem, &stem, true))
        });
        let y_silo = conv2d(&feat48, &w_silo, None, &silo);
        c.bench_function(&format!("s0_revsilo1x1_48to64_56px_b{batch}_bwd"), |bch| {
            bch.iter(|| conv2d_backward(black_box(&feat48), &w_silo, &y_silo, &silo, true))
        });
    }
}

fn bench_misc(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let small = Tensor::randn(Shape::new(1, 64, 14, 14), 1.0, &mut rng);
    c.bench_function("bilinear_upsample_2x_64c_14px", |bch| {
        bch.iter(|| upsample(black_box(&small), 2, ResizeMode::Bilinear))
    });

    let img = Tensor::randn(Shape::new(1, 3, 224, 224), 1.0, &mut rng);
    c.bench_function("space_to_depth_4_224px", |bch| {
        bch.iter(|| space_to_depth(black_box(&img), 4))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12);
    targets = bench_gemm, bench_s0_shapes, bench_misc
}
criterion_main!(benches);
