//! **Table 1 / Table 11 (ImageNet classification)**: parameters, MACs and
//! accuracy of RevBiFPN-S0..S6 next to the paper's numbers and the
//! EfficientNet/HRNet baselines.
//!
//! Absolute ImageNet accuracy is not reproducible without ImageNet (see
//! DESIGN.md); the accuracy column carries the paper's value for reference,
//! while params/MACs/memory come from *our* implementation and should track
//! the paper's within the architecture-detail tolerance discussed in
//! DESIGN.md. A trained-accuracy column at reduced scale is produced by
//! `fig14_train_equivalence` and `table3/4/5` (SynthScale).

use revbifpn::stats::summarize;
use revbifpn::RevBiFPNConfig;
use revbifpn_baselines::published::{EFFICIENTNET_IMAGENET, HRNET_IMAGENET, REVBIFPN_IMAGENET};
use revbifpn_baselines::{EfficientNet, EfficientNetConfig};
use revbifpn_bench::{fmt_b, fmt_gb, fmt_m, quick_mode, Table};

fn main() {
    println!("# Table 1 / Table 11 — ImageNet model comparison\n");
    println!("Our columns are computed from this repository's implementations;");
    println!("paper columns are carried from Chiley et al. (MLSys 2023).\n");

    let mut t = Table::new(vec![
        "model",
        "params (ours)",
        "params (paper)",
        "MACs (ours)",
        "MACs (paper)",
        "res",
        "mem/sample rev (ours)",
        "mem/sample conv (ours)",
        "top-1 (paper)",
    ]);
    let max_s = if quick_mode() { 2 } else { 6 };
    for s in 0..=max_s {
        let cfg = RevBiFPNConfig::scaled(s, 1000);
        let sum = summarize(&cfg);
        let paper = REVBIFPN_IMAGENET[s];
        t.row(vec![
            sum.name.clone(),
            fmt_m(sum.params),
            format!("{:.2}M", paper.params_m),
            fmt_b(sum.macs),
            format!("{:.2}B", paper.macs_b),
            format!("{}", sum.resolution),
            format!("{:.3}GB", sum.mem_rev_gb),
            format!("{:.3}GB", sum.mem_conv_gb),
            format!("{:.1}%", paper.top1),
        ]);
    }
    // EfficientNet rows (ours built; big variants only when not quick).
    let max_b = if quick_mode() { 1 } else { 4 };
    for b in 0..=max_b {
        let mut net = EfficientNet::new(EfficientNetConfig::bx(b, 1000));
        let paper = EFFICIENTNET_IMAGENET[b];
        let params = net.param_count();
        let macs = net.macs(1);
        let mem = net.activation_bytes(1);
        t.row(vec![
            net.cfg().name.clone(),
            fmt_m(params),
            format!("{:.2}M", paper.params_m),
            fmt_b(macs),
            format!("{:.2}B", paper.macs_b),
            format!("{}", net.cfg().resolution),
            "-".into(),
            fmt_gb(mem),
            format!("{:.1}%", paper.top1),
        ]);
    }
    for paper in HRNET_IMAGENET {
        t.row(vec![
            paper.model.to_string(),
            "-".into(),
            format!("{:.2}M", paper.params_m),
            "-".into(),
            format!("{:.2}B", paper.macs_b),
            format!("{}", paper.res),
            "-".into(),
            "-".into(),
            format!("{:.1}%", paper.top1),
        ]);
    }
    t.print();

    println!("\nShape checks (paper claims):");
    let s6 = summarize(&RevBiFPNConfig::scaled(if quick_mode() { 2 } else { 6 }, 1000));
    println!(
        "- RevBiFPN-{} conv/rev memory ratio: {:.1}x (reversibility pays more the larger the model)",
        if quick_mode() { "S2" } else { "S6" },
        s6.mem_conv_gb / s6.mem_rev_gb
    );
}
