//! **Figures 8 & 9 (RevBiFPN vs RevSHNet memory vs depth)**: the reversible
//! stacked-hourglass alternative must rematerialize an entire hourglass of
//! activations per block, so even with reversible recomputation it uses
//! ~40% more memory than RevBiFPN at 224 input (Figure 8) and ~2x at 288
//! (Figure 9) — and the gap grows with resolution.
//!
//! `--res 224` (default, Figure 8) or `--res 288` (Figure 9); pass
//! `--res 32` together with `REVBIFPN_QUICK=1` for a fast measured run.

use revbifpn::stats::memory_breakdown;
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_baselines::{RevShNet, RevShNetConfig};
use revbifpn_bench::{arg_usize, fmt_gb, quick_mode, Table};

fn main() {
    let res = arg_usize("--res", if quick_mode() { 96 } else { 224 });
    let max_depth = arg_usize("--max-depth", if quick_mode() { 4 } else { 8 });
    println!("# Figures 8/9 — RevBiFPN vs RevSHNet memory as depth scales (input {res})\n");

    let mut t = Table::new(vec![
        "d",
        "RevBiFPN rev",
        "RevSHNet rev",
        "SHNet/BiFPN",
        "RevBiFPN conv",
        "RevSHNet conv",
    ]);
    let mut last_ratio = 0.0;
    for d in 1..=max_depth {
        let cfg = RevBiFPNConfig::s0(1000).with_depth(d).with_resolution(res);
        let mut m = RevBiFPNClassifier::new(cfg);
        let rev = memory_breakdown(&mut m, 1, RunMode::TrainReversible);
        let conv = memory_breakdown(&mut m, 1, RunMode::TrainConventional);
        let bifpn_rev = rev.activations + rev.transient;
        let bifpn_conv = conv.activations;

        let sh = RevShNet::new(RevShNetConfig::s0_like().with_depth(d).with_resolution(res));
        let sh_rev = sh.activation_bytes_rev(1, res);
        let sh_conv = sh.activation_bytes_conv(1, res);
        last_ratio = sh_rev as f64 / bifpn_rev as f64;
        t.row(vec![
            format!("{d}"),
            fmt_gb(bifpn_rev),
            fmt_gb(sh_rev),
            format!("{last_ratio:.2}x"),
            fmt_gb(bifpn_conv),
            fmt_gb(sh_conv),
        ]);
    }
    t.print();
    println!(
        "\nRevSHNet/RevBiFPN reversible-memory ratio at d={max_depth}: {last_ratio:.2}x \
         (paper: ~1.4x at 224, ~2x at 288 — the hourglass transient dominates)"
    );
}
