//! **Table 5 (squeeze-excite placement ablation)**: none vs low-resolution
//! streams vs high-resolution streams. The paper (confirming Ridnik et al.
//! 2021) finds SE on the high-resolution path is the best accuracy/compute
//! trade.

use revbifpn::{RevBiFPNConfig, SePlacement};
use revbifpn_baselines::published::TABLE5;
use revbifpn_bench::{ablation_run, arg_usize, fmt_m, quick_mode, Table};

fn main() {
    let epochs = arg_usize("--epochs", if quick_mode() { 2 } else { 6 });
    let train_size = arg_usize("--train-size", if quick_mode() { 128 } else { 512 });
    println!("# Table 5 — squeeze-excite placement ablation\n");

    let variants = [
        ("None", SePlacement::None),
        ("Low-res path", SePlacement::LowRes),
        ("High-res path", SePlacement::HighRes),
    ];
    let mut t = Table::new(vec![
        "squeeze-excite",
        "params (ours)",
        "MACs (ours)",
        "top-1 SynthScale (ours)",
        "params (paper)",
        "MACs (paper)",
        "top-1 ImageNet (paper)",
    ]);
    for (i, (name, placement)) in variants.into_iter().enumerate() {
        let mut cfg = RevBiFPNConfig::tiny(16);
        cfg.se_placement = placement;
        let (params, macs, acc) = ablation_run(&cfg, epochs, train_size, 256);
        let paper = TABLE5[i];
        t.row(vec![
            name.to_string(),
            fmt_m(params),
            format!("{:.1}M", macs as f64 / 1e6),
            format!("{:.1}%", acc * 100.0),
            format!("{:.2}M", paper.params_m),
            format!("{:.1}M", paper.macs_m),
            format!("{:.1}%", paper.top1),
        ]);
    }
    t.print();
    println!("\nPaper shape: high-res SE > low-res SE >= none, at nearly identical cost.");
}
