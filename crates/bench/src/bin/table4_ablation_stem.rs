//! **Table 4 (stem ablation)**: convolutional stem vs the invertible
//! SpaceToDepth stem. The paper (confirming Ridnik et al. 2021) finds equal
//! accuracy at fewer MACs — and only SpaceToDepth keeps the network fully
//! reversible.

use revbifpn::{RevBiFPNConfig, StemKind};
use revbifpn_baselines::published::TABLE4;
use revbifpn_bench::{ablation_run, arg_usize, fmt_m, quick_mode, Table};

fn main() {
    let epochs = arg_usize("--epochs", if quick_mode() { 2 } else { 6 });
    let train_size = arg_usize("--train-size", if quick_mode() { 128 } else { 512 });
    println!("# Table 4 — stem ablation\n");

    let variants = [("Convolutional", StemKind::Convolutional), ("SpaceToDepth", StemKind::SpaceToDepth)];
    let mut t = Table::new(vec![
        "stem",
        "params (ours)",
        "MACs (ours)",
        "top-1 SynthScale (ours)",
        "fully reversible",
        "params (paper)",
        "MACs (paper)",
        "top-1 ImageNet (paper)",
    ]);
    for (i, (name, stem)) in variants.into_iter().enumerate() {
        let mut cfg = RevBiFPNConfig::tiny(16);
        cfg.stem = stem;
        let (params, macs, acc) = ablation_run(&cfg, epochs, train_size, 256);
        let paper = TABLE4[i];
        t.row(vec![
            name.to_string(),
            fmt_m(params),
            format!("{:.1}M", macs as f64 / 1e6),
            format!("{:.1}%", acc * 100.0),
            (stem == StemKind::SpaceToDepth).to_string(),
            format!("{:.2}M", paper.params_m),
            format!("{:.1}M", paper.macs_m),
            format!("{:.1}%", paper.top1),
        ]);
    }
    t.print();
    println!("\nPaper shape: identical accuracy; SpaceToDepth saves the stem MACs and is invertible.");
}
