//! Measures steady-state scratch-arena behaviour of the conv kernels and
//! prints one JSON object.
//!
//! Runs the RevBiFPN-S0 stem (3x3/s2) and RevSilo fusion (1x1) convolutions
//! forward and backward, warms the thread-local scratch arena, then counts
//! heap growths over further iterations. `heap_growths == 0` is the
//! "zero steady-state allocations per conv2d call" acceptance check;
//! `bench_kernels.sh` folds this output into `results/BENCH_kernels.json`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_tensor::{conv2d, conv2d_backward, par, scratch, ConvSpec, Shape, Tensor};

fn main() {
    // Single-threaded so every borrow lands in this thread's arena; worker
    // threads each pay a one-time warm-up growth that is not steady-state.
    par::set_max_threads(1);

    let mut rng = StdRng::seed_from_u64(0);
    let img = Tensor::randn(Shape::new(1, 3, 224, 224), 1.0, &mut rng);
    let w_stem = Tensor::randn(Shape::new(48, 3, 3, 3), 0.1, &mut rng);
    let stem = ConvSpec::kxk(3, 2);
    let feat = Tensor::randn(Shape::new(1, 48, 56, 56), 1.0, &mut rng);
    let w_silo = Tensor::randn(Shape::new(64, 48, 1, 1), 0.1, &mut rng);
    let silo = ConvSpec::pointwise();

    let step = || {
        let y = conv2d(&img, &w_stem, None, &stem);
        let _ = conv2d_backward(&img, &w_stem, &y, &stem, true);
        let z = conv2d(&feat, &w_silo, None, &silo);
        let _ = conv2d_backward(&feat, &w_silo, &z, &silo, true);
    };

    let warmup = 2;
    let measured = 5;
    for _ in 0..warmup {
        step();
    }
    scratch::reset_stats();
    for _ in 0..measured {
        step();
    }
    let s = scratch::stats();

    println!(
        "{{\"warmup_iters\": {}, \"measured_iters\": {}, \"borrows\": {}, \"heap_growths\": {}, \"peak_bytes\": {}, \"resident_bytes\": {}}}",
        warmup, measured, s.borrows, s.heap_growths, s.peak_bytes, s.resident_bytes
    );

    assert_eq!(s.heap_growths, 0, "steady-state conv2d calls must not allocate");
}
