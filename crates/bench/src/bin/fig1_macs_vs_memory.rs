//! **Figure 1 (MACs vs measured training memory)**: RevBiFPN-S0..S6 with
//! reversible recomputation vs EfficientNet-B0..B7 with conventional
//! training, per-sample activation memory at the training resolution.
//!
//! The paper's headline: at matched MACs (S6 ~ B7), RevBiFPN uses ~19.8x
//! less training memory. Our memory axis is byte-exact accounted activation
//! bytes (see `revbifpn_nn::meter`), not CUDA allocator GBs, so absolute
//! values differ from the paper's but the curve shapes and the ratio do not.

use revbifpn::stats::{memory_breakdown, summarize};
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_baselines::{EfficientNet, EfficientNetConfig};
use revbifpn_bench::{fmt_b, quick_mode, Table};

fn main() {
    println!("# Figure 1 — MACs vs per-sample training memory\n");
    let mut t = Table::new(vec!["series", "model", "MACs", "mem/sample (GB)", "regime"]);

    let max_s = if quick_mode() { 2 } else { 6 };
    let mut s6_rev_gb = 0.0;
    for s in 0..=max_s {
        let cfg = RevBiFPNConfig::scaled(s, 1000);
        let sum = summarize(&cfg);
        if s == max_s {
            s6_rev_gb = sum.mem_rev_gb;
        }
        t.row(vec![
            "RevBiFPN".to_string(),
            sum.name.clone(),
            fmt_b(sum.macs),
            format!("{:.3}", sum.mem_rev_gb),
            "reversible".into(),
        ]);
    }
    let max_b = if quick_mode() { 2 } else { 7 };
    let mut b7_gb = 0.0;
    for b in 0..=max_b {
        let net = EfficientNet::new(EfficientNetConfig::bx(b, 1000));
        let macs = net.macs(1);
        let gb = net.activation_bytes(1) as f64 / 1e9;
        if b == max_b {
            b7_gb = gb;
        }
        t.row(vec![
            "EfficientNet".to_string(),
            net.cfg().name.clone(),
            fmt_b(macs),
            format!("{gb:.3}"),
            "conventional".into(),
        ]);
    }
    t.print();

    println!("\nHeadline ratio (largest models, ours): {:.1}x (paper: 19.8x at S6 vs B7)", b7_gb / s6_rev_gb);

    // Cross-check the analytic reversible figure against the measured meter
    // on a variant small enough to actually run.
    let mut m = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    let bd = memory_breakdown(&mut m, 1, RunMode::TrainReversible);
    println!(
        "\nMeter cross-check (tiny variant): analytic activations+transient = {} bytes",
        bd.activations + bd.transient
    );
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let x = revbifpn_tensor::Tensor::randn(revbifpn_tensor::Shape::new(1, 3, 32, 32), 1.0, &mut rng);
    let (peak, _) = m.measure_step(&x, RunMode::TrainReversible);
    println!("measured peak = {peak} bytes (must be <= analytic and close)");
}
