//! **Table 9 / Figure 5 (COCO detection)**: two sections.
//!
//! 1. *Analytic, paper scale*: backbone params / MACs / training memory at
//!    the detection input resolution for RevBiFPN-S0..S6 (reversible),
//!    HRNetV2-W18/32/48 and ResNet-50/101-FPN (conventional), printed next
//!    to the paper's Table 9. Absolute MACs differ (the paper includes the
//!    Faster R-CNN head at 800x1333; we report backbone+FPN at a square
//!    input) but the ordering and memory ratios are the comparison points.
//! 2. *Measured, reduced scale*: detectors actually trained on SynthDet
//!    with the FCOS-style head (the Faster R-CNN substitution, DESIGN.md),
//!    evaluated with full COCO-style AP, including measured peak training
//!    memory — demonstrating RevBiFPN's AP parity with HRNet at a fraction
//!    of the memory.

use revbifpn::stats::memory_breakdown;
use revbifpn::{RevBiFPN, RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_baselines::published::TABLE9;
use revbifpn_baselines::{HrNet, HrNetConfig, ResNetFpn, ResNetFpnConfig};
use revbifpn_bench::{arg_usize, fmt_b, fmt_gb, fmt_m, quick_mode, Table};
use revbifpn_data::{SynthDet, SynthDetConfig};
use revbifpn_detect::{
    evaluate_box_ap, AreaRanges, Backbone, DetHeadConfig, Detector, HrBackbone, RevBackbone,
};
use revbifpn_nn::meter;
use revbifpn_train::{LrSchedule, Sgd};

fn analytic_section() {
    println!("## (a) Paper-scale backbones (analytic; detection input 256)\n");
    let res = 256;
    // Our columns cover the backbone+pyramid only at a square 256 input;
    // the paper's include the Faster R-CNN head at 800x1333. Orderings and
    // memory ratios are the comparison points.
    let mut t = Table::new(vec![
        "backbone",
        "bb params (ours)",
        "bb MACs@256 (ours)",
        "bb mem/sample (ours)",
        "params (paper)",
        "MACs (paper)",
        "mem (paper)",
        "AP (paper, 1x)",
    ]);
    let max_s = if quick_mode() { 2 } else { 6 };
    for s in 0..=max_s {
        let cfg = RevBiFPNConfig::scaled(s, 1000).with_resolution(res);
        let mut m = RevBiFPNClassifier::new(cfg.clone());
        let b = memory_breakdown(&mut m, 1, RunMode::TrainReversible);
        let mut bb = RevBiFPN::new(cfg);
        let paper = &TABLE9[s];
        t.row(vec![
            format!("RevBiFPN-S{s} (rev)"),
            fmt_m(bb.param_count()),
            fmt_b(bb.macs(1)),
            fmt_gb(b.activations + b.transient),
            format!("{:.1}M", paper.params_m),
            format!("{:.0}B", paper.macs_b),
            format!("{:.2}GB", paper.mem_gb),
            format!("{:.1}", paper.ap),
        ]);
    }
    let hr_cfgs = if quick_mode() { vec![HrNetConfig::w18()] } else { vec![HrNetConfig::w18(), HrNetConfig::w32(), HrNetConfig::w48()] };
    for cfg in hr_cfgs {
        let mut net = HrNet::new(cfg);
        let paper = TABLE9
            .iter()
            .find(|r| r.backbone.ends_with(&net.cfg().name["HRNetV2-".len()..]) && r.schedule == "1x")
            .expect("published row");
        t.row(vec![
            format!("{} (conv)", net.cfg().name),
            fmt_m(net.param_count()),
            fmt_b(net.macs_at(1, res)),
            fmt_gb(net.activation_bytes_at(1, res)),
            format!("{:.1}M", paper.params_m),
            format!("{:.0}B", paper.macs_b),
            format!("{:.2}GB", paper.mem_gb),
            format!("{:.1}", paper.ap),
        ]);
    }
    let rn_cfgs = if quick_mode() { vec![ResNetFpnConfig::r50()] } else { vec![ResNetFpnConfig::r50(), ResNetFpnConfig::r101()] };
    for cfg in rn_cfgs {
        let name = cfg.name.clone();
        let mut net = ResNetFpn::new(cfg);
        let paper = TABLE9.iter().find(|r| r.backbone == name && r.schedule == "1x").expect("published row");
        t.row(vec![
            format!("{name} (conv)"),
            fmt_m(net.param_count()),
            fmt_b(net.macs_at(1, res)),
            fmt_gb(net.activation_bytes_at(1, res)),
            format!("{:.1}M", paper.params_m),
            format!("{:.0}B", paper.macs_b),
            format!("{:.2}GB", paper.mem_gb),
            format!("{:.1}", paper.ap),
        ]);
    }
    t.print();
}

struct TrainedRow {
    name: String,
    params: u64,
    peak_bytes: usize,
    ap: revbifpn_detect::ApResult,
}

fn train_and_eval(backbone: Box<dyn Backbone>, steps: usize, res: usize, seed: u64) -> TrainedRow {
    let data = SynthDet::new(SynthDetConfig::new(res), 11);
    let cfg = DetHeadConfig::new(data.cfg().num_classes);
    let mut det = Detector::new(backbone, cfg, seed);
    let params = det.param_count();
    let mut opt = Sgd::new(0.9, 1e-4);
    let schedule = LrSchedule::paper_like(0.02, steps);
    let batch = 8;
    let mut peak = 0usize;
    for step in 0..steps {
        let (images, objects) = data.batch((step * batch) as u64, batch);
        meter::reset();
        det.zero_grads();
        let _ = det.train_step(&images, &objects);
        peak = peak.max(meter::peak());
        let _ = revbifpn_train::clip_grad_norm(|f| det.visit_params(f), 5.0);
        opt.step(schedule.lr(step), |f| det.visit_params(f));
    }
    det.clear_cache();
    // Held-out evaluation (indices far above the training range).
    let eval_n = if quick_mode() { 24 } else { 64 };
    let mut dets = Vec::new();
    let mut gts = Vec::new();
    for i in 0..eval_n {
        let s = data.sample(1_000_000 + i as u64);
        let d = det.detect(&s.image);
        dets.push(d.into_iter().next().expect("one image"));
        gts.push(s.objects);
    }
    let ap = evaluate_box_ap(&dets, &gts, data.cfg().num_classes, AreaRanges::scaled_to(res));
    TrainedRow { name: det.backbone().name(), params, peak_bytes: peak, ap }
}

fn measured_section() {
    let res = 48;
    let steps = arg_usize("--steps", if quick_mode() { 40 } else { 250 });
    println!("\n## (b) Measured on SynthDet ({res}px, {steps} steps, FCOS-lite head)\n");
    let rows = vec![
        train_and_eval(
            Box::new(RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(3).with_resolution(res)), true)),
            steps,
            res,
            0,
        ),
        train_and_eval(
            Box::new(RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(3).with_resolution(res)), false)),
            steps,
            res,
            0,
        ),
        train_and_eval(
            Box::new(HrBackbone::new(HrNet::new(HrNetConfig { resolution: res, ..HrNetConfig::micro() }))),
            steps,
            res,
            0,
        ),
    ];
    let mut t = Table::new(vec!["backbone", "params", "peak train bytes", "AP", "AP50", "AP75", "APs", "APm", "APl"]);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            fmt_m(r.params),
            format!("{}", r.peak_bytes),
            format!("{:.1}", r.ap.ap * 100.0),
            format!("{:.1}", r.ap.ap50 * 100.0),
            format!("{:.1}", r.ap.ap75 * 100.0),
            format!("{:.1}", r.ap.ap_small * 100.0),
            format!("{:.1}", r.ap.ap_medium * 100.0),
            format!("{:.1}", r.ap.ap_large * 100.0),
        ]);
    }
    t.print();
    println!(
        "\nShape checks: the reversible and conventional RevBiFPN rows match in AP \
         (identical training, frozen-stat recomputation) while the reversible row's \
         peak memory is a fraction of both its conventional twin and HRNet's."
    );
}

fn main() {
    println!("# Table 9 / Figure 5 — object detection\n");
    analytic_section();
    measured_section();
}
