//! **Figure 10 (MACs vs parameters under depth scaling)**: scaling RevSHNet
//! produces a much higher compute-per-parameter profile than RevBiFPN —
//! every stacked hourglass re-traverses the whole resolution pyramid.

use revbifpn::{RevBiFPN, RevBiFPNConfig};
use revbifpn_baselines::{RevShNet, RevShNetConfig};
use revbifpn_bench::{arg_usize, fmt_b, fmt_m, quick_mode, Table};

fn main() {
    let max_depth = arg_usize("--max-depth", if quick_mode() { 4 } else { 8 });
    let res = arg_usize("--res", 224);
    println!("# Figure 10 — MACs vs params as depth is scaled (input {res})\n");

    let mut t = Table::new(vec![
        "d",
        "RevBiFPN params",
        "RevBiFPN MACs",
        "BiFPN MACs/Mparam",
        "RevSHNet params",
        "RevSHNet MACs",
        "SHNet MACs/Mparam",
    ]);
    let mut last = (0.0, 0.0);
    for d in 1..=max_depth {
        let mut bifpn = RevBiFPN::new(RevBiFPNConfig::s0(1000).with_depth(d).with_resolution(res));
        let bp = bifpn.param_count();
        let bm = bifpn.macs(1);
        let mut sh = RevShNet::new(RevShNetConfig::s0_like().with_depth(d).with_resolution(res));
        let sp = sh.param_count();
        let sm = sh.macs_at(1, res);
        let b_per = bm as f64 / (bp as f64 / 1e6);
        let s_per = sm as f64 / (sp as f64 / 1e6);
        last = (b_per, s_per);
        t.row(vec![
            format!("{d}"),
            fmt_m(bp),
            fmt_b(bm),
            format!("{:.2}B", b_per / 1e9),
            fmt_m(sp),
            fmt_b(sm),
            format!("{:.2}B", s_per / 1e9),
        ]);
    }
    t.print();
    println!(
        "\nPaper shape: at matched parameter counts RevSHNet costs substantially more MACs.\n\
         At the deepest sweep point, compute per million parameters: RevSHNet {:.2}B vs RevBiFPN {:.2}B ({:.2}x).",
        last.1 / 1e9,
        last.0 / 1e9,
        last.1 / last.0
    );
}
