//! **Figure 12 + Appendix C.4 (memory vs input resolution)**: with or
//! without reversibility memory is quadratic in resolution, but the
//! reversible offset lets ~4x larger inputs fit in the same budget — the
//! paper's 2Kx2K -> 8Kx8K claim on a 16 GB device.

use revbifpn::stats::memory_breakdown;
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_bench::{arg_usize, fmt_gb, quick_mode, Table};

fn breakdown_at(res: usize, batch: usize, mode: RunMode) -> u64 {
    let cfg = RevBiFPNConfig::s0(1000).with_resolution(res);
    let mut m = RevBiFPNClassifier::new(cfg);
    let b = memory_breakdown(&mut m, batch, mode);
    b.activations + b.transient
}

fn main() {
    let batch = arg_usize("--batch", 16);
    println!("# Figure 12 — activation memory vs input resolution (S0 width, batch {batch})\n");
    let resolutions: &[usize] = if quick_mode() { &[96, 160, 224, 320] } else { &[96, 160, 224, 320, 448, 640, 896] };
    let mut t = Table::new(vec!["resolution", "reversible", "conventional", "ratio"]);
    for &res in resolutions {
        let rev = breakdown_at(res, batch, RunMode::TrainReversible);
        let conv = breakdown_at(res, batch, RunMode::TrainConventional);
        t.row(vec![
            format!("{res}"),
            fmt_gb(rev),
            fmt_gb(conv),
            format!("{:.1}x", conv as f64 / rev as f64),
        ]);
    }
    t.print();

    // Appendix C.4: the largest square input fitting a 16 GB activation
    // budget, batch 1, with and without reversibility.
    println!("\n## Appendix C.4 — largest input on a 16 GB budget (batch 1)\n");
    let budget = 16u64 * 1_000_000_000;
    let mut t = Table::new(vec!["regime", "max resolution (multiple of 224)"]);
    let mut maxres = Vec::new();
    for (name, mode) in [("conventional", RunMode::TrainConventional), ("reversible", RunMode::TrainReversible)] {
        let mut best = 0usize;
        let mut res = 224;
        while res <= 8960 {
            if breakdown_at(res, 1, mode) <= budget {
                best = res;
            } else {
                break;
            }
            res += 224;
        }
        maxres.push(best);
        t.row(vec![name.to_string(), format!("{best}x{best}")]);
    }
    t.print();
    println!(
        "\nLinear max-resolution advantage of reversibility: {:.1}x (paper: ~4x, 2Kx2K -> 8Kx8K).",
        maxres[1] as f64 / maxres[0].max(1) as f64
    );
    println!("Our accounted bytes omit CUDA allocator overheads, so the conventional limit lands");
    println!("higher than the paper's in absolute terms; the advantage ratio is the comparison point.");
}
