//! **Extra experiment (paper Appendix A context)**: activation memory of the
//! three training regimes the paper discusses — conventional O(D), gradient
//! checkpointing O(sqrt(D)) (Chen et al. 2016), and reversible
//! recomputation O(1) — computed analytically over the RevBiFPN-S0 body as
//! depth is scaled, from the same per-stage cache model validated against
//! the runtime meter.

use revbifpn::{RevBiFPN, RevBiFPNConfig};
use revbifpn_bench::{arg_usize, fmt_mb, quick_mode, Table};
use revbifpn_nn::CacheMode;
use revbifpn_tensor::Shape;

fn main() {
    let max_depth = arg_usize("--max-depth", if quick_mode() { 4 } else { 10 });
    let res = arg_usize("--res", 224);
    println!("# Extra — conventional vs sqrt-checkpointing vs reversible (S0 width, input {res}, batch 1)\n");

    let mut t = Table::new(vec![
        "d",
        "stages",
        "conventional O(D)",
        "checkpoint O(sqrt D)",
        "reversible O(1)",
        "ckpt/rev",
    ]);
    for d in 1..=max_depth {
        let b = RevBiFPN::new(RevBiFPNConfig::s0(1000).with_depth(d).with_resolution(res));
        let img = Shape::new(1, 3, res, res);
        let s0 = b.stem().out_shape(img);
        let body = b.body();
        let stages = body.len();
        let conv = body.cache_bytes(&[s0], CacheMode::Full);
        let seg = (stages as f64).sqrt().round().max(1.0) as usize;
        let ckpt = body.checkpoint_bytes(&[s0], seg);
        let pyramid: u64 = body.out_shapes(&[s0]).iter().map(|s| s.bytes() as u64).sum();
        let rev = body.cache_bytes(&[s0], CacheMode::Stats) + pyramid + body.peak_transient_bytes(&[s0]);
        t.row(vec![
            format!("{d}"),
            format!("{stages}"),
            fmt_mb(conv),
            fmt_mb(ckpt),
            fmt_mb(rev),
            format!("{:.1}x", ckpt as f64 / rev as f64),
        ]);
    }
    t.print();
    println!("\nReversible recomputation beats sqrt-checkpointing by a growing margin as depth");
    println!("scales, at the cost of re-running each stage once (roughly one extra forward).");
}
