//! **Figure 14 (training with vs without reversible recomputation)**: the
//! paper shows the two validation-accuracy curves are indistinguishable.
//! Here the claim is *stronger*: because BatchNorm statistics are frozen
//! during the reversible forward and replayed during recomputation, the two
//! regimes produce bit-comparable losses at every epoch (differences are
//! pure f32 rounding in the coupling adds).

use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_bench::{arg_usize, quick_mode, Table};
use revbifpn_data::{SynthScale, SynthScaleConfig};
use revbifpn_train::{train_classifier, TrainConfig};

fn main() {
    let epochs = arg_usize("--epochs", if quick_mode() { 2 } else { 8 });
    let train_size = arg_usize("--train-size", if quick_mode() { 128 } else { 512 });
    println!("# Figure 14 — reversible vs conventional training curves (SynthScale)\n");

    let data = SynthScale::new(SynthScaleConfig::new(32), 7);
    let cfg = RevBiFPNConfig::tiny(data.num_classes());
    let tc = TrainConfig {
        epochs,
        train_size,
        val_size: 256,
        batch_size: 16,
        lr: 0.08,
        ..TrainConfig::small()
    };

    let mut conv_model = RevBiFPNClassifier::new(cfg.clone());
    let conv = train_classifier(&mut conv_model, &data, &tc, RunMode::TrainConventional);
    let mut rev_model = RevBiFPNClassifier::new(cfg);
    let rev = train_classifier(&mut rev_model, &data, &tc, RunMode::TrainReversible);

    let mut t = Table::new(vec![
        "epoch",
        "loss (conv)",
        "loss (rev)",
        "val acc (conv)",
        "val acc (rev)",
        "peak act bytes (conv)",
        "peak act bytes (rev)",
    ]);
    let mut max_dloss = 0.0f64;
    for (a, b) in conv.epochs.iter().zip(&rev.epochs) {
        max_dloss = max_dloss.max((a.train_loss - b.train_loss).abs());
        t.row(vec![
            format!("{}", a.epoch),
            format!("{:.4}", a.train_loss),
            format!("{:.4}", b.train_loss),
            format!("{:.3}", a.val_acc),
            format!("{:.3}", b.val_acc),
            format!("{}", a.peak_activation_bytes),
            format!("{}", b.peak_activation_bytes),
        ]);
    }
    t.print();

    println!("\nmax |loss(conv) - loss(rev)| over the run: {max_dloss:.2e} (paper: 'inconsequential')");
    println!(
        "memory saving of the reversible run: {:.1}x",
        conv.peak_activation_bytes() as f64 / rev.peak_activation_bytes() as f64
    );
    println!(
        "final val accuracy — conventional: {:.3}, reversible: {:.3} (random chance: {:.3})",
        conv.final_val_acc(),
        rev.final_val_acc(),
        1.0 / data.num_classes() as f64
    );

    // Drift-sentinel statistics from the reversible run: every backward pass
    // compared reconstructed activations against their forward fingerprints.
    let report = rev_model.backbone().body().drift_report();
    println!(
        "\ndrift sentinel — max reconstruction drift: {:.3e}, stages in cached fallback: {}",
        report.max_drift(),
        report.fallback_count()
    );
    let mut json = String::from("{\n  \"max_drift\": ");
    json.push_str(&format!("{:e}", report.max_drift()));
    json.push_str(&format!(",\n  \"fallback_count\": {},\n  \"stages\": [\n", report.fallback_count()));
    for (i, s) in report.stages.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"max_drift\": {:e}, \"checks\": {}, \"fallback\": {}}}{}\n",
            s.name,
            s.max_drift,
            s.checks,
            s.fallback,
            if i + 1 < report.stages.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("cannot create results/");
    std::fs::write("results/DRIFT_sentinel.json", &json).expect("cannot write drift stats");
    println!("wrote results/DRIFT_sentinel.json");
}
