//! **Extra ablations of this reproduction's own design choices** (flagged in
//! DESIGN.md): the paper states the expansion-ratio schedule only
//! qualitatively, so we sweep (a) the silo fusion-transform expansion and
//! (b) the per-stage reversible-block count, reporting params / MACs /
//! memory / SynthScale accuracy for each choice. The shipped defaults
//! (fusion expansion 1.0, one block per stage, block expansions rising with
//! coarseness) land closest to the paper's S0 budget.

use revbifpn::stats::summarize;
use revbifpn::RevBiFPNConfig;
use revbifpn_bench::{ablation_run, arg_usize, fmt_b, fmt_m, quick_mode, Table};

fn main() {
    let epochs = arg_usize("--epochs", if quick_mode() { 2 } else { 5 });
    let train_size = arg_usize("--train-size", if quick_mode() { 128 } else { 384 });

    println!("# Extra — reproduction design-choice ablations\n");
    println!("## (a) fusion-transform expansion ratio (S0 budget impact, analytic)\n");
    let mut t = Table::new(vec!["fusion expansion", "S0 params", "S0 MACs", "rev mem/sample", "paper budget"]);
    for e in [0.5f32, 1.0, 1.5, 2.0] {
        let mut cfg = RevBiFPNConfig::s0(1000);
        cfg.fusion_expansion = e;
        let s = summarize(&cfg);
        t.row(vec![
            format!("{e}"),
            fmt_m(s.params),
            fmt_b(s.macs),
            format!("{:.3}GB", s.mem_rev_gb),
            "3.42M / 0.31B".to_string(),
        ]);
    }
    t.print();

    println!("\n## (b) reversible blocks per stage (tiny scale, trained on SynthScale)\n");
    let mut t = Table::new(vec!["blocks/stage", "params", "MACs", "top-1"]);
    for blocks in [1usize, 2, 3] {
        let mut cfg = RevBiFPNConfig::tiny(16);
        cfg.blocks_per_stage = blocks;
        let (params, macs, acc) = ablation_run(&cfg, epochs, train_size, 256);
        t.row(vec![
            format!("{blocks}"),
            fmt_m(params),
            format!("{:.1}M", macs as f64 / 1e6),
            format!("{:.1}%", acc * 100.0),
        ]);
    }
    t.print();

    println!("\n## (c) block expansion schedule (tiny scale, trained)\n");
    let mut t = Table::new(vec!["expansion schedule", "params", "MACs", "top-1"]);
    for (name, exp) in [
        ("flat 1.0", vec![1.0f32, 1.0, 1.0]),
        ("rising (default-like)", vec![1.0, 1.5, 2.0]),
        ("steep rising", vec![1.0, 2.0, 4.0]),
        ("falling", vec![2.0, 1.5, 1.0]),
    ] {
        let mut cfg = RevBiFPNConfig::tiny(16);
        cfg.expansion = exp;
        let (params, macs, acc) = ablation_run(&cfg, epochs, train_size, 256);
        t.row(vec![
            name.to_string(),
            fmt_m(params),
            format!("{:.1}M", macs as f64 / 1e6),
            format!("{:.1}%", acc * 100.0),
        ]);
    }
    t.print();
    println!("\nPaper guidance: \"larger expansion ratios on the lower resolution streams\" —");
    println!("the rising schedule; these sweeps bracket the budget impact of that choice.");
}
