//! **Figure 4 (memory vs depth)**: training RevBiFPN-S0-width with and
//! without reversible recomputation as the fusion depth `d` is scaled.
//! Reversible memory is ~constant in depth; conventional is linear.
//!
//! Two sections: (a) the paper-scale S0 configuration via the analytic
//! memory model (batch 64 like the paper), and (b) a scaled-down variant
//! actually executed with the byte-exact meter, cross-validating the model.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn::stats::memory_breakdown;
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_bench::{arg_usize, fmt_gb, quick_mode, Table};
use revbifpn_tensor::{Shape, Tensor};

fn main() {
    let max_depth = arg_usize("--max-depth", if quick_mode() { 4 } else { 8 });

    println!("# Figure 4 — memory vs depth (with / without reversible recomputation)\n");
    println!("## (a) S0-width at 224, batch 64, analytic model\n");
    let mut t = Table::new(vec!["d (extra silos)", "reversible", "conventional", "ratio"]);
    for d in 1..=max_depth {
        let cfg = RevBiFPNConfig::s0(1000).with_depth(d);
        let mut m = RevBiFPNClassifier::new(cfg);
        let rev = memory_breakdown(&mut m, 64, RunMode::TrainReversible);
        let conv = memory_breakdown(&mut m, 64, RunMode::TrainConventional);
        let rev_b = rev.activations + rev.transient;
        let conv_b = conv.activations;
        t.row(vec![
            format!("{d}"),
            fmt_gb(rev_b),
            fmt_gb(conv_b),
            format!("{:.1}x", conv_b as f64 / rev_b as f64),
        ]);
    }
    t.print();

    println!("\n## (b) tiny variant, batch 8, measured with the byte-exact meter\n");
    let mut t = Table::new(vec!["d", "measured rev (bytes)", "measured conv (bytes)", "ratio"]);
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn(Shape::new(8, 3, 32, 32), 1.0, &mut rng);
    let depths: Vec<usize> = (1..=max_depth.min(6)).collect();
    let mut first_rev = 0usize;
    let mut last_rev = 0usize;
    for &d in &depths {
        let mut m = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_depth(d));
        let (rev, _) = m.measure_step(&x, RunMode::TrainReversible);
        let (conv, _) = m.measure_step(&x, RunMode::TrainConventional);
        if d == depths[0] {
            first_rev = rev;
        }
        last_rev = rev;
        t.row(vec![
            format!("{d}"),
            format!("{rev}"),
            format!("{conv}"),
            format!("{:.1}x", conv as f64 / rev as f64),
        ]);
    }
    t.print();
    println!(
        "\nReversible memory growth across the sweep: {:.1}% (paper: ~constant)",
        (last_rev as f64 / first_rev as f64 - 1.0) * 100.0
    );
}
