//! **Table 2 (training memory per sample)**: RevBiFPN-S6 (reversible) vs
//! EfficientNet-B7 (conventional) at the training resolutions and at
//! 224 / 384. Our values are accounted activation bytes from the same
//! models the other tables use; the paper's CUDA GBs are shown alongside.

use revbifpn::stats::memory_breakdown;
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_baselines::published::TABLE2;
use revbifpn_baselines::{EfficientNet, EfficientNetConfig};
use revbifpn_bench::{quick_mode, Table};

fn rev_gb(s: usize, res: usize) -> f64 {
    let cfg = RevBiFPNConfig::scaled(s, 1000).with_resolution(res);
    let mut m = RevBiFPNClassifier::new(cfg);
    let b = memory_breakdown(&mut m, 1, RunMode::TrainReversible);
    (b.activations + b.transient) as f64 / 1e9
}

fn main() {
    println!("# Table 2 — training memory (GB) per sample\n");
    let (s, b, s_name, b_name) = if quick_mode() {
        (2usize, 2usize, "RevBiFPN-S2", "EfficientNet-B2")
    } else {
        (6, 7, "RevBiFPN-S6", "EfficientNet-B7")
    };
    let s_train_res = RevBiFPNConfig::scaled(s, 1000).resolution;
    let eff = EfficientNet::new(EfficientNetConfig::bx(b, 1000));
    let b_train_res = eff.cfg().resolution;

    let mut t = Table::new(vec!["model", "train res (ours)", "@224 (ours)", "@384 (ours)", "train res (paper)", "@224 (paper)", "@384 (paper)"]);
    t.row(vec![
        s_name.to_string(),
        format!("{:.3} ({}px)", rev_gb(s, s_train_res), s_train_res),
        format!("{:.3}", rev_gb(s, 224)),
        format!("{:.3}", rev_gb(s, 384)),
        format!("{:.3}", TABLE2[0].train_res_gb),
        "-".into(),
        format!("{:.3}", TABLE2[0].at384_gb),
    ]);
    let gb_at = |res: usize| eff.activation_bytes_at(1, res) as f64 / 1e9;
    t.row(vec![
        b_name.to_string(),
        format!("{:.3} ({}px)", gb_at(b_train_res), b_train_res),
        format!("{:.3}", gb_at(224)),
        format!("{:.3}", gb_at(384)),
        format!("{:.3}", TABLE2[1].train_res_gb),
        TABLE2[1].at224_gb.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".into()),
        format!("{:.3}", TABLE2[1].at384_gb),
    ]);
    t.print();

    let ratio_train = gb_at(b_train_res) / rev_gb(s, s_train_res);
    let ratio_384 = gb_at(384) / rev_gb(s, 384);
    println!("\nmemory ratios ({b_name} / {s_name}):");
    println!("- at training resolutions: {ratio_train:.1}x (paper: {:.1}x)", TABLE2[1].train_res_gb / TABLE2[0].train_res_gb);
    println!("- at 384: {ratio_384:.1}x (paper: {:.1}x)", TABLE2[1].at384_gb / TABLE2[0].at384_gb);
}
