//! **Table 3 (down/up-sampling operator ablation)**: LD/SU (HRNet-style
//! chained downsampling + nearest upsampling), SD/SU, and SD/LU (the
//! paper's choice: single strided depthwise + bilinear-conv upsampling).
//! The paper runs at 96x96 for 150 epochs on ImageNet; we run the same
//! three architectures at reduced scale on SynthScale and report our
//! params/MACs next to the paper's.

use revbifpn::{DownsampleMode, RevBiFPNConfig, UpsampleMode};
use revbifpn_baselines::published::TABLE3;
use revbifpn_bench::{ablation_run, arg_usize, fmt_m, quick_mode, Table};

fn main() {
    let epochs = arg_usize("--epochs", if quick_mode() { 2 } else { 6 });
    let train_size = arg_usize("--train-size", if quick_mode() { 128 } else { 512 });
    println!("# Table 3 — down / up sampling operator ablation\n");

    let variants: [(&str, DownsampleMode, UpsampleMode); 3] = [
        ("LD / SU", DownsampleMode::Chained, UpsampleMode::NearestPointwise),
        ("SD / SU", DownsampleMode::SingleStrided, UpsampleMode::NearestPointwise),
        ("SD / LU", DownsampleMode::SingleStrided, UpsampleMode::BilinearConv),
    ];

    let mut t = Table::new(vec![
        "down/up",
        "params (ours)",
        "MACs (ours)",
        "top-1 SynthScale (ours)",
        "params (paper)",
        "MACs (paper)",
        "top-1 ImageNet (paper)",
    ]);
    for (i, (name, down, up)) in variants.into_iter().enumerate() {
        let mut cfg = RevBiFPNConfig::tiny(16);
        cfg.down_mode = down;
        cfg.up_mode = up;
        let (params, macs, acc) = ablation_run(&cfg, epochs, train_size, 256);
        let paper = TABLE3[i];
        t.row(vec![
            name.to_string(),
            fmt_m(params),
            format!("{:.1}M", macs as f64 / 1e6),
            format!("{:.1}%", acc * 100.0),
            format!("{:.2}M", paper.params_m),
            format!("{:.1}M", paper.macs_m),
            format!("{:.1}%", paper.top1),
        ]);
    }
    t.print();
    println!("\nPaper shape: SD/LU matches LD/SU accuracy at ~8% fewer MACs; SD/SU trades accuracy for MACs.");
}
