//! **Table 6 (compound scaling)**: the width multiplier / depth / resolution
//! schedule of RevBiFPN-S0..S6, the resulting channel plans, and the
//! activation-set growth that only reversibility makes trainable (the
//! paper's footnote: S6's activation set is ~24x S1's).

use revbifpn::RevBiFPNConfig;
use revbifpn_bench::Table;

fn main() {
    println!("# Table 6 — RevBiFPN compound scaling\n");
    const MW: [f32; 7] = [1.0, 1.33, 2.0, 2.67, 4.0, 5.33, 6.67];
    let mut t = Table::new(vec!["model", "m_w", "d", "h and w", "channels (ours)", "neck channels (ours)"]);
    for s in 0..=6usize {
        let cfg = RevBiFPNConfig::scaled(s, 1000);
        t.row(vec![
            cfg.name.clone(),
            format!("{}", MW[s]),
            format!("{}", cfg.depth),
            format!("{}", cfg.resolution),
            format!("{:?}", cfg.channels),
            format!("{:?}", cfg.neck_channels),
        ]);
    }
    t.print();

    // The footnote: activation-set ratio S6/S1 = (c*h*w*d) ratio.
    let act = |s: usize| {
        let c = RevBiFPNConfig::scaled(s, 1000);
        (c.channels[0] * c.resolution * c.resolution * c.depth) as f64
    };
    println!(
        "\nActivation-set ratio S6/S1 (c*h*w*d): {:.1}x (paper footnote: 23.7x)",
        act(6) / act(1)
    );
    println!("Without reversible recomputation this growth lands directly on accelerator memory;");
    println!("with it, only the output pyramid term (c*h*w) remains.");
}
