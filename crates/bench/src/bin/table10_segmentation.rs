//! **Table 10 / Figure 6 (COCO instance segmentation)**: like Table 9 but
//! with the mask branch (the Mask R-CNN substitution, DESIGN.md): a
//! per-pixel class head on the finest pyramid level, instance masks read
//! out per detection, and COCO-style mask AP (mask IoU in place of box
//! IoU). Paper-scale rows are carried from Table 10 for reference.

use revbifpn::{RevBiFPN, RevBiFPNConfig};
use revbifpn_baselines::published::TABLE10;
use revbifpn_baselines::{HrNet, HrNetConfig};
use revbifpn_bench::{arg_usize, fmt_m, quick_mode, Table};
use revbifpn_data::{SynthDet, SynthDetConfig};
use revbifpn_detect::{
    evaluate_box_ap, evaluate_mask_ap, AreaRanges, Backbone, DetHeadConfig, HrBackbone, MaskDetector,
    RevBackbone,
};
use revbifpn_nn::meter;
use revbifpn_train::{LrSchedule, Sgd};

struct Row {
    name: String,
    params: u64,
    peak_bytes: usize,
    mask_ap: f64,
    mask_ap_large: f64,
    bbox_ap: f64,
    bbox_ap50: f64,
}

fn train_and_eval(backbone: Box<dyn Backbone>, steps: usize, res: usize) -> Row {
    let data = SynthDet::new(SynthDetConfig::new(res), 23);
    let mut md = MaskDetector::new(backbone, DetHeadConfig::new(data.cfg().num_classes), res, 0);
    let mut params = 0u64;
    md.visit_params(&mut |p| params += p.numel() as u64);
    let mut opt = Sgd::new(0.9, 1e-4);
    let schedule = LrSchedule::paper_like(0.02, steps);
    let batch = 8;
    let mut peak = 0usize;
    for step in 0..steps {
        let mut images = Vec::new();
        let mut objects = Vec::new();
        let mut masks = Vec::new();
        for b in 0..batch {
            let s = data.sample((step * batch + b) as u64);
            images.push(s.image);
            objects.push(s.objects);
            masks.push(s.masks);
        }
        let refs: Vec<&revbifpn_tensor::Tensor> = images.iter().collect();
        let batch_images = {
            // Stack along the batch dimension.
            let s0 = refs[0].shape();
            let mut t = revbifpn_tensor::Tensor::zeros(s0.with_n(refs.len()));
            let chw = s0.chw();
            for (i, im) in refs.iter().enumerate() {
                t.data_mut()[i * chw..(i + 1) * chw].copy_from_slice(im.data());
            }
            t
        };
        meter::reset();
        md.zero_grads();
        let _ = md.train_step(&batch_images, &objects, &masks);
        peak = peak.max(meter::peak());
        let _ = revbifpn_train::clip_grad_norm(|f| md.visit_params(f), 5.0);
        opt.step(schedule.lr(step), |f| md.visit_params(f));
    }
    md.clear_cache();

    let eval_n = if quick_mode() { 16 } else { 48 };
    let (mut dets, mut det_masks, mut gts, mut gt_masks) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for i in 0..eval_n {
        let s = data.sample(2_000_000 + i as u64);
        let (d, m) = md.detect_with_masks(&s.image);
        dets.push(d.into_iter().next().expect("one image"));
        det_masks.push(m.into_iter().next().expect("one image"));
        gts.push(s.objects);
        gt_masks.push(s.masks);
    }
    let ranges = AreaRanges::scaled_to(res);
    let mask_ap = evaluate_mask_ap(&dets, &det_masks, &gts, &gt_masks, data.cfg().num_classes, ranges);
    let bbox_ap = evaluate_box_ap(&dets, &gts, data.cfg().num_classes, ranges);
    Row {
        name: String::new(),
        params,
        peak_bytes: peak,
        mask_ap: mask_ap.ap * 100.0,
        mask_ap_large: mask_ap.ap_large * 100.0,
        bbox_ap: bbox_ap.ap * 100.0,
        bbox_ap50: bbox_ap.ap50 * 100.0,
    }
}

fn main() {
    println!("# Table 10 / Figure 6 — instance segmentation\n");
    println!("## (a) Paper-scale reference rows (Mask R-CNN, from the paper)\n");
    let mut t = Table::new(vec!["backbone", "params", "MACs", "mem", "LS", "mask AP", "bbox AP"]);
    for r in TABLE10.iter().filter(|r| r.schedule == "1x") {
        t.row(vec![
            r.backbone.to_string(),
            format!("{:.1}M", r.params_m),
            format!("{:.0}B", r.macs_b),
            format!("{:.2}GB", r.mem_gb),
            r.schedule.to_string(),
            format!("{:.1}", r.mask_ap),
            format!("{:.1}", r.bbox_ap),
        ]);
    }
    t.print();

    let res = 48;
    let steps = arg_usize("--steps", if quick_mode() { 30 } else { 200 });
    println!("\n## (b) Measured on SynthDet ({res}px, {steps} steps, mask-head substitution)\n");
    let mut rows = vec![
        (
            "RevBiFPN-tiny (rev)",
            train_and_eval(
                Box::new(RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(3).with_resolution(res)), true)),
                steps,
                res,
            ),
        ),
        (
            "HRNet-micro (conv)",
            train_and_eval(
                Box::new(HrBackbone::new(HrNet::new(HrNetConfig { resolution: res, ..HrNetConfig::micro() }))),
                steps,
                res,
            ),
        ),
    ];
    let mut t = Table::new(vec!["backbone", "params", "peak train bytes", "mask AP", "mask APl", "bbox AP", "bbox AP50"]);
    for (name, r) in rows.iter_mut() {
        r.name = name.to_string();
        t.row(vec![
            r.name.clone(),
            fmt_m(r.params),
            format!("{}", r.peak_bytes),
            format!("{:.1}", r.mask_ap),
            format!("{:.1}", r.mask_ap_large),
            format!("{:.1}", r.bbox_ap),
            format!("{:.1}", r.bbox_ap50),
        ]);
    }
    t.print();
    println!("\nShape check: comparable AP at a fraction of HRNet's peak training memory.");
}
