//! # revbifpn-bench
//!
//! Shared utilities for the benchmark binaries that regenerate every table
//! and figure of the paper (see `src/bin/`). Each binary prints a markdown
//! table mirroring the paper's, with our measured / modelled values next to
//! the paper's published numbers.

#![warn(missing_docs)]

/// A simple markdown table builder.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for i in 0..ncols {
                line.push_str(&format!(" {:<w$} |", cells.get(i).map(|s| s.as_str()).unwrap_or(""), w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }
}

/// Formats a count in millions with 2 decimals ("3.21M").
pub fn fmt_m(x: u64) -> String {
    format!("{:.2}M", x as f64 / 1e6)
}

/// Formats a count in billions with 2 decimals ("0.31B").
pub fn fmt_b(x: u64) -> String {
    format!("{:.2}B", x as f64 / 1e9)
}

/// Formats bytes in GB (decimal) with 3 decimals.
pub fn fmt_gb(bytes: u64) -> String {
    format!("{:.3}GB", bytes as f64 / 1e9)
}

/// Formats bytes in MB (decimal) with 1 decimal.
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.1}MB", bytes as f64 / 1e6)
}

/// `true` when `REVBIFPN_QUICK=1` — binaries shrink their workloads so the
/// whole suite runs in CI time.
pub fn quick_mode() -> bool {
    std::env::var("REVBIFPN_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Reads a `--flag value` style argument from the command line.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]);
        let md = t.to_markdown();
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("| 1 | 2  |"));
        assert!(md.contains("|---|"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_m(3_210_000), "3.21M");
        assert_eq!(fmt_b(310_000_000), "0.31B");
        assert_eq!(fmt_gb(254_000_000), "0.254GB");
        assert_eq!(fmt_mb(1_500_000), "1.5MB");
    }
}

/// Shared ablation runner: trains a (scaled-down) RevBiFPN configuration on
/// SynthScale and returns `(params, macs, final_val_accuracy)`. Used by the
/// Table 3/4/5 binaries so every ablation row runs the identical recipe.
pub fn ablation_run(
    cfg: &revbifpn::RevBiFPNConfig,
    epochs: usize,
    train_size: usize,
    val_size: usize,
) -> (u64, u64, f64) {
    use revbifpn::{RevBiFPNClassifier, RunMode};
    use revbifpn_data::{SynthScale, SynthScaleConfig};
    use revbifpn_train::{train_classifier, TrainConfig};

    let data = SynthScale::new(SynthScaleConfig::hard(cfg.resolution), 42);
    let mut cfg = cfg.clone();
    cfg.num_classes = data.num_classes();
    let mut model = RevBiFPNClassifier::new(cfg);
    let params = model.param_count();
    let macs = model.macs(1);
    let tc = TrainConfig {
        epochs,
        train_size,
        val_size,
        batch_size: 16,
        lr: 0.08,
        ..TrainConfig::small()
    };
    let history = train_classifier(&mut model, &data, &tc, RunMode::TrainReversible);
    (params, macs, history.final_val_acc())
}
