//! Property-based tests for the `par` module's helpers: chunk splitting must
//! partition the index space for any (items, threads) combination, tiny
//! workloads (items < threads) must still visit everything exactly once, and
//! `parallel_map_reduce` must reduce partials in chunk order regardless of
//! scheduling.
//!
//! `set_max_threads` is a process-global budget, so every property that sets
//! it holds a shared lock and restores the default (0 = auto) afterwards.

use proptest::prelude::*;
use revbifpn_tensor::par::{
    num_threads_for, parallel_chunks, parallel_map_reduce, parallel_over_slices, parallel_tiles,
    set_max_threads,
};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Serializes property cases that reconfigure the global thread budget.
fn budget_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII guard: set an explicit budget, restore auto on drop (even on panic,
/// so one failing case does not poison the budget for the next).
struct Budget;
impl Budget {
    fn new(threads: usize) -> Self {
        set_max_threads(threads);
        Budget
    }
}
impl Drop for Budget {
    fn drop(&mut self) {
        set_max_threads(0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every index in `0..items` is visited by exactly one chunk, chunks are
    /// disjoint, and their union is the full range — for any thread budget,
    /// including uneven splits and items < threads.
    #[test]
    fn chunks_partition_the_index_space(items in 0usize..500, threads in 1usize..17) {
        let _g = budget_lock();
        let _b = Budget::new(threads);
        let visits: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
        let calls = AtomicUsize::new(0);
        let bad_chunks = AtomicUsize::new(0);
        parallel_chunks(items, |a, b| {
            if a >= b || b > items {
                // Empty or out-of-range chunk: flag it (asserted below —
                // panicking inside the pool would also fail, less clearly).
                bad_chunks.fetch_add(1, Ordering::Relaxed);
                return;
            }
            calls.fetch_add(1, Ordering::Relaxed);
            for i in a..b {
                visits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert_eq!(bad_chunks.load(Ordering::Relaxed), 0, "empty/out-of-range chunks dispatched");
        for (i, v) in visits.iter().enumerate() {
            prop_assert_eq!(v.load(Ordering::Relaxed), 1, "index {} visited wrong number of times", i);
        }
        // Never more chunks than the budget (or than items, whichever is
        // smaller), so tiny workloads don't produce empty dispatches.
        prop_assert!(calls.load(Ordering::Relaxed) <= threads.min(items.max(1)));
    }

    /// `parallel_tiles` visits each tile exactly once even when tiles are
    /// fewer than the thread budget.
    #[test]
    fn tiles_visit_once_when_items_below_threads(tiles in 0usize..8, threads in 8usize..33) {
        let _g = budget_lock();
        let _b = Budget::new(threads);
        let visits: Vec<AtomicUsize> = (0..tiles).map(|_| AtomicUsize::new(0)).collect();
        parallel_tiles(tiles, |t| {
            visits[t].fetch_add(1, Ordering::Relaxed);
        });
        for (t, v) in visits.iter().enumerate() {
            prop_assert_eq!(v.load(Ordering::Relaxed), 1, "tile {} visited wrong number of times", t);
        }
    }

    /// The reduction sees exactly one partial per non-empty chunk, in chunk
    /// order: reducing chunk start indices must yield a sorted sequence, and
    /// a non-commutative reduction must give the same result as a sequential
    /// left fold over the chunks.
    #[test]
    fn map_reduce_is_ordered_and_complete(items in 1usize..300, threads in 1usize..17) {
        let _g = budget_lock();
        let _b = Budget::new(threads);

        // Partials arrive in chunk order.
        let mut starts: Vec<usize> = Vec::new();
        parallel_map_reduce(items, |a, _b| a, &mut starts, |acc, s| acc.push(s));
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&starts, &sorted, "partials must reduce in chunk order");

        // A non-commutative fold (string concatenation of per-chunk sums)
        // matches the single-threaded fold exactly.
        let fold = |acc: &mut String, part: u64| {
            acc.push_str(&part.to_string());
            acc.push(';');
        };
        let chunk_sum = |a: usize, b: usize| (a..b).map(|i| i as u64).sum::<u64>();
        let mut parallel_result = String::new();
        parallel_map_reduce(items, chunk_sum, &mut parallel_result, fold);

        let n = num_threads_for(items);
        let mut sequential_result = String::new();
        let chunk = items.div_ceil(n);
        let mut a = 0;
        while a < items {
            let b = (a + chunk).min(items);
            fold(&mut sequential_result, chunk_sum(a, b));
            a = b;
        }
        prop_assert_eq!(parallel_result, sequential_result);
    }

    /// `parallel_over_slices` hands every slice to exactly one call, with the
    /// right index, and writes through disjoint slices land where they should.
    #[test]
    fn over_slices_visits_each_slice_once(count in 0usize..12, seed in any::<u64>(), threads in 1usize..17) {
        let _g = budget_lock();
        let _b = Budget::new(threads);
        // Derive pseudo-random slice lengths (0..=8) from the seed.
        let lens: Vec<usize> = (0..count)
            .map(|i| (seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64) >> 33) as usize % 9)
            .collect();
        let total: usize = lens.iter().sum();
        let mut buf = vec![0.0f32; total];
        {
            let mut rest: &mut [f32] = &mut buf;
            let mut slices: Vec<&mut [f32]> = Vec::new();
            for &len in &lens {
                let (head, tail) = rest.split_at_mut(len);
                slices.push(head);
                rest = tail;
            }
            parallel_over_slices(slices, |i, s| {
                for v in s.iter_mut() {
                    *v += (i + 1) as f32;
                }
            });
        }
        let mut off = 0;
        for (i, &len) in lens.iter().enumerate() {
            for k in 0..len {
                prop_assert_eq!(buf[off + k], (i + 1) as f32, "slice {} written incorrectly", i);
            }
            off += len;
        }
    }

    /// The atomic tile scheduler hands out each tile once even under heavy
    /// oversubscription (threads far above the core count), and the total of
    /// a parallel sum matches the closed form.
    #[test]
    fn oversubscribed_tile_sum_is_exact(tiles in 1usize..400, threads in 1usize..65) {
        let _g = budget_lock();
        let _b = Budget::new(threads);
        let sum = AtomicU64::new(0);
        parallel_tiles(tiles, |t| {
            sum.fetch_add(t as u64 + 1, Ordering::Relaxed);
        });
        let n = tiles as u64;
        prop_assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
    }
}
