//! Thread-count determinism of the parallel kernel engine.
//!
//! The engine is designed so that the floating-point result of every kernel
//! is a function of the problem shape only, never of the thread count:
//!
//! - The GEMM tile grid (MC x NC macro-tiles) and the KC depth slices depend
//!   only on (m, k, n). Dynamic scheduling decides *which worker* runs a
//!   tile, not what the tile computes, and every accumulation order is fixed.
//! - Conv weight gradients are accumulated into per-sample slabs that are
//!   merged in a fixed pairwise tree, not into per-thread accumulators.
//!
//! Under that design the ISSUE's 1e-5 tolerance is met trivially: results
//! are **bitwise identical** across thread counts, and these tests assert
//! exact equality.
//!
//! What is NOT guaranteed to be bitwise stable:
//! - Across *builds or machines*: the GEMM micro-kernel dispatches to an
//!   AVX2+FMA path when the CPU has it and a scalar path otherwise. FMA
//!   contracts `a*b+c` into one rounding, so the two paths can differ by
//!   ~1 ulp per accumulation step.
//! - Across *code versions*: retuning the tile constants (MR/NR/KC/MC/NC)
//!   changes accumulation order and therefore rounding.
//!
//! Within one process on one machine, any `set_max_threads` value gives the
//! same bytes. See DESIGN.md ("Determinism") for the full story.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_tensor::{conv2d, conv2d_backward, par, ConvSpec, Shape, Tensor};

/// Runs `f` at 1 thread and at `threads` threads, restoring the default
/// budget afterwards, and returns both results.
fn at_thread_counts<T>(threads: usize, mut f: impl FnMut() -> T) -> (T, T) {
    par::set_max_threads(1);
    let one = f();
    par::set_max_threads(threads);
    let many = f();
    par::set_max_threads(0);
    (one, many)
}

struct Case {
    name: &'static str,
    x: Shape,
    w: Shape,
    spec: ConvSpec,
}

fn cases() -> Vec<Case> {
    vec![
        // RevBiFPN-S0 stem: general im2col path, strided, batch 1 and 4.
        Case { name: "stem3x3s2_b1", x: Shape::new(1, 3, 32, 32), w: Shape::new(48, 3, 3, 3), spec: ConvSpec::kxk(3, 2) },
        Case { name: "stem3x3s2_b4", x: Shape::new(4, 3, 32, 32), w: Shape::new(48, 3, 3, 3), spec: ConvSpec::kxk(3, 2) },
        // RevSilo fusion: pointwise path.
        Case { name: "revsilo1x1_b1", x: Shape::new(1, 48, 28, 28), w: Shape::new(64, 48, 1, 1), spec: ConvSpec::pointwise() },
        Case { name: "revsilo1x1_b4", x: Shape::new(4, 48, 28, 28), w: Shape::new(64, 48, 1, 1), spec: ConvSpec::pointwise() },
        // Depthwise path.
        Case { name: "dw3x3_b2", x: Shape::new(2, 32, 20, 20), w: Shape::new(32, 1, 3, 3), spec: ConvSpec::depthwise(3, 1, 32) },
    ]
}

#[test]
fn conv2d_forward_is_bitwise_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(11);
    for case in cases() {
        let x = Tensor::randn(case.x, 1.0, &mut rng);
        let w = Tensor::randn(case.w, 0.1, &mut rng);
        let bias = Tensor::randn(Shape::vector(case.w.n), 0.1, &mut rng);
        for threads in [2, 8, 32] {
            let (one, many) = at_thread_counts(threads, || conv2d(&x, &w, Some(&bias), &case.spec));
            // Bitwise, not approximate: Tensor equality compares raw f32s.
            assert_eq!(one, many, "{} forward differs at {} threads", case.name, threads);
        }
    }
}

#[test]
fn conv2d_backward_is_bitwise_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(12);
    for case in cases() {
        let x = Tensor::randn(case.x, 1.0, &mut rng);
        let w = Tensor::randn(case.w, 0.1, &mut rng);
        let dy = Tensor::randn(case.spec.out_shape(case.x, case.w.n), 1.0, &mut rng);
        for threads in [2, 8, 32] {
            let (one, many) = at_thread_counts(threads, || conv2d_backward(&x, &w, &dy, &case.spec, true));
            assert_eq!(one.dw, many.dw, "{} dw differs at {} threads", case.name, threads);
            assert_eq!(one.db, many.db, "{} db differs at {} threads", case.name, threads);
            assert_eq!(one.dx, many.dx, "{} dx differs at {} threads", case.name, threads);
        }
    }
}

/// The ISSUE's stated acceptance bound (1e-5 agreement) as a separate test,
/// so the contract survives even if a future change legitimately downgrades
/// bitwise equality to close agreement.
#[test]
fn conv2d_matches_single_thread_within_1e5() {
    let mut rng = StdRng::seed_from_u64(13);
    let x = Tensor::randn(Shape::new(2, 16, 24, 24), 1.0, &mut rng);
    let w = Tensor::randn(Shape::new(24, 16, 3, 3), 0.1, &mut rng);
    let spec = ConvSpec::kxk(3, 1);
    let dy = Tensor::randn(spec.out_shape(x.shape(), 24), 1.0, &mut rng);

    let (y1, y8) = at_thread_counts(8, || conv2d(&x, &w, None, &spec));
    assert!(y1.max_abs_diff(&y8) <= 1e-5);

    let (g1, g8) = at_thread_counts(8, || conv2d_backward(&x, &w, &dy, &spec, true));
    assert!(g1.dw.max_abs_diff(&g8.dw) <= 1e-5);
    assert!(g1.dx.as_ref().unwrap().max_abs_diff(g8.dx.as_ref().unwrap()) <= 1e-5);
}
