//! Property-based tests for the numeric kernels: algebraic identities that
//! must hold for arbitrary shapes and data.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_tensor::{
    conv2d, conv2d_backward, depth_to_space, global_avg_pool, resize, resize_backward, space_to_depth,
    ConvSpec, ResizeMode, Shape, Tensor,
};

fn tensor_strategy(max_n: usize, max_c: usize, max_hw: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_n, 1..=max_c, 1..=max_hw, 1..=max_hw, any::<u64>()).prop_map(|(n, c, h, w, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::randn(Shape::new(n, c, h, w), 1.0, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// <A+B, M> == <A, M> + <B, M> and addition commutes.
    #[test]
    fn addition_is_commutative_and_linear(x in tensor_strategy(2, 4, 6), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let y = Tensor::randn(x.shape(), 1.0, &mut rng);
        let ab = &x + &y;
        let ba = &y + &x;
        prop_assert_eq!(ab.data(), ba.data());
        prop_assert!((ab.sum() - (x.sum() + y.sum())).abs() < 1e-3);
    }

    /// Subtracting a tensor from the sum recovers the other addend exactly
    /// (up to f32 rounding) — the additive-coupling invertibility primitive.
    #[test]
    fn additive_coupling_roundtrip(x in tensor_strategy(2, 4, 8), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = Tensor::randn(x.shape(), 1.0, &mut rng);
        let y = &x + &f;
        let back = &y - &f;
        prop_assert!(back.max_abs_diff(&x) < 1e-5);
    }

    /// SpaceToDepth is a bijection for every divisible shape.
    #[test]
    fn s2d_roundtrip(seed in any::<u64>(), b in 2usize..=4, c in 1usize..=3, hw in 1usize..=4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(Shape::new(1, c, b * hw, b * hw), 1.0, &mut rng);
        let y = space_to_depth(&x, b);
        prop_assert_eq!(depth_to_space(&y, b), x);
    }

    /// SpaceToDepth preserves energy (it is a permutation).
    #[test]
    fn s2d_preserves_energy(seed in any::<u64>(), b in 2usize..=4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(Shape::new(2, 3, b * 3, b * 3), 1.0, &mut rng);
        let y = space_to_depth(&x, b);
        prop_assert!((x.sq_sum() - y.sq_sum()).abs() < 1e-3);
    }

    /// Convolution is linear in the input: conv(a*x) == a*conv(x).
    #[test]
    fn conv_is_linear_in_input(seed in any::<u64>(), alpha in -2.0f32..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(Shape::new(1, 3, 6, 6), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(4, 3, 3, 3), 0.3, &mut rng);
        let spec = ConvSpec::kxk(3, 1);
        let y1 = conv2d(&x.scaled(alpha), &w, None, &spec);
        let mut y2 = conv2d(&x, &w, None, &spec);
        y2.scale(alpha);
        prop_assert!(y1.max_abs_diff(&y2) < 1e-3);
    }

    /// The adjoint identity <conv(x), m> == <x, conv_backward(m)> holds for
    /// random geometries (stride 1-2, kernel 1/3/5, grouped or not).
    #[test]
    fn conv_adjoint_identity(
        seed in any::<u64>(),
        k in prop::sample::select(vec![1usize, 3, 5]),
        stride in 1usize..=2,
        grouped in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c_in = 4;
        let c_out = 4;
        let groups = if grouped { 2 } else { 1 };
        let spec = ConvSpec { groups, ..ConvSpec::kxk(k, stride) };
        let x = Tensor::randn(Shape::new(2, c_in, 7, 7), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(c_out, c_in / groups, k, k), 0.3, &mut rng);
        let y = conv2d(&x, &w, None, &spec);
        let m = Tensor::randn(y.shape(), 1.0, &mut rng);
        let lhs = (&y * &m).sum();
        let g = conv2d_backward(&x, &w, &m, &spec, true);
        let rhs = (&x * g.dx.as_ref().unwrap()).sum() ;
        // <conv(x), m> = <x, conv^T(m)> holds exactly for a linear op.
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// Bilinear resize adjoint identity for arbitrary target sizes.
    #[test]
    fn resize_adjoint_identity(seed in any::<u64>(), oh in 2usize..=9, ow in 2usize..=9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(Shape::new(1, 2, 5, 4), 1.0, &mut rng);
        let y = resize(&x, oh, ow, ResizeMode::Bilinear);
        let m = Tensor::randn(y.shape(), 1.0, &mut rng);
        let lhs = (&y * &m).sum();
        let dx = resize_backward(&m, x.shape(), ResizeMode::Bilinear);
        let rhs = (&x * &dx).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// Global average pooling preserves the mean.
    #[test]
    fn gap_preserves_mean(x in tensor_strategy(2, 3, 7)) {
        let y = global_avg_pool(&x);
        prop_assert!((y.mean() - x.mean()).abs() < 1e-4);
    }

    /// Channel concat/split round-trips for any split point.
    #[test]
    fn concat_split_roundtrip(seed in any::<u64>(), c1 in 1usize..=4, c2 in 1usize..=4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(Shape::new(2, c1, 3, 3), 1.0, &mut rng);
        let b = Tensor::randn(Shape::new(2, c2, 3, 3), 1.0, &mut rng);
        let cat = Tensor::concat_channels(&[&a, &b]);
        let (a2, b2) = cat.split_channels(c1);
        prop_assert_eq!(a, a2);
        prop_assert_eq!(b, b2);
    }
}
