//! # revbifpn-tensor
//!
//! Dense `f32` NCHW tensors and the numeric kernels needed to train
//! convolutional networks on CPU: GEMM, general/depthwise/pointwise 2-D
//! convolution (forward **and** exact backward), bilinear/nearest resizing,
//! pooling, and the invertible SpaceToDepth rearrangement.
//!
//! This crate is the numerical substrate of the RevBiFPN reproduction. It is
//! deliberately framework-free: every operator is a pure function from
//! tensors to tensors with a hand-derived adjoint, which is what makes the
//! byte-exact activation-memory accounting in `revbifpn-nn` possible.
//!
//! ```
//! use revbifpn_tensor::{conv2d, ConvSpec, Shape, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let x = Tensor::randn(Shape::new(1, 3, 8, 8), 1.0, &mut rng);
//! let w = Tensor::randn(Shape::new(16, 3, 3, 3), 0.1, &mut rng);
//! let y = conv2d(&x, &w, None, &ConvSpec::kxk(3, 2));
//! assert_eq!(y.shape(), Shape::new(1, 16, 4, 4));
//! ```

#![warn(missing_docs)]

mod blob;
mod conv;
mod matmul;
pub mod par;
mod qmatmul;
mod pool;
mod resize;
mod s2d;
pub mod scratch;
mod shape;
mod tensor;

pub use blob::SharedBytes;
pub use conv::{
    conv2d, conv2d_backward, try_conv2d, ConvGrads, ConvPlan, ConvSpec, PlanKind, QuantConvPlan,
    QuantPlanKind,
};
pub use matmul::{
    gemm_layout_fingerprint, reference, sgemm, sgemm_a_bt, sgemm_at_b, sgemm_fused,
    sgemm_prepacked, Epilogue, EpilogueAct, PackedGemmA,
};
pub use qmatmul::{
    int8_act_scale, qgemm_prepacked, quantize_activations, quantize_weights_per_row,
    set_int8_force_scalar, PackedGemmAI8, INT8_ACT_QMAX, INT8_ACT_ZERO_POINT,
};
pub use pool::{
    avg_pool, avg_pool_backward, global_avg_pool, global_avg_pool_backward, max_pool, max_pool_backward,
    try_avg_pool, try_max_pool,
};
pub use resize::{resize, resize_backward, try_resize, try_resize_backward, upsample, ResizeMode};
pub use s2d::{depth_to_space, space_to_depth, space_to_depth_shape};
pub use shape::{Shape, ShapeError, ShapeMismatchError};
pub use tensor::Tensor;
