//! Thread-local scratch arenas for kernel workspace buffers.
//!
//! The convolution and GEMM engines need sizable temporaries — im2col
//! matrices, packed GEMM panels, per-sample weight-gradient slabs. Allocating
//! those per call dominated small-batch latency and made throughput depend on
//! the allocator. Instead, every thread (pool workers included, since they
//! live for the whole process) keeps a free list of reusable buffers:
//! [`take`] hands out a zeroed buffer, dropping the [`ScratchGuard`] returns
//! it. After a warm-up call per shape, steady state performs **zero** heap
//! allocations per kernel invocation.
//!
//! That claim is enforceable, not aspirational: global counters record every
//! borrow and every heap growth, and [`stats`] exposes them (they are also
//! surfaced through `revbifpn-nn`'s memory meter). A test or benchmark can
//! assert `heap_growths` stayed flat across a window of calls.
//!
//! Buffers are zero-filled on every [`take`]: the kernels rely on
//! zero-initialized accumulators/padding, and a predictable starting state
//! costs one cheap linear pass over memory that is about to be touched
//! repeatedly anyway.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// Total number of [`take`] calls, process-wide.
static BORROWS: AtomicU64 = AtomicU64::new(0);
/// Number of takes that had to grow the heap (cold arena or a new high-water
/// size). Zero growth across a window of calls == zero steady-state
/// allocation.
static HEAP_GROWTHS: AtomicU64 = AtomicU64::new(0);
/// High-water mark of bytes resident across all thread arenas.
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
/// Current bytes resident across all thread arenas (owned by arenas or
/// borrowed out).
static RESIDENT_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static ARENA: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Snapshot of the arena counters. All values are process-wide and
/// monotonic except `resident_bytes`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Total buffers handed out by [`take`].
    pub borrows: u64,
    /// Takes that performed a heap allocation (first use of a size class on
    /// a thread). Flat across calls ⇒ allocation-free steady state.
    pub heap_growths: u64,
    /// Peak bytes resident across all thread arenas.
    pub peak_bytes: u64,
    /// Bytes currently resident across all thread arenas.
    pub resident_bytes: u64,
}

/// Reads the current counter values.
pub fn stats() -> ScratchStats {
    ScratchStats {
        borrows: BORROWS.load(Ordering::Relaxed),
        heap_growths: HEAP_GROWTHS.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        resident_bytes: RESIDENT_BYTES.load(Ordering::Relaxed),
    }
}

/// Resets the monotonic counters (`borrows`, `heap_growths`) and re-bases
/// `peak_bytes` to the current resident size. Buffers stay cached.
pub fn reset_stats() {
    BORROWS.store(0, Ordering::Relaxed);
    HEAP_GROWTHS.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(RESIDENT_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// A zeroed `f32` workspace borrowed from the current thread's arena.
/// Dereferences to `[f32]` of exactly the requested length; the backing
/// buffer returns to the arena on drop.
pub struct ScratchGuard {
    buf: Vec<f32>,
    len: usize,
}

impl Deref for ScratchGuard {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf[..self.len]
    }
}

impl DerefMut for ScratchGuard {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf[..self.len]
    }
}

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        // During thread teardown the TLS slot may already be gone; then the
        // buffer simply drops (and leaves the resident count, which is fine:
        // the counters are diagnostics, not a ledger audited on exit).
        let cap = buf.capacity();
        let res = ARENA.try_with(|arena| arena.borrow_mut().push(buf));
        if res.is_err() {
            RESIDENT_BYTES.fetch_sub((cap * 4) as u64, Ordering::Relaxed);
        }
    }
}

fn bump_peak() {
    let now = RESIDENT_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
}

/// Borrows a zeroed scratch buffer of `len` floats from this thread's arena.
///
/// Best-fit reuse: the smallest cached buffer with sufficient capacity is
/// picked; only a cold arena (or an unprecedented size) touches the heap.
pub fn take(len: usize) -> ScratchGuard {
    BORROWS.fetch_add(1, Ordering::Relaxed);
    let mut buf = ARENA.with(|arena| {
        let mut free = arena.borrow_mut();
        let mut best: Option<usize> = None;
        for (i, v) in free.iter().enumerate() {
            if v.capacity() >= len && best.is_none_or(|b| v.capacity() < free[b].capacity()) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => free.swap_remove(i),
            None => {
                // Reuse the largest cached buffer as the growth base so the
                // arena converges on a few maximal size classes instead of
                // hoarding one buffer per distinct size.
                let largest = (0..free.len()).max_by_key(|&i| free[i].capacity());
                largest.map(|i| free.swap_remove(i)).unwrap_or_default()
            }
        }
    });
    if buf.capacity() < len {
        HEAP_GROWTHS.fetch_add(1, Ordering::Relaxed);
        let grown = (len - buf.capacity()) * 4;
        buf.clear();
        buf.reserve_exact(len);
        RESIDENT_BYTES.fetch_add(grown as u64, Ordering::Relaxed);
        bump_peak();
    }
    buf.clear();
    buf.resize(len, 0.0);
    ScratchGuard { buf, len }
}

/// A zeroed byte workspace borrowed from the same arena as [`take`]: the
/// backing storage is an `f32` buffer reinterpreted as bytes, so int8
/// kernels share the f32 size classes instead of growing a second arena.
/// Dereferences to `[u8]` of exactly the requested length.
pub struct ScratchGuardU8 {
    guard: ScratchGuard,
    len: usize,
}

impl Deref for ScratchGuardU8 {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        // SAFETY: f32 -> u8 reinterpretation is always valid (alignment 4 ->
        // 1, any bit pattern is a valid u8) and the f32 backing covers
        // ceil(len/4)*4 >= len bytes.
        unsafe { std::slice::from_raw_parts(self.guard.buf.as_ptr() as *const u8, self.len) }
    }
}

impl DerefMut for ScratchGuardU8 {
    fn deref_mut(&mut self) -> &mut [u8] {
        // SAFETY: as in `Deref`, plus exclusive access via `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.guard.buf.as_mut_ptr() as *mut u8, self.len) }
    }
}

/// Borrows a zeroed scratch buffer of `len` bytes from this thread's arena.
/// Shares storage (and the steady-state zero-allocation guarantee) with the
/// `f32` [`take`].
pub fn take_u8(len: usize) -> ScratchGuardU8 {
    ScratchGuardU8 { guard: take(len.div_ceil(4)), len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_zeroed_and_sized() {
        let mut a = take(100);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&v| v == 0.0));
        a[0] = 7.0;
        drop(a);
        let b = take(100);
        assert!(b.iter().all(|&v| v == 0.0), "reused buffer must be re-zeroed");
    }

    #[test]
    fn steady_state_is_allocation_free() {
        // The growth counter is process-global, so a concurrent test on
        // another thread may legitimately grow its own arena while we
        // measure. Retry a few times: a genuinely leaky arena fails every
        // attempt, a neighbourly bump passes the next one.
        for attempt in 0..5 {
            // Warm the arena with the shapes this test uses.
            for _ in 0..2 {
                let _a = take(512);
                let _b = take(1024);
            }
            let before = stats().heap_growths;
            for _ in 0..50 {
                let _a = take(512);
                let _b = take(1024);
            }
            if stats().heap_growths == before {
                return;
            }
            assert!(attempt < 4, "warm takes must not touch the heap");
        }
    }

    #[test]
    fn concurrent_borrows_are_distinct() {
        let mut a = take(64);
        let mut b = take(64);
        a[0] = 1.0;
        b[0] = 2.0;
        assert_eq!(a[0], 1.0);
        assert_eq!(b[0], 2.0);
    }

    #[test]
    fn byte_buffers_are_zeroed_and_share_the_arena() {
        let mut a = take_u8(101);
        assert_eq!(a.len(), 101);
        assert!(a.iter().all(|&v| v == 0));
        a[100] = 7;
        drop(a);
        let b = take_u8(101);
        assert!(b.iter().all(|&v| v == 0), "reused byte buffer must be re-zeroed");
    }

    #[test]
    fn counters_move() {
        let s0 = stats();
        let _g = take(2048);
        let s1 = stats();
        assert!(s1.borrows > s0.borrows);
        assert!(s1.peak_bytes >= 2048 * 4);
    }
}
