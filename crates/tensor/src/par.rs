//! Minimal data-parallel helpers built on crossbeam scoped threads.
//!
//! Convolution kernels parallelize over the batch dimension. Work is split
//! into contiguous index chunks, one per worker. The number of workers is
//! `min(available_parallelism, items)` and can be capped globally with
//! [`set_max_threads`] (useful to make benchmarks deterministic).

use std::sync::atomic::{AtomicUsize, Ordering};

static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Caps the number of worker threads used by [`parallel_chunks`].
///
/// `0` (the default) means "use `std::thread::available_parallelism`".
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// Effective worker count for `items` parallel items.
pub fn num_threads_for(items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let cap = MAX_THREADS.load(Ordering::Relaxed);
    let t = if cap == 0 { hw } else { hw.min(cap) };
    t.max(1).min(items.max(1))
}

/// Runs `f(start, end)` over disjoint chunks of `0..items` on scoped threads.
///
/// `f` is called once per worker with that worker's half-open index range.
/// With a single worker the call happens on the current thread (no spawn).
pub fn parallel_chunks<F>(items: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    if items == 0 {
        return;
    }
    let threads = num_threads_for(items);
    if threads == 1 {
        f(0, items);
        return;
    }
    let chunk = items.div_ceil(threads);
    crossbeam::scope(|s| {
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(items);
            if start >= end {
                break;
            }
            let f = &f;
            s.spawn(move |_| f(start, end));
        }
    })
    .expect("parallel worker panicked");
}

/// Like [`parallel_chunks`] but each worker produces a partial result that is
/// sequentially folded into `init` afterwards (used for weight-gradient
/// reductions over the batch).
pub fn parallel_map_reduce<A, T, F, R>(items: usize, f: F, init: &mut A, mut reduce: R)
where
    A: ?Sized,
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    R: FnMut(&mut A, T),
{
    if items == 0 {
        return;
    }
    let threads = num_threads_for(items);
    if threads == 1 {
        let part = f(0, items);
        reduce(init, part);
        return;
    }
    let chunk = items.div_ceil(threads);
    let parts = crossbeam::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(items);
            if start >= end {
                break;
            }
            let f = &f;
            handles.push(s.spawn(move |_| f(start, end)));
        }
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect::<Vec<T>>()
    })
    .expect("parallel scope failed");
    for p in parts {
        reduce(init, p);
    }
}

/// Runs `f(item_index, slice)` for every slice in `slices`, distributing the
/// items over worker threads. Slices are disjoint `&mut` borrows (typically
/// per-batch-item chunks of an output buffer), so this is safe parallelism by
/// construction.
pub fn parallel_over_slices<F>(slices: Vec<&mut [f32]>, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let items = slices.len();
    if items == 0 {
        return;
    }
    let threads = num_threads_for(items);
    if threads == 1 {
        for (i, s) in slices.into_iter().enumerate() {
            f(i, s);
        }
        return;
    }
    let chunk = items.div_ceil(threads);
    let mut partitions: Vec<Vec<(usize, &mut [f32])>> = Vec::new();
    let mut current: Vec<(usize, &mut [f32])> = Vec::new();
    for (i, s) in slices.into_iter().enumerate() {
        current.push((i, s));
        if current.len() == chunk {
            partitions.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        partitions.push(current);
    }
    crossbeam::scope(|scope| {
        for part in partitions {
            let f = &f;
            scope.spawn(move |_| {
                for (i, s) in part {
                    f(i, s);
                }
            });
        }
    })
    .expect("parallel worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunks_cover_all_items_once() {
        let counter = AtomicU64::new(0);
        parallel_chunks(1000, |a, b| {
            for i in a..b {
                counter.fetch_add(i as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn zero_items_is_noop() {
        parallel_chunks(0, |_, _| panic!("should not run"));
    }

    #[test]
    fn map_reduce_sums_partials() {
        let mut total = 0u64;
        parallel_map_reduce(
            100,
            |a, b| (a..b).map(|i| i as u64).sum::<u64>(),
            &mut total,
            |acc, p| *acc += p,
        );
        assert_eq!(total, 99 * 100 / 2);
    }

    #[test]
    fn slices_receive_correct_indices() {
        let mut buf = vec![0.0f32; 40];
        let slices: Vec<&mut [f32]> = buf.chunks_mut(10).collect();
        parallel_over_slices(slices, |i, s| {
            for v in s.iter_mut() {
                *v = i as f32;
            }
        });
        for (i, chunk) in buf.chunks(10).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as f32));
        }
    }

    #[test]
    fn thread_cap_respected() {
        set_max_threads(1);
        assert_eq!(num_threads_for(64), 1);
        set_max_threads(0);
        assert!(num_threads_for(64) >= 1);
    }
}
