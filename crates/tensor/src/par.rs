//! Data-parallel helpers backed by a persistent worker pool.
//!
//! The kernels in this crate parallelize in two styles: coarse batch
//! splitting ([`parallel_chunks`], [`parallel_over_slices`]) and fine
//! intra-sample tiling ([`parallel_tiles`], used by the blocked GEMM and the
//! convolution engines). Both run on one shared pool of long-lived worker
//! threads, so a conv layer pays the thread-spawn cost once per process, not
//! once per call — and pool threads keep their thread-local scratch arenas
//! (see [`crate::scratch`]) warm across calls.
//!
//! # Threading model
//!
//! - The caller always participates in its own job, so a "w-way" parallel
//!   section uses `w - 1` pool workers plus the calling thread.
//! - [`parallel_tiles`] hands out tile indices from a shared atomic counter
//!   (dynamic load balancing). Every tile computes a value that depends only
//!   on the tile index, never on which worker ran it, so results are
//!   byte-identical for any worker count.
//! - Nested parallel sections run inline on the current thread: a kernel
//!   that is already inside a parallel region never fans out again, which
//!   keeps the pool deadlock-free without a work-stealing scheduler.
//! - Worker panics are captured and re-raised on the calling thread after
//!   all participants finish, so a failing tile cannot leave the pool wedged
//!   or let a caller observe partially-written output silently.
//!
//! The worker count defaults to `std::thread::available_parallelism`, can be
//! capped process-wide with the `REVBIFPN_MAX_THREADS` environment variable
//! (read once at first use), and can be overridden programmatically with
//! [`set_max_threads`], which takes precedence over both. An explicit
//! override is honored verbatim even when it exceeds the physical core
//! count; that is deliberate so the multi-threaded code paths stay testable
//! on small CI machines.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Upper bound on pool size; guards against pathological
/// `set_max_threads(huge)` calls. Far above any sensible worker count.
const MAX_POOL_WORKERS: usize = 192;

thread_local! {
    /// True while this thread is executing inside a parallel section
    /// (either as a pool worker or as a participating caller). Used to run
    /// nested parallel calls inline.
    static IN_PARALLEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Sets the worker-thread budget for all parallel helpers in this crate.
///
/// `0` (the default) means "use the process default" — the
/// `REVBIFPN_MAX_THREADS` environment variable when set, otherwise
/// `std::thread::available_parallelism`. Any
/// other value is used verbatim — including values larger than the physical
/// core count, which oversubscribes the CPU but lets tests exercise the
/// multi-threaded paths on machines with few cores. The pool grows lazily;
/// lowering the budget leaves already-spawned workers idle but parked.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// Default thread budget when no [`set_max_threads`] override is active:
/// the `REVBIFPN_MAX_THREADS` environment variable if set to a positive
/// integer (read once, so CI can cap a whole test run), otherwise
/// `std::thread::available_parallelism`.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let from_env = std::env::var("REVBIFPN_MAX_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        from_env.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
    })
}

/// Effective worker count (callers + pool workers) for `items` parallel items.
pub fn num_threads_for(items: usize) -> usize {
    let cap = MAX_THREADS.load(Ordering::Relaxed);
    let t = if cap == 0 { default_threads() } else { cap.min(MAX_POOL_WORKERS + 1) };
    t.max(1).min(items.max(1))
}

/// Countdown latch: the caller blocks until every dispatched worker has
/// finished its share of the job, collecting panic flags along the way.
struct Latch {
    state: Mutex<(usize, bool)>,
    cv: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self { state: Mutex::new((count, false)), cv: Condvar::new() }
    }

    fn done(&self, panicked: bool) {
        let mut g = self.state.lock().unwrap();
        g.0 -= 1;
        g.1 |= panicked;
        if g.0 == 0 {
            self.cv.notify_all();
        }
    }

    /// Blocks until the count reaches zero; returns whether any participant
    /// panicked.
    fn wait(&self) -> bool {
        let mut g = self.state.lock().unwrap();
        while g.0 > 0 {
            g = self.cv.wait(g).unwrap();
        }
        g.1
    }
}

/// A borrowed job closure smuggled to a worker thread. The raw pointer is
/// only dereferenced before `latch.done()` runs, and the dispatching caller
/// blocks on the latch before the closure's stack frame unwinds, so the
/// borrow is live for every dereference.
struct SendTask {
    task: *const (dyn Fn() + Sync),
    latch: Arc<Latch>,
}

// SAFETY: see the struct docs — lifetime is enforced by the latch protocol,
// and the closure itself is `Sync` so shared execution is sound.
unsafe impl Send for SendTask {}

/// One pool worker's mailbox. Tasks queue so concurrent dispatchers never
/// overwrite each other; each queued task is a tile-puller that exits
/// immediately if its job is already drained.
struct WorkerSlot {
    queue: Mutex<Vec<SendTask>>,
    cv: Condvar,
}

fn worker_main(slot: Arc<WorkerSlot>) {
    IN_PARALLEL.with(|f| f.set(true));
    loop {
        let job = {
            let mut q = slot.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop() {
                    break job;
                }
                q = slot.cv.wait(q).unwrap();
            }
        };
        // SAFETY: the dispatching caller keeps the closure alive until the
        // latch (decremented below, after the call) reaches zero.
        let task = unsafe { &*job.task };
        let panicked = catch_unwind(AssertUnwindSafe(task)).is_err();
        job.latch.done(panicked);
    }
}

fn pool() -> &'static Mutex<Vec<Arc<WorkerSlot>>> {
    static POOL: OnceLock<Mutex<Vec<Arc<WorkerSlot>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// Number of pool threads spawned so far (they persist for the process).
pub fn pool_size() -> usize {
    pool().lock().unwrap().len()
}

/// Grows the pool to at least `want` workers and returns handles to `want`
/// of them (fewer if thread spawning fails, e.g. under resource limits).
fn acquire_workers(want: usize) -> Vec<Arc<WorkerSlot>> {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let want = want.min(MAX_POOL_WORKERS);
    let mut slots = pool().lock().unwrap();
    while slots.len() < want {
        let slot = Arc::new(WorkerSlot { queue: Mutex::new(Vec::new()), cv: Condvar::new() });
        let for_thread = Arc::clone(&slot);
        let spawned = std::thread::Builder::new()
            .name(format!("revbifpn-par-{}", slots.len()))
            .spawn(move || worker_main(for_thread));
        match spawned {
            Ok(_) => slots.push(slot),
            Err(_) => break,
        }
    }
    let n = slots.len().min(want);
    // Rotate the starting worker between jobs so back-to-back small jobs
    // from different callers don't all pile onto worker 0.
    let start = NEXT.fetch_add(1, Ordering::Relaxed);
    (0..n).map(|i| Arc::clone(&slots[(start + i) % slots.len()])).collect()
}

/// Runs `task` on `extra` pool workers and the current thread, returning
/// once every participant is done. Panics from any participant are
/// re-raised here.
fn run_job(extra: usize, task: &(dyn Fn() + Sync)) {
    let workers = acquire_workers(extra);
    let latch = Arc::new(Latch::new(workers.len()));
    // SAFETY: the lifetime is erased to smuggle the borrow into SendTask;
    // the latch-drain below keeps the referent alive past every worker use.
    let ptr: *const (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(task) };
    for slot in &workers {
        slot.queue.lock().unwrap().push(SendTask { task: ptr, latch: Arc::clone(&latch) });
        slot.cv.notify_one();
    }
    IN_PARALLEL.with(|f| f.set(true));
    let caller = catch_unwind(AssertUnwindSafe(task));
    IN_PARALLEL.with(|f| f.set(false));
    // Always drain the latch before unwinding: workers hold a raw borrow of
    // `task` until their `done()`.
    let worker_panicked = latch.wait();
    match caller {
        Err(payload) => resume_unwind(payload),
        Ok(()) if worker_panicked => panic!("parallel worker panicked"),
        Ok(()) => {}
    }
}

/// Runs `f(tile_index)` for every index in `0..tiles`, distributing tiles
/// over the worker pool via a shared atomic counter.
///
/// This is the primitive the blocked GEMM and the conv engines build on:
/// callers carve their output into disjoint tiles, and each tile's result
/// must depend only on its index — under that contract the output is
/// byte-identical for any thread count, because tile-to-worker assignment
/// affects only scheduling, never values.
///
/// Nested calls (from inside another parallel section) run inline.
pub fn parallel_tiles<F>(tiles: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if tiles == 0 {
        return;
    }
    let threads = num_threads_for(tiles);
    if threads == 1 || IN_PARALLEL.with(|flag| flag.get()) {
        for t in 0..tiles {
            f(t);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let puller = || loop {
        let t = next.fetch_add(1, Ordering::Relaxed);
        if t >= tiles {
            break;
        }
        f(t);
    };
    run_job(threads - 1, &puller);
}

/// Splits `0..items` into `num_threads_for(items)` contiguous chunks and
/// returns the half-open range of chunk `t`.
fn chunk_range(items: usize, chunks: usize, t: usize) -> (usize, usize) {
    let chunk = items.div_ceil(chunks);
    (t * chunk, ((t + 1) * chunk).min(items))
}

/// Runs `f(start, end)` over disjoint contiguous chunks of `0..items`.
///
/// `f` is called once per chunk with that chunk's half-open index range.
/// With a single worker the call happens on the current thread (no
/// dispatch).
pub fn parallel_chunks<F>(items: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    if items == 0 {
        return;
    }
    let threads = num_threads_for(items);
    if threads == 1 {
        f(0, items);
        return;
    }
    parallel_tiles(threads, |t| {
        let (start, end) = chunk_range(items, threads, t);
        if start < end {
            f(start, end);
        }
    });
}

/// Runs a set of heterogeneous one-shot tasks concurrently on the worker
/// pool, returning when all of them have finished ("join").
///
/// This is the task-group primitive used by the reversible backward pass
/// (independent `U_ij`/`D_ij` transform calls) and the sharded train step
/// (per-shard forward+backward). Unlike [`parallel_tiles`], each task is a
/// distinct `FnOnce` closure, so tasks may capture different `&mut` state.
///
/// Scheduling rules:
/// - With a single-thread budget, inside an already-parallel section, or
///   with fewer than two tasks, the tasks run inline **in order** on the
///   current thread. The inline path does *not* mark the thread as inside a
///   parallel section, so kernels invoked by a lone task still fan out.
/// - Otherwise tasks are dispatched over the pool; each task runs exactly
///   once, on an arbitrary participant. Tasks then execute inside a
///   parallel section, so nested kernel calls run inline (deadlock-free
///   nesting, same rule as [`parallel_tiles`]).
///
/// Determinism contract: every task must write only to state it owns (or
/// disjoint slots), and each task's result must not depend on which thread
/// runs it or on execution order. Under that contract the combined result
/// is byte-identical for any thread count.
pub fn parallel_join<'a>(tasks: Vec<Box<dyn FnOnce() + Send + 'a>>) {
    let n = tasks.len();
    if n == 0 {
        return;
    }
    let threads = num_threads_for(n);
    if threads == 1 || n == 1 || IN_PARALLEL.with(|flag| flag.get()) {
        for t in tasks {
            t();
        }
        return;
    }
    // Each slot is taken exactly once by the tile that owns its index; the
    // Mutex is never contended, it only makes the slot type `Sync`.
    type TaskSlot<'a> = Mutex<Option<Box<dyn FnOnce() + Send + 'a>>>;
    let slots: Vec<TaskSlot<'a>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    parallel_tiles(n, |i| {
        let task = slots[i].lock().unwrap().take();
        if let Some(task) = task {
            task();
        }
    });
}

/// Calls `pair(dst, src)` for every reduction edge of the stride-doubling
/// pairwise tree over `n` leaves, in deterministic order. After the walk,
/// leaf `0` holds the reduction of all `n` leaves.
///
/// The edge set is `stride = 1, 2, 4, ...`: at each level, leaves
/// `i ≡ 0 (mod 2·stride)` absorb leaf `i + stride` (when it exists). The
/// order depends only on `n`, never on thread count or scheduling.
///
/// # Shard-alignment theorem
///
/// This tree is the backbone of the sharded training step's bitwise
/// determinism guarantee. Split the `n` leaves into `S` equal contiguous
/// shards of `m = n / S` leaves, with `m` and `S` powers of two. Then:
///
/// - every edge with `stride < m` connects two leaves of the *same* shard,
///   and the edges within one shard form exactly the tree this function
///   walks over `m` leaves (shifted by the shard base); and
/// - the edges with `stride >= m` connect shard representatives (leaf
///   `s·m` for shard `s`) and form exactly this tree over the `S` shard
///   partials.
///
/// So "reduce each shard locally with this tree, then reduce the shard
/// partials with this tree" performs the *same additions in the same
/// order* as one global tree over all `n` leaves — the merged result is
/// bitwise identical for any power-of-two shard count dividing `n`.
pub fn tree_reduce_serial<F>(n: usize, mut pair: F)
where
    F: FnMut(usize, usize),
{
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            pair(i, i + stride);
            i += 2 * stride;
        }
        stride *= 2;
    }
}

/// Parallel form of [`tree_reduce_serial`]: within each stride level the
/// pair reductions touch disjoint leaves, so they are dispatched over the
/// pool; levels are separated by a barrier. The edge set and per-edge
/// `pair(dst, src)` arguments are identical to the serial walk, so results
/// agree bitwise with it whenever each `pair` call is deterministic.
pub fn tree_reduce_parallel<F>(n: usize, pair: F)
where
    F: Fn(usize, usize) + Sync,
{
    let mut stride = 1;
    while stride < n {
        let step = 2 * stride;
        let pairs = if n > stride { (n - stride).div_ceil(step) } else { 0 };
        parallel_tiles(pairs, |p| {
            let i = p * step;
            pair(i, i + stride);
        });
        stride *= 2;
    }
}

/// Accumulates `n` per-leaf gradient slabs into `dst` via the pairwise
/// tree of [`tree_reduce_serial`].
///
/// `fill(leaf, slab)` writes leaf `leaf`'s contribution into a zeroed
/// `len`-float scratch slab (leaves are typically batch samples); slabs are
/// then merged with the stride-doubling tree and the root added into `dst`.
/// Because the slab count is a property of the problem (not the machine)
/// and the merge order is the fixed tree, the reduction is bitwise
/// invariant to thread count *and* — per the shard-alignment theorem — to
/// power-of-two micro-batch shard boundaries.
pub fn tree_reduce_with_slabs<F>(n: usize, len: usize, dst: &mut [f32], fill: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if n == 0 || len == 0 {
        return;
    }
    let mut slabs = crate::scratch::take(n * len);
    {
        let slices: Vec<&mut [f32]> = slabs.chunks_mut(len).collect();
        if slices.len() >= num_threads_for(usize::MAX) {
            parallel_over_slices(slices, &fill);
        } else {
            for (i, s) in slices.into_iter().enumerate() {
                fill(i, s);
            }
        }
    }
    let ptr = SyncPtr::new(slabs.as_mut_ptr());
    tree_reduce_parallel(n, |d, s| {
        // SAFETY: within one stride level the (dst, src) pairs touch
        // disjoint slabs, and levels are separated by a barrier.
        let (dst_s, src_s) = unsafe {
            (
                std::slice::from_raw_parts_mut(ptr.get().add(d * len), len),
                std::slice::from_raw_parts(ptr.get().add(s * len), len),
            )
        };
        for (a, b) in dst_s.iter_mut().zip(src_s) {
            *a += *b;
        }
    });
    for (d, s) in dst.iter_mut().zip(&slabs[..len]) {
        *d += s;
    }
}

/// Wrapper making a raw pointer shareable across the pool. Soundness is the
/// caller's obligation: every tile must touch disjoint memory. Used by the
/// kernels in this crate to let tiles write disjoint regions of one buffer.
///
/// The pointer is deliberately private: edition-2021 closures capture
/// *fields*, and capturing the bare pointer would sidestep this wrapper's
/// `Sync` impl. Going through [`SyncPtr::get`] keeps the wrapper itself the
/// captured value.
pub(crate) struct SyncPtr<T>(*mut T);
unsafe impl<T> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        Self(ptr)
    }

    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

/// Like [`parallel_chunks`] but each chunk produces a partial result, and
/// the partials are reduced into `init` **in chunk order** after all chunks
/// finish. The reduction order is therefore a deterministic function of
/// `items` and the thread budget, independent of scheduling.
pub fn parallel_map_reduce<A, T, F, R>(items: usize, f: F, init: &mut A, mut reduce: R)
where
    A: ?Sized,
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    R: FnMut(&mut A, T),
{
    if items == 0 {
        return;
    }
    let threads = num_threads_for(items);
    if threads == 1 {
        let part = f(0, items);
        reduce(init, part);
        return;
    }
    let mut parts: Vec<Option<T>> = (0..threads).map(|_| None).collect();
    let out = SyncPtr::new(parts.as_mut_ptr());
    parallel_tiles(threads, |t| {
        let (start, end) = chunk_range(items, threads, t);
        if start < end {
            let part = f(start, end);
            // SAFETY: tile t is the only writer of slot t, and `parts`
            // outlives the parallel section (we're still borrowing it).
            unsafe { *out.get().add(t) = Some(part) };
        }
    });
    for part in parts.into_iter().flatten() {
        reduce(init, part);
    }
}

/// Runs `f(item_index, slice)` for every slice in `slices`, distributing the
/// items over worker threads. Slices are disjoint `&mut` borrows (typically
/// per-batch-item chunks of an output buffer), so this is safe parallelism
/// by construction.
pub fn parallel_over_slices<F>(slices: Vec<&mut [f32]>, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let items = slices.len();
    if items == 0 {
        return;
    }
    if num_threads_for(items) == 1 {
        for (i, s) in slices.into_iter().enumerate() {
            f(i, s);
        }
        return;
    }
    let raw: Vec<(*mut f32, usize)> =
        slices.into_iter().map(|s| (s.as_mut_ptr(), s.len())).collect();
    let raw = SyncPtr::new(raw.as_ptr() as *mut (*mut f32, usize));
    parallel_tiles(items, |i| {
        // SAFETY: the source slices were disjoint `&mut` borrows and each
        // index is visited by exactly one tile.
        let (ptr, len) = unsafe { *raw.get().add(i) };
        let slice = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
        f(i, slice);
    });
}

/// Serializes tests (crate-wide) that touch the global thread budget.
#[cfg(test)]
pub(crate) fn tests_budget_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    use super::tests_budget_lock as budget_lock;

    #[test]
    fn chunks_cover_all_items_once() {
        let counter = AtomicU64::new(0);
        parallel_chunks(1000, |a, b| {
            for i in a..b {
                counter.fetch_add(i as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn zero_items_is_noop() {
        parallel_chunks(0, |_, _| panic!("should not run"));
        parallel_tiles(0, |_| panic!("should not run"));
    }

    #[test]
    fn map_reduce_sums_partials() {
        let mut total = 0u64;
        parallel_map_reduce(
            100,
            |a, b| (a..b).map(|i| i as u64).sum::<u64>(),
            &mut total,
            |acc, p| *acc += p,
        );
        assert_eq!(total, 99 * 100 / 2);
    }

    #[test]
    fn slices_receive_correct_indices() {
        let mut buf = vec![0.0f32; 40];
        let slices: Vec<&mut [f32]> = buf.chunks_mut(10).collect();
        parallel_over_slices(slices, |i, s| {
            for v in s.iter_mut() {
                *v = i as f32;
            }
        });
        for (i, chunk) in buf.chunks(10).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as f32));
        }
    }

    #[test]
    fn thread_cap_respected() {
        let _g = budget_lock();
        set_max_threads(1);
        assert_eq!(num_threads_for(64), 1);
        set_max_threads(0);
        assert!(num_threads_for(64) >= 1);
    }

    #[test]
    fn explicit_budget_may_exceed_core_count() {
        let _g = budget_lock();
        set_max_threads(7);
        assert_eq!(num_threads_for(64), 7);
        assert_eq!(num_threads_for(3), 3);
        set_max_threads(0);
    }

    #[test]
    fn tiles_visit_each_index_exactly_once_oversubscribed() {
        let _g = budget_lock();
        set_max_threads(5);
        let hits: Vec<AtomicU64> = (0..137).map(|_| AtomicU64::new(0)).collect();
        parallel_tiles(hits.len(), |t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        set_max_threads(0);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_threads_are_reused() {
        let _g = budget_lock();
        set_max_threads(4);
        parallel_tiles(16, |_| {});
        let after_first = pool_size();
        for _ in 0..8 {
            parallel_tiles(16, |_| {});
        }
        set_max_threads(0);
        assert!(after_first >= 1, "pool should have spawned workers");
        assert_eq!(pool_size(), after_first, "repeat jobs must not grow the pool");
    }

    #[test]
    fn nested_parallel_sections_run_inline() {
        let _g = budget_lock();
        set_max_threads(4);
        let counter = AtomicU64::new(0);
        parallel_tiles(8, |_| {
            // Inner section must not deadlock; it runs inline.
            parallel_tiles(8, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        set_max_threads(0);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let _g = budget_lock();
        set_max_threads(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_tiles(64, |t| {
                if t == 13 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic inside a tile must propagate");
        // The pool must still be usable after a panicked job.
        let counter = AtomicU64::new(0);
        parallel_tiles(32, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        set_max_threads(0);
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn join_runs_every_task_once() {
        let _g = budget_lock();
        set_max_threads(4);
        let hits: Vec<AtomicU64> = (0..23).map(|_| AtomicU64::new(0)).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..hits.len())
            .map(|i| {
                let cell = &hits[i];
                Box::new(move || {
                    cell.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        parallel_join(tasks);
        set_max_threads(0);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn join_tasks_may_mutate_disjoint_state() {
        let _g = budget_lock();
        set_max_threads(4);
        let mut outs = vec![0u64; 8];
        let tasks: Vec<Box<dyn FnOnce() + Send>> = outs
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    *slot = (i as u64 + 1) * 10;
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        parallel_join(tasks);
        set_max_threads(0);
        assert_eq!(outs, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn join_single_task_does_not_enter_parallel_section() {
        let _g = budget_lock();
        set_max_threads(4);
        let entered = std::sync::atomic::AtomicBool::new(false);
        let probe = &entered;
        parallel_join(vec![Box::new(move || {
            probe.store(IN_PARALLEL.with(|f| f.get()), Ordering::Relaxed);
        })]);
        set_max_threads(0);
        assert!(
            !entered.load(Ordering::Relaxed),
            "lone task must run outside a parallel section"
        );
    }

    #[test]
    fn join_panic_propagates() {
        let _g = budget_lock();
        set_max_threads(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
                .map(|i| {
                    Box::new(move || {
                        if i == 3 {
                            panic!("task boom");
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            parallel_join(tasks);
        }));
        set_max_threads(0);
        assert!(result.is_err());
    }

    #[test]
    fn tree_reduce_matches_between_serial_and_parallel() {
        let _g = budget_lock();
        for n in [1usize, 2, 3, 5, 8, 16, 17] {
            let mut serial_edges = Vec::new();
            tree_reduce_serial(n, |d, s| serial_edges.push((d, s)));
            let par_edges = Mutex::new(Vec::new());
            set_max_threads(4);
            tree_reduce_parallel(n, |d, s| par_edges.lock().unwrap().push((d, s)));
            set_max_threads(0);
            let mut par_edges = par_edges.into_inner().unwrap();
            // Parallel order within a level is nondeterministic; the edge
            // *set* must match, and level order is preserved by stride.
            par_edges.sort_unstable();
            serial_edges.sort_unstable();
            assert_eq!(serial_edges, par_edges, "edge set mismatch at n={n}");
        }
    }

    #[test]
    fn tree_reduce_shard_alignment() {
        // The theorem in the docs, checked concretely: local trees over
        // power-of-two shards followed by a tree over shard bases perform
        // the same (dst, src) adds as one global tree, in an order that
        // yields bitwise-identical sums for f32 accumulation.
        let n = 16usize;
        for shards in [1usize, 2, 4, 8] {
            let m = n / shards;
            let leaves: Vec<f32> = (0..n).map(|i| (i as f32).sin() * 1e3).collect();
            let mut global = leaves.clone();
            tree_reduce_serial(n, |d, s| global[d] += global[s]);
            let mut sharded = leaves.clone();
            for s in 0..shards {
                let base = s * m;
                tree_reduce_serial(m, |d, s2| sharded[base + d] += sharded[base + s2]);
            }
            let mut partials: Vec<f32> = (0..shards).map(|s| sharded[s * m]).collect();
            tree_reduce_serial(shards, |d, s2| partials[d] += partials[s2]);
            assert_eq!(global[0].to_bits(), partials[0].to_bits(), "shards={shards}");
        }
    }

    #[test]
    fn map_reduce_order_is_chunk_order() {
        let _g = budget_lock();
        set_max_threads(4);
        let mut seen: Vec<usize> = Vec::new();
        parallel_map_reduce(100, |start, _end| start, &mut seen, |acc, s| acc.push(s));
        set_max_threads(0);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(seen, sorted, "partials must reduce in chunk order");
        assert_eq!(seen[0], 0);
    }
}
