//! Int8 quantized GEMM: per-row (output-channel) symmetric int8 weights
//! against dynamically quantized unsigned activations, with a fused
//! dequantize + bias + activation epilogue.
//!
//! # Quantization scheme
//!
//! * **Weights** are quantized per output channel at pack time:
//!   `scale_w[r] = max|w[r, :]| / 127`, `q = round(w / scale_w[r])` clamped
//!   to `[-127, 127]` (round half away from zero, i.e. `f32::round`).
//! * **Activations** are quantized per tensor at call time from an absmax
//!   scan: `scale_a = absmax / 63`, `q = round(v / scale_a)` clamped to
//!   `[-63, 63]`, then biased by the zero point [`INT8_ACT_ZERO_POINT`]`=
//!   64` into an unsigned byte in `[1, 127]`. Rounding here is the
//!   branch-free `trunc(t + copysign(0.5, t))` (half away from zero; see
//!   `quant_round`) — unlike `f32::round` it can differ by one step when
//!   `t + 0.5` itself rounds, but it keeps the quantize loops free of libm
//!   calls, and scalar and vector dispatches share the formula exactly.
//!
//! The 7-bit activation range is deliberate: `_mm256_maddubs_epi16`
//! multiplies unsigned × signed bytes and **saturates** the pairwise i16
//! sum. With `|a| <= 127` (biased) and `|w| <= 127` the worst pair is
//! `127*127*2 = 32258 < 32767`, so saturation can never fire and the i32
//! accumulation is exact. The scalar fallback still emulates the saturating
//! semantics instruction-for-instruction, so scalar and AVX2 kernels are
//! **bit-identical** even for hand-packed out-of-range panels.
//!
//! The zero-point bias is corrected in the epilogue: since every activation
//! byte carries `+64`, the raw accumulator holds `sum(a_q * w_q) + 64 *
//! sum(w_q[row, :])`; subtracting `64 * wsum[row]` (precomputed at pack
//! time) recovers the symmetric product, which then dequantizes as
//! `scale_a * scale_w[row] * acc`.
//!
//! # Blocking
//!
//! The engine mirrors the f32 one in [`crate::matmul`]: `6 x 16` register
//! micro-tile, `96 x 512` macro-tiles fanned out with
//! [`crate::par::parallel_tiles`]. Depth is processed in **quads** of 4
//! `k`-values (the `maddubs`/`madd` pair consumes 4 bytes per lane), and a
//! macro-tile accumulates its full depth in i32 before a single dequantized
//! write-back — integer accumulation is exact, so no KC-slice ordering
//! concerns exist and results are byte-identical for any thread count.

use crate::blob::{Panel, SharedBytes};
use crate::matmul::{Epilogue, EpilogueAct};
use crate::par::{parallel_tiles, SyncPtr};
use crate::scratch;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::OnceLock;

/// Micro-kernel rows (register-tile height), as in the f32 engine.
pub(crate) const QMR: usize = 6;
/// Micro-kernel columns (two 8-lane i32 AVX2 accumulators per row).
pub(crate) const QNR: usize = 16;
/// Depth values consumed per `maddubs`+`madd` step.
pub(crate) const QK: usize = 4;
/// Macro-tile height (multiple of `QMR`).
pub(crate) const QMC: usize = 96;
/// Macro-tile width (multiple of `QNR`).
pub(crate) const QNC: usize = 512;

/// Zero point added to quantized activations so they fit the unsigned
/// operand of `maddubs`: `byte = q + 64` with `q` in `[-63, 63]`.
pub const INT8_ACT_ZERO_POINT: i32 = 64;
/// Quantized activation magnitude bound (7-bit symmetric).
pub const INT8_ACT_QMAX: f32 = 63.0;

/// Activation scale for a tensor with the given absolute maximum. A
/// constant-zero tensor gets scale 1 (all bytes land on the zero point).
pub fn int8_act_scale(absmax: f32) -> f32 {
    if absmax > 0.0 {
        absmax / INT8_ACT_QMAX
    } else {
        1.0
    }
}

/// Round-half-away-from-zero as `trunc(t + copysign(0.5, t))`: branch-free
/// float ops plus one truncating cast, so the quantization loops
/// auto-vectorize at the baseline target (`f32::round` lowers to a libm
/// call there and dominated the int8 path's runtime). Operands are
/// pre-clamped well inside i32 range, so the cast never saturates.
#[inline(always)]
fn quant_round(t: f32) -> i32 {
    (t + 0.5f32.copysign(t)) as i32
}

/// Quantizes activations into biased unsigned bytes:
/// `round(clamp(v / scale, -63, 63)) + 64` with [`quant_round`] semantics
/// (half away from zero; clamping before rounding is equivalent because the
/// range ends are integers and rounding is monotone).
///
/// # Panics
///
/// Panics if `dst` is shorter than `src`.
pub fn quantize_activations(src: &[f32], scale: f32, dst: &mut [u8]) {
    assert!(dst.len() >= src.len(), "activation buffer too short");
    let inv = 1.0 / scale;
    #[cfg(target_arch = "x86_64")]
    if int8_use_avx2() {
        // SAFETY: AVX2 presence checked by the dispatch; slice extents
        // checked above.
        unsafe { quantize_activations_avx2(src, inv, dst) };
        return;
    }
    quantize_activations_scalar(src, inv, dst);
}

fn quantize_activations_scalar(src: &[f32], inv: f32, dst: &mut [u8]) {
    for (d, &v) in dst.iter_mut().zip(src) {
        let q = quant_round((v * inv).clamp(-INT8_ACT_QMAX, INT8_ACT_QMAX));
        *d = (q + INT8_ACT_ZERO_POINT) as u8;
    }
}

/// Vector form of [`quantize_activations_scalar`] with identical per-lane
/// arithmetic (mul, min/max clamp, copysign-0.5 add, truncating convert) —
/// finite inputs quantize bit-identically under either dispatch. 32 floats
/// per step; the i32 lanes sit in `[1, 127]`, so the signed `packs` /
/// unsigned `packus` narrowing chain never saturates (the
/// `permutevar8x32` undoes the packs' 128-bit-lane interleave).
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and `dst.len() >= src.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_activations_avx2(src: &[f32], inv: f32, dst: &mut [u8]) {
    use std::arch::x86_64::*;
    let n = src.len();
    let vinv = _mm256_set1_ps(inv);
    let vmin = _mm256_set1_ps(-INT8_ACT_QMAX);
    let vmax = _mm256_set1_ps(INT8_ACT_QMAX);
    let sign = _mm256_set1_ps(-0.0);
    let half = _mm256_set1_ps(0.5);
    let zp = _mm256_set1_epi32(INT8_ACT_ZERO_POINT);
    let fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    let mut i = 0;
    while i + 32 <= n {
        let quad = |off: usize| {
            let t = _mm256_mul_ps(_mm256_loadu_ps(src.as_ptr().add(i + off)), vinv);
            let t = _mm256_min_ps(_mm256_max_ps(t, vmin), vmax);
            let h = _mm256_or_ps(_mm256_and_ps(t, sign), half);
            _mm256_add_epi32(_mm256_cvttps_epi32(_mm256_add_ps(t, h)), zp)
        };
        let ab = _mm256_packs_epi32(quad(0), quad(8));
        let cd = _mm256_packs_epi32(quad(16), quad(24));
        let bytes = _mm256_permutevar8x32_epi32(_mm256_packus_epi16(ab, cd), fix);
        _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, bytes);
        i += 32;
    }
    quantize_activations_scalar(&src[i..], inv, &mut dst[i..n]);
}

/// Per-row symmetric int8 weight quantization: `scale[r] = max|w[r,:]| /
/// 127` (1.0 for an all-zero row), `q = clamp(round(w / scale[r]), -127,
/// 127)`. Returns the quantized rows and their scales.
///
/// # Panics
///
/// Panics if `w.len() != m * k`.
pub fn quantize_weights_per_row(m: usize, k: usize, w: &[f32]) -> (Vec<i8>, Vec<f32>) {
    assert_eq!(w.len(), m * k, "w must be m*k");
    let mut q = vec![0i8; m * k];
    let mut scales = vec![1.0f32; m];
    for r in 0..m {
        let row = &w[r * k..(r + 1) * k];
        let absmax = row.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let scale = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
        scales[r] = scale;
        let inv = 1.0 / scale;
        for (d, &v) in q[r * k..(r + 1) * k].iter_mut().zip(row) {
            *d = (v * inv).round().clamp(-127.0, 127.0) as i8;
        }
    }
    (q, scales)
}

/// Padded row count of one full `QMC`-high macro-tile block.
const QMC_PAD: usize = QMC.div_ceil(QMR) * QMR;

/// The left operand of the int8 blocked GEMM: per-output-channel quantized
/// weights packed once into quad-interleaved `QMR`-row panels, with the f32
/// dequantization scales and the zero-point correction row sums alongside.
#[derive(Clone, Debug)]
pub struct PackedGemmAI8 {
    data: Panel<i8>,
    scales: Vec<f32>,
    wsums: Vec<i32>,
    m: usize,
    k: usize,
    kq: usize,
}

impl PackedGemmAI8 {
    /// Quantizes a row-major f32 `[m, k]` matrix per row and packs it. The
    /// packed image is laid out as macro-tile blocks in `i0` order; within a
    /// block, panel `ir` stores the 4 bytes of row `r`, depth quad `q` at
    /// `ir*QMR*kq*4 + q*QMR*4 + r*4`, zero-padded to full `QMR` rows and
    /// whole quads so the micro-kernel never branches on an edge.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != m * k` or either dimension is zero.
    pub fn pack_quantize(m: usize, k: usize, w: &[f32]) -> Self {
        assert!(m > 0 && k > 0, "packed int8 GEMM operand must be non-empty");
        let (q, scales) = quantize_weights_per_row(m, k, w);
        let wsums = (0..m)
            .map(|r| q[r * k..(r + 1) * k].iter().map(|&v| v as i32).sum())
            .collect();
        let kq = k.div_ceil(QK);
        let mut data = vec![0i8; Self::packed_len(m, kq)];
        let mut off = 0;
        for i0 in (0..m).step_by(QMC) {
            let mc = QMC.min(m - i0);
            for ir in 0..mc.div_ceil(QMR) {
                let rows = QMR.min(mc - ir * QMR);
                for qi in 0..kq {
                    let at = off + ir * QMR * kq * QK + qi * QMR * QK;
                    for r in 0..rows {
                        for dk in 0..QK {
                            let p = qi * QK + dk;
                            if p < k {
                                data[at + r * QK + dk] = q[(i0 + ir * QMR + r) * k + p];
                            }
                        }
                    }
                }
            }
            off += mc.div_ceil(QMR) * QMR * kq * QK;
        }
        Self { data: Panel::Owned(data), scales, wsums, m, k, kq }
    }

    /// Length in bytes of the packed int8 image for an `[m, k]` operand —
    /// the serialized size of [`PackedGemmAI8::image`].
    pub fn image_len(m: usize, k: usize) -> usize {
        Self::packed_len(m, k.div_ceil(QK))
    }

    /// The raw quad-interleaved packed image (stable only for a fixed
    /// [`crate::gemm_layout_fingerprint`]).
    pub fn image(&self) -> &[i8] {
        self.data.as_slice()
    }

    /// Per-row zero-point-correction weight sums.
    pub fn wsums(&self) -> &[i32] {
        &self.wsums
    }

    /// Rebuilds a packed operand from a previously serialized image and its
    /// sidecars, taking ownership of the buffers.
    ///
    /// # Errors
    ///
    /// Rejects empty dimensions and image/sidecar lengths that disagree
    /// with `(m, k)`.
    pub fn from_owned_image(
        m: usize,
        k: usize,
        image: Vec<i8>,
        scales: Vec<f32>,
        wsums: Vec<i32>,
    ) -> Result<Self, &'static str> {
        Self::check_parts(m, k, image.len(), &scales, &wsums)?;
        Ok(Self { data: Panel::Owned(image), scales, wsums, m, k, kq: k.div_ceil(QK) })
    }

    /// Rebuilds a packed operand whose int8 image *borrows* `bytes` at byte
    /// `offset` — the zero-copy artifact-loading path. The small f32/i32
    /// sidecars are owned copies.
    ///
    /// # Errors
    ///
    /// Rejects empty dimensions, out-of-bounds ranges and sidecar length
    /// mismatches.
    pub fn from_shared_image(
        m: usize,
        k: usize,
        bytes: SharedBytes,
        offset: usize,
        scales: Vec<f32>,
        wsums: Vec<i32>,
    ) -> Result<Self, &'static str> {
        Self::check_parts(m, k, Self::image_len(m, k), &scales, &wsums)?;
        let data = Panel::from_shared(bytes, offset, Self::image_len(m, k))?;
        Ok(Self { data, scales, wsums, m, k, kq: k.div_ceil(QK) })
    }

    fn check_parts(
        m: usize,
        k: usize,
        image_len: usize,
        scales: &[f32],
        wsums: &[i32],
    ) -> Result<(), &'static str> {
        if m == 0 || k == 0 {
            return Err("packed int8 GEMM operand must be non-empty");
        }
        if image_len != Self::image_len(m, k) {
            return Err("packed int8 image length disagrees with (m, k)");
        }
        if scales.len() != m || wsums.len() != m {
            return Err("int8 sidecar length disagrees with m");
        }
        Ok(())
    }

    /// Whether the image borrows a shared (typically mmap-backed) buffer.
    pub fn is_shared(&self) -> bool {
        self.data.is_shared()
    }

    fn packed_len(m: usize, kq: usize) -> usize {
        (0..m)
            .step_by(QMC)
            .map(|i0| QMC.min(m - i0).div_ceil(QMR) * QMR * kq * QK)
            .sum()
    }

    /// The full-depth panel block for macro-tile `ic`.
    #[inline]
    fn block(&self, ic: usize) -> &[i8] {
        let i0 = ic * QMC;
        let rows_padded = QMC.min(self.m - i0).div_ceil(QMR) * QMR;
        let off = ic * QMC_PAD * self.kq * QK;
        &self.data.as_slice()[off..off + rows_padded * self.kq * QK]
    }

    /// Packed row count (`m` of the original matrix).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Packed depth (`k` of the original matrix).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Per-row dequantization scales (`max|w| / 127`).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Resident bytes of the packed image plus its f32/i32 sidecars.
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4 + self.wsums.len() * 4
    }
}

/// Packs depth-major `[k, n]` unsigned activation bytes for columns
/// `j0..j0+nc` into quad-interleaved `QNR`-column panels: panel `jr` stores
/// column `j`, depth `p = 4q + dk` at `jr*QNR*kq*4 + q*QNR*4 + j*4 + dk`.
/// `dst` must be pre-zeroed (k-tail and column padding pair with zero
/// weights / discarded outputs).
fn qpack_b(b: &[u8], k: usize, n: usize, j0: usize, nc: usize, kq: usize, dst: &mut [u8]) {
    for jr in 0..nc.div_ceil(QNR) {
        let base = jr * QNR * kq * QK;
        let cols = QNR.min(nc - jr * QNR);
        let col0 = j0 + jr * QNR;
        // Full 16-column panels with a full depth quad are a 4x16 byte
        // transpose; two rounds of SSE2 unpacks do it in 4 loads + 4 stores
        // instead of 64 single-byte writes. Output bytes are identical to
        // the scalar tail loop (pure data movement).
        #[cfg(target_arch = "x86_64")]
        let p0 = if cols == QNR {
            use std::arch::x86_64::*;
            for q in 0..k / QK {
                // SAFETY: rows `4q..4q+3` are all `< k` and the 16 columns
                // from `col0` fit inside the row (`col0 + 16 <= n`), so each
                // load reads in-bounds; the 64 output bytes land inside this
                // panel's `kq * 64`-byte region.
                unsafe {
                    let row = |dk: usize| {
                        _mm_loadu_si128(b.as_ptr().add((q * QK + dk) * n + col0) as *const __m128i)
                    };
                    let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
                    let t0 = _mm_unpacklo_epi8(r0, r1);
                    let t1 = _mm_unpackhi_epi8(r0, r1);
                    let t2 = _mm_unpacklo_epi8(r2, r3);
                    let t3 = _mm_unpackhi_epi8(r2, r3);
                    let out = dst.as_mut_ptr().add(base + q * QNR * QK);
                    _mm_storeu_si128(out as *mut __m128i, _mm_unpacklo_epi16(t0, t2));
                    _mm_storeu_si128(out.add(16) as *mut __m128i, _mm_unpackhi_epi16(t0, t2));
                    _mm_storeu_si128(out.add(32) as *mut __m128i, _mm_unpacklo_epi16(t1, t3));
                    _mm_storeu_si128(out.add(48) as *mut __m128i, _mm_unpackhi_epi16(t1, t3));
                }
            }
            k / QK * QK
        } else {
            0
        };
        #[cfg(not(target_arch = "x86_64"))]
        let p0 = 0;
        for p in p0..k {
            let (q, dk) = (p / QK, p % QK);
            let brow = &b[p * n + col0..p * n + col0 + cols];
            let at = base + q * QNR * QK + dk;
            for (j, &bv) in brow.iter().enumerate() {
                dst[at + j * QK] = bv;
            }
        }
    }
}

/// Portable micro-kernel, instruction-for-instruction equivalent to
/// [`qmk_avx2`]: per depth quad and column, two saturating-i16 byte-pair
/// products (`maddubs`) are widened and summed exactly (`madd` against
/// ones), then accumulated in wrapping i32 (`paddd` wraps).
fn qmk_scalar(kq: usize, ap: &[i8], bp: &[u8], acc: &mut [[i32; QNR]; QMR]) {
    #[inline(always)]
    fn maddubs(a0: u8, w0: i8, a1: u8, w1: i8) -> i32 {
        ((a0 as i32) * (w0 as i32) + (a1 as i32) * (w1 as i32)).clamp(-32768, 32767)
    }
    for q in 0..kq {
        let a_at = q * QMR * QK;
        let b_at = q * QNR * QK;
        for (r, accrow) in acc.iter_mut().enumerate() {
            let w = &ap[a_at + r * QK..a_at + r * QK + QK];
            for (j, av) in accrow.iter_mut().enumerate() {
                let b = &bp[b_at + j * QK..b_at + j * QK + QK];
                let s01 = maddubs(b[0], w[0], b[1], w[1]);
                let s23 = maddubs(b[2], w[2], b[3], w[3]);
                *av = av.wrapping_add(s01 + s23);
            }
        }
    }
}

/// AVX2 micro-kernel: 6x16 i32 tile in twelve ymm accumulators, four depth
/// values per `_mm256_maddubs_epi16` + `_mm256_madd_epi16` step.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2, `ap` points to at least
/// `kq * QMR * 4` bytes and `bp` to at least `kq * QNR * 4` bytes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qmk_avx2(kq: usize, ap: *const i8, bp: *const u8, acc: &mut [[i32; QNR]; QMR]) {
    use std::arch::x86_64::*;
    let ones = _mm256_set1_epi16(1);
    let mut lo = [_mm256_setzero_si256(); QMR];
    let mut hi = [_mm256_setzero_si256(); QMR];
    for q in 0..kq {
        let bbase = bp.add(q * QNR * QK);
        let b0 = _mm256_loadu_si256(bbase as *const __m256i);
        let b1 = _mm256_loadu_si256(bbase.add(32) as *const __m256i);
        let abase = ap.add(q * QMR * QK);
        for r in 0..QMR {
            let w = _mm256_set1_epi32((abase.add(r * QK) as *const i32).read_unaligned());
            lo[r] = _mm256_add_epi32(lo[r], _mm256_madd_epi16(_mm256_maddubs_epi16(b0, w), ones));
            hi[r] = _mm256_add_epi32(hi[r], _mm256_madd_epi16(_mm256_maddubs_epi16(b1, w), ones));
        }
    }
    for r in 0..QMR {
        _mm256_storeu_si256(acc[r].as_mut_ptr() as *mut __m256i, lo[r]);
        _mm256_storeu_si256(acc[r].as_mut_ptr().add(8) as *mut __m256i, hi[r]);
    }
}

fn force_scalar_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = std::env::var_os("REVBIFPN_INT8_FORCE_SCALAR").is_some_and(|v| v != "0");
        AtomicBool::new(on)
    })
}

/// Forces the int8 GEMM onto the scalar micro-kernel (`true`) or restores
/// runtime CPU dispatch (`false`). Also settable via the
/// `REVBIFPN_INT8_FORCE_SCALAR` environment variable (read once at first
/// use). The two kernels are bit-identical; this exists so non-AVX2
/// behavior stays testable on AVX2 hosts (CI runs a forced-scalar pass).
pub fn set_int8_force_scalar(on: bool) {
    force_scalar_flag().store(on, Ordering::Relaxed);
}

pub(crate) fn int8_use_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static DETECTED: OnceLock<bool> = OnceLock::new();
        let have = *DETECTED.get_or_init(|| std::is_x86_feature_detected!("avx2"));
        have && !force_scalar_flag().load(Ordering::Relaxed)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `max |v|` over a slice. The scalar `fold` form does not auto-vectorize
/// (LLVM will not reorder float reductions), so this hand-vectorizes with
/// baseline SSE2; max over finite values is order-independent, so the
/// result is bitwise equal to the sequential fold.
pub(crate) fn abs_max_slice(v: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: SSE2 is baseline on x86_64; every load is bounds-checked by
    // the loop condition.
    unsafe {
        use std::arch::x86_64::*;
        let absmask = _mm_castsi128_ps(_mm_set1_epi32(0x7fff_ffff));
        let mut m0 = _mm_setzero_ps();
        let mut m1 = _mm_setzero_ps();
        let mut i = 0;
        while i + 8 <= v.len() {
            m0 = _mm_max_ps(m0, _mm_and_ps(_mm_loadu_ps(v.as_ptr().add(i)), absmask));
            m1 = _mm_max_ps(m1, _mm_and_ps(_mm_loadu_ps(v.as_ptr().add(i + 4)), absmask));
            i += 8;
        }
        let m = _mm_max_ps(m0, m1);
        let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
        let m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
        v[i..].iter().fold(_mm_cvtss_f32(m), |r, &x| r.max(x.abs()))
    }
    #[cfg(not(target_arch = "x86_64"))]
    v.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
}

/// Centered (unbiased) activation quantization into integer-valued f32
/// lanes for the quantized depthwise plane kernel:
/// `round(clamp(v / scale, -63, 63))` with [`quant_round`] semantics, kept
/// as f32 so the plane kernel's exact integer arithmetic applies.
/// SSE2-vectorized with the same per-lane formula as the scalar tail
/// (baseline on x86_64, so no feature dispatch is needed).
pub(crate) fn quantize_centered_f32(src: &[f32], inv: f32, dst: &mut [f32]) {
    assert!(dst.len() >= src.len(), "quantize buffer too short");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: SSE2 is baseline on x86_64; loads/stores are bounds-checked
    // by the loop condition.
    let done = unsafe {
        use std::arch::x86_64::*;
        let vinv = _mm_set1_ps(inv);
        let vmin = _mm_set1_ps(-INT8_ACT_QMAX);
        let vmax = _mm_set1_ps(INT8_ACT_QMAX);
        let sign = _mm_set1_ps(-0.0);
        let half = _mm_set1_ps(0.5);
        let mut i = 0;
        while i + 4 <= src.len() {
            let t = _mm_mul_ps(_mm_loadu_ps(src.as_ptr().add(i)), vinv);
            let t = _mm_min_ps(_mm_max_ps(t, vmin), vmax);
            let h = _mm_or_ps(_mm_and_ps(t, sign), half);
            let q = _mm_cvtepi32_ps(_mm_cvttps_epi32(_mm_add_ps(t, h)));
            _mm_storeu_ps(dst.as_mut_ptr().add(i), q);
            i += 4;
        }
        i
    };
    #[cfg(not(target_arch = "x86_64"))]
    let done = 0;
    for (d, &v) in dst[done..src.len()].iter_mut().zip(&src[done..]) {
        let t = (v * inv).clamp(-INT8_ACT_QMAX, INT8_ACT_QMAX);
        *d = (t + 0.5f32.copysign(t)) as i32 as f32;
    }
}

/// Vector write-back for one output row of the int8 GEMM: dequantize
/// (`(acc - corr) * scale`), bias, activation, store, and fold the row's
/// absolute maximum — per-lane arithmetic identical to the scalar loop in
/// [`qgemm_prepacked`] (wrapping i32 subtract, round-to-nearest convert,
/// same-order float ops), so both dispatches write the same bits.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and `crow.len() == cols <= QNR`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qdequant_row_avx2(
    accrow: &[i32; QNR],
    cols: usize,
    corr: i32,
    scale: f32,
    bias: Option<f32>,
    act: EpilogueAct,
    crow: &mut [f32],
) -> f32 {
    use std::arch::x86_64::*;
    let vcorr = _mm256_set1_epi32(corr);
    let vscale = _mm256_set1_ps(scale);
    let vbias = _mm256_set1_ps(bias.unwrap_or(0.0));
    let zero = _mm256_setzero_ps();
    let three = _mm256_set1_ps(3.0);
    let six = _mm256_set1_ps(6.0);
    let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
    let mut vmax = zero;
    let mut j = 0;
    while j + 8 <= cols {
        let a = _mm256_loadu_si256(accrow.as_ptr().add(j) as *const __m256i);
        let mut v = _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_sub_epi32(a, vcorr)), vscale);
        if bias.is_some() {
            v = _mm256_add_ps(v, vbias);
        }
        v = match act {
            EpilogueAct::None => v,
            EpilogueAct::Relu => _mm256_max_ps(v, zero),
            EpilogueAct::HardSwish => {
                let t = _mm256_min_ps(_mm256_max_ps(_mm256_add_ps(v, three), zero), six);
                _mm256_div_ps(_mm256_mul_ps(v, t), six)
            }
            EpilogueAct::HardSigmoid => {
                let t = _mm256_min_ps(_mm256_max_ps(_mm256_add_ps(v, three), zero), six);
                _mm256_div_ps(t, six)
            }
        };
        _mm256_storeu_ps(crow.as_mut_ptr().add(j), v);
        vmax = _mm256_max_ps(vmax, _mm256_and_ps(v, absmask));
        j += 8;
    }
    let m = _mm_max_ps(_mm256_castps256_ps128(vmax), _mm256_extractf128_ps(vmax, 1));
    let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    let m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
    let mut tmax = _mm_cvtss_f32(m);
    for jj in j..cols {
        let mut v = accrow[jj].wrapping_sub(corr) as f32 * scale;
        if let Some(b) = bias {
            v += b;
        }
        let v = act.apply(v);
        crow[jj] = v;
        tmax = tmax.max(v.abs());
    }
    tmax
}

#[inline]
fn qmicrokernel(kq: usize, ap: &[i8], bp: &[u8], acc: &mut [[i32; QNR]; QMR]) {
    debug_assert!(ap.len() >= kq * QMR * QK && bp.len() >= kq * QNR * QK);
    #[cfg(target_arch = "x86_64")]
    if int8_use_avx2() {
        // SAFETY: feature presence checked above; pointer extents checked by
        // the debug assert and guaranteed by the packed-panel layout.
        unsafe { qmk_avx2(kq, ap.as_ptr(), bp.as_ptr(), acc) };
        return;
    }
    qmk_scalar(kq, ap, bp, acc);
}

/// `c = epilogue(dequant(pa @ bq))` against a persistently packed-and-
/// quantized left operand and a `[k, n]` buffer of biased unsigned
/// activation bytes (see [`quantize_activations`]). `a_scale` is the
/// activation scale; the per-element transform is
/// `epi.apply(row, (acc - 64 * wsum[row]) * a_scale * scale_w[row])`.
///
/// Returns the absolute maximum of the written outputs (the next quantized
/// layer's absmax scan, folded into this write-back), computed per tile and
/// max-reduced — order-independent, so byte-identical for any thread count.
///
/// # Panics
///
/// Panics if slice lengths disagree with `(pa.m(), pa.k(), n)` or a bias is
/// present with length != `pa.m()`.
pub fn qgemm_prepacked(
    pa: &PackedGemmAI8,
    n: usize,
    bq: &[u8],
    a_scale: f32,
    c: &mut [f32],
    epi: &Epilogue<'_>,
) -> f32 {
    let (m, k, kq) = (pa.m, pa.k, pa.kq);
    assert_eq!(bq.len(), k * n, "bq must be k*n");
    assert_eq!(c.len(), m * n, "c must be m*n");
    if n == 0 {
        return 0.0;
    }
    let n_ic = m.div_ceil(QMC);
    let n_jc = n.div_ceil(QNC);
    let cptr = SyncPtr::new(c.as_mut_ptr());
    // Non-negative f32 max over u32 bit patterns is monotone, so fetch_max
    // on the bits computes the true maximum deterministically.
    let gmax = AtomicU32::new(0);
    parallel_tiles(n_ic * n_jc, |tile| {
        let (ic, jc) = (tile / n_jc, tile % n_jc);
        let i0 = ic * QMC;
        let j0 = jc * QNC;
        let mc = QMC.min(m - i0);
        let nc = QNC.min(n - j0);
        let npan = nc.div_ceil(QNR);
        let mut bpack = scratch::take_u8(npan * QNR * kq * QK);
        qpack_b(bq, k, n, j0, nc, kq, &mut bpack);
        let ablock = pa.block(ic);
        let mut tmax = 0.0f32;
        for jr in 0..npan {
            let bpanel = &bpack[jr * QNR * kq * QK..(jr + 1) * QNR * kq * QK];
            let cols = QNR.min(nc - jr * QNR);
            for ir in 0..mc.div_ceil(QMR) {
                let apanel = &ablock[ir * QMR * kq * QK..(ir + 1) * QMR * kq * QK];
                let rows = QMR.min(mc - ir * QMR);
                let mut acc = [[0i32; QNR]; QMR];
                qmicrokernel(kq, apanel, bpanel, &mut acc);
                for (r, accrow) in acc.iter().enumerate().take(rows) {
                    let row = i0 + ir * QMR + r;
                    let scale = a_scale * pa.scales[row];
                    let corr = INT8_ACT_ZERO_POINT * pa.wsums[row];
                    // SAFETY: this tile exclusively owns C rows i0..i0+mc x
                    // cols j0..j0+nc; tiles are disjoint.
                    let crow = unsafe {
                        let start = row * n + j0 + jr * QNR;
                        std::slice::from_raw_parts_mut(cptr.get().add(start), cols)
                    };
                    #[cfg(target_arch = "x86_64")]
                    if int8_use_avx2() {
                        // SAFETY: feature presence checked; `crow` has
                        // exactly `cols <= QNR` elements.
                        let m = unsafe {
                            qdequant_row_avx2(
                                accrow,
                                cols,
                                corr,
                                scale,
                                epi.bias_at(row),
                                epi.act(),
                                crow,
                            )
                        };
                        tmax = tmax.max(m);
                        continue;
                    }
                    for (cv, &av) in crow.iter_mut().zip(accrow) {
                        let v = epi.apply(row, av.wrapping_sub(corr) as f32 * scale);
                        *cv = v;
                        tmax = tmax.max(v.abs());
                    }
                }
            }
        }
        gmax.fetch_max(tmax.to_bits(), Ordering::Relaxed);
    });
    f32::from_bits(gmax.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::EpilogueAct;

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    /// Exact integer oracle: quantize the same way, accumulate in i64 (no
    /// saturation can fire for in-range operands), dequantize, epilogue.
    fn qref(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        bq: &[u8],
        a_scale: f32,
        epi: &Epilogue<'_>,
    ) -> Vec<f32> {
        let (q, scales) = quantize_weights_per_row(m, k, a);
        let mut c = vec![0.0f32; m * n];
        for r in 0..m {
            let wsum: i64 = q[r * k..(r + 1) * k].iter().map(|&v| v as i64).sum();
            let scale = a_scale * scales[r];
            for j in 0..n {
                let mut acc = 0i64;
                for p in 0..k {
                    acc += (bq[p * n + j] as i64) * (q[r * k + p] as i64);
                }
                let v = (acc - INT8_ACT_ZERO_POINT as i64 * wsum) as f32 * scale;
                c[r * n + j] = epi.apply(r, v);
            }
        }
        c
    }

    #[test]
    fn weight_quantization_is_per_row_symmetric() {
        let w = vec![1.0, -2.0, 0.5, /* row 1 */ 0.0, 0.0, 0.0];
        let (q, s) = quantize_weights_per_row(2, 3, &w);
        assert_eq!(q[1], -127, "row max magnitude must hit -127");
        assert!((s[0] - 2.0 / 127.0).abs() < 1e-9);
        assert_eq!(&q[3..], &[0, 0, 0], "zero row stays zero");
        assert_eq!(s[1], 1.0, "zero row gets unit scale");
    }

    #[test]
    fn activation_quantization_is_biased_7_bit() {
        let src = [0.0, 1.0, -1.0, 0.25];
        let mut dst = [0u8; 4];
        let scale = int8_act_scale(1.0);
        quantize_activations(&src, scale, &mut dst);
        assert_eq!(dst[0], 64, "zero maps to the zero point");
        assert_eq!(dst[1], 64 + 63, "absmax maps to +63");
        assert_eq!(dst[2], 64 - 63, "-absmax maps to -63");
        assert_eq!(dst[3], 64 + 16, "quarter-scale maps to +16");
    }

    #[test]
    fn activation_quantization_scalar_matches_vector() {
        // Odd length exercises the vector body plus the scalar tail.
        let src = rand_vec(1037, 23);
        let absmax = src.iter().fold(0.0f32, |x, &v| x.max(v.abs()));
        let scale = int8_act_scale(absmax);
        let mut auto = vec![0u8; src.len()];
        let mut scal = vec![0u8; src.len()];
        set_int8_force_scalar(false);
        quantize_activations(&src, scale, &mut auto);
        set_int8_force_scalar(true);
        quantize_activations(&src, scale, &mut scal);
        set_int8_force_scalar(false);
        assert_eq!(auto, scal, "vector quantization must match the scalar path byte-for-byte");
    }

    #[test]
    fn qgemm_matches_the_integer_oracle() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 9, 33), (97, 130, 101), (6, 520, 300)] {
            let a = rand_vec(m * k, 7);
            let b = rand_vec(k * n, 8);
            let absmax = b.iter().fold(0.0f32, |x, &v| x.max(v.abs()));
            let a_scale = int8_act_scale(absmax);
            let mut bq = vec![0u8; k * n];
            quantize_activations(&b, a_scale, &mut bq);
            let bias = rand_vec(m, 9);
            let epi = Epilogue::new(Some(&bias), EpilogueAct::HardSwish);
            let pa = PackedGemmAI8::pack_quantize(m, k, &a);
            assert_eq!((pa.m(), pa.k()), (m, k));
            assert!(pa.bytes() >= m * k);
            let mut c = vec![0.0f32; m * n];
            let got_max = qgemm_prepacked(&pa, n, &bq, a_scale, &mut c, &epi);
            let want = qref(m, k, n, &a, &bq, a_scale, &epi);
            assert_eq!(c, want, "({m},{k},{n}): engine must match the integer oracle");
            let want_max = want.iter().fold(0.0f32, |x, &v| x.max(v.abs()));
            assert_eq!(got_max, want_max, "({m},{k},{n}): folded absmax must be exact");
        }
    }

    #[test]
    fn scalar_and_avx2_kernels_are_bit_identical() {
        let (m, k, n) = (61, 259, 143);
        let a = rand_vec(m * k, 17);
        let b = rand_vec(k * n, 18);
        let absmax = b.iter().fold(0.0f32, |x, &v| x.max(v.abs()));
        let a_scale = int8_act_scale(absmax);
        let mut bq = vec![0u8; k * n];
        quantize_activations(&b, a_scale, &mut bq);
        let bias = rand_vec(m, 19);
        let epi = Epilogue::new(Some(&bias), EpilogueAct::Relu);
        let pa = PackedGemmAI8::pack_quantize(m, k, &a);
        let mut vect = vec![0.0f32; m * n];
        let mut scal = vec![0.0f32; m * n];
        set_int8_force_scalar(false);
        let mv = qgemm_prepacked(&pa, n, &bq, a_scale, &mut vect, &epi);
        set_int8_force_scalar(true);
        let ms = qgemm_prepacked(&pa, n, &bq, a_scale, &mut scal, &epi);
        set_int8_force_scalar(false);
        assert_eq!(vect, scal, "scalar fallback must be bit-identical to the vector path");
        assert_eq!(mv.to_bits(), ms.to_bits());
    }

    #[test]
    fn scalar_kernel_emulates_maddubs_saturation() {
        // Hand-built panels with 8-bit activations (outside what the
        // quantizer produces) force the i16 pair saturation: 255*127*2
        // saturates to 32767 per pair. The scalar kernel must clamp exactly
        // like the instruction; on AVX2 hosts this asserts cross-kernel
        // equality under saturation too.
        let kq = 1usize;
        let ap = vec![127i8; QMR * QK];
        let bp = vec![255u8; QNR * QK];
        let mut acc = [[0i32; QNR]; QMR];
        qmk_scalar(kq, &ap, &bp, &mut acc);
        assert!(acc.iter().all(|row| row.iter().all(|&v| v == 2 * 32767)));
        #[cfg(target_arch = "x86_64")]
        if std::is_x86_feature_detected!("avx2") {
            let mut vacc = [[0i32; QNR]; QMR];
            // SAFETY: AVX2 presence checked; slices sized above.
            unsafe { qmk_avx2(kq, ap.as_ptr(), bp.as_ptr(), &mut vacc) };
            assert_eq!(acc, vacc, "saturation semantics must match the instruction");
        }
    }

    #[test]
    fn qgemm_is_thread_count_invariant() {
        let (m, k, n) = (150, 96, 333);
        let a = rand_vec(m * k, 41);
        let b = rand_vec(k * n, 42);
        let absmax = b.iter().fold(0.0f32, |x, &v| x.max(v.abs()));
        let a_scale = int8_act_scale(absmax);
        let mut bq = vec![0u8; k * n];
        quantize_activations(&b, a_scale, &mut bq);
        let epi = Epilogue::new(None, EpilogueAct::None);
        let pa = PackedGemmAI8::pack_quantize(m, k, &a);
        let mut c1 = vec![0.0f32; m * n];
        let mut c8 = vec![0.0f32; m * n];
        crate::par::set_max_threads(1);
        let m1 = qgemm_prepacked(&pa, n, &bq, a_scale, &mut c1, &epi);
        crate::par::set_max_threads(8);
        let m8 = qgemm_prepacked(&pa, n, &bq, a_scale, &mut c8, &epi);
        crate::par::set_max_threads(0);
        assert_eq!(c1, c8);
        assert_eq!(m1.to_bits(), m8.to_bits());
    }

    #[test]
    fn quantization_error_is_within_one_step_per_operand() {
        // End-to-end dequantized output vs the f32 product: for unit-scale
        // random operands the error per output is bounded by the combined
        // quantization steps times the L1 mass of the row; check a safe
        // multiple rather than a tight bound.
        let (m, k, n) = (24, 64, 40);
        let a = rand_vec(m * k, 51);
        let b = rand_vec(k * n, 52);
        let absmax = b.iter().fold(0.0f32, |x, &v| x.max(v.abs()));
        let a_scale = int8_act_scale(absmax);
        let mut bq = vec![0u8; k * n];
        quantize_activations(&b, a_scale, &mut bq);
        let epi = Epilogue::new(None, EpilogueAct::None);
        let pa = PackedGemmAI8::pack_quantize(m, k, &a);
        let mut c = vec![0.0f32; m * n];
        qgemm_prepacked(&pa, n, &bq, a_scale, &mut c, &epi);
        let mut exact = vec![0.0f32; m * n];
        crate::matmul::reference::sgemm(m, k, n, 1.0, &a, &b, 0.0, &mut exact);
        for r in 0..m {
            let w_l1: f32 = a[r * k..(r + 1) * k].iter().map(|v| v.abs()).sum();
            let w_max = a[r * k..(r + 1) * k].iter().fold(0.0f32, |x, &v| x.max(v.abs()));
            // Half-step errors: activations a_scale/2 against |w| mass,
            // weights scale_w/2 against quantized |b| mass (<= absmax * k).
            let bound = 0.5 * a_scale * w_l1 + 0.5 * (w_max / 127.0) * absmax * k as f32 + 1e-5;
            for j in 0..n {
                let d = (c[r * n + j] - exact[r * n + j]).abs();
                assert!(d <= bound, "({r},{j}): err {d} exceeds bound {bound}");
            }
        }
    }
}
