//! Spatial resizing: bilinear and nearest-neighbour upsampling with exact
//! adjoints. RevBiFPN upsamples features by powers of two inside RevSilos
//! ("lu" = bilinear; the HRNet-style "su" ablation uses nearest mode).
//!
//! Per-axis interpolation weights are precomputed once, then the work is
//! parallelised over `(n, c)` planes with [`crate::par::parallel_tiles`].
//! Each tile reads one input plane and writes one disjoint output plane, so
//! results are bitwise identical for any thread count.

use crate::par::{parallel_tiles, SyncPtr};
use crate::shape::{Shape, ShapeError};
use crate::tensor::Tensor;

/// Interpolation mode for [`resize`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResizeMode {
    /// Bilinear interpolation, half-pixel centres (`align_corners=false`).
    Bilinear,
    /// Nearest neighbour.
    Nearest,
}

#[inline]
fn src_coord(dst: usize, scale: f64) -> f64 {
    // Half-pixel-centre convention (PyTorch align_corners=False).
    (dst as f64 + 0.5) * scale - 0.5
}

/// Nearest-neighbour source index per output index along one axis.
fn nearest_axis(out_len: usize, scale: f64, in_len: usize) -> Vec<usize> {
    (0..out_len).map(|o| ((o as f64 * scale).floor() as usize).min(in_len - 1)).collect()
}

/// Bilinear `(lo, hi, frac)` per output index along one axis.
fn bilinear_axis(out_len: usize, scale: f64, in_len: usize) -> Vec<(usize, usize, f32)> {
    (0..out_len)
        .map(|o| {
            let f = src_coord(o, scale).clamp(0.0, (in_len - 1) as f64);
            let lo = f.floor() as usize;
            let hi = (lo + 1).min(in_len - 1);
            (lo, hi, (f - lo as f64) as f32)
        })
        .collect()
}

/// Resizes `x` to spatial size `(oh, ow)`.
///
/// # Panics
///
/// Panics if `oh == 0 || ow == 0`. Untrusted-input paths should prefer
/// [`try_resize`], which reports the same violation as a [`ShapeError`].
pub fn resize(x: &Tensor, oh: usize, ow: usize, mode: ResizeMode) -> Tensor {
    try_resize(x, oh, ow, mode).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`resize`]: returns [`ShapeError::ZeroOutputSize`] instead of
/// panicking when the requested output has a zero extent.
///
/// # Errors
///
/// Returns an error if `oh == 0 || ow == 0`.
pub fn try_resize(x: &Tensor, oh: usize, ow: usize, mode: ResizeMode) -> Result<Tensor, ShapeError> {
    if oh == 0 || ow == 0 {
        return Err(ShapeError::ZeroOutputSize { oh, ow });
    }
    let xs = x.shape();
    if (oh, ow) == (xs.h, xs.w) {
        return Ok(x.clone());
    }
    let os = xs.with_hw(oh, ow);
    let mut out = Tensor::zeros(os);
    let sy = xs.h as f64 / oh as f64;
    let sx = xs.w as f64 / ow as f64;
    let ihw = xs.hw();
    let ohw = oh * ow;
    let xd = x.data();
    let optr = SyncPtr::new(out.data_mut().as_mut_ptr());
    match mode {
        ResizeMode::Nearest => {
            let iy = nearest_axis(oh, sy, xs.h);
            let ix = nearest_axis(ow, sx, xs.w);
            parallel_tiles(xs.n * xs.c, |p| {
                let xplane = &xd[p * ihw..(p + 1) * ihw];
                // SAFETY: tile `p` owns the disjoint output plane `p`.
                let oplane = unsafe { std::slice::from_raw_parts_mut(optr.get().add(p * ohw), ohw) };
                for oy in 0..oh {
                    let row = iy[oy] * xs.w;
                    for ox in 0..ow {
                        oplane[oy * ow + ox] = xplane[row + ix[ox]];
                    }
                }
            });
        }
        ResizeMode::Bilinear => {
            let wy = bilinear_axis(oh, sy, xs.h);
            let wx = bilinear_axis(ow, sx, xs.w);
            parallel_tiles(xs.n * xs.c, |p| {
                let xplane = &xd[p * ihw..(p + 1) * ihw];
                // SAFETY: tile `p` owns the disjoint output plane `p`.
                let oplane = unsafe { std::slice::from_raw_parts_mut(optr.get().add(p * ohw), ohw) };
                for (oy, &(y0, y1, ty)) in wy.iter().enumerate() {
                    let (r0, r1) = (y0 * xs.w, y1 * xs.w);
                    for (ox, &(x0, x1, tx)) in wx.iter().enumerate() {
                        let v00 = xplane[r0 + x0];
                        let v01 = xplane[r0 + x1];
                        let v10 = xplane[r1 + x0];
                        let v11 = xplane[r1 + x1];
                        let top = v00 + tx * (v01 - v00);
                        let bot = v10 + tx * (v11 - v10);
                        oplane[oy * ow + ox] = top + ty * (bot - top);
                    }
                }
            });
        }
    }
    Ok(out)
}

/// Adjoint of [`resize`]: scatters output gradients back to input positions.
///
/// `in_shape` is the shape of the original (pre-resize) input.
///
/// # Panics
///
/// Panics if `dy`'s batch/channel dims disagree with `in_shape`. See
/// [`try_resize_backward`] for the fallible variant.
pub fn resize_backward(dy: &Tensor, in_shape: Shape, mode: ResizeMode) -> Tensor {
    try_resize_backward(dy, in_shape, mode).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`resize_backward`].
///
/// # Errors
///
/// Returns [`ShapeError::DimMismatch`] if `dy`'s batch/channel dims disagree
/// with `in_shape`.
pub fn try_resize_backward(dy: &Tensor, in_shape: Shape, mode: ResizeMode) -> Result<Tensor, ShapeError> {
    let os = dy.shape();
    if (os.n, os.c) != (in_shape.n, in_shape.c) {
        return Err(ShapeError::DimMismatch {
            what: "resize_backward batch/channel dims",
            expected: in_shape,
            got: os,
        });
    }
    if (os.h, os.w) == (in_shape.h, in_shape.w) {
        return Ok(dy.clone());
    }
    let mut dx = Tensor::zeros(in_shape);
    let sy = in_shape.h as f64 / os.h as f64;
    let sx = in_shape.w as f64 / os.w as f64;
    let ihw = in_shape.hw();
    let ohw = os.hw();
    let dyd = dy.data();
    let dxptr = SyncPtr::new(dx.data_mut().as_mut_ptr());
    match mode {
        ResizeMode::Nearest => {
            let iy = nearest_axis(os.h, sy, in_shape.h);
            let ix = nearest_axis(os.w, sx, in_shape.w);
            parallel_tiles(os.n * os.c, |p| {
                let dyplane = &dyd[p * ohw..(p + 1) * ohw];
                // SAFETY: tile `p` owns the disjoint input-gradient plane `p`.
                let dxplane = unsafe { std::slice::from_raw_parts_mut(dxptr.get().add(p * ihw), ihw) };
                for oy in 0..os.h {
                    let row = iy[oy] * in_shape.w;
                    for ox in 0..os.w {
                        dxplane[row + ix[ox]] += dyplane[oy * os.w + ox];
                    }
                }
            });
        }
        ResizeMode::Bilinear => {
            let wy = bilinear_axis(os.h, sy, in_shape.h);
            let wx = bilinear_axis(os.w, sx, in_shape.w);
            parallel_tiles(os.n * os.c, |p| {
                let dyplane = &dyd[p * ohw..(p + 1) * ohw];
                // SAFETY: tile `p` owns the disjoint input-gradient plane `p`.
                let dxplane = unsafe { std::slice::from_raw_parts_mut(dxptr.get().add(p * ihw), ihw) };
                for (oy, &(y0, y1, ty)) in wy.iter().enumerate() {
                    let (r0, r1) = (y0 * in_shape.w, y1 * in_shape.w);
                    for (ox, &(x0, x1, tx)) in wx.iter().enumerate() {
                        let g = dyplane[oy * os.w + ox];
                        dxplane[r0 + x0] += g * (1.0 - ty) * (1.0 - tx);
                        dxplane[r0 + x1] += g * (1.0 - ty) * tx;
                        dxplane[r1 + x0] += g * ty * (1.0 - tx);
                        dxplane[r1 + x1] += g * ty * tx;
                    }
                }
            });
        }
    }
    Ok(dx)
}

/// Upsamples by an integer factor.
pub fn upsample(x: &Tensor, factor: usize, mode: ResizeMode) -> Tensor {
    let xs = x.shape();
    resize(x, xs.h * factor, xs.w * factor, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nearest_2x_repeats_pixels() {
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = upsample(&x, 2, ResizeMode::Nearest);
        assert_eq!(y.shape(), Shape::new(1, 1, 4, 4));
        assert_eq!(y.at(0, 0, 0, 0), 1.0);
        assert_eq!(y.at(0, 0, 0, 1), 1.0);
        assert_eq!(y.at(0, 0, 1, 1), 1.0);
        assert_eq!(y.at(0, 0, 3, 3), 4.0);
    }

    #[test]
    fn bilinear_preserves_constants() {
        let x = Tensor::full(Shape::new(1, 2, 3, 3), 7.5);
        let y = upsample(&x, 2, ResizeMode::Bilinear);
        assert!(y.data().iter().all(|&v| (v - 7.5).abs() < 1e-6));
    }

    #[test]
    fn bilinear_2x_interpolates_midpoints() {
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 2), vec![0.0, 4.0]).unwrap();
        let y = resize(&x, 1, 4, ResizeMode::Bilinear);
        // Half-pixel centres: coords map to -0.25, 0.25, 0.75, 1.25 -> clamped
        assert!((y.at(0, 0, 0, 0) - 0.0).abs() < 1e-6);
        assert!((y.at(0, 0, 0, 1) - 1.0).abs() < 1e-6);
        assert!((y.at(0, 0, 0, 2) - 3.0).abs() < 1e-6);
        assert!((y.at(0, 0, 0, 3) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn identity_resize_is_clone() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(1, 2, 4, 4), 1.0, &mut rng);
        let y = resize(&x, 4, 4, ResizeMode::Bilinear);
        assert_eq!(x, y);
    }

    /// The adjoint property <resize(x), m> == <x, resize_backward(m)> must
    /// hold exactly for a linear operator.
    #[test]
    fn adjoint_property_bilinear() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(Shape::new(2, 3, 5, 4), 1.0, &mut rng);
        let m = Tensor::randn(Shape::new(2, 3, 10, 8), 1.0, &mut rng);
        let y = resize(&x, 10, 8, ResizeMode::Bilinear);
        let lhs = (&y * &m).sum();
        let dx = resize_backward(&m, x.shape(), ResizeMode::Bilinear);
        let rhs = (&x * &dx).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn adjoint_property_nearest() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(Shape::new(1, 2, 3, 3), 1.0, &mut rng);
        let m = Tensor::randn(Shape::new(1, 2, 6, 6), 1.0, &mut rng);
        let y = upsample(&x, 2, ResizeMode::Nearest);
        let lhs = (&y * &m).sum();
        let dx = resize_backward(&m, x.shape(), ResizeMode::Nearest);
        let rhs = (&x * &dx).sum();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn gradient_mass_is_preserved() {
        // Sum of dx equals sum of dy for bilinear (partition of unity).
        let dy = Tensor::ones(Shape::new(1, 1, 8, 8));
        let dx = resize_backward(&dy, Shape::new(1, 1, 4, 4), ResizeMode::Bilinear);
        assert!((dx.sum() - 64.0).abs() < 1e-3);
    }

    #[test]
    fn try_resize_rejects_zero_output() {
        let x = Tensor::ones(Shape::new(1, 1, 4, 4));
        assert_eq!(
            try_resize(&x, 0, 4, ResizeMode::Bilinear),
            Err(ShapeError::ZeroOutputSize { oh: 0, ow: 4 })
        );
        assert_eq!(
            try_resize(&x, 2, 0, ResizeMode::Nearest),
            Err(ShapeError::ZeroOutputSize { oh: 2, ow: 0 })
        );
        assert!(try_resize(&x, 2, 2, ResizeMode::Bilinear).is_ok());
    }

    #[test]
    fn try_resize_backward_rejects_dim_mismatch() {
        let dy = Tensor::ones(Shape::new(1, 2, 4, 4));
        let err = try_resize_backward(&dy, Shape::new(1, 3, 2, 2), ResizeMode::Bilinear);
        assert!(matches!(err, Err(ShapeError::DimMismatch { .. })));
    }

    #[test]
    fn resize_is_thread_count_invariant() {
        let _g = crate::par::tests_budget_lock();
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(Shape::new(2, 5, 7, 9), 1.0, &mut rng);
        let dy = Tensor::randn(Shape::new(2, 5, 14, 18), 1.0, &mut rng);

        crate::par::set_max_threads(1);
        let y1 = resize(&x, 14, 18, ResizeMode::Bilinear);
        let b1 = resize_backward(&dy, x.shape(), ResizeMode::Bilinear);

        crate::par::set_max_threads(6);
        let y6 = resize(&x, 14, 18, ResizeMode::Bilinear);
        let b6 = resize_backward(&dy, x.shape(), ResizeMode::Bilinear);
        crate::par::set_max_threads(0);

        assert_eq!(y1, y6);
        assert_eq!(b1, b6);
    }
}
