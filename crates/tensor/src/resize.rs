//! Spatial resizing: bilinear and nearest-neighbour upsampling with exact
//! adjoints. RevBiFPN upsamples features by powers of two inside RevSilos
//! ("lu" = bilinear; the HRNet-style "su" ablation uses nearest mode).

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Interpolation mode for [`resize`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResizeMode {
    /// Bilinear interpolation, half-pixel centres (`align_corners=false`).
    Bilinear,
    /// Nearest neighbour.
    Nearest,
}

#[inline]
fn src_coord(dst: usize, scale: f64) -> f64 {
    // Half-pixel-centre convention (PyTorch align_corners=False).
    (dst as f64 + 0.5) * scale - 0.5
}

/// Resizes `x` to spatial size `(oh, ow)`.
///
/// # Panics
///
/// Panics if `oh == 0 || ow == 0`.
pub fn resize(x: &Tensor, oh: usize, ow: usize, mode: ResizeMode) -> Tensor {
    assert!(oh > 0 && ow > 0, "output size must be positive");
    let xs = x.shape();
    if (oh, ow) == (xs.h, xs.w) {
        return x.clone();
    }
    let os = xs.with_hw(oh, ow);
    let mut out = Tensor::zeros(os);
    let sy = xs.h as f64 / oh as f64;
    let sx = xs.w as f64 / ow as f64;
    match mode {
        ResizeMode::Nearest => {
            for n in 0..xs.n {
                for c in 0..xs.c {
                    for oy in 0..oh {
                        let iy = ((oy as f64 * sy).floor() as usize).min(xs.h - 1);
                        for ox in 0..ow {
                            let ix = ((ox as f64 * sx).floor() as usize).min(xs.w - 1);
                            out.set(n, c, oy, ox, x.at(n, c, iy, ix));
                        }
                    }
                }
            }
        }
        ResizeMode::Bilinear => {
            // Precompute per-axis interpolation weights.
            let wy: Vec<(usize, usize, f32)> = (0..oh)
                .map(|oy| {
                    let f = src_coord(oy, sy).clamp(0.0, (xs.h - 1) as f64);
                    let y0 = f.floor() as usize;
                    let y1 = (y0 + 1).min(xs.h - 1);
                    (y0, y1, (f - y0 as f64) as f32)
                })
                .collect();
            let wx: Vec<(usize, usize, f32)> = (0..ow)
                .map(|ox| {
                    let f = src_coord(ox, sx).clamp(0.0, (xs.w - 1) as f64);
                    let x0 = f.floor() as usize;
                    let x1 = (x0 + 1).min(xs.w - 1);
                    (x0, x1, (f - x0 as f64) as f32)
                })
                .collect();
            for n in 0..xs.n {
                for c in 0..xs.c {
                    for (oy, &(y0, y1, ty)) in wy.iter().enumerate() {
                        for (ox, &(x0, x1, tx)) in wx.iter().enumerate() {
                            let v00 = x.at(n, c, y0, x0);
                            let v01 = x.at(n, c, y0, x1);
                            let v10 = x.at(n, c, y1, x0);
                            let v11 = x.at(n, c, y1, x1);
                            let top = v00 + tx * (v01 - v00);
                            let bot = v10 + tx * (v11 - v10);
                            out.set(n, c, oy, ox, top + ty * (bot - top));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Adjoint of [`resize`]: scatters output gradients back to input positions.
///
/// `in_shape` is the shape of the original (pre-resize) input.
///
/// # Panics
///
/// Panics if `dy`'s batch/channel dims disagree with `in_shape`.
pub fn resize_backward(dy: &Tensor, in_shape: Shape, mode: ResizeMode) -> Tensor {
    let os = dy.shape();
    assert_eq!((os.n, os.c), (in_shape.n, in_shape.c), "resize_backward dims mismatch");
    if (os.h, os.w) == (in_shape.h, in_shape.w) {
        return dy.clone();
    }
    let mut dx = Tensor::zeros(in_shape);
    let sy = in_shape.h as f64 / os.h as f64;
    let sx = in_shape.w as f64 / os.w as f64;
    match mode {
        ResizeMode::Nearest => {
            for n in 0..os.n {
                for c in 0..os.c {
                    for oy in 0..os.h {
                        let iy = ((oy as f64 * sy).floor() as usize).min(in_shape.h - 1);
                        for ox in 0..os.w {
                            let ix = ((ox as f64 * sx).floor() as usize).min(in_shape.w - 1);
                            let v = dx.at(n, c, iy, ix) + dy.at(n, c, oy, ox);
                            dx.set(n, c, iy, ix, v);
                        }
                    }
                }
            }
        }
        ResizeMode::Bilinear => {
            for n in 0..os.n {
                for c in 0..os.c {
                    for oy in 0..os.h {
                        let fy = src_coord(oy, sy).clamp(0.0, (in_shape.h - 1) as f64);
                        let y0 = fy.floor() as usize;
                        let y1 = (y0 + 1).min(in_shape.h - 1);
                        let ty = (fy - y0 as f64) as f32;
                        for ox in 0..os.w {
                            let fx = src_coord(ox, sx).clamp(0.0, (in_shape.w - 1) as f64);
                            let x0 = fx.floor() as usize;
                            let x1 = (x0 + 1).min(in_shape.w - 1);
                            let tx = (fx - x0 as f64) as f32;
                            let g = dy.at(n, c, oy, ox);
                            let add = |t: &mut Tensor, yy: usize, xx: usize, v: f32| {
                                let cur = t.at(n, c, yy, xx);
                                t.set(n, c, yy, xx, cur + v);
                            };
                            add(&mut dx, y0, x0, g * (1.0 - ty) * (1.0 - tx));
                            add(&mut dx, y0, x1, g * (1.0 - ty) * tx);
                            add(&mut dx, y1, x0, g * ty * (1.0 - tx));
                            add(&mut dx, y1, x1, g * ty * tx);
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Upsamples by an integer factor.
pub fn upsample(x: &Tensor, factor: usize, mode: ResizeMode) -> Tensor {
    let xs = x.shape();
    resize(x, xs.h * factor, xs.w * factor, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nearest_2x_repeats_pixels() {
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = upsample(&x, 2, ResizeMode::Nearest);
        assert_eq!(y.shape(), Shape::new(1, 1, 4, 4));
        assert_eq!(y.at(0, 0, 0, 0), 1.0);
        assert_eq!(y.at(0, 0, 0, 1), 1.0);
        assert_eq!(y.at(0, 0, 1, 1), 1.0);
        assert_eq!(y.at(0, 0, 3, 3), 4.0);
    }

    #[test]
    fn bilinear_preserves_constants() {
        let x = Tensor::full(Shape::new(1, 2, 3, 3), 7.5);
        let y = upsample(&x, 2, ResizeMode::Bilinear);
        assert!(y.data().iter().all(|&v| (v - 7.5).abs() < 1e-6));
    }

    #[test]
    fn bilinear_2x_interpolates_midpoints() {
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 2), vec![0.0, 4.0]).unwrap();
        let y = resize(&x, 1, 4, ResizeMode::Bilinear);
        // Half-pixel centres: coords map to -0.25, 0.25, 0.75, 1.25 -> clamped
        assert!((y.at(0, 0, 0, 0) - 0.0).abs() < 1e-6);
        assert!((y.at(0, 0, 0, 1) - 1.0).abs() < 1e-6);
        assert!((y.at(0, 0, 0, 2) - 3.0).abs() < 1e-6);
        assert!((y.at(0, 0, 0, 3) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn identity_resize_is_clone() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(1, 2, 4, 4), 1.0, &mut rng);
        let y = resize(&x, 4, 4, ResizeMode::Bilinear);
        assert_eq!(x, y);
    }

    /// The adjoint property <resize(x), m> == <x, resize_backward(m)> must
    /// hold exactly for a linear operator.
    #[test]
    fn adjoint_property_bilinear() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(Shape::new(2, 3, 5, 4), 1.0, &mut rng);
        let m = Tensor::randn(Shape::new(2, 3, 10, 8), 1.0, &mut rng);
        let y = resize(&x, 10, 8, ResizeMode::Bilinear);
        let lhs = (&y * &m).sum();
        let dx = resize_backward(&m, x.shape(), ResizeMode::Bilinear);
        let rhs = (&x * &dx).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn adjoint_property_nearest() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(Shape::new(1, 2, 3, 3), 1.0, &mut rng);
        let m = Tensor::randn(Shape::new(1, 2, 6, 6), 1.0, &mut rng);
        let y = upsample(&x, 2, ResizeMode::Nearest);
        let lhs = (&y * &m).sum();
        let dx = resize_backward(&m, x.shape(), ResizeMode::Nearest);
        let rhs = (&x * &dx).sum();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn gradient_mass_is_preserved() {
        // Sum of dx equals sum of dy for bilinear (partition of unity).
        let dy = Tensor::ones(Shape::new(1, 1, 8, 8));
        let dx = resize_backward(&dy, Shape::new(1, 1, 4, 4), ResizeMode::Bilinear);
        assert!((dx.sum() - 64.0).abs() < 1e-3);
    }
}
