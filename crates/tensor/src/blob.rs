//! Shared immutable byte buffers: heap-owned or memory-mapped from a file.
//!
//! [`SharedBytes`] is the storage substrate of the zero-copy frozen-model
//! artifact path: an `Arc`-shared, read-only byte region that is either an
//! owned heap buffer (the copy-load fallback, and the in-memory path) or a
//! file mapping established with raw `mmap(2)`/`munmap(2)` syscalls — the
//! workspace deliberately has no libc binding, so the mapping is issued
//! directly on x86_64 Linux and every other target transparently falls back
//! to copy-loading.
//!
//! Packed GEMM panels ([`crate::PackedGemmA`], [`crate::PackedGemmAI8`])
//! can borrow sub-ranges of a `SharedBytes` directly (see [`Panel`]), so a
//! frozen model deserialized from a mapped artifact references the page
//! cache instead of copying tens of megabytes of weight panels — that is
//! what makes millisecond cold-starts possible.

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::Arc;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! Raw read-only file mappings via direct x86_64 Linux syscalls.

    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    const SYS_MMAP: isize = 9;
    const SYS_MUNMAP: isize = 11;
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// An established read-only private mapping. Unmapped on drop.
    #[derive(Debug)]
    pub(super) struct Map {
        ptr: *const u8,
        len: usize,
    }

    // The mapping is read-only and its address/length never change after
    // construction, so shared references from any thread are sound.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        pub(super) fn ptr(&self) -> *const u8 {
            self.ptr
        }

        pub(super) fn len(&self) -> usize {
            self.len
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // Nothing useful can be done on munmap failure; the region is
            // leaked rather than risking a double-unmap.
            unsafe {
                let _ = syscall6(SYS_MUNMAP, self.ptr as usize, self.len, 0, 0, 0, 0);
            }
        }
    }

    #[inline]
    unsafe fn syscall6(nr: isize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize, a6: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    /// Maps the first `len` bytes of `file` read-only. `len` must be
    /// non-zero (a zero-length mmap is EINVAL by contract).
    pub(super) fn map_readonly(file: &File, len: usize) -> io::Result<Map> {
        debug_assert!(len > 0);
        let fd = file.as_raw_fd();
        let ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) };
        if (-4095..0).contains(&ret) {
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(Map { ptr: ret as *const u8, len })
    }
}

#[derive(Debug)]
enum Inner {
    Owned(Vec<u8>),
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped(sys::Map),
}

/// An immutable, cheaply clonable (`Arc`-shared) byte buffer that is either
/// heap-owned or a read-only file mapping. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct SharedBytes {
    inner: Arc<Inner>,
}

impl SharedBytes {
    /// Wraps an owned heap buffer.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Self { inner: Arc::new(Inner::Owned(v)) }
    }

    /// Copy-loads a whole file into an owned buffer.
    pub fn read_file(path: &Path) -> io::Result<Self> {
        Ok(Self::from_vec(std::fs::read(path)?))
    }

    /// Whether this build can memory-map files at all.
    pub fn mmap_supported() -> bool {
        cfg!(all(target_os = "linux", target_arch = "x86_64"))
    }

    /// Memory-maps a whole file read-only.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::Unsupported`] on targets without the raw-syscall
    /// mapping path; otherwise whatever `open(2)`/`mmap(2)` report. An empty
    /// file loads as an empty owned buffer (zero-length mappings are
    /// invalid).
    pub fn map_file(path: &Path) -> io::Result<Self> {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Ok(Self::from_vec(Vec::new()));
            }
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
            let map = sys::map_readonly(&file, len)?;
            Ok(Self { inner: Arc::new(Inner::Mapped(map)) })
        }
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        {
            let _ = File::open(path)?;
            Err(io::Error::new(io::ErrorKind::Unsupported, "mmap unavailable on this target"))
        }
    }

    /// Loads a file, preferring mmap when asked for and available; returns
    /// the buffer and whether it is actually a mapping. A failed mapping
    /// attempt (unsupported target, exotic filesystem) falls back to
    /// copy-loading rather than erroring.
    pub fn load(path: &Path, prefer_map: bool) -> io::Result<(Self, bool)> {
        if prefer_map {
            match Self::map_file(path) {
                Ok(b) => {
                    let mapped = b.is_mapped();
                    return Ok((b, mapped));
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(e),
                Err(_) => {}
            }
        }
        Ok((Self::read_file(path)?, false))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        match &*self.inner {
            Inner::Owned(v) => v.len(),
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Inner::Mapped(m) => m.len(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Base pointer of the region.
    pub fn as_ptr(&self) -> *const u8 {
        match &*self.inner {
            Inner::Owned(v) => v.as_ptr(),
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Inner::Mapped(m) => m.ptr(),
        }
    }

    /// The whole buffer as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        match &*self.inner {
            Inner::Owned(v) => v,
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Inner::Mapped(m) => unsafe { std::slice::from_raw_parts(m.ptr(), m.len()) },
        }
    }

    /// Whether the buffer is a file mapping (as opposed to owned heap).
    pub fn is_mapped(&self) -> bool {
        match &*self.inner {
            Inner::Owned(_) => false,
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Inner::Mapped(_) => true,
        }
    }
}

/// Backing storage of a packed GEMM panel image: an owned vector or a
/// typed view into a [`SharedBytes`] range (validated for bounds and
/// alignment at construction).
///
/// `T` must be a plain-old-data element type for which every bit pattern is
/// a valid value (`f32`, `i8`) — the shared arm reinterprets raw bytes.
#[derive(Clone, Debug)]
pub(crate) enum Panel<T> {
    /// Heap-owned elements (the pack-at-freeze path).
    Owned(Vec<T>),
    /// A borrowed range of a shared buffer (the zero-copy artifact path).
    Shared {
        /// The owning buffer, kept alive for as long as this panel exists.
        bytes: SharedBytes,
        /// Byte offset of the first element.
        offset: usize,
        /// Element count.
        len: usize,
    },
}

impl<T: Copy> Panel<T> {
    /// A view of `len` elements at byte `offset` of `bytes`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-bounds ranges and offsets misaligned for `T`.
    pub(crate) fn from_shared(bytes: SharedBytes, offset: usize, len: usize) -> Result<Self, &'static str> {
        let elem = std::mem::size_of::<T>();
        let span = len.checked_mul(elem).ok_or("panel length overflows")?;
        let end = offset.checked_add(span).ok_or("panel range overflows")?;
        if end > bytes.len() {
            return Err("panel range exceeds the shared buffer");
        }
        if !(bytes.as_ptr() as usize + offset).is_multiple_of(std::mem::align_of::<T>()) {
            return Err("panel offset misaligned for the element type");
        }
        Ok(Self::Shared { bytes, offset, len })
    }

    /// The elements.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[T] {
        match self {
            Panel::Owned(v) => v,
            Panel::Shared { bytes, offset, len } => unsafe {
                // Bounds and alignment were validated by `from_shared`, and
                // the buffer is immutable and kept alive by `bytes`.
                std::slice::from_raw_parts(bytes.as_ptr().add(*offset).cast::<T>(), *len)
            },
        }
    }

    /// Element count.
    pub(crate) fn len(&self) -> usize {
        match self {
            Panel::Owned(v) => v.len(),
            Panel::Shared { len, .. } => *len,
        }
    }

    /// Whether the panel borrows a shared buffer.
    pub(crate) fn is_shared(&self) -> bool {
        matches!(self, Panel::Shared { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_roundtrip() {
        let b = SharedBytes::from_vec(vec![1, 2, 3, 4]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert!(!b.is_mapped());
        let c = b.clone();
        assert_eq!(c.as_ptr(), b.as_ptr(), "clones share the allocation");
    }

    #[test]
    fn map_file_matches_read_file() {
        let dir = std::env::temp_dir().join(format!("revbifpn_blob_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map_test.bin");
        let payload: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();

        let copied = SharedBytes::read_file(&path).unwrap();
        assert_eq!(copied.as_slice(), &payload[..]);

        if SharedBytes::mmap_supported() {
            let mapped = SharedBytes::map_file(&path).unwrap();
            assert!(mapped.is_mapped());
            assert_eq!(mapped.as_slice(), &payload[..]);
            // Mappings are page-aligned, which is stronger than any element
            // alignment the panels require.
            assert_eq!(mapped.as_ptr() as usize % 4096, 0);
        }

        let (loaded, mapped) = SharedBytes::load(&path, true).unwrap();
        assert_eq!(loaded.as_slice(), &payload[..]);
        assert_eq!(mapped, SharedBytes::mmap_supported());
        let (loaded, mapped) = SharedBytes::load(&path, false).unwrap();
        assert!(!mapped);
        assert_eq!(loaded.as_slice(), &payload[..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_as_owned_empty() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("revbifpn_blob_empty_{}", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        if SharedBytes::mmap_supported() {
            let b = SharedBytes::map_file(&path).unwrap();
            assert!(b.is_empty());
            assert!(!b.is_mapped());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn panel_validates_bounds_and_alignment() {
        let b = SharedBytes::from_vec(vec![0u8; 64]);
        let align = b.as_ptr() as usize % 4;
        let ok_off = (4 - align) % 4;
        assert!(Panel::<f32>::from_shared(b.clone(), ok_off, 8).is_ok());
        assert!(Panel::<f32>::from_shared(b.clone(), ok_off, 17).is_err(), "past the end");
        assert!(Panel::<f32>::from_shared(b.clone(), ok_off + 1, 4).is_err(), "misaligned");
        assert!(Panel::<i8>::from_shared(b.clone(), 63, 1).is_ok());
        assert!(Panel::<i8>::from_shared(b, 63, 2).is_err());
    }

    #[test]
    fn shared_panel_reads_through() {
        let mut raw = vec![0u8; 4 + 12];
        let vals = [1.5f32, -2.0, 3.25];
        for (i, v) in vals.iter().enumerate() {
            raw[4 + i * 4..4 + i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        let b = SharedBytes::from_vec(raw);
        let off = if (b.as_ptr() as usize + 4).is_multiple_of(4) { 4 } else { 0 };
        // Vec<u8> allocations are at least word-aligned in practice; offset 4
        // keeps f32 alignment.
        let p = Panel::<f32>::from_shared(b, off, 3).unwrap();
        if off == 4 {
            assert_eq!(p.as_slice(), &vals[..]);
        }
        assert!(p.is_shared());
        assert_eq!(p.len(), 3);
    }
}
