//! The dense `f32` NCHW tensor and its element-wise operations.

use crate::par::{parallel_chunks, parallel_tiles, SyncPtr};
use crate::shape::{Shape, ShapeMismatchError};
use rand::{Rng, RngExt};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense, contiguous, row-major `f32` tensor in NCHW layout.
///
/// All arithmetic is eager and CPU-based. Binary operations require exactly
/// matching shapes (there is no broadcasting; per-channel operations are
/// provided explicitly, e.g. [`Tensor::add_channel_bias`]).
///
/// ```
/// use revbifpn_tensor::{Shape, Tensor};
/// let a = Tensor::full(Shape::new(1, 2, 2, 2), 1.5);
/// let b = Tensor::ones(a.shape());
/// let c = &a + &b;
/// assert_eq!(c.data()[0], 2.5);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

/// Minimum element count before the element-wise kernels (`map`, `zip`,
/// `axpy`, ...) fan out over the worker pool; below this the dispatch
/// overhead outweighs the work. Chunking never changes values — every
/// element depends only on its own inputs — so the threshold affects speed,
/// not results.
const PAR_ELEMWISE_MIN: usize = 1 << 15;

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(shape: Shape) -> Self {
        Self { shape, data: vec![0.0; shape.numel()] }
    }

    /// A tensor of ones.
    pub fn ones(shape: Shape) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        Self { shape, data: vec![value; shape.numel()] }
    }

    /// Builds a tensor from raw data.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeMismatchError`] if `data.len() != shape.numel()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, ShapeMismatchError> {
        if data.len() != shape.numel() {
            return Err(ShapeMismatchError {
                expected: format!("{} elements", shape.numel()),
                got: Shape::new(1, 1, 1, data.len()),
            });
        }
        Ok(Self { shape, data })
    }

    /// Builds a tensor from raw data, panicking on length mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec_unchecked(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), shape.numel(), "tensor data length must match shape {shape}");
        Self { shape, data }
    }

    /// Samples each element i.i.d. from `N(0, std^2)` (Box–Muller).
    pub fn randn<R: Rng + ?Sized>(shape: Shape, std: f32, rng: &mut R) -> Self {
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            // Box–Muller transform: two uniforms -> two gaussians.
            let u1: f32 = rng.random::<f32>().max(1e-12);
            let u2: f32 = rng.random();
            let r = (-2.0 * u1.ln()).sqrt();
            let t = 2.0 * std::f32::consts::PI * u2;
            data.push(r * t.cos() * std);
            if data.len() < n {
                data.push(r * t.sin() * std);
            }
        }
        Self { shape, data }
    }

    /// Samples each element i.i.d. from `U(lo, hi)`.
    pub fn uniform<R: Rng + ?Sized>(shape: Shape, lo: f32, hi: f32, rng: &mut R) -> Self {
        let data = (0..shape.numel()).map(|_| rng.random::<f32>() * (hi - lo) + lo).collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Size of the buffer in bytes.
    pub fn bytes(&self) -> usize {
        self.shape.bytes()
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Debug builds panic if a coordinate is out of range.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.offset(n, c, h, w)]
    }

    /// Element mutator; see [`Tensor::at`] for panics.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let off = self.shape.offset(n, c, h, w);
        self.data[off] = v;
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Panics
    ///
    /// Panics if `numel` differs.
    pub fn reshape(mut self, shape: Shape) -> Self {
        assert_eq!(
            self.shape.numel(),
            shape.numel(),
            "reshape must preserve element count ({} -> {})",
            self.shape,
            shape
        );
        self.shape = shape;
        self
    }

    /// Applies `f` element-wise, producing a new tensor.
    ///
    /// Large tensors fan the work out over the [`crate::par`] pool; each
    /// element's value depends only on its own input, so results are bitwise
    /// identical for any thread count or chunking.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Self {
        let n = self.data.len();
        if n < PAR_ELEMWISE_MIN {
            return Self { shape: self.shape, data: self.data.iter().map(|&x| f(x)).collect() };
        }
        let mut data: Vec<f32> = Vec::with_capacity(n);
        let ptr = SyncPtr::new(data.as_mut_ptr());
        let src = &self.data;
        parallel_chunks(n, |lo, hi| {
            let base = ptr.get();
            for (i, &x) in src[lo..hi].iter().enumerate() {
                // SAFETY: chunks are disjoint and cover 0..n exactly once;
                // `write` never reads the uninitialized destination.
                unsafe { base.add(lo + i).write(f(x)) };
            }
        });
        // SAFETY: every element of 0..n was initialized by exactly one chunk.
        unsafe { data.set_len(n) };
        Self { shape: self.shape, data }
    }

    /// Applies `f` element-wise in place (pool-parallel for large tensors,
    /// see [`Tensor::map`]).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        if self.data.len() < PAR_ELEMWISE_MIN {
            for v in &mut self.data {
                *v = f(*v);
            }
            return;
        }
        let ptr = SyncPtr::new(self.data.as_mut_ptr());
        parallel_chunks(self.data.len(), |lo, hi| {
            // SAFETY: chunks are disjoint sub-slices of the buffer.
            let s = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(lo), hi - lo) };
            for v in s {
                *v = f(*v);
            }
        });
    }

    /// Element-wise binary zip producing a new tensor (pool-parallel for
    /// large tensors, see [`Tensor::map`]).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32 + Sync) -> Self {
        assert_eq!(self.shape, other.shape, "zip requires equal shapes");
        let n = self.data.len();
        if n < PAR_ELEMWISE_MIN {
            let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
            return Self { shape: self.shape, data };
        }
        let mut data: Vec<f32> = Vec::with_capacity(n);
        let ptr = SyncPtr::new(data.as_mut_ptr());
        let (xa, xb) = (&self.data, &other.data);
        parallel_chunks(n, |lo, hi| {
            let base = ptr.get();
            for (i, (&a, &b)) in xa[lo..hi].iter().zip(&xb[lo..hi]).enumerate() {
                // SAFETY: chunks are disjoint and cover 0..n exactly once.
                unsafe { base.add(lo + i).write(f(a, b)) };
            }
        });
        // SAFETY: every element of 0..n was initialized by exactly one chunk.
        unsafe { data.set_len(n) };
        Self { shape: self.shape, data }
    }

    /// In-place `self += alpha * x` (pool-parallel for large tensors).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, x: &Self) {
        assert_eq!(self.shape, x.shape, "axpy requires equal shapes");
        if self.data.len() < PAR_ELEMWISE_MIN {
            for (a, &b) in self.data.iter_mut().zip(&x.data) {
                *a += alpha * b;
            }
            return;
        }
        let ptr = SyncPtr::new(self.data.as_mut_ptr());
        let xd = &x.data;
        parallel_chunks(self.data.len(), |lo, hi| {
            // SAFETY: chunks are disjoint sub-slices of the buffer.
            let s = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(lo), hi - lo) };
            for (a, &b) in s.iter_mut().zip(&xd[lo..hi]) {
                *a += alpha * b;
            }
        });
    }

    /// In-place `self += x`.
    pub fn add_assign(&mut self, x: &Self) {
        self.axpy(1.0, x);
    }

    /// In-place `self -= x`.
    pub fn sub_assign(&mut self, x: &Self) {
        self.axpy(-1.0, x);
    }

    /// In-place multiplication by a scalar (pool-parallel for large tensors).
    pub fn scale(&mut self, alpha: f32) {
        self.map_inplace(|v| v * alpha);
    }

    /// Returns `self * alpha` as a new tensor.
    pub fn scaled(&self, alpha: f32) -> Self {
        self.map(|x| x * alpha)
    }

    /// Sets every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Sum of squares of all elements.
    pub fn sq_sum(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// L2 norm.
    pub fn l2_norm(&self) -> f64 {
        self.sq_sum().sqrt()
    }

    /// Largest absolute element (0 for an empty tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Largest absolute difference from `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff requires equal shapes");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f32, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Number of non-finite (NaN or infinite) elements.
    pub fn count_nonfinite(&self) -> usize {
        self.data.iter().filter(|x| !x.is_finite()).count()
    }

    /// Asserts that every element is finite.
    ///
    /// # Panics
    ///
    /// Panics with `tag`, the non-finite count, and the tensor shape when any
    /// element is NaN or infinite, so tripwires can report *which* tensor in
    /// a pipeline went bad.
    pub fn assert_finite(&self, tag: &str) {
        let bad = self.count_nonfinite();
        assert!(
            bad == 0,
            "{tag}: {bad} non-finite element(s) out of {} (shape {})",
            self.data.len(),
            self.shape
        );
    }

    /// Adds a per-channel bias `[1, c, 1, 1]` to every spatial/batch position.
    ///
    /// # Panics
    ///
    /// Panics if `bias.shape().c != self.shape().c` or bias is not a vector.
    pub fn add_channel_bias(&mut self, bias: &Self) {
        assert_eq!(bias.shape, Shape::vector(self.shape.c), "bias must be a [1,c,1,1] vector");
        let hw = self.shape.hw();
        let c = self.shape.c;
        let bd = &bias.data;
        let ptr = SyncPtr::new(self.data.as_mut_ptr());
        parallel_tiles(self.shape.n * c, |p| {
            let b = bd[p % c];
            // SAFETY: tile `p` owns the disjoint plane `[p*hw, (p+1)*hw)`.
            let plane = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(p * hw), hw) };
            for v in plane {
                *v += b;
            }
        });
    }

    /// Multiplies each channel by a per-channel factor `[1, c, 1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a `[1,c,1,1]` vector matching `self`'s channels.
    pub fn mul_channel(&mut self, scale: &Self) {
        assert_eq!(scale.shape, Shape::vector(self.shape.c), "scale must be a [1,c,1,1] vector");
        let hw = self.shape.hw();
        let c = self.shape.c;
        let sd = &scale.data;
        let ptr = SyncPtr::new(self.data.as_mut_ptr());
        parallel_tiles(self.shape.n * c, |p| {
            let s = sd[p % c];
            // SAFETY: tile `p` owns the disjoint plane `[p*hw, (p+1)*hw)`.
            let plane = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(p * hw), hw) };
            for v in plane {
                *v *= s;
            }
        });
    }

    /// Per-channel sum over batch and spatial dims; returns `[1, c, 1, 1]`.
    pub fn sum_per_channel(&self) -> Self {
        let mut out = Tensor::zeros(Shape::vector(self.shape.c));
        let hw = self.shape.hw();
        let (n, c) = (self.shape.n, self.shape.c);
        let xd = &self.data;
        let optr = SyncPtr::new(out.data.as_mut_ptr());
        // One tile per channel; the batch loop stays sequential inside the
        // tile so the accumulation order (and the f32 result) is independent
        // of the thread count.
        parallel_tiles(c, |ch| {
            let mut acc = 0.0_f32;
            for ni in 0..n {
                let base = (ni * c + ch) * hw;
                let s: f32 = xd[base..base + hw].iter().sum();
                acc += s;
            }
            // SAFETY: tile `ch` writes only element `ch`.
            unsafe { *optr.get().add(ch) = acc };
        });
        out
    }

    /// Concatenates tensors along the channel dimension.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or batch/spatial dims disagree.
    pub fn concat_channels(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_channels requires at least one tensor");
        let first = parts[0].shape;
        let c_total: usize = parts.iter().map(|p| p.shape.c).sum();
        for p in parts {
            assert_eq!(
                (p.shape.n, p.shape.h, p.shape.w),
                (first.n, first.h, first.w),
                "concat_channels requires matching batch and spatial dims"
            );
        }
        let out_shape = first.with_c(c_total);
        let mut out = Tensor::zeros(out_shape);
        let hw = first.hw();
        for n in 0..first.n {
            let mut c_off = 0;
            for p in parts {
                let src = &p.data[n * p.shape.chw()..(n + 1) * p.shape.chw()];
                let dst_base = (n * c_total + c_off) * hw;
                out.data[dst_base..dst_base + p.shape.c * hw].copy_from_slice(src);
                c_off += p.shape.c;
            }
        }
        out
    }

    /// Splits the tensor into two along the channel dimension at `c_split`.
    ///
    /// # Panics
    ///
    /// Panics if `c_split` is 0 or >= `c`.
    pub fn split_channels(&self, c_split: usize) -> (Tensor, Tensor) {
        assert!(c_split > 0 && c_split < self.shape.c, "c_split must be inside (0, c)");
        let s1 = self.shape.with_c(c_split);
        let s2 = self.shape.with_c(self.shape.c - c_split);
        let mut a = Tensor::zeros(s1);
        let mut b = Tensor::zeros(s2);
        let hw = self.shape.hw();
        for n in 0..self.shape.n {
            let src = &self.data[n * self.shape.chw()..(n + 1) * self.shape.chw()];
            a.data[n * s1.chw()..(n + 1) * s1.chw()].copy_from_slice(&src[..c_split * hw]);
            b.data[n * s2.chw()..(n + 1) * s2.chw()].copy_from_slice(&src[c_split * hw..]);
        }
        (a, b)
    }

    /// Repeats the channel dimension `times` times (used by the
    /// channel-duplicating stem of wide RevBiFPN variants).
    pub fn repeat_channels(&self, times: usize) -> Tensor {
        let refs: Vec<&Tensor> = (0..times).map(|_| self).collect();
        Tensor::concat_channels(&refs)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor {{ shape: {:?}, mean: {:.4}, absmax: {:.4}, head: {:?}{} }}",
            self.shape,
            self.mean(),
            self.abs_max(),
            preview,
            if self.data.len() > 8 { ", .." } else { "" }
        )
    }
}

impl Add for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a * b)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::new(1, 1, 1, data.len()), data.to_vec()).unwrap()
    }

    #[test]
    fn constructors() {
        let s = Shape::new(1, 2, 2, 2);
        assert_eq!(Tensor::zeros(s).sum(), 0.0);
        assert_eq!(Tensor::ones(s).sum(), 8.0);
        assert_eq!(Tensor::full(s, 0.5).sum(), 4.0);
        assert!(Tensor::from_vec(s, vec![0.0; 7]).is_err());
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(1, 1, 100, 100), 2.0, &mut rng);
        assert!(x.mean().abs() < 0.1, "mean {}", x.mean());
        let var = x.sq_sum() / x.data().len() as f64;
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::uniform(Shape::new(1, 1, 10, 10), -1.0, 3.0, &mut rng);
        assert!(x.data().iter().all(|&v| (-1.0..=3.0).contains(&v)));
    }

    #[test]
    fn arithmetic() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = t(&[1.0, 2.0]);
        let b = t(&[10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[3.0, -4.0]);
        assert_eq!(a.sum(), -1.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.sq_sum(), 25.0);
        assert_eq!(a.l2_norm(), 5.0);
        assert_eq!(a.abs_max(), 4.0);
    }

    #[test]
    fn channel_bias_and_scale() {
        let mut x = Tensor::ones(Shape::new(2, 2, 1, 2));
        let bias = Tensor::from_vec(Shape::vector(2), vec![10.0, 20.0]).unwrap();
        x.add_channel_bias(&bias);
        assert_eq!(x.data(), &[11.0, 11.0, 21.0, 21.0, 11.0, 11.0, 21.0, 21.0]);
        let sc = Tensor::from_vec(Shape::vector(2), vec![2.0, 0.5]).unwrap();
        x.mul_channel(&sc);
        assert_eq!(x.data(), &[22.0, 22.0, 10.5, 10.5, 22.0, 22.0, 10.5, 10.5]);
    }

    #[test]
    fn per_channel_sum() {
        let x = Tensor::from_vec(Shape::new(2, 2, 1, 1), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let s = x.sum_per_channel();
        assert_eq!(s.data(), &[4.0, 6.0]);
    }

    #[test]
    fn concat_split_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::randn(Shape::new(2, 5, 3, 3), 1.0, &mut rng);
        let (a, b) = x.split_channels(2);
        assert_eq!(a.shape(), Shape::new(2, 2, 3, 3));
        assert_eq!(b.shape(), Shape::new(2, 3, 3, 3));
        let back = Tensor::concat_channels(&[&a, &b]);
        assert_eq!(back, x);
    }

    #[test]
    fn repeat_channels_duplicates() {
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 2), vec![1.0, 2.0]).unwrap();
        let y = x.repeat_channels(3);
        assert_eq!(y.shape(), Shape::new(1, 3, 1, 2));
        assert_eq!(y.data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn parallel_elementwise_matches_serial_bitwise() {
        // Large enough to cross PAR_ELEMWISE_MIN. Element-wise kernels must
        // produce bitwise-identical results for any thread budget.
        let _g = crate::par::tests_budget_lock();
        let mut rng = StdRng::seed_from_u64(9);
        let s = Shape::new(2, 8, 64, 64);
        let x = Tensor::randn(s, 1.0, &mut rng);
        let y = Tensor::randn(s, 1.0, &mut rng);
        let act = |v: f32| v * (v + 3.0).clamp(0.0, 6.0) / 6.0;

        crate::par::set_max_threads(1);
        let m1 = x.map(act);
        let z1 = x.zip(&y, |a, b| a * b + 0.25);
        let mut a1 = x.clone();
        a1.axpy(0.5, &y);
        let mut i1 = x.clone();
        i1.map_inplace(act);
        let mut s1 = x.clone();
        s1.scale(1.7);

        crate::par::set_max_threads(8);
        let m8 = x.map(act);
        let z8 = x.zip(&y, |a, b| a * b + 0.25);
        let mut a8 = x.clone();
        a8.axpy(0.5, &y);
        let mut i8 = x.clone();
        i8.map_inplace(act);
        let mut s8 = x.clone();
        s8.scale(1.7);
        crate::par::set_max_threads(0);

        assert_eq!(m1, m8);
        assert_eq!(z1, z8);
        assert_eq!(a1, a8);
        assert_eq!(i1, i8);
        assert_eq!(s1, s8);
        assert_eq!(m1, i1, "map and map_inplace must agree");
    }

    #[test]
    fn reshape_preserves_data() {
        let x = t(&[1.0, 2.0, 3.0, 4.0]);
        let y = x.clone().reshape(Shape::new(1, 2, 1, 2));
        assert_eq!(y.data(), x.data());
    }

    #[test]
    #[should_panic(expected = "reshape must preserve")]
    fn reshape_bad_count_panics() {
        let x = t(&[1.0, 2.0]);
        let _ = x.reshape(Shape::new(1, 3, 1, 1));
    }

    #[test]
    fn finite_check() {
        let mut x = t(&[1.0, 2.0]);
        assert!(x.is_finite());
        x.data_mut()[0] = f32::NAN;
        assert!(!x.is_finite());
    }

    #[test]
    fn count_nonfinite_counts_nan_and_inf() {
        let mut x = t(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x.count_nonfinite(), 0);
        x.data_mut()[1] = f32::NAN;
        x.data_mut()[3] = f32::INFINITY;
        assert_eq!(x.count_nonfinite(), 2);
    }

    #[test]
    fn assert_finite_passes_on_finite() {
        t(&[0.0, -1.0]).assert_finite("ok");
    }

    #[test]
    #[should_panic(expected = "logits: 1 non-finite")]
    fn assert_finite_panics_with_tag() {
        let mut x = t(&[1.0, 2.0]);
        x.data_mut()[0] = f32::NEG_INFINITY;
        x.assert_finite("logits");
    }
}
