//! Small row-major single-precision GEMM used by the convolution kernels.
//!
//! Not a BLAS replacement: the models in this repository are small enough
//! that a register-blocked scalar kernel with good loop order is sufficient.

/// `c = alpha * a @ b + beta * c` with row-major `a: [m, k]`, `b: [k, n]`,
/// `c: [m, n]`.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `(m, k, n)`.
pub fn sgemm(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], beta: f32, c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "a must be m*k");
    assert_eq!(b.len(), k * n, "b must be k*n");
    assert_eq!(c.len(), m * n, "c must be m*n");
    if beta == 0.0 {
        c.iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|v| *v *= beta);
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    // ikj loop order: the inner loop is a contiguous axpy over rows of b,
    // which vectorizes well and is cache-friendly for both b and c.
    const KB: usize = 64;
    for kb in (0..k).step_by(KB) {
        let k_end = (kb + KB).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for p in kb..k_end {
                let av = alpha * arow[p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// `c = alpha * a^T @ b + beta * c` with `a: [k, m]`, `b: [k, n]`, `c: [m, n]`.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `(m, k, n)`.
pub fn sgemm_at_b(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], beta: f32, c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "a must be k*m (transposed)");
    assert_eq!(b.len(), k * n, "b must be k*n");
    assert_eq!(c.len(), m * n, "c must be m*n");
    if beta == 0.0 {
        c.iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|v| *v *= beta);
    }
    if alpha == 0.0 {
        return;
    }
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for i in 0..m {
            let av = alpha * arow[i];
            if av == 0.0 {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// `c = alpha * a @ b^T + beta * c` with `a: [m, k]`, `b: [n, k]`, `c: [m, n]`.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `(m, k, n)`.
pub fn sgemm_a_bt(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], beta: f32, c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "a must be m*k");
    assert_eq!(b.len(), n * k, "b must be n*k (transposed)");
    assert_eq!(c.len(), m * n, "c must be m*n");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let dot: f32 = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
            let cv = &mut c[i * n + j];
            *cv = alpha * dot + beta * *cv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        // Tiny LCG so tests need no external RNG plumbing.
        let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 9, 33), (64, 70, 8)] {
            let a = rand_vec(m * k, 1);
            let b = rand_vec(k * n, 2);
            let mut c = vec![0.0; m * n];
            sgemm(m, k, n, 1.0, &a, &b, 0.0, &mut c);
            let want = naive(m, k, n, &a, &b);
            for (x, y) in c.iter().zip(&want) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        let mut c = vec![10.0];
        // 1x2 @ 2x1 = [11]; c = 2*11 + 0.5*10 = 27
        sgemm(1, 2, 1, 2.0, &a, &b, 0.5, &mut c);
        assert!((c[0] - 27.0).abs() < 1e-6);
    }

    #[test]
    fn at_b_matches_naive() {
        let (m, k, n) = (5, 7, 3);
        let at = rand_vec(k * m, 3); // stored as [k, m]
        let b = rand_vec(k * n, 4);
        let mut c = vec![0.0; m * n];
        sgemm_at_b(m, k, n, 1.0, &at, &b, 0.0, &mut c);
        // Build a = at^T and compare.
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let want = naive(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn a_bt_matches_naive() {
        let (m, k, n) = (4, 6, 5);
        let a = rand_vec(m * k, 5);
        let bt = rand_vec(n * k, 6); // stored as [n, k]
        let mut c = vec![0.0; m * n];
        sgemm_a_bt(m, k, n, 1.0, &a, &bt, 0.0, &mut c);
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let want = naive(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}
