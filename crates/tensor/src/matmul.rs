//! Row-major single-precision GEMM: a cache-blocked, panel-packing engine
//! with a register-tiled micro-kernel, parallelized over macro-tiles.
//!
//! The three public entry points ([`sgemm`], [`sgemm_at_b`], [`sgemm_a_bt`])
//! share one engine that views its operands through arbitrary row/column
//! strides, so the transposed variants cost one packing pass instead of a
//! materialized transpose.
//!
//! # Blocking scheme
//!
//! BLIS-style three-level blocking with fixed tile sizes:
//!
//! - micro-kernel: `MR x NR = 6 x 16` register tile (12 AVX2 accumulators +
//!   broadcast + two B vectors fits the 16 ymm registers);
//! - `KC = 256` depth slices, packed into contiguous A panels (`MR`-row
//!   interleave) and B panels (`NR`-column interleave) held in thread-local
//!   scratch (see [`crate::scratch`]);
//! - `MC x NC = 96 x 512` macro-tiles of C, distributed over the worker
//!   pool with [`crate::par::parallel_tiles`].
//!
//! The macro-tile grid depends only on `(m, n)` and the constants — never on
//! the worker count — and each tile accumulates its `KC` slices
//! sequentially, so results are **byte-identical for any thread count**.
//! The micro-kernel uses AVX2+FMA when the CPU has it (checked once at
//! runtime) with a portable scalar fallback; those two paths may round
//! differently, but the choice is per-process, not per-call.
//!
//! Problems too small to amortize packing fall through to the simple
//! [`reference`] kernels, which are also kept as the oracle for tests and
//! the baseline for before/after benchmarks.

use crate::blob::{Panel, SharedBytes};
use crate::par::{parallel_tiles, SyncPtr};
use crate::scratch;

/// Activation applied by a fused GEMM epilogue during tile write-back.
///
/// The formulas are kept textually identical to the activation layers in the
/// `nn` crate so a fused epilogue computes bit-for-bit the same value as the
/// separate activation pass it replaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpilogueAct {
    /// Pass the accumulated value through unchanged.
    None,
    /// `max(v, 0)`.
    Relu,
    /// `v * clamp(v + 3, 0, 6) / 6`.
    HardSwish,
    /// `clamp(v + 3, 0, 6) / 6`.
    HardSigmoid,
}

impl EpilogueAct {
    /// Applies the activation to one value.
    #[inline(always)]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            Self::None => v,
            Self::Relu => v.max(0.0),
            Self::HardSwish => v * (v + 3.0).clamp(0.0, 6.0) / 6.0,
            Self::HardSigmoid => (v + 3.0).clamp(0.0, 6.0) / 6.0,
        }
    }
}

/// A fused GEMM epilogue: per-row (output-channel) bias plus an activation,
/// applied to fully-accumulated output values during the final write-back
/// instead of as separate full-tensor passes.
///
/// # Contract
///
/// For every output element the transformation is exactly
/// `act(value + bias[row])` where `value` is what the same GEMM call would
/// have produced with no epilogue. Both the blocked engine and the
/// small-matrix reference fallback funnel through [`Epilogue::apply`], so on
/// either dispatch path a fused call is **bit-identical** to the unfused
/// call followed by a separate bias-and-activation pass.
#[derive(Clone, Copy, Debug)]
pub struct Epilogue<'a> {
    bias: Option<&'a [f32]>,
    act: EpilogueAct,
}

impl<'a> Epilogue<'a> {
    /// An epilogue adding `bias[row]` (when present; length must be `m`)
    /// then applying `act`.
    pub fn new(bias: Option<&'a [f32]>, act: EpilogueAct) -> Self {
        Self { bias, act }
    }

    /// The shared per-element transform: `act(v + bias[row])`.
    #[inline(always)]
    pub fn apply(&self, row: usize, v: f32) -> f32 {
        let v = match self.bias {
            Some(b) => v + b[row],
            None => v,
        };
        self.act.apply(v)
    }

    /// The bias term for `row`, when a bias is present (vector write-backs
    /// hoist it out of the lane loop instead of re-branching per element).
    pub(crate) fn bias_at(&self, row: usize) -> Option<f32> {
        self.bias.map(|b| b[row])
    }

    /// The fused activation kind.
    pub(crate) fn act(&self) -> EpilogueAct {
        self.act
    }

    /// Applies the epilogue to a row-major `[m, n]` buffer as a separate
    /// pass (the reference-path fallback and the test oracle).
    pub fn apply_rows(&self, m: usize, n: usize, c: &mut [f32]) {
        debug_assert_eq!(c.len(), m * n);
        for (row, crow) in c.chunks_mut(n.max(1)).enumerate().take(m) {
            for v in crow.iter_mut() {
                *v = self.apply(row, *v);
            }
        }
    }
}

/// The left operand of the blocked GEMM, pre-packed once into the exact
/// per-(macro-tile, KC-slice) panel layout [`pack_a`] produces, so repeated
/// multiplies against changing right-hand sides (conv weights against
/// per-call im2col columns) skip the A-packing pass entirely.
#[derive(Clone, Debug)]
pub struct PackedGemmA {
    data: Panel<f32>,
    m: usize,
    k: usize,
}

/// Padded row count of one full `MC`-high macro-tile.
const MC_PAD: usize = MC.div_ceil(MR) * MR;

impl PackedGemmA {
    /// Packs a row-major `[m, k]` matrix. The packed image is laid out as
    /// macro-tile blocks in `i0` order, each holding its `KC` slices in `p0`
    /// order, matching the traversal of the blocked engine.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k` or either dimension is zero.
    pub fn pack(m: usize, k: usize, a: &[f32]) -> Self {
        assert_eq!(a.len(), m * k, "a must be m*k");
        assert!(m > 0 && k > 0, "packed GEMM operand must be non-empty");
        let view = MatRef { data: a, rs: k, cs: 1 };
        let mut data = vec![0.0f32; Self::packed_len(m, k)];
        let mut off = 0;
        for i0 in (0..m).step_by(MC) {
            let mc = MC.min(m - i0);
            let rows_padded = mc.div_ceil(MR) * MR;
            for p0 in (0..k).step_by(KC) {
                let kc = KC.min(k - p0);
                pack_a(view, i0, mc, p0, kc, &mut data[off..off + rows_padded * kc]);
                off += rows_padded * kc;
            }
        }
        Self { data: Panel::Owned(data), m, k }
    }

    /// Length in floats of the packed image for an `[m, k]` operand — the
    /// serialized size of [`PackedGemmA::image`].
    pub fn image_len(m: usize, k: usize) -> usize {
        Self::packed_len(m, k)
    }

    /// The raw packed panel image (layout documented on
    /// [`PackedGemmA::pack`]; stable only for a fixed
    /// [`gemm_layout_fingerprint`]).
    pub fn image(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Rebuilds a packed operand from an image previously obtained via
    /// [`PackedGemmA::image`], taking ownership of the buffer.
    ///
    /// # Errors
    ///
    /// Rejects empty dimensions and an image whose length disagrees with
    /// [`PackedGemmA::image_len`].
    pub fn from_owned_image(m: usize, k: usize, image: Vec<f32>) -> Result<Self, &'static str> {
        if m == 0 || k == 0 {
            return Err("packed GEMM operand must be non-empty");
        }
        if image.len() != Self::packed_len(m, k) {
            return Err("packed image length disagrees with (m, k)");
        }
        Ok(Self { data: Panel::Owned(image), m, k })
    }

    /// Rebuilds a packed operand whose image *borrows* `bytes` at byte
    /// `offset` — the zero-copy artifact-loading path. The shared buffer is
    /// kept alive for the life of the operand (and its clones).
    ///
    /// # Errors
    ///
    /// Rejects empty dimensions, out-of-bounds ranges and offsets not
    /// 4-byte aligned within the buffer.
    pub fn from_shared_image(
        m: usize,
        k: usize,
        bytes: SharedBytes,
        offset: usize,
    ) -> Result<Self, &'static str> {
        if m == 0 || k == 0 {
            return Err("packed GEMM operand must be non-empty");
        }
        let data = Panel::from_shared(bytes, offset, Self::packed_len(m, k))?;
        Ok(Self { data, m, k })
    }

    /// Whether the image borrows a shared (typically mmap-backed) buffer.
    pub fn is_shared(&self) -> bool {
        self.data.is_shared()
    }

    fn packed_len(m: usize, k: usize) -> usize {
        (0..m)
            .step_by(MC)
            .map(|i0| MC.min(m - i0).div_ceil(MR) * MR * k)
            .sum()
    }

    /// The panel block for macro-tile `ic`, depth slice starting at `p0`.
    ///
    /// Only the last macro-tile can be partial, so the offset is closed-form:
    /// full blocks before it are `MC_PAD * k` floats each, and within a
    /// block the slices before `p0` hold exactly `rows_padded * p0` floats.
    #[inline]
    fn block(&self, ic: usize, p0: usize, kc: usize) -> &[f32] {
        let i0 = ic * MC;
        let rows_padded = MC.min(self.m - i0).div_ceil(MR) * MR;
        let off = ic * MC_PAD * self.k + rows_padded * p0;
        &self.data.as_slice()[off..off + rows_padded * kc]
    }

    /// Packed row count (`m` of the original matrix).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Packed depth (`k` of the original matrix).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Resident size of the packed image in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// FNV-1a fingerprint of every blocking constant that shapes packed panel
/// images (f32 and int8 tiers). A serialized panel image is only loadable by
/// a build with the same fingerprint — artifact containers store it and
/// refuse mismatches instead of multiplying with garbage layouts.
pub fn gemm_layout_fingerprint() -> u32 {
    let consts: [usize; 10] = [
        MR,
        NR,
        KC,
        MC,
        NC,
        crate::qmatmul::QMR,
        crate::qmatmul::QNR,
        crate::qmatmul::QK,
        crate::qmatmul::QMC,
        crate::qmatmul::QNC,
    ];
    let mut h: u32 = 0x811c_9dc5;
    for c in consts {
        for b in (c as u64).to_le_bytes() {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// Micro-kernel rows (register-tile height).
const MR: usize = 6;
/// Micro-kernel columns (register-tile width, two 8-float AVX2 vectors).
const NR: usize = 16;
/// Depth of one packed slice; `KC * (MR + NR) * 4` bytes of panel data stay
/// L1/L2-resident while a macro-tile multiplies.
const KC: usize = 256;
/// Macro-tile height (multiple of `MR`).
const MC: usize = 96;
/// Macro-tile width (multiple of `NR`).
const NC: usize = 512;

/// Problems with `m*n*k` at or below this run on the [`reference`] kernels:
/// packing overhead would dominate.
const SMALL_FLOP_CUTOFF: usize = 32 * 32 * 32;

/// A strided read-only view of a row-major matrix: element `(i, j)` lives at
/// `data[i * rs + j * cs]`. Transposition is `rs`/`cs` swapping.
#[derive(Clone, Copy)]
struct MatRef<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl MatRef<'_> {
    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.rs + j * self.cs]
    }
}

/// Packs rows `i0..i0+mc`, depth `p0..p0+kc` of `a` into `MR`-row panels:
/// panel `ir` stores element `(p, r)` at `ir*MR*kc + p*MR + r`, zero-padded
/// to a full `MR` rows so the micro-kernel never branches on the edge.
fn pack_a(a: MatRef<'_>, i0: usize, mc: usize, p0: usize, kc: usize, dst: &mut [f32]) {
    for ir in 0..mc.div_ceil(MR) {
        let base = ir * MR * kc;
        let rows = MR.min(mc - ir * MR);
        for p in 0..kc {
            let at = base + p * MR;
            for r in 0..rows {
                dst[at + r] = a.at(i0 + ir * MR + r, p0 + p);
            }
            for r in rows..MR {
                dst[at + r] = 0.0;
            }
        }
    }
}

/// Packs depth `p0..p0+kc`, columns `j0..j0+nc` of `b` into `NR`-column
/// panels: panel `jr` stores element `(p, c)` at `jr*NR*kc + p*NR + c`,
/// zero-padded to a full `NR` columns.
fn pack_b(b: MatRef<'_>, j0: usize, nc: usize, p0: usize, kc: usize, dst: &mut [f32]) {
    for jr in 0..nc.div_ceil(NR) {
        let base = jr * NR * kc;
        let cols = NR.min(nc - jr * NR);
        for p in 0..kc {
            let at = base + p * NR;
            for c in 0..cols {
                dst[at + c] = b.at(p0 + p, j0 + jr * NR + c);
            }
            for c in cols..NR {
                dst[at + c] = 0.0;
            }
        }
    }
}

/// Portable micro-kernel: `acc += A_panel @ B_panel` over `kc` depth steps.
fn mk_scalar(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for p in 0..kc {
        let arow = &ap[p * MR..p * MR + MR];
        let brow = &bp[p * NR..p * NR + NR];
        for (accrow, &av) in acc.iter_mut().zip(arow) {
            for (c, &bv) in accrow.iter_mut().zip(brow) {
                *c += av * bv;
            }
        }
    }
}

/// AVX2+FMA micro-kernel: 6x16 tile in twelve ymm accumulators.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and FMA, `ap` points to at least
/// `kc * MR` floats, and `bp` to at least `kc * NR` floats.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mk_avx2(kc: usize, ap: *const f32, bp: *const f32, acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    let mut lo = [_mm256_setzero_ps(); MR];
    let mut hi = [_mm256_setzero_ps(); MR];
    for p in 0..kc {
        let b0 = _mm256_loadu_ps(bp.add(p * NR));
        let b1 = _mm256_loadu_ps(bp.add(p * NR + 8));
        for r in 0..MR {
            let av = _mm256_set1_ps(*ap.add(p * MR + r));
            lo[r] = _mm256_fmadd_ps(av, b0, lo[r]);
            hi[r] = _mm256_fmadd_ps(av, b1, hi[r]);
        }
    }
    for r in 0..MR {
        _mm256_storeu_ps(acc[r].as_mut_ptr(), lo[r]);
        _mm256_storeu_ps(acc[r].as_mut_ptr().add(8), hi[r]);
    }
}

#[cfg(target_arch = "x86_64")]
fn have_avx2_fma() -> bool {
    static DETECTED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DETECTED.get_or_init(|| {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    })
}

#[inline]
fn microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    #[cfg(target_arch = "x86_64")]
    if have_avx2_fma() {
        // SAFETY: feature presence checked above; pointer extents checked by
        // the debug assert and guaranteed by the packed-panel layout.
        unsafe { mk_avx2(kc, ap.as_ptr(), bp.as_ptr(), acc) };
        return;
    }
    mk_scalar(kc, ap, bp, acc);
}

/// The A operand of the blocked engine: a strided view packed per call into
/// thread-local scratch, or a [`PackedGemmA`] whose panels are sliced
/// directly (no per-call A traffic).
#[derive(Clone, Copy)]
enum ASrc<'a> {
    Mat(MatRef<'a>),
    Packed(&'a PackedGemmA),
}

/// `c[m, n] = beta * c + alpha * a[m, k] @ b[k, n]` through strided views,
/// blocked and parallelized as described in the module docs. Beta is folded
/// into the first KC slice's write-back: with `beta == 0` the output is
/// written without being read or pre-zeroed, which matters for small-k GEMMs
/// (e.g. the 3x3 stem conv) where output traffic rivals the FLOPs.
///
/// When an [`Epilogue`] is supplied it is applied to each output row chunk
/// during the **last** KC slice's write-back — the values are then fully
/// accumulated, still register/L1-resident, and written out exactly once.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
    a: ASrc<'_>,
    b: MatRef<'_>,
    c: &mut [f32],
    epi: Option<&Epilogue<'_>>,
) {
    let n_ic = m.div_ceil(MC);
    let n_jc = n.div_ceil(NC);
    let cptr = SyncPtr::new(c.as_mut_ptr());
    parallel_tiles(n_ic * n_jc, |tile| {
        let (ic, jc) = (tile / n_jc, tile % n_jc);
        let i0 = ic * MC;
        let j0 = jc * NC;
        let mc = MC.min(m - i0);
        let nc = NC.min(n - j0);
        let mut apack = match a {
            ASrc::Mat(_) => Some(scratch::take(mc.div_ceil(MR) * MR * KC.min(k))),
            ASrc::Packed(_) => None,
        };
        let mut bpack = scratch::take(nc.div_ceil(NR) * NR * KC.min(k));
        for p0 in (0..k).step_by(KC) {
            let kc = KC.min(k - p0);
            let first_slice = p0 == 0;
            let last_slice = p0 + kc == k;
            let apanels: &[f32] = match (a, apack.as_mut()) {
                (ASrc::Mat(view), Some(buf)) => {
                    pack_a(view, i0, mc, p0, kc, buf);
                    buf
                }
                (ASrc::Packed(pa), _) => pa.block(ic, p0, kc),
                (ASrc::Mat(_), None) => unreachable!("scratch panel allocated for view operands"),
            };
            pack_b(b, j0, nc, p0, kc, &mut bpack);
            for jr in 0..nc.div_ceil(NR) {
                let bpanel = &bpack[jr * NR * kc..(jr + 1) * NR * kc];
                let cols = NR.min(nc - jr * NR);
                for ir in 0..mc.div_ceil(MR) {
                    let apanel = &apanels[ir * MR * kc..(ir + 1) * MR * kc];
                    let rows = MR.min(mc - ir * MR);
                    let mut acc = [[0.0f32; NR]; MR];
                    microkernel(kc, apanel, bpanel, &mut acc);
                    for (r, accrow) in acc.iter().enumerate().take(rows) {
                        let row = i0 + ir * MR + r;
                        // SAFETY: this tile exclusively owns C rows
                        // i0..i0+mc x cols j0..j0+nc; tiles are disjoint.
                        let crow = unsafe {
                            let start = row * n + j0 + jr * NR;
                            std::slice::from_raw_parts_mut(cptr.get().add(start), cols)
                        };
                        if first_slice && beta == 0.0 {
                            for (cv, &av) in crow.iter_mut().zip(accrow) {
                                *cv = alpha * av;
                            }
                        } else if first_slice && beta != 1.0 {
                            for (cv, &av) in crow.iter_mut().zip(accrow) {
                                *cv = beta * *cv + alpha * av;
                            }
                        } else {
                            for (cv, &av) in crow.iter_mut().zip(accrow) {
                                *cv += alpha * av;
                            }
                        }
                        if let (true, Some(e)) = (last_slice, epi) {
                            for cv in crow.iter_mut() {
                                *cv = e.apply(row, *cv);
                            }
                        }
                    }
                }
            }
        }
    });
}

/// Applies the `beta` scaling of the full output buffer.
fn apply_beta(beta: f32, c: &mut [f32]) {
    if beta == 0.0 {
        c.iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|v| *v *= beta);
    }
}

fn is_small(m: usize, k: usize, n: usize) -> bool {
    m.saturating_mul(k).saturating_mul(n) <= SMALL_FLOP_CUTOFF
}

/// `c = alpha * a @ b + beta * c` with row-major `a: [m, k]`, `b: [k, n]`,
/// `c: [m, n]`.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `(m, k, n)`.
#[allow(clippy::too_many_arguments)]
pub fn sgemm(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], beta: f32, c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "a must be m*k");
    assert_eq!(b.len(), k * n, "b must be k*n");
    assert_eq!(c.len(), m * n, "c must be m*n");
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        apply_beta(beta, c);
        return;
    }
    if is_small(m, k, n) {
        reference::sgemm(m, k, n, alpha, a, b, beta, c);
        return;
    }
    gemm_blocked(
        m,
        k,
        n,
        alpha,
        beta,
        ASrc::Mat(MatRef { data: a, rs: k, cs: 1 }),
        MatRef { data: b, rs: n, cs: 1 },
        c,
        None,
    );
}

/// `c = epilogue(alpha * a @ b)` with row-major `a: [m, k]`, `b: [k, n]`,
/// `c: [m, n]`: a beta-0 GEMM whose per-channel bias and activation are
/// applied in the tile write-back instead of as separate passes.
///
/// Dispatches exactly like [`sgemm`] (small problems run on the reference
/// kernel, with the epilogue as a post-pass through the same
/// [`Epilogue::apply`]), so on either path the result is bit-identical to
/// the unfused call followed by a separate epilogue pass.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `(m, k, n)` or a bias is
/// present with length != `m`.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_fused(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32], epi: &Epilogue<'_>) {
    assert_eq!(a.len(), m * k, "a must be m*k");
    assert_eq!(b.len(), k * n, "b must be k*n");
    assert_eq!(c.len(), m * n, "c must be m*n");
    if let Some(bias) = epi.bias {
        assert_eq!(bias.len(), m, "bias must have one entry per output row");
    }
    if m == 0 || n == 0 {
        return;
    }
    if alpha == 0.0 || k == 0 {
        apply_beta(0.0, c);
        epi.apply_rows(m, n, c);
        return;
    }
    if is_small(m, k, n) {
        reference::sgemm(m, k, n, alpha, a, b, 0.0, c);
        epi.apply_rows(m, n, c);
        return;
    }
    gemm_blocked(
        m,
        k,
        n,
        alpha,
        0.0,
        ASrc::Mat(MatRef { data: a, rs: k, cs: 1 }),
        MatRef { data: b, rs: n, cs: 1 },
        c,
        Some(epi),
    );
}

/// `c = epilogue(pa @ b)` against a persistently packed left operand: the
/// A-panel packing pass is skipped entirely, B still packs per call into
/// thread-local scratch (its contents change every call).
///
/// Always runs the blocked engine — a packed operand exists precisely so
/// repeated calls avoid per-call A traffic, and the reference kernels cannot
/// consume panel layout.
///
/// # Panics
///
/// Panics if slice lengths disagree with `(pa.m(), pa.k(), n)` or a bias is
/// present with length != `pa.m()`.
pub fn sgemm_prepacked(pa: &PackedGemmA, n: usize, b: &[f32], c: &mut [f32], epi: &Epilogue<'_>) {
    let (m, k) = (pa.m, pa.k);
    assert_eq!(b.len(), k * n, "b must be k*n");
    assert_eq!(c.len(), m * n, "c must be m*n");
    if let Some(bias) = epi.bias {
        assert_eq!(bias.len(), m, "bias must have one entry per output row");
    }
    if n == 0 {
        return;
    }
    gemm_blocked(m, k, n, 1.0, 0.0, ASrc::Packed(pa), MatRef { data: b, rs: n, cs: 1 }, c, Some(epi));
}

/// `c = alpha * a^T @ b + beta * c` with `a: [k, m]`, `b: [k, n]`, `c: [m, n]`.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `(m, k, n)`.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_at_b(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], beta: f32, c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "a must be k*m (transposed)");
    assert_eq!(b.len(), k * n, "b must be k*n");
    assert_eq!(c.len(), m * n, "c must be m*n");
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        apply_beta(beta, c);
        return;
    }
    if is_small(m, k, n) {
        reference::sgemm_at_b(m, k, n, alpha, a, b, beta, c);
        return;
    }
    gemm_blocked(
        m,
        k,
        n,
        alpha,
        beta,
        ASrc::Mat(MatRef { data: a, rs: 1, cs: m }),
        MatRef { data: b, rs: n, cs: 1 },
        c,
        None,
    );
}

/// `c = alpha * a @ b^T + beta * c` with `a: [m, k]`, `b: [n, k]`, `c: [m, n]`.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `(m, k, n)`.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_a_bt(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], beta: f32, c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "a must be m*k");
    assert_eq!(b.len(), n * k, "b must be n*k (transposed)");
    assert_eq!(c.len(), m * n, "c must be m*n");
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        apply_beta(beta, c);
        return;
    }
    if is_small(m, k, n) {
        reference::sgemm_a_bt(m, k, n, alpha, a, b, beta, c);
        return;
    }
    gemm_blocked(
        m,
        k,
        n,
        alpha,
        beta,
        ASrc::Mat(MatRef { data: a, rs: k, cs: 1 }),
        MatRef { data: b, rs: 1, cs: k },
        c,
        None,
    );
}

/// The pre-optimization scalar kernels: register-light, loop-order-tuned,
/// single-threaded. Retained verbatim as (a) the correctness oracle for the
/// packed engine's tests, (b) the dispatch target for tiny problems, and
/// (c) the "before" side of the kernel benchmarks.
pub mod reference {
    /// `c = alpha * a @ b + beta * c` with row-major `a: [m, k]`,
    /// `b: [k, n]`, `c: [m, n]` (scalar ikj kernel).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with `(m, k, n)`.
    #[allow(clippy::too_many_arguments)]
    pub fn sgemm(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], beta: f32, c: &mut [f32]) {
        assert_eq!(a.len(), m * k, "a must be m*k");
        assert_eq!(b.len(), k * n, "b must be k*n");
        assert_eq!(c.len(), m * n, "c must be m*n");
        if beta == 0.0 {
            c.iter_mut().for_each(|v| *v = 0.0);
        } else if beta != 1.0 {
            c.iter_mut().for_each(|v| *v *= beta);
        }
        if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
            return;
        }
        // ikj loop order: the inner loop is a contiguous axpy over rows of
        // b, which vectorizes well and is cache-friendly for both b and c.
        const KB: usize = 64;
        for kb in (0..k).step_by(KB) {
            let k_end = (kb + KB).min(k);
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let crow = &mut c[i * n..(i + 1) * n];
                for p in kb..k_end {
                    let av = alpha * arow[p];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        }
    }

    /// `c = alpha * a^T @ b + beta * c` with `a: [k, m]`, `b: [k, n]`,
    /// `c: [m, n]` (scalar kernel).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with `(m, k, n)`.
    #[allow(clippy::too_many_arguments)]
    pub fn sgemm_at_b(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], beta: f32, c: &mut [f32]) {
        assert_eq!(a.len(), k * m, "a must be k*m (transposed)");
        assert_eq!(b.len(), k * n, "b must be k*n");
        assert_eq!(c.len(), m * n, "c must be m*n");
        if beta == 0.0 {
            c.iter_mut().for_each(|v| *v = 0.0);
        } else if beta != 1.0 {
            c.iter_mut().for_each(|v| *v *= beta);
        }
        if alpha == 0.0 {
            return;
        }
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for i in 0..m {
                let av = alpha * arow[i];
                if av == 0.0 {
                    continue;
                }
                let crow = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }

    /// `c = alpha * a @ b^T + beta * c` with `a: [m, k]`, `b: [n, k]`,
    /// `c: [m, n]` (scalar dot-product kernel).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with `(m, k, n)`.
    #[allow(clippy::too_many_arguments)]
    pub fn sgemm_a_bt(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], beta: f32, c: &mut [f32]) {
        assert_eq!(a.len(), m * k, "a must be m*k");
        assert_eq!(b.len(), n * k, "b must be n*k (transposed)");
        assert_eq!(c.len(), m * n, "c must be m*n");
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let dot: f32 = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
                let cv = &mut c[i * n + j];
                *cv = alpha * dot + beta * *cv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        // Tiny LCG so tests need no external RNG plumbing.
        let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 9, 33), (64, 70, 8)] {
            let a = rand_vec(m * k, 1);
            let b = rand_vec(k * n, 2);
            let mut c = vec![0.0; m * n];
            sgemm(m, k, n, 1.0, &a, &b, 0.0, &mut c);
            let want = naive(m, k, n, &a, &b);
            for (x, y) in c.iter().zip(&want) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn blocked_path_matches_reference() {
        // Shapes chosen to exceed SMALL_FLOP_CUTOFF and to hit every edge
        // case: non-multiples of MR/NR/MC/NC and of KC.
        for &(m, k, n) in &[(64, 64, 64), (97, 130, 101), (6, 300, 520), (200, 37, 65), (130, 257, 17)] {
            assert!(!is_small(m, k, n), "shape must take the blocked path");
            let a = rand_vec(m * k, 11);
            let b = rand_vec(k * n, 12);
            let mut c = rand_vec(m * n, 13);
            let mut want = c.clone();
            sgemm(m, k, n, 0.7, &a, &b, 0.3, &mut c);
            reference::sgemm(m, k, n, 0.7, &a, &b, 0.3, &mut want);
            for (x, y) in c.iter().zip(&want) {
                assert!((x - y).abs() < 1e-3, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn blocked_at_b_matches_reference() {
        let (m, k, n) = (70, 150, 90);
        let at = rand_vec(k * m, 21);
        let b = rand_vec(k * n, 22);
        let mut c = rand_vec(m * n, 23);
        let mut want = c.clone();
        sgemm_at_b(m, k, n, 1.3, &at, &b, 0.5, &mut c);
        reference::sgemm_at_b(m, k, n, 1.3, &at, &b, 0.5, &mut want);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_a_bt_matches_reference() {
        let (m, k, n) = (80, 120, 75);
        let a = rand_vec(m * k, 31);
        let bt = rand_vec(n * k, 32);
        let mut c = rand_vec(m * n, 33);
        let mut want = c.clone();
        sgemm_a_bt(m, k, n, 0.9, &a, &bt, 1.0, &mut c);
        reference::sgemm_a_bt(m, k, n, 0.9, &a, &bt, 1.0, &mut want);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_result_is_thread_count_invariant() {
        let (m, k, n) = (150, 96, 333);
        let a = rand_vec(m * k, 41);
        let b = rand_vec(k * n, 42);
        let mut c1 = vec![0.0; m * n];
        let mut c8 = vec![0.0; m * n];
        crate::par::set_max_threads(1);
        sgemm(m, k, n, 1.0, &a, &b, 0.0, &mut c1);
        crate::par::set_max_threads(8);
        sgemm(m, k, n, 1.0, &a, &b, 0.0, &mut c8);
        crate::par::set_max_threads(0);
        assert_eq!(c1, c8, "tiling must make results bitwise thread-invariant");
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        let mut c = vec![10.0];
        // 1x2 @ 2x1 = [11]; c = 2*11 + 0.5*10 = 27
        sgemm(1, 2, 1, 2.0, &a, &b, 0.5, &mut c);
        assert!((c[0] - 27.0).abs() < 1e-6);
    }

    #[test]
    fn alpha_zero_only_scales(){
        let a = rand_vec(40 * 50, 51);
        let b = rand_vec(50 * 60, 52);
        let mut c = vec![2.0; 40 * 60];
        sgemm(40, 50, 60, 0.0, &a, &b, 0.5, &mut c);
        assert!(c.iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn fused_epilogue_is_bit_identical_across_the_small_cutoff() {
        // Shapes straddling SMALL_FLOP_CUTOFF (32*32*32): the first two run
        // on the reference fallback, the rest on the blocked engine. On each
        // path a fused call must be *bit-identical* to the unfused call on
        // that same path followed by a separate epilogue pass, for every
        // activation kind — i.e. enabling the epilogue never changes which
        // numerical result the dispatch produces.
        let shapes = [(8, 8, 8), (32, 32, 32), (32, 32, 33), (33, 32, 32), (97, 64, 120)];
        let acts = [
            EpilogueAct::None,
            EpilogueAct::Relu,
            EpilogueAct::HardSwish,
            EpilogueAct::HardSigmoid,
        ];
        for &(m, k, n) in &shapes {
            let a = rand_vec(m * k, 61);
            let b = rand_vec(k * n, 62);
            let bias = rand_vec(m, 63);
            for act in acts {
                for with_bias in [false, true] {
                    let epi = Epilogue::new(with_bias.then_some(&bias[..]), act);
                    let mut fused = vec![0.0; m * n];
                    sgemm_fused(m, k, n, 1.0, &a, &b, &mut fused, &epi);
                    let mut want = vec![0.0; m * n];
                    sgemm(m, k, n, 1.0, &a, &b, 0.0, &mut want);
                    epi.apply_rows(m, n, &mut want);
                    assert_eq!(
                        fused, want,
                        "({m},{k},{n}) act={act:?} bias={with_bias}: fused must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn prepacked_is_bit_identical_to_per_call_packing() {
        // The persistent pack uses the same pack_a layout the engine builds
        // per call, so the micro-kernel consumes identical panels and the
        // result is bitwise equal — including M/K edges that pad panels.
        for &(m, k, n) in &[(97, 130, 101), (200, 300, 65), (6, 520, 300)] {
            let a = rand_vec(m * k, 71);
            let b = rand_vec(k * n, 72);
            let bias = rand_vec(m, 73);
            let epi = Epilogue::new(Some(&bias), EpilogueAct::HardSwish);
            let mut fused = vec![0.0; m * n];
            sgemm_fused(m, k, n, 1.0, &a, &b, &mut fused, &epi);
            let pa = PackedGemmA::pack(m, k, &a);
            assert_eq!(pa.m(), m);
            assert_eq!(pa.k(), k);
            assert!(pa.bytes() >= m * k * 4);
            let mut packed = vec![0.0; m * n];
            sgemm_prepacked(&pa, n, &b, &mut packed, &epi);
            assert_eq!(packed, fused, "({m},{k},{n}): prepacked must match per-call packing bitwise");
        }
    }

    #[test]
    fn prepacked_result_is_thread_count_invariant() {
        let (m, k, n) = (150, 96, 333);
        let a = rand_vec(m * k, 81);
        let b = rand_vec(k * n, 82);
        let bias = rand_vec(m, 83);
        let pa = PackedGemmA::pack(m, k, &a);
        let epi = Epilogue::new(Some(&bias), EpilogueAct::Relu);
        let mut c1 = vec![0.0; m * n];
        let mut c8 = vec![0.0; m * n];
        crate::par::set_max_threads(1);
        sgemm_prepacked(&pa, n, &b, &mut c1, &epi);
        crate::par::set_max_threads(8);
        sgemm_prepacked(&pa, n, &b, &mut c8, &epi);
        crate::par::set_max_threads(0);
        assert_eq!(c1, c8);
    }

    #[test]
    fn epilogue_math_matches_the_definitions() {
        let bias = [1.0f32];
        let e = Epilogue::new(Some(&bias), EpilogueAct::HardSwish);
        // v=2, +bias=3 -> hswish(3) = 3*6/6... clamp(6,0,6)=6 -> 3.0
        assert_eq!(e.apply(0, 2.0), 3.0);
        assert_eq!(EpilogueAct::Relu.apply(-2.0), 0.0);
        assert_eq!(EpilogueAct::HardSigmoid.apply(3.0), 1.0);
        assert_eq!(EpilogueAct::None.apply(-7.5), -7.5);
    }

    #[test]
    fn at_b_matches_naive() {
        let (m, k, n) = (5, 7, 3);
        let at = rand_vec(k * m, 3); // stored as [k, m]
        let b = rand_vec(k * n, 4);
        let mut c = vec![0.0; m * n];
        sgemm_at_b(m, k, n, 1.0, &at, &b, 0.0, &mut c);
        // Build a = at^T and compare.
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let want = naive(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn a_bt_matches_naive() {
        let (m, k, n) = (4, 6, 5);
        let a = rand_vec(m * k, 5);
        let bt = rand_vec(n * k, 6); // stored as [n, k]
        let mut c = vec![0.0; m * n];
        sgemm_a_bt(m, k, n, 1.0, &a, &bt, 0.0, &mut c);
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let want = naive(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}
