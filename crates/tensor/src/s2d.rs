//! SpaceToDepth / DepthToSpace: the invertible, parameter-free rearrangement
//! used as RevBiFPN's stem (Ridnik et al. 2021; Shi et al. 2016).
//!
//! `space_to_depth` with block `b` maps `[n, c, h, w]` to
//! `[n, c*b*b, h/b, w/b]`; each output channel group holds one `(dy, dx)`
//! phase of the input. The transform is a bijection, so its inverse
//! (`depth_to_space`) is also its gradient adjoint.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Output shape of [`space_to_depth`].
///
/// # Panics
///
/// Panics if `b == 0` or the spatial dims are not divisible by `b`.
pub fn space_to_depth_shape(x: Shape, b: usize) -> Shape {
    assert!(b > 0, "block size must be positive");
    assert!(
        x.h.is_multiple_of(b) && x.w.is_multiple_of(b),
        "spatial dims {x} must be divisible by block {b}"
    );
    Shape::new(x.n, x.c * b * b, x.h / b, x.w / b)
}

/// Rearranges spatial blocks into channels.
///
/// Channel ordering: output channel `c_out = (c_in * b + dy) * b + dx`, i.e.
/// all phases of input channel 0 first, then channel 1, etc.
///
/// # Panics
///
/// See [`space_to_depth_shape`].
pub fn space_to_depth(x: &Tensor, b: usize) -> Tensor {
    let xs = x.shape();
    let os = space_to_depth_shape(xs, b);
    let mut out = Tensor::zeros(os);
    for n in 0..xs.n {
        for c in 0..xs.c {
            for dy in 0..b {
                for dx in 0..b {
                    let co = (c * b + dy) * b + dx;
                    for oy in 0..os.h {
                        for ox in 0..os.w {
                            out.set(n, co, oy, ox, x.at(n, c, oy * b + dy, ox * b + dx));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Inverse of [`space_to_depth`] (also its gradient adjoint, since the map
/// is an orthonormal permutation).
///
/// # Panics
///
/// Panics if channels are not divisible by `b*b`.
pub fn depth_to_space(y: &Tensor, b: usize) -> Tensor {
    let ys = y.shape();
    assert!(b > 0, "block size must be positive");
    assert_eq!(ys.c % (b * b), 0, "channels must be divisible by block^2");
    let xs = Shape::new(ys.n, ys.c / (b * b), ys.h * b, ys.w * b);
    let mut out = Tensor::zeros(xs);
    for n in 0..xs.n {
        for c in 0..xs.c {
            for dy in 0..b {
                for dx in 0..b {
                    let co = (c * b + dy) * b + dx;
                    for oy in 0..ys.h {
                        for ox in 0..ys.w {
                            out.set(n, c, oy * b + dy, ox * b + dx, y.at(n, co, oy, ox));
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_math() {
        let s = space_to_depth_shape(Shape::new(2, 3, 8, 8), 4);
        assert_eq!(s, Shape::new(2, 48, 2, 2));
    }

    #[test]
    fn known_values_b2() {
        // 1 channel, 2x2 image -> 4 channels of 1x1.
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = space_to_depth(&x, 2);
        assert_eq!(y.shape(), Shape::new(1, 4, 1, 1));
        // Phase order: (dy=0,dx=0), (0,1), (1,0), (1,1)
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn roundtrip_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        for &b in &[2usize, 3, 4] {
            let x = Tensor::randn(Shape::new(2, 3, 12, 12), 1.0, &mut rng);
            let y = space_to_depth(&x, b);
            let back = depth_to_space(&y, b);
            assert_eq!(back, x, "b={b}");
        }
    }

    #[test]
    fn preserves_energy() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(Shape::new(1, 3, 8, 8), 1.0, &mut rng);
        let y = space_to_depth(&x, 4);
        assert!((x.sq_sum() - y.sq_sum()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_spatial_panics() {
        let x = Tensor::zeros(Shape::new(1, 1, 7, 8));
        let _ = space_to_depth(&x, 2);
    }
}
