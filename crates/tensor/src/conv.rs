//! 2-D convolution: forward and exact backward, with fast paths for the two
//! shapes RevBiFPN uses constantly (1x1 pointwise and depthwise) and a
//! general im2col path for everything else (dense 3x3 stems, baselines).

use crate::matmul::{sgemm, sgemm_a_bt, sgemm_at_b};
use crate::par::{parallel_map_reduce, parallel_over_slices};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution.
///
/// Weights are `[c_out, c_in / groups, kh, kw]`; `groups == c_in == c_out`
/// is a depthwise convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Vertical stride.
    pub sh: usize,
    /// Horizontal stride.
    pub sw: usize,
    /// Vertical zero-padding (both sides).
    pub ph: usize,
    /// Horizontal zero-padding (both sides).
    pub pw: usize,
    /// Channel groups.
    pub groups: usize,
}

impl ConvSpec {
    /// Square-kernel spec with "same"-style padding `k / 2`.
    pub fn kxk(k: usize, stride: usize) -> Self {
        Self { kh: k, kw: k, sh: stride, sw: stride, ph: k / 2, pw: k / 2, groups: 1 }
    }

    /// 1x1 pointwise convolution.
    pub fn pointwise() -> Self {
        Self::kxk(1, 1)
    }

    /// Depthwise square-kernel spec for `c` channels.
    pub fn depthwise(k: usize, stride: usize, c: usize) -> Self {
        Self { groups: c, ..Self::kxk(k, stride) }
    }

    /// Returns a copy with explicit padding.
    pub fn with_padding(mut self, ph: usize, pw: usize) -> Self {
        self.ph = ph;
        self.pw = pw;
        self
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.ph).saturating_sub(self.kh) / self.sh + 1;
        let ow = (w + 2 * self.pw).saturating_sub(self.kw) / self.sw + 1;
        (oh, ow)
    }

    /// Output shape for input `x` and `c_out` output channels.
    pub fn out_shape(&self, x: Shape, c_out: usize) -> Shape {
        let (oh, ow) = self.out_hw(x.h, x.w);
        Shape::new(x.n, c_out, oh, ow)
    }

    /// Multiply-accumulate count of the forward pass.
    pub fn macs(&self, x: Shape, c_out: usize) -> u64 {
        let (oh, ow) = self.out_hw(x.h, x.w);
        (x.n * oh * ow * c_out * (x.c / self.groups) * self.kh * self.kw) as u64
    }

    fn is_pointwise(&self) -> bool {
        self.kh == 1 && self.kw == 1 && self.sh == 1 && self.sw == 1 && self.ph == 0 && self.pw == 0 && self.groups == 1
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug)]
pub struct ConvGrads {
    /// Gradient w.r.t. the input (present unless `need_dx` was false).
    pub dx: Option<Tensor>,
    /// Gradient w.r.t. the weights.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias (per output channel).
    pub db: Tensor,
}

fn check_conv_args(x: &Tensor, w: &Tensor, spec: &ConvSpec) {
    let xs = x.shape();
    let ws = w.shape();
    assert_eq!(xs.c % spec.groups, 0, "input channels not divisible by groups");
    assert_eq!(ws.n % spec.groups, 0, "output channels not divisible by groups");
    assert_eq!(ws.c, xs.c / spec.groups, "weight c_in/groups mismatch: {ws} vs input {xs}");
    assert_eq!((ws.h, ws.w), (spec.kh, spec.kw), "weight kernel size mismatch");
}

/// Convolution forward pass.
///
/// # Panics
///
/// Panics if weight/bias shapes disagree with `spec` and `x`.
pub fn conv2d(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, spec: &ConvSpec) -> Tensor {
    check_conv_args(x, w, spec);
    let xs = x.shape();
    let c_out = w.shape().n;
    let out_shape = spec.out_shape(xs, c_out);
    let mut out = Tensor::zeros(out_shape);
    if spec.is_pointwise() {
        pointwise_forward(x, w, &mut out);
    } else if spec.groups == xs.c && c_out == xs.c {
        depthwise_forward(x, w, spec, &mut out);
    } else {
        general_forward(x, w, spec, &mut out);
    }
    if let Some(b) = bias {
        out.add_channel_bias(b);
    }
    out
}

/// Convolution backward pass.
///
/// `dy` must have the shape [`ConvSpec::out_shape`] produces for `x`.
/// Set `need_dx = false` at the first layer of a network to skip the
/// (useless) input-gradient computation.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_backward(x: &Tensor, w: &Tensor, dy: &Tensor, spec: &ConvSpec, need_dx: bool) -> ConvGrads {
    check_conv_args(x, w, spec);
    let c_out = w.shape().n;
    assert_eq!(dy.shape(), spec.out_shape(x.shape(), c_out), "dy shape mismatch");
    let db = dy.sum_per_channel();
    if spec.is_pointwise() {
        let (dx, dw) = pointwise_backward(x, w, dy, need_dx);
        ConvGrads { dx, dw, db }
    } else if spec.groups == x.shape().c && c_out == x.shape().c {
        let (dx, dw) = depthwise_backward(x, w, dy, spec, need_dx);
        ConvGrads { dx, dw, db }
    } else {
        let (dx, dw) = general_backward(x, w, dy, spec, need_dx);
        ConvGrads { dx, dw, db }
    }
}

// ---------------------------------------------------------------- pointwise

fn pointwise_forward(x: &Tensor, w: &Tensor, out: &mut Tensor) {
    let xs = x.shape();
    let c_out = w.shape().n;
    let hw = xs.hw();
    let chw_in = xs.chw();
    let chw_out = out.shape().chw();
    let xdata = x.data();
    let wdata = w.data();
    let slices: Vec<&mut [f32]> = out.data_mut().chunks_mut(chw_out).collect();
    parallel_over_slices(slices, |n, yslice| {
        let xn = &xdata[n * chw_in..(n + 1) * chw_in];
        // y [c_out, hw] = w [c_out, c_in] @ x [c_in, hw]
        sgemm(c_out, xs.c, hw, 1.0, wdata, xn, 0.0, yslice);
    });
}

fn pointwise_backward(x: &Tensor, w: &Tensor, dy: &Tensor, need_dx: bool) -> (Option<Tensor>, Tensor) {
    let xs = x.shape();
    let c_out = w.shape().n;
    let hw = xs.hw();
    let chw_in = xs.chw();
    let chw_out = dy.shape().chw();
    let xdata = x.data();
    let wdata = w.data();
    let dydata = dy.data();

    // dw [c_out, c_in] = sum_n dy_n [c_out, hw] @ x_n^T [hw, c_in]
    let mut dw = Tensor::zeros(w.shape());
    parallel_map_reduce(
        xs.n,
        |a, b| {
            let mut part = vec![0.0f32; c_out * xs.c];
            for n in a..b {
                let dyn_ = &dydata[n * chw_out..(n + 1) * chw_out];
                let xn = &xdata[n * chw_in..(n + 1) * chw_in];
                sgemm_a_bt(c_out, hw, xs.c, 1.0, dyn_, xn, 1.0, &mut part);
            }
            part
        },
        &mut dw,
        |acc, part| {
            for (a, p) in acc.data_mut().iter_mut().zip(part) {
                *a += p;
            }
        },
    );

    let dx = if need_dx {
        let mut dx = Tensor::zeros(xs);
        let slices: Vec<&mut [f32]> = dx.data_mut().chunks_mut(chw_in).collect();
        parallel_over_slices(slices, |n, dxslice| {
            let dyn_ = &dydata[n * chw_out..(n + 1) * chw_out];
            // dx [c_in, hw] = w^T [c_in, c_out] @ dy [c_out, hw]
            sgemm_at_b(xs.c, c_out, hw, 1.0, wdata, dyn_, 0.0, dxslice);
        });
        Some(dx)
    } else {
        None
    };
    (dx, dw)
}

// ---------------------------------------------------------------- depthwise

fn depthwise_forward(x: &Tensor, w: &Tensor, spec: &ConvSpec, out: &mut Tensor) {
    let xs = x.shape();
    let os = out.shape();
    let (oh, ow) = (os.h, os.w);
    let xdata = x.data();
    let wdata = w.data();
    let chw_out = os.chw();
    let slices: Vec<&mut [f32]> = out.data_mut().chunks_mut(chw_out).collect();
    parallel_over_slices(slices, |n, yslice| {
        for c in 0..xs.c {
            let xplane = &xdata[(n * xs.c + c) * xs.hw()..(n * xs.c + c + 1) * xs.hw()];
            let kern = &wdata[c * spec.kh * spec.kw..(c + 1) * spec.kh * spec.kw];
            let yplane = &mut yslice[c * oh * ow..(c + 1) * oh * ow];
            for oy in 0..oh {
                let iy0 = (oy * spec.sh) as isize - spec.ph as isize;
                for ox in 0..ow {
                    let ix0 = (ox * spec.sw) as isize - spec.pw as isize;
                    let mut acc = 0.0f32;
                    for ky in 0..spec.kh {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= xs.h as isize {
                            continue;
                        }
                        let xrow = &xplane[iy as usize * xs.w..(iy as usize + 1) * xs.w];
                        let krow = &kern[ky * spec.kw..(ky + 1) * spec.kw];
                        for kx in 0..spec.kw {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= xs.w as isize {
                                continue;
                            }
                            acc += xrow[ix as usize] * krow[kx];
                        }
                    }
                    yplane[oy * ow + ox] = acc;
                }
            }
        }
    });
}

fn depthwise_backward(
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
    spec: &ConvSpec,
    need_dx: bool,
) -> (Option<Tensor>, Tensor) {
    let xs = x.shape();
    let os = dy.shape();
    let (oh, ow) = (os.h, os.w);
    let xdata = x.data();
    let wdata = w.data();
    let dydata = dy.data();
    let ksz = spec.kh * spec.kw;

    let mut dw = Tensor::zeros(w.shape());
    parallel_map_reduce(
        xs.n,
        |a, b| {
            let mut part = vec![0.0f32; xs.c * ksz];
            for n in a..b {
                for c in 0..xs.c {
                    let xplane = &xdata[(n * xs.c + c) * xs.hw()..(n * xs.c + c + 1) * xs.hw()];
                    let dyplane = &dydata[(n * os.c + c) * oh * ow..(n * os.c + c + 1) * oh * ow];
                    let dkern = &mut part[c * ksz..(c + 1) * ksz];
                    for oy in 0..oh {
                        let iy0 = (oy * spec.sh) as isize - spec.ph as isize;
                        for ox in 0..ow {
                            let g = dyplane[oy * ow + ox];
                            if g == 0.0 {
                                continue;
                            }
                            let ix0 = (ox * spec.sw) as isize - spec.pw as isize;
                            for ky in 0..spec.kh {
                                let iy = iy0 + ky as isize;
                                if iy < 0 || iy >= xs.h as isize {
                                    continue;
                                }
                                for kx in 0..spec.kw {
                                    let ix = ix0 + kx as isize;
                                    if ix < 0 || ix >= xs.w as isize {
                                        continue;
                                    }
                                    dkern[ky * spec.kw + kx] += g * xplane[iy as usize * xs.w + ix as usize];
                                }
                            }
                        }
                    }
                }
            }
            part
        },
        &mut dw,
        |acc, part| {
            for (a, p) in acc.data_mut().iter_mut().zip(part) {
                *a += p;
            }
        },
    );

    let dx = if need_dx {
        let mut dx = Tensor::zeros(xs);
        let chw_in = xs.chw();
        let slices: Vec<&mut [f32]> = dx.data_mut().chunks_mut(chw_in).collect();
        parallel_over_slices(slices, |n, dxslice| {
            for c in 0..xs.c {
                let dyplane = &dydata[(n * os.c + c) * oh * ow..(n * os.c + c + 1) * oh * ow];
                let kern = &wdata[c * ksz..(c + 1) * ksz];
                let dxplane = &mut dxslice[c * xs.hw()..(c + 1) * xs.hw()];
                for oy in 0..oh {
                    let iy0 = (oy * spec.sh) as isize - spec.ph as isize;
                    for ox in 0..ow {
                        let g = dyplane[oy * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        let ix0 = (ox * spec.sw) as isize - spec.pw as isize;
                        for ky in 0..spec.kh {
                            let iy = iy0 + ky as isize;
                            if iy < 0 || iy >= xs.h as isize {
                                continue;
                            }
                            for kx in 0..spec.kw {
                                let ix = ix0 + kx as isize;
                                if ix < 0 || ix >= xs.w as isize {
                                    continue;
                                }
                                dxplane[iy as usize * xs.w + ix as usize] += g * kern[ky * spec.kw + kx];
                            }
                        }
                    }
                }
            }
        });
        Some(dx)
    } else {
        None
    };
    (dx, dw)
}

// ------------------------------------------------------------------ general

fn im2col(xn: &[f32], xs: Shape, spec: &ConvSpec, c0: usize, c1: usize, oh: usize, ow: usize, col: &mut [f32]) {
    // col: [(c1-c0) * kh * kw, oh * ow]
    let ohw = oh * ow;
    let mut row = 0;
    for c in c0..c1 {
        let xplane = &xn[c * xs.hw()..(c + 1) * xs.hw()];
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let dst = &mut col[row * ohw..(row + 1) * ohw];
                for oy in 0..oh {
                    let iy = (oy * spec.sh + ky) as isize - spec.ph as isize;
                    let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= xs.h as isize {
                        dst_row.iter_mut().for_each(|v| *v = 0.0);
                        continue;
                    }
                    let xrow = &xplane[iy as usize * xs.w..(iy as usize + 1) * xs.w];
                    for (ox, d) in dst_row.iter_mut().enumerate() {
                        let ix = (ox * spec.sw + kx) as isize - spec.pw as isize;
                        *d = if ix < 0 || ix >= xs.w as isize { 0.0 } else { xrow[ix as usize] };
                    }
                }
                row += 1;
            }
        }
    }
}

fn col2im(col: &[f32], xs: Shape, spec: &ConvSpec, c0: usize, c1: usize, oh: usize, ow: usize, dxn: &mut [f32]) {
    let ohw = oh * ow;
    let mut row = 0;
    for c in c0..c1 {
        let dxplane = &mut dxn[c * xs.hw()..(c + 1) * xs.hw()];
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let src = &col[row * ohw..(row + 1) * ohw];
                for oy in 0..oh {
                    let iy = (oy * spec.sh + ky) as isize - spec.ph as isize;
                    if iy < 0 || iy >= xs.h as isize {
                        continue;
                    }
                    let src_row = &src[oy * ow..(oy + 1) * ow];
                    for (ox, &s) in src_row.iter().enumerate() {
                        let ix = (ox * spec.sw + kx) as isize - spec.pw as isize;
                        if ix < 0 || ix >= xs.w as isize {
                            continue;
                        }
                        dxplane[iy as usize * xs.w + ix as usize] += s;
                    }
                }
                row += 1;
            }
        }
    }
}

fn general_forward(x: &Tensor, w: &Tensor, spec: &ConvSpec, out: &mut Tensor) {
    let xs = x.shape();
    let os = out.shape();
    let (oh, ow) = (os.h, os.w);
    let c_out = os.c;
    let cin_g = xs.c / spec.groups;
    let cout_g = c_out / spec.groups;
    let k = cin_g * spec.kh * spec.kw;
    let xdata = x.data();
    let wdata = w.data();
    let chw_in = xs.chw();
    let chw_out = os.chw();
    let slices: Vec<&mut [f32]> = out.data_mut().chunks_mut(chw_out).collect();
    parallel_over_slices(slices, |n, yslice| {
        let xn = &xdata[n * chw_in..(n + 1) * chw_in];
        let mut col = vec![0.0f32; k * oh * ow];
        for g in 0..spec.groups {
            im2col(xn, xs, spec, g * cin_g, (g + 1) * cin_g, oh, ow, &mut col);
            let wg = &wdata[g * cout_g * k..(g + 1) * cout_g * k];
            let yg = &mut yslice[g * cout_g * oh * ow..(g + 1) * cout_g * oh * ow];
            sgemm(cout_g, k, oh * ow, 1.0, wg, &col, 0.0, yg);
        }
    });
}

fn general_backward(x: &Tensor, w: &Tensor, dy: &Tensor, spec: &ConvSpec, need_dx: bool) -> (Option<Tensor>, Tensor) {
    let xs = x.shape();
    let os = dy.shape();
    let (oh, ow) = (os.h, os.w);
    let cin_g = xs.c / spec.groups;
    let cout_g = os.c / spec.groups;
    let k = cin_g * spec.kh * spec.kw;
    let ohw = oh * ow;
    let xdata = x.data();
    let wdata = w.data();
    let dydata = dy.data();
    let chw_in = xs.chw();
    let chw_out = os.chw();

    let mut dw = Tensor::zeros(w.shape());
    let mut dx = if need_dx { Some(Tensor::zeros(xs)) } else { None };

    // dx per batch item is independent -> parallel; dw reduced across batch.
    struct Part {
        dw: Vec<f32>,
    }
    let dx_ptr: Option<Vec<&mut [f32]>> = dx.as_mut().map(|t| t.data_mut().chunks_mut(chw_in).collect());
    match dx_ptr {
        Some(dx_slices) => {
            // Process batch items in parallel, each computing its dx slice and a dw partial.
            let dw_acc = parking_slices_run(dx_slices, |n, dxslice| {
                let xn = &xdata[n * chw_in..(n + 1) * chw_in];
                let dyn_ = &dydata[n * chw_out..(n + 1) * chw_out];
                let mut col = vec![0.0f32; k * ohw];
                let mut dcol = vec![0.0f32; k * ohw];
                let mut dw_part = vec![0.0f32; dw_len(w)];
                for g in 0..spec.groups {
                    im2col(xn, xs, spec, g * cin_g, (g + 1) * cin_g, oh, ow, &mut col);
                    let dyg = &dyn_[g * cout_g * ohw..(g + 1) * cout_g * ohw];
                    let dwg = &mut dw_part[g * cout_g * k..(g + 1) * cout_g * k];
                    sgemm_a_bt(cout_g, ohw, k, 1.0, dyg, &col, 1.0, dwg);
                    let wg = &wdata[g * cout_g * k..(g + 1) * cout_g * k];
                    sgemm_at_b(k, cout_g, ohw, 1.0, wg, dyg, 0.0, &mut dcol);
                    col2im(&dcol, xs, spec, g * cin_g, (g + 1) * cin_g, oh, ow, dxslice);
                }
                Part { dw: dw_part }
            });
            for p in dw_acc {
                for (a, b) in dw.data_mut().iter_mut().zip(p.dw) {
                    *a += b;
                }
            }
        }
        None => {
            parallel_map_reduce(
                xs.n,
                |a, b| {
                    let mut dw_part = vec![0.0f32; dw_len(w)];
                    let mut col = vec![0.0f32; k * ohw];
                    for n in a..b {
                        let xn = &xdata[n * chw_in..(n + 1) * chw_in];
                        let dyn_ = &dydata[n * chw_out..(n + 1) * chw_out];
                        for g in 0..spec.groups {
                            im2col(xn, xs, spec, g * cin_g, (g + 1) * cin_g, oh, ow, &mut col);
                            let dyg = &dyn_[g * cout_g * ohw..(g + 1) * cout_g * ohw];
                            let dwg = &mut dw_part[g * cout_g * k..(g + 1) * cout_g * k];
                            sgemm_a_bt(cout_g, ohw, k, 1.0, dyg, &col, 1.0, dwg);
                        }
                    }
                    dw_part
                },
                &mut dw,
                |acc, part| {
                    for (a, b) in acc.data_mut().iter_mut().zip(part) {
                        *a += b;
                    }
                },
            );
        }
    }
    (dx, dw)
}

fn dw_len(w: &Tensor) -> usize {
    w.shape().numel()
}

/// Runs `f` over per-item mutable slices, collecting each item's return value.
fn parking_slices_run<T: Send, F>(slices: Vec<&mut [f32]>, f: F) -> Vec<T>
where
    F: Fn(usize, &mut [f32]) -> T + Sync,
{
    let items = slices.len();
    let threads = crate::par::num_threads_for(items);
    if threads <= 1 {
        return slices.into_iter().enumerate().map(|(i, s)| f(i, s)).collect();
    }
    let chunk = items.div_ceil(threads);
    let mut partitions: Vec<Vec<(usize, &mut [f32])>> = Vec::new();
    let mut current: Vec<(usize, &mut [f32])> = Vec::new();
    for (i, s) in slices.into_iter().enumerate() {
        current.push((i, s));
        if current.len() == chunk {
            partitions.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        partitions.push(current);
    }
    let nested = crossbeam::scope(|scope| {
        let handles: Vec<_> = partitions
            .into_iter()
            .map(|part| {
                let f = &f;
                scope.spawn(move |_| part.into_iter().map(|(i, s)| f(i, s)).collect::<Vec<T>>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("conv worker panicked")).collect::<Vec<Vec<T>>>()
    })
    .expect("conv scope failed");
    nested.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference direct convolution for verification.
    fn conv_ref(x: &Tensor, w: &Tensor, b: Option<&Tensor>, spec: &ConvSpec) -> Tensor {
        let xs = x.shape();
        let c_out = w.shape().n;
        let os = spec.out_shape(xs, c_out);
        let cin_g = xs.c / spec.groups;
        let cout_g = c_out / spec.groups;
        let mut out = Tensor::zeros(os);
        for n in 0..xs.n {
            for co in 0..c_out {
                let g = co / cout_g;
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let mut acc = b.map(|bb| bb.data()[co]).unwrap_or(0.0);
                        for ci in 0..cin_g {
                            for ky in 0..spec.kh {
                                for kx in 0..spec.kw {
                                    let iy = (oy * spec.sh + ky) as isize - spec.ph as isize;
                                    let ix = (ox * spec.sw + kx) as isize - spec.pw as isize;
                                    if iy < 0 || iy >= xs.h as isize || ix < 0 || ix >= xs.w as isize {
                                        continue;
                                    }
                                    acc += x.at(n, g * cin_g + ci, iy as usize, ix as usize)
                                        * w.at(co, ci, ky, kx);
                                }
                            }
                        }
                        out.set(n, co, oy, ox, acc);
                    }
                }
            }
        }
        out
    }

    fn finite_diff_check(x: &Tensor, w: &Tensor, spec: &ConvSpec) {
        // Loss = sum(conv(x, w) * m) for random m; compare analytic vs numeric grads.
        let mut rng = StdRng::seed_from_u64(42);
        let y0 = conv2d(x, w, None, spec);
        let m = Tensor::uniform(y0.shape(), -1.0, 1.0, &mut rng);
        let grads = conv2d_backward(x, w, &m, spec, true);
        let eps = 1e-2f32;

        // Check a handful of weight coordinates.
        let mut wp = w.clone();
        for idx in [0usize, w.shape().numel() / 2, w.shape().numel() - 1] {
            let orig = wp.data()[idx];
            wp.data_mut()[idx] = orig + eps;
            let lp = (&conv2d(x, &wp, None, spec) * &m).sum();
            wp.data_mut()[idx] = orig - eps;
            let lm = (&conv2d(x, &wp, None, spec) * &m).sum();
            wp.data_mut()[idx] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let ana = grads.dw.data()[idx];
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "dw[{idx}] num={num} ana={ana}");
        }
        // And a couple of input coordinates.
        let mut xp = x.clone();
        for idx in [0usize, x.shape().numel() - 1] {
            let orig = xp.data()[idx];
            xp.data_mut()[idx] = orig + eps;
            let lp = (&conv2d(&xp, w, None, spec) * &m).sum();
            xp.data_mut()[idx] = orig - eps;
            let lm = (&conv2d(&xp, w, None, spec) * &m).sum();
            xp.data_mut()[idx] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let ana = grads.dx.as_ref().unwrap().data()[idx];
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "dx[{idx}] num={num} ana={ana}");
        }
    }

    #[test]
    fn out_shape_math() {
        let spec = ConvSpec::kxk(3, 2);
        assert_eq!(spec.out_hw(8, 8), (4, 4));
        assert_eq!(spec.out_hw(7, 7), (4, 4));
        let pw = ConvSpec::pointwise();
        assert_eq!(pw.out_hw(5, 9), (5, 9));
    }

    #[test]
    fn macs_formula() {
        // 1x1 conv: n*h*w*cin*cout
        let spec = ConvSpec::pointwise();
        assert_eq!(spec.macs(Shape::new(2, 8, 4, 4), 16), 2 * 4 * 4 * 8 * 16);
        // depthwise 3x3: n*oh*ow*c*9
        let d = ConvSpec::depthwise(3, 1, 8);
        assert_eq!(d.macs(Shape::new(1, 8, 4, 4), 8), 4 * 4 * 8 * 9);
    }

    #[test]
    fn pointwise_matches_reference() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(2, 5, 4, 3), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(7, 5, 1, 1), 0.5, &mut rng);
        let b = Tensor::randn(Shape::vector(7), 0.5, &mut rng);
        let spec = ConvSpec::pointwise();
        let got = conv2d(&x, &w, Some(&b), &spec);
        let want = conv_ref(&x, &w, Some(&b), &spec);
        assert!(got.max_abs_diff(&want) < 1e-4);
    }

    #[test]
    fn depthwise_matches_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(k, s) in &[(3usize, 1usize), (3, 2), (5, 2), (7, 4)] {
            let x = Tensor::randn(Shape::new(2, 4, 9, 8), 1.0, &mut rng);
            let w = Tensor::randn(Shape::new(4, 1, k, k), 0.5, &mut rng);
            let spec = ConvSpec::depthwise(k, s, 4);
            let got = conv2d(&x, &w, None, &spec);
            let want = conv_ref(&x, &w, None, &spec);
            assert!(got.max_abs_diff(&want) < 1e-4, "k={k} s={s}");
        }
    }

    #[test]
    fn general_matches_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(k, s, g) in &[(3usize, 1usize, 1usize), (3, 2, 1), (5, 1, 1), (3, 1, 2)] {
            let x = Tensor::randn(Shape::new(2, 4, 7, 6), 1.0, &mut rng);
            let w = Tensor::randn(Shape::new(6, 4 / g, k, k), 0.5, &mut rng);
            let spec = ConvSpec { groups: g, ..ConvSpec::kxk(k, s) };
            let got = conv2d(&x, &w, None, &spec);
            let want = conv_ref(&x, &w, None, &spec);
            assert!(got.max_abs_diff(&want) < 1e-4, "k={k} s={s} g={g}");
        }
    }

    #[test]
    fn backward_pointwise_finite_diff() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(Shape::new(2, 3, 4, 4), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(5, 3, 1, 1), 0.5, &mut rng);
        finite_diff_check(&x, &w, &ConvSpec::pointwise());
    }

    #[test]
    fn backward_depthwise_finite_diff() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(Shape::new(2, 3, 6, 6), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(3, 1, 3, 3), 0.5, &mut rng);
        finite_diff_check(&x, &w, &ConvSpec::depthwise(3, 2, 3));
    }

    #[test]
    fn backward_general_finite_diff() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn(Shape::new(2, 4, 6, 5), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(6, 2, 3, 3), 0.5, &mut rng);
        let spec = ConvSpec { groups: 2, ..ConvSpec::kxk(3, 2) };
        finite_diff_check(&x, &w, &spec);
    }

    #[test]
    fn backward_bias_gradient() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = Tensor::randn(Shape::new(2, 3, 4, 4), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(5, 3, 1, 1), 0.5, &mut rng);
        let dy = Tensor::ones(Shape::new(2, 5, 4, 4));
        let g = conv2d_backward(&x, &w, &dy, &ConvSpec::pointwise(), false);
        // db = sum of dy over n,h,w per channel = 2*16 = 32
        assert!(g.db.data().iter().all(|&v| (v - 32.0).abs() < 1e-4));
        assert!(g.dx.is_none());
    }

    #[test]
    fn need_dx_false_matches_dw_of_full() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::randn(Shape::new(2, 4, 5, 5), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(6, 4, 3, 3), 0.5, &mut rng);
        let spec = ConvSpec::kxk(3, 1);
        let dy = Tensor::randn(spec.out_shape(x.shape(), 6), 1.0, &mut rng);
        let g1 = conv2d_backward(&x, &w, &dy, &spec, true);
        let g2 = conv2d_backward(&x, &w, &dy, &spec, false);
        assert!(g1.dw.max_abs_diff(&g2.dw) < 1e-4);
    }
}
