//! 2-D convolution: forward and exact backward, with fast paths for the two
//! shapes RevBiFPN uses constantly (1x1 pointwise and depthwise) and a
//! general im2col path for everything else (dense 3x3 stems, baselines).
//!
//! # Parallelism and determinism
//!
//! Every path parallelizes at two granularities and picks between them by
//! batch size:
//!
//! - **batch splitting** when the batch has at least one sample per worker
//!   (per-sample output slices are disjoint, inner kernels run inline);
//! - **intra-sample tiling** otherwise: the packed GEMM fans its macro-tiles
//!   out over the pool, im2col fills column rows in parallel, col2im and the
//!   depthwise kernels tile over `(sample, channel)` planes.
//!
//! Both regimes compute each output element from the same sequence of
//! operations, so `conv2d` / `conv2d_backward` results are **bitwise
//! identical for any thread count** (see `tests/determinism.rs`). Weight
//! gradients are reduced from per-*sample* partial slabs merged in a fixed
//! pairwise tree — never from per-*thread* accumulators, whose count would
//! vary with the pool size.
//!
//! Workspace buffers (im2col columns, gradient slabs) come from the
//! thread-local scratch arena ([`crate::scratch`]), so steady-state calls
//! perform no heap allocation beyond the output tensors themselves.

use crate::matmul::{sgemm, sgemm_a_bt, sgemm_at_b, sgemm_prepacked, Epilogue, EpilogueAct, PackedGemmA};
use crate::par::{num_threads_for, parallel_over_slices, parallel_tiles, SyncPtr};
use crate::qmatmul::{
    int8_act_scale, qgemm_prepacked, quantize_activations, quantize_weights_per_row, PackedGemmAI8,
    INT8_ACT_ZERO_POINT,
};
use crate::scratch;
use crate::shape::{Shape, ShapeError};
use crate::tensor::Tensor;
use std::sync::atomic::AtomicU32;

/// Geometry of a 2-D convolution.
///
/// Weights are `[c_out, c_in / groups, kh, kw]`; `groups == c_in == c_out`
/// is a depthwise convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Vertical stride.
    pub sh: usize,
    /// Horizontal stride.
    pub sw: usize,
    /// Vertical zero-padding (both sides).
    pub ph: usize,
    /// Horizontal zero-padding (both sides).
    pub pw: usize,
    /// Channel groups.
    pub groups: usize,
}

impl ConvSpec {
    /// Square-kernel spec with "same"-style padding `k / 2`.
    pub fn kxk(k: usize, stride: usize) -> Self {
        Self { kh: k, kw: k, sh: stride, sw: stride, ph: k / 2, pw: k / 2, groups: 1 }
    }

    /// 1x1 pointwise convolution.
    pub fn pointwise() -> Self {
        Self::kxk(1, 1)
    }

    /// Depthwise square-kernel spec for `c` channels.
    pub fn depthwise(k: usize, stride: usize, c: usize) -> Self {
        Self { groups: c, ..Self::kxk(k, stride) }
    }

    /// Returns a copy with explicit padding.
    pub fn with_padding(mut self, ph: usize, pw: usize) -> Self {
        self.ph = ph;
        self.pw = pw;
        self
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.ph).saturating_sub(self.kh) / self.sh + 1;
        let ow = (w + 2 * self.pw).saturating_sub(self.kw) / self.sw + 1;
        (oh, ow)
    }

    /// Output shape for input `x` and `c_out` output channels.
    pub fn out_shape(&self, x: Shape, c_out: usize) -> Shape {
        let (oh, ow) = self.out_hw(x.h, x.w);
        Shape::new(x.n, c_out, oh, ow)
    }

    /// Multiply-accumulate count of the forward pass.
    pub fn macs(&self, x: Shape, c_out: usize) -> u64 {
        let (oh, ow) = self.out_hw(x.h, x.w);
        (x.n * oh * ow * c_out * (x.c / self.groups) * self.kh * self.kw) as u64
    }

    fn is_pointwise(&self) -> bool {
        self.kh == 1 && self.kw == 1 && self.sh == 1 && self.sw == 1 && self.ph == 0 && self.pw == 0 && self.groups == 1
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug)]
pub struct ConvGrads {
    /// Gradient w.r.t. the input (present unless `need_dx` was false).
    pub dx: Option<Tensor>,
    /// Gradient w.r.t. the weights.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias (per output channel).
    pub db: Tensor,
}

fn check_conv_args(x: &Tensor, w: &Tensor, spec: &ConvSpec) -> Result<(), ShapeError> {
    let xs = x.shape();
    let ws = w.shape();
    if spec.groups == 0 || spec.kh == 0 || spec.kw == 0 || spec.sh == 0 || spec.sw == 0 {
        return Err(ShapeError::ZeroWindow { what: "conv2d kernel/stride/groups" });
    }
    if !xs.c.is_multiple_of(spec.groups) {
        return Err(ShapeError::Indivisible {
            what: "conv2d input channels vs groups",
            value: xs.c,
            divisor: spec.groups,
        });
    }
    if !ws.n.is_multiple_of(spec.groups) {
        return Err(ShapeError::Indivisible {
            what: "conv2d output channels vs groups",
            value: ws.n,
            divisor: spec.groups,
        });
    }
    if ws.c != xs.c / spec.groups || (ws.h, ws.w) != (spec.kh, spec.kw) {
        return Err(ShapeError::DimMismatch {
            what: "conv2d weight shape (c_in/groups, kh, kw)",
            expected: Shape::new(ws.n, xs.c / spec.groups, spec.kh, spec.kw),
            got: ws,
        });
    }
    // The spatial output must be non-empty: padded input at least one kernel.
    if xs.h + 2 * spec.ph < spec.kh || xs.w + 2 * spec.pw < spec.kw {
        return Err(ShapeError::DimMismatch {
            what: "conv2d input smaller than kernel",
            expected: Shape::new(xs.n, xs.c, spec.kh.saturating_sub(2 * spec.ph), spec.kw.saturating_sub(2 * spec.pw)),
            got: xs,
        });
    }
    Ok(())
}

/// Convolution forward pass.
///
/// # Panics
///
/// Panics if weight/bias shapes disagree with `spec` and `x`. Untrusted
/// inputs should go through [`try_conv2d`].
pub fn conv2d(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, spec: &ConvSpec) -> Tensor {
    try_conv2d(x, w, bias, spec).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`conv2d`]: shape-contract violations come back as
/// [`ShapeError`] values instead of panics.
///
/// # Errors
///
/// Returns an error if weight/bias shapes disagree with `spec` and `x`, or
/// if the padded input is smaller than the kernel.
pub fn try_conv2d(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    spec: &ConvSpec,
) -> Result<Tensor, ShapeError> {
    check_conv_args(x, w, spec)?;
    let xs = x.shape();
    let c_out = w.shape().n;
    let out_shape = spec.out_shape(xs, c_out);
    let mut out = Tensor::zeros(out_shape);
    if spec.is_pointwise() {
        pointwise_forward(x, w, &mut out);
    } else if spec.groups == xs.c && c_out == xs.c {
        depthwise_forward(x, w, spec, &mut out);
    } else {
        general_forward(x, w, spec, &mut out);
    }
    if let Some(b) = bias {
        if b.shape().c != c_out || b.shape().numel() != c_out {
            return Err(ShapeError::DimMismatch {
                what: "conv2d bias shape",
                expected: Shape::vector(c_out),
                got: b.shape(),
            });
        }
        out.add_channel_bias(b);
    }
    Ok(out)
}

/// Convolution backward pass.
///
/// `dy` must have the shape [`ConvSpec::out_shape`] produces for `x`.
/// Set `need_dx = false` at the first layer of a network to skip the
/// (useless) input-gradient computation.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_backward(x: &Tensor, w: &Tensor, dy: &Tensor, spec: &ConvSpec, need_dx: bool) -> ConvGrads {
    check_conv_args(x, w, spec).unwrap_or_else(|e| panic!("{e}"));
    let c_out = w.shape().n;
    assert_eq!(dy.shape(), spec.out_shape(x.shape(), c_out), "dy shape mismatch");
    let db = bias_grad(dy);
    if spec.is_pointwise() {
        let (dx, dw) = pointwise_backward(x, w, dy, need_dx);
        ConvGrads { dx, dw, db }
    } else if spec.groups == x.shape().c && c_out == x.shape().c {
        let (dx, dw) = depthwise_backward(x, w, dy, spec, need_dx);
        ConvGrads { dx, dw, db }
    } else {
        let (dx, dw) = general_backward(x, w, dy, spec, need_dx);
        ConvGrads { dx, dw, db }
    }
}

// ------------------------------------------------------------- frozen plans

/// Dispatch-specific payload of a [`ConvPlan`]. Public so frozen-model
/// artifacts can disassemble and rebuild plans without re-packing weights.
#[derive(Clone, Debug)]
pub enum PlanKind {
    /// `[c_out, c_in]` weights packed once as the GEMM left operand.
    Pointwise(PackedGemmA),
    /// Depthwise kernels kept raw (the plane kernel consumes them directly);
    /// bias and activation are applied plane-at-a-time while hot.
    Depthwise {
        /// Raw `[c, kh, kw]` depthwise taps.
        weight: Vec<f32>,
    },
    /// One packed left operand per group for the im2col path.
    General {
        /// Per-group packed operands, group-major.
        groups: Vec<PackedGemmA>,
    },
}

/// A convolution compiled for frozen inference: weights pre-packed into the
/// blocked GEMM's panel layout exactly once, with the per-channel bias and
/// activation fused into the kernel write-back.
///
/// The plan is immutable after construction — repeated [`ConvPlan::forward`]
/// calls never re-pack weights; only the per-call im2col columns and the
/// GEMM's B panels go through the thread-local scratch arena.
#[derive(Clone, Debug)]
pub struct ConvPlan {
    spec: ConvSpec,
    c_in: usize,
    c_out: usize,
    bias: Vec<f32>,
    act: EpilogueAct,
    kind: PlanKind,
}

impl ConvPlan {
    /// Compiles a plan from folded weights `[c_out, c_in/groups, kh, kw]`,
    /// a per-channel bias (length `c_out`; pass zeros for a bias-free conv)
    /// and the activation to fuse.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != c_out` or the weight shape disagrees with
    /// `spec` (zero-sized kernels/groups included).
    pub fn new(w: &Tensor, bias: Vec<f32>, spec: ConvSpec, act: EpilogueAct) -> Self {
        let ws = w.shape();
        let c_out = ws.n;
        let c_in = ws.c * spec.groups;
        assert_eq!(bias.len(), c_out, "conv plan bias must have c_out entries");
        assert!(spec.groups > 0 && spec.kh > 0 && spec.kw > 0 && spec.sh > 0 && spec.sw > 0, "degenerate conv spec");
        assert_eq!((ws.h, ws.w), (spec.kh, spec.kw), "weight kernel dims must match spec");
        assert!(c_out.is_multiple_of(spec.groups), "c_out must divide into groups");
        let kind = if spec.is_pointwise() {
            PlanKind::Pointwise(PackedGemmA::pack(c_out, c_in, w.data()))
        } else if spec.groups > 1 && ws.c == 1 && c_out == spec.groups {
            PlanKind::Depthwise { weight: w.data().to_vec() }
        } else {
            let cout_g = c_out / spec.groups;
            let k = ws.c * spec.kh * spec.kw;
            let groups = (0..spec.groups)
                .map(|g| PackedGemmA::pack(cout_g, k, &w.data()[g * cout_g * k..(g + 1) * cout_g * k]))
                .collect();
            PlanKind::General { groups }
        };
        Self { spec, c_in, c_out, bias, act, kind }
    }

    /// The convolution geometry this plan was compiled for.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    /// Output channels.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Expected input channels.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// The fused per-channel bias.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// The fused epilogue activation.
    pub fn act(&self) -> EpilogueAct {
        self.act
    }

    /// The dispatch-specific payload (packed panels / raw taps).
    pub fn kind(&self) -> &PlanKind {
        &self.kind
    }

    /// Reassembles a plan from serialized parts without re-packing —
    /// the artifact-loading counterpart of [`ConvPlan::new`].
    ///
    /// # Errors
    ///
    /// Rejects any inconsistency between `spec`, the channel counts, the
    /// bias length and the payload's own dimensions.
    pub fn from_parts(
        spec: ConvSpec,
        c_in: usize,
        c_out: usize,
        bias: Vec<f32>,
        act: EpilogueAct,
        kind: PlanKind,
    ) -> Result<Self, &'static str> {
        if bias.len() != c_out {
            return Err("conv plan bias must have c_out entries");
        }
        if spec.groups == 0 || spec.kh == 0 || spec.kw == 0 || spec.sh == 0 || spec.sw == 0 {
            return Err("degenerate conv spec");
        }
        if c_out == 0 || c_in == 0 || !c_out.is_multiple_of(spec.groups) || !c_in.is_multiple_of(spec.groups) {
            return Err("channel counts must divide into groups");
        }
        match &kind {
            PlanKind::Pointwise(pa) => {
                if !spec.is_pointwise() || pa.m() != c_out || pa.k() != c_in {
                    return Err("pointwise payload disagrees with the plan header");
                }
            }
            PlanKind::Depthwise { weight } => {
                if spec.groups != c_out || c_in != c_out || weight.len() != c_out * spec.kh * spec.kw {
                    return Err("depthwise payload disagrees with the plan header");
                }
            }
            PlanKind::General { groups } => {
                let cout_g = c_out / spec.groups;
                let k = (c_in / spec.groups) * spec.kh * spec.kw;
                if groups.len() != spec.groups
                    || groups.iter().any(|pa| pa.m() != cout_g || pa.k() != k)
                {
                    return Err("grouped payload disagrees with the plan header");
                }
            }
        }
        Ok(Self { spec, c_in, c_out, bias, act, kind })
    }

    /// Resident bytes of the persistent packed/retained weight image.
    pub fn packed_bytes(&self) -> usize {
        match &self.kind {
            PlanKind::Pointwise(pa) => pa.bytes(),
            PlanKind::Depthwise { weight } => weight.len() * std::mem::size_of::<f32>(),
            PlanKind::General { groups } => groups.iter().map(PackedGemmA::bytes).sum(),
        }
    }

    /// Output shape for input shape `xs`.
    pub fn out_shape(&self, xs: Shape) -> Shape {
        self.spec.out_shape(xs, self.c_out)
    }

    /// Fused forward: convolution, bias and activation in one pass.
    ///
    /// # Panics
    ///
    /// Panics on input-shape violations; see [`ConvPlan::try_forward`].
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.try_forward(x).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible fused forward.
    ///
    /// # Errors
    ///
    /// Returns an error if `x`'s channels disagree with the plan or the
    /// padded input is smaller than the kernel.
    pub fn try_forward(&self, x: &Tensor) -> Result<Tensor, ShapeError> {
        let xs = x.shape();
        if xs.c != self.c_in {
            return Err(ShapeError::DimMismatch {
                what: "fused conv input channels",
                expected: Shape::new(xs.n, self.c_in, xs.h, xs.w),
                got: xs,
            });
        }
        if xs.h + 2 * self.spec.ph < self.spec.kh || xs.w + 2 * self.spec.pw < self.spec.kw {
            return Err(ShapeError::DimMismatch {
                what: "fused conv input smaller than kernel",
                expected: Shape::new(
                    xs.n,
                    xs.c,
                    self.spec.kh.saturating_sub(2 * self.spec.ph),
                    self.spec.kw.saturating_sub(2 * self.spec.pw),
                ),
                got: xs,
            });
        }
        let mut out = Tensor::zeros(self.out_shape(xs));
        match &self.kind {
            PlanKind::Pointwise(pa) => {
                let hw = xs.hw();
                let chw_in = xs.chw();
                let chw_out = out.shape().chw();
                let xdata = x.data();
                let epi = Epilogue::new(Some(&self.bias), self.act);
                for_each_sample(out.data_mut(), chw_out, |n, yslice| {
                    let xn = &xdata[n * chw_in..(n + 1) * chw_in];
                    sgemm_prepacked(pa, hw, xn, yslice, &epi);
                });
            }
            PlanKind::Depthwise { weight } => {
                let os = out.shape();
                let (oh, ow) = (os.h, os.w);
                let ohw = oh * ow;
                let spec = self.spec;
                let xdata = x.data();
                let bias = &self.bias;
                let act = self.act;
                let yptr = SyncPtr::new(out.data_mut().as_mut_ptr());
                parallel_tiles(xs.n * xs.c, |tile| {
                    let (_, c) = (tile / xs.c, tile % xs.c);
                    let xplane = &xdata[tile * xs.hw()..(tile + 1) * xs.hw()];
                    let kern = &weight[c * spec.kh * spec.kw..(c + 1) * spec.kh * spec.kw];
                    // SAFETY: tile exclusively owns output plane (n, c).
                    let yplane = unsafe { std::slice::from_raw_parts_mut(yptr.get().add(tile * ohw), ohw) };
                    fused_depthwise_plane_forward(
                        xplane, kern, &spec, xs, oh, ow, bias[c], act, 1.0, yplane,
                    );
                });
            }
            PlanKind::General { groups } => {
                let os = out.shape();
                let (oh, ow) = (os.h, os.w);
                let cin_g = xs.c / self.spec.groups;
                let cout_g = self.c_out / self.spec.groups;
                let k = cin_g * self.spec.kh * self.spec.kw;
                let xdata = x.data();
                let chw_in = xs.chw();
                let chw_out = os.chw();
                let spec = self.spec;
                let bias = &self.bias;
                let act = self.act;
                for_each_sample(out.data_mut(), chw_out, |n, yslice| {
                    let xn = &xdata[n * chw_in..(n + 1) * chw_in];
                    let mut col = scratch::take(k * oh * ow);
                    for (g, pa) in groups.iter().enumerate() {
                        im2col(xn, xs, &spec, g * cin_g, (g + 1) * cin_g, oh, ow, &mut col);
                        let yg = &mut yslice[g * cout_g * oh * ow..(g + 1) * cout_g * oh * ow];
                        let epi = Epilogue::new(Some(&bias[g * cout_g..(g + 1) * cout_g]), act);
                        sgemm_prepacked(pa, oh * ow, &col, yg, &epi);
                    }
                });
            }
        }
        Ok(out)
    }
}

// --------------------------------------------------------- quantized plans

/// Dispatch-specific payload of a [`QuantConvPlan`]. Public so frozen-model
/// artifacts can disassemble and rebuild plans without re-quantizing.
#[derive(Clone, Debug)]
pub enum QuantPlanKind {
    /// `[c_out, c_in]` weights quantized per row and packed as the int8
    /// GEMM left operand.
    Pointwise(PackedGemmAI8),
    /// Per-channel quantized depthwise taps (the plane kernel consumes the
    /// integer values directly) with their dequantization scales.
    Depthwise {
        /// Per-channel int8 taps `[c, kh, kw]`.
        qweight: Vec<i8>,
        /// Per-channel dequantization scales.
        scales: Vec<f32>,
    },
    /// One quantized packed left operand per group for the im2col path.
    General {
        /// Per-group quantized packed operands, group-major.
        groups: Vec<PackedGemmAI8>,
    },
}

/// A convolution lowered to int8 for frozen inference: per-output-channel
/// symmetric int8 weights (scale `max|w| / 127`, quantized and packed once
/// at build time) with f32 bias/scale sidecars. Inputs are quantized per
/// tensor on the fly (7-bit symmetric, see [`crate::quantize_activations`]);
/// the dequantize + bias + activation epilogue is fused into the kernel
/// write-back, which also folds the *output* absmax scan so the next
/// quantized layer gets its activation scale for free.
#[derive(Clone, Debug)]
pub struct QuantConvPlan {
    spec: ConvSpec,
    c_in: usize,
    c_out: usize,
    bias: Vec<f32>,
    act: EpilogueAct,
    kind: QuantPlanKind,
}

impl QuantConvPlan {
    /// Quantizes and compiles a plan from folded f32 weights
    /// `[c_out, c_in/groups, kh, kw]`, a per-channel bias and the
    /// activation to fuse — the int8 counterpart of [`ConvPlan::new`].
    ///
    /// # Panics
    ///
    /// Panics under the same shape contract as [`ConvPlan::new`].
    pub fn new(w: &Tensor, bias: Vec<f32>, spec: ConvSpec, act: EpilogueAct) -> Self {
        let ws = w.shape();
        let c_out = ws.n;
        let c_in = ws.c * spec.groups;
        assert_eq!(bias.len(), c_out, "conv plan bias must have c_out entries");
        assert!(spec.groups > 0 && spec.kh > 0 && spec.kw > 0 && spec.sh > 0 && spec.sw > 0, "degenerate conv spec");
        assert_eq!((ws.h, ws.w), (spec.kh, spec.kw), "weight kernel dims must match spec");
        assert!(c_out.is_multiple_of(spec.groups), "c_out must divide into groups");
        let kind = if spec.is_pointwise() {
            QuantPlanKind::Pointwise(PackedGemmAI8::pack_quantize(c_out, c_in, w.data()))
        } else if spec.groups > 1 && ws.c == 1 && c_out == spec.groups {
            let (qweight, scales) = quantize_weights_per_row(c_out, spec.kh * spec.kw, w.data());
            QuantPlanKind::Depthwise { qweight, scales }
        } else {
            let cout_g = c_out / spec.groups;
            let k = ws.c * spec.kh * spec.kw;
            let groups = (0..spec.groups)
                .map(|g| {
                    PackedGemmAI8::pack_quantize(cout_g, k, &w.data()[g * cout_g * k..(g + 1) * cout_g * k])
                })
                .collect();
            QuantPlanKind::General { groups }
        };
        Self { spec, c_in, c_out, bias, act, kind }
    }

    /// The convolution geometry this plan was compiled for.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    /// Output channels.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Expected input channels.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// The fused per-channel bias.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// The fused epilogue activation.
    pub fn act(&self) -> EpilogueAct {
        self.act
    }

    /// The dispatch-specific payload (quantized panels / taps).
    pub fn kind(&self) -> &QuantPlanKind {
        &self.kind
    }

    /// Reassembles a quantized plan from serialized parts without
    /// re-quantizing — the artifact-loading counterpart of
    /// [`QuantConvPlan::new`].
    ///
    /// # Errors
    ///
    /// Rejects any inconsistency between `spec`, the channel counts, the
    /// bias length and the payload's own dimensions.
    pub fn from_parts(
        spec: ConvSpec,
        c_in: usize,
        c_out: usize,
        bias: Vec<f32>,
        act: EpilogueAct,
        kind: QuantPlanKind,
    ) -> Result<Self, &'static str> {
        if bias.len() != c_out {
            return Err("conv plan bias must have c_out entries");
        }
        if spec.groups == 0 || spec.kh == 0 || spec.kw == 0 || spec.sh == 0 || spec.sw == 0 {
            return Err("degenerate conv spec");
        }
        if c_out == 0 || c_in == 0 || !c_out.is_multiple_of(spec.groups) || !c_in.is_multiple_of(spec.groups) {
            return Err("channel counts must divide into groups");
        }
        match &kind {
            QuantPlanKind::Pointwise(pa) => {
                if !spec.is_pointwise() || pa.m() != c_out || pa.k() != c_in {
                    return Err("pointwise payload disagrees with the plan header");
                }
            }
            QuantPlanKind::Depthwise { qweight, scales } => {
                if spec.groups != c_out
                    || c_in != c_out
                    || qweight.len() != c_out * spec.kh * spec.kw
                    || scales.len() != c_out
                {
                    return Err("depthwise payload disagrees with the plan header");
                }
            }
            QuantPlanKind::General { groups } => {
                let cout_g = c_out / spec.groups;
                let k = (c_in / spec.groups) * spec.kh * spec.kw;
                if groups.len() != spec.groups
                    || groups.iter().any(|pa| pa.m() != cout_g || pa.k() != k)
                {
                    return Err("grouped payload disagrees with the plan header");
                }
            }
        }
        Ok(Self { spec, c_in, c_out, bias, act, kind })
    }

    /// Resident bytes of the quantized weight image and its sidecars.
    pub fn packed_bytes(&self) -> usize {
        match &self.kind {
            QuantPlanKind::Pointwise(pa) => pa.bytes(),
            QuantPlanKind::Depthwise { qweight, scales } => qweight.len() + scales.len() * 4,
            QuantPlanKind::General { groups } => groups.iter().map(PackedGemmAI8::bytes).sum(),
        }
    }

    /// Output shape for input shape `xs`.
    pub fn out_shape(&self, xs: Shape) -> Shape {
        self.spec.out_shape(xs, self.c_out)
    }

    /// Quantized fused forward. `in_absmax` is the input's absolute maximum
    /// if the producing layer already folded the scan into its write-back
    /// (`None` scans here). Returns the output and *its* absmax.
    ///
    /// # Panics
    ///
    /// Panics on input-shape violations; see
    /// [`QuantConvPlan::try_forward_quant`].
    pub fn forward_quant(&self, x: &Tensor, in_absmax: Option<f32>) -> (Tensor, f32) {
        self.try_forward_quant(x, in_absmax).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible quantized fused forward.
    ///
    /// # Errors
    ///
    /// Returns an error under the same input contract as
    /// [`ConvPlan::try_forward`].
    pub fn try_forward_quant(
        &self,
        x: &Tensor,
        in_absmax: Option<f32>,
    ) -> Result<(Tensor, f32), ShapeError> {
        let xs = x.shape();
        if xs.c != self.c_in {
            return Err(ShapeError::DimMismatch {
                what: "quantized conv input channels",
                expected: Shape::new(xs.n, self.c_in, xs.h, xs.w),
                got: xs,
            });
        }
        if xs.h + 2 * self.spec.ph < self.spec.kh || xs.w + 2 * self.spec.pw < self.spec.kw {
            return Err(ShapeError::DimMismatch {
                what: "quantized conv input smaller than kernel",
                expected: Shape::new(
                    xs.n,
                    xs.c,
                    self.spec.kh.saturating_sub(2 * self.spec.ph),
                    self.spec.kw.saturating_sub(2 * self.spec.pw),
                ),
                got: xs,
            });
        }
        let a_scale =
            int8_act_scale(in_absmax.unwrap_or_else(|| crate::qmatmul::abs_max_slice(x.data())));
        let mut out = Tensor::zeros(self.out_shape(xs));
        // Non-negative f32 max over u32 bit patterns is monotone: fetch_max
        // on the bits merges per-sample/per-plane maxima deterministically.
        let omax = AtomicU32::new(0);
        match &self.kind {
            QuantPlanKind::Pointwise(pa) => {
                let hw = xs.hw();
                let chw_in = xs.chw();
                let chw_out = out.shape().chw();
                let xdata = x.data();
                let epi = Epilogue::new(Some(&self.bias), self.act);
                for_each_sample(out.data_mut(), chw_out, |n, yslice| {
                    let xn = &xdata[n * chw_in..(n + 1) * chw_in];
                    let mut xq = scratch::take_u8(chw_in);
                    quantize_activations(xn, a_scale, &mut xq);
                    let m = qgemm_prepacked(pa, hw, &xq, a_scale, yslice, &epi);
                    omax.fetch_max(m.to_bits(), std::sync::atomic::Ordering::Relaxed);
                });
            }
            QuantPlanKind::Depthwise { qweight, scales } => {
                let os = out.shape();
                let (oh, ow) = (os.h, os.w);
                let ohw = oh * ow;
                let hw = xs.hw();
                let ksz = self.spec.kh * self.spec.kw;
                let spec = self.spec;
                let xdata = x.data();
                let bias = &self.bias;
                let act = self.act;
                let inv = 1.0 / a_scale;
                // Padded plane geometry: quantization copies the plane
                // anyway, so it writes into a zero-padded image (zero is
                // exactly representable in the quantized domain), and the
                // plane kernel runs with every window in-bounds — no
                // interior/border split, no per-pixel bounds checks.
                let (ph2, pw2) = (xs.h + 2 * spec.ph, xs.w + 2 * spec.pw);
                let yptr = SyncPtr::new(out.data_mut().as_mut_ptr());
                parallel_tiles(xs.n * xs.c, |tile| {
                    let c = tile % xs.c;
                    let xplane = &xdata[tile * hw..(tile + 1) * hw];
                    // Quantized taps and activations as integer-valued f32:
                    // every per-tap product (<= 63 * 127) and partial sum
                    // stays far below 2^24, so the f32 accumulation in the
                    // plane kernel is *exact* integer arithmetic — results
                    // are bitwise deterministic for any summation order or
                    // vector width, like the i32 GEMM path.
                    let mut buf = scratch::take(ksz + ph2 * pw2);
                    let (kern, xq) = buf.split_at_mut(ksz);
                    for (d, &q) in kern.iter_mut().zip(&qweight[c * ksz..(c + 1) * ksz]) {
                        *d = q as f32;
                    }
                    for iy in 0..xs.h {
                        let at = (iy + spec.ph) * pw2 + spec.pw;
                        crate::qmatmul::quantize_centered_f32(
                            &xplane[iy * xs.w..(iy + 1) * xs.w],
                            inv,
                            &mut xq[at..at + xs.w],
                        );
                    }
                    // SAFETY: tile exclusively owns output plane (n, c).
                    let yplane =
                        unsafe { std::slice::from_raw_parts_mut(yptr.get().add(tile * ohw), ohw) };
                    quant_depthwise_padded_plane(
                        xq,
                        kern,
                        &spec,
                        pw2,
                        oh,
                        ow,
                        bias[c],
                        act,
                        a_scale * scales[c],
                        yplane,
                    );
                    let m = crate::qmatmul::abs_max_slice(yplane);
                    omax.fetch_max(m.to_bits(), std::sync::atomic::Ordering::Relaxed);
                });
            }
            QuantPlanKind::General { groups } => {
                let os = out.shape();
                let (oh, ow) = (os.h, os.w);
                let cin_g = xs.c / self.spec.groups;
                let cout_g = self.c_out / self.spec.groups;
                let k = cin_g * self.spec.kh * self.spec.kw;
                let xdata = x.data();
                let chw_in = xs.chw();
                let chw_out = os.chw();
                let spec = self.spec;
                let bias = &self.bias;
                let act = self.act;
                for_each_sample(out.data_mut(), chw_out, |n, yslice| {
                    let xn = &xdata[n * chw_in..(n + 1) * chw_in];
                    let mut xq = scratch::take_u8(chw_in);
                    quantize_activations(xn, a_scale, &mut xq);
                    let mut col = scratch::take_u8(k * oh * ow);
                    for (g, pa) in groups.iter().enumerate() {
                        im2col_u8(&xq, xs, &spec, g * cin_g, (g + 1) * cin_g, oh, ow, &mut col);
                        let yg = &mut yslice[g * cout_g * oh * ow..(g + 1) * cout_g * oh * ow];
                        let epi = Epilogue::new(Some(&bias[g * cout_g..(g + 1) * cout_g]), act);
                        let m = qgemm_prepacked(pa, oh * ow, &col, a_scale, yg, &epi);
                        omax.fetch_max(m.to_bits(), std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        }
        Ok((out, f32::from_bits(omax.load(std::sync::atomic::Ordering::Relaxed))))
    }
}

// -------------------------------------------------------------- scheduling

/// Runs `f(sample, out_slice)` for each per-sample chunk of `out`:
/// batch-parallel when the batch covers the thread budget, otherwise
/// sequential so each sample's inner kernels can fan out over the pool.
fn for_each_sample<F>(out: &mut [f32], chw: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let slices: Vec<&mut [f32]> = out.chunks_mut(chw).collect();
    let n = slices.len();
    if n >= num_threads_for(usize::MAX) {
        parallel_over_slices(slices, f);
    } else {
        for (i, s) in slices.into_iter().enumerate() {
            f(i, s);
        }
    }
}

/// Accumulates per-**sample** weight-gradient slabs into `dw` with the
/// crate-wide pairwise sample tree — see
/// [`crate::par::tree_reduce_with_slabs`] for the determinism and
/// shard-alignment contract.
fn reduce_sample_grads<F>(n: usize, len: usize, dw: &mut [f32], fill: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    crate::par::tree_reduce_with_slabs(n, len, dw, fill);
}

/// Per-channel bias gradient: each sample's per-channel plane sums are
/// reduced over the batch with the same pairwise tree as the weight
/// gradients, so `db` is bitwise invariant to both thread count and
/// micro-batch shard boundaries (see [`crate::par::tree_reduce_serial`]'s
/// shard-alignment docs). A straight `for n in 0..n` fold would tie the
/// f32 association to the batch extent and break shard invariance.
fn bias_grad(dy: &Tensor) -> Tensor {
    let os = dy.shape();
    let hw = os.hw();
    let dydata = dy.data();
    let mut db = Tensor::zeros(Shape::vector(os.c));
    reduce_sample_grads(os.n, os.c, db.data_mut(), |n, slab| {
        for (c, s) in slab.iter_mut().enumerate() {
            let base = (n * os.c + c) * hw;
            *s = dydata[base..base + hw].iter().sum::<f32>();
        }
    });
    db
}

// ---------------------------------------------------------------- pointwise

fn pointwise_forward(x: &Tensor, w: &Tensor, out: &mut Tensor) {
    let xs = x.shape();
    let c_out = w.shape().n;
    let hw = xs.hw();
    let chw_in = xs.chw();
    let chw_out = out.shape().chw();
    let xdata = x.data();
    let wdata = w.data();
    for_each_sample(out.data_mut(), chw_out, |n, yslice| {
        let xn = &xdata[n * chw_in..(n + 1) * chw_in];
        // y [c_out, hw] = w [c_out, c_in] @ x [c_in, hw]
        sgemm(c_out, xs.c, hw, 1.0, wdata, xn, 0.0, yslice);
    });
}

fn pointwise_backward(x: &Tensor, w: &Tensor, dy: &Tensor, need_dx: bool) -> (Option<Tensor>, Tensor) {
    let xs = x.shape();
    let c_out = w.shape().n;
    let hw = xs.hw();
    let chw_in = xs.chw();
    let chw_out = dy.shape().chw();
    let xdata = x.data();
    let wdata = w.data();
    let dydata = dy.data();

    // dw [c_out, c_in] = sum_n dy_n [c_out, hw] @ x_n^T [hw, c_in]
    let mut dw = Tensor::zeros(w.shape());
    reduce_sample_grads(xs.n, c_out * xs.c, dw.data_mut(), |n, slab| {
        let dyn_ = &dydata[n * chw_out..(n + 1) * chw_out];
        let xn = &xdata[n * chw_in..(n + 1) * chw_in];
        sgemm_a_bt(c_out, hw, xs.c, 1.0, dyn_, xn, 1.0, slab);
    });

    let dx = if need_dx {
        let mut dx = Tensor::zeros(xs);
        for_each_sample(dx.data_mut(), chw_in, |n, dxslice| {
            let dyn_ = &dydata[n * chw_out..(n + 1) * chw_out];
            // dx [c_in, hw] = w^T [c_in, c_out] @ dy [c_out, hw]
            sgemm_at_b(xs.c, c_out, hw, 1.0, wdata, dyn_, 0.0, dxslice);
        });
        Some(dx)
    } else {
        None
    };
    (dx, dw)
}

// ---------------------------------------------------------------- depthwise

/// Output-coordinate ranges `[ox_lo, ox_hi) × [oy_lo, oy_hi)` whose kernel
/// window stays fully inside the input — the "interior" where per-tap
/// bounds checks are provably redundant. Shared by the fused forward and
/// the interior/border backward kernels.
fn depthwise_interior_bounds(spec: &ConvSpec, xs: Shape, oh: usize, ow: usize) -> (usize, usize, usize, usize) {
    let (w, h) = (xs.w, xs.h);
    let (kh, kw) = (spec.kh, spec.kw);
    let (sh, sw) = (spec.sh, spec.sw);
    let (ph, pw) = (spec.ph, spec.pw);
    let ox_lo = pw.div_ceil(sw).min(ow);
    let ox_hi = if w + pw >= kw { ((w + pw - kw) / sw + 1).min(ow) } else { 0 }.max(ox_lo);
    let oy_lo = ph.div_ceil(sh).min(oh);
    let oy_hi = if h + ph >= kh { ((h + ph - kh) / sh + 1).min(oh) } else { 0 }.max(oy_lo);
    (ox_lo, ox_hi, oy_lo, oy_hi)
}

/// Computes one `(sample, channel)` output plane of a depthwise forward.
///
/// This is the bounds-checked reference kernel; the production forward path
/// runs [`fused_depthwise_plane_forward`], whose pre-epilogue sums are
/// asserted bitwise equal to this kernel in tests.
#[cfg_attr(not(test), allow(dead_code))]
fn depthwise_plane_forward(
    xplane: &[f32],
    kern: &[f32],
    spec: &ConvSpec,
    xs: Shape,
    oh: usize,
    ow: usize,
    yplane: &mut [f32],
) {
    for oy in 0..oh {
        let iy0 = (oy * spec.sh) as isize - spec.ph as isize;
        for ox in 0..ow {
            let ix0 = (ox * spec.sw) as isize - spec.pw as isize;
            let mut acc = 0.0f32;
            for ky in 0..spec.kh {
                let iy = iy0 + ky as isize;
                if iy < 0 || iy >= xs.h as isize {
                    continue;
                }
                let xrow = &xplane[iy as usize * xs.w..(iy as usize + 1) * xs.w];
                let krow = &kern[ky * spec.kw..(ky + 1) * spec.kw];
                for (kx, &kv) in krow.iter().enumerate() {
                    let ix = ix0 + kx as isize;
                    if ix < 0 || ix >= xs.w as isize {
                        continue;
                    }
                    acc += xrow[ix as usize] * kv;
                }
            }
            yplane[oy * ow + ox] = acc;
        }
    }
}

/// One `(sample, channel)` plane of the *fused* depthwise forward used by
/// frozen [`ConvPlan`]s: interior/border split (no per-pixel bounds checks
/// where the kernel window cannot leave the input) with the per-channel
/// bias and activation applied in the same pass over the plane. The
/// epilogue is `act(acc * scale + bias)`; f32 plans pass `scale = 1.0`
/// (a bitwise identity), the int8 plan passes its dequantization scale.
///
/// Accumulation order per output pixel is identical to
/// [`depthwise_plane_forward`] (`ky` outer, `kx` inner), so the pre-bias
/// sums are bitwise equal to the reference kernel's.
#[allow(clippy::too_many_arguments)]
fn fused_depthwise_plane_forward(
    xplane: &[f32],
    kern: &[f32],
    spec: &ConvSpec,
    xs: Shape,
    oh: usize,
    ow: usize,
    bias: f32,
    act: EpilogueAct,
    scale: f32,
    yplane: &mut [f32],
) {
    let (w, h) = (xs.w, xs.h);
    let (kh, kw) = (spec.kh, spec.kw);
    let (sh, sw) = (spec.sh, spec.sw);
    let (ph, pw) = (spec.ph, spec.pw);

    // Output ranges whose kernel window stays fully inside the input.
    let (ox_lo, ox_hi, oy_lo, oy_hi) = depthwise_interior_bounds(spec, xs, oh, ow);

    // Border pixels: the reference per-pixel kernel with the epilogue inline.
    let border_px = |oy: usize, ox: usize| -> f32 {
        let iy0 = (oy * sh) as isize - ph as isize;
        let ix0 = (ox * sw) as isize - pw as isize;
        let mut acc = 0.0f32;
        for ky in 0..kh {
            let iy = iy0 + ky as isize;
            if iy < 0 || iy >= h as isize {
                continue;
            }
            let xrow = &xplane[iy as usize * w..(iy as usize + 1) * w];
            let krow = &kern[ky * kw..(ky + 1) * kw];
            for (kx, &kv) in krow.iter().enumerate() {
                let ix = ix0 + kx as isize;
                if ix < 0 || ix >= w as isize {
                    continue;
                }
                acc += xrow[ix as usize] * kv;
            }
        }
        act.apply(acc * scale + bias)
    };

    for oy in 0..oh {
        let yrow = &mut yplane[oy * ow..(oy + 1) * ow];
        if oy < oy_lo || oy >= oy_hi {
            for (ox, y) in yrow.iter_mut().enumerate() {
                *y = border_px(oy, ox);
            }
            continue;
        }
        let iy0 = oy * sh - ph;
        if sh == 1 && sw == 1 && ox_hi > ox_lo {
            // Stride 1: accumulate whole row segments per kernel tap —
            // contiguous loads that the compiler vectorises.
            let len = ox_hi - ox_lo;
            let seg = &mut yrow[ox_lo..ox_hi];
            seg.fill(0.0);
            for ky in 0..kh {
                let xrow = &xplane[(iy0 + ky) * w..(iy0 + ky + 1) * w];
                for (kx, &kv) in kern[ky * kw..(ky + 1) * kw].iter().enumerate() {
                    let src = &xrow[ox_lo + kx - pw..ox_lo + kx - pw + len];
                    for (d, s) in seg.iter_mut().zip(src) {
                        *d += kv * *s;
                    }
                }
            }
            for v in seg.iter_mut() {
                *v = act.apply(*v * scale + bias);
            }
        } else {
            // Strided interior: per-pixel accumulation, bounds checks hoisted.
            for (ox, y) in yrow.iter_mut().enumerate().take(ox_hi).skip(ox_lo) {
                let ix0 = ox * sw - pw;
                let mut acc = 0.0f32;
                for ky in 0..kh {
                    let xrow = &xplane[(iy0 + ky) * w..(iy0 + ky + 1) * w];
                    for (kx, &kv) in kern[ky * kw..(ky + 1) * kw].iter().enumerate() {
                        acc += xrow[ix0 + kx] * kv;
                    }
                }
                *y = act.apply(acc * scale + bias);
            }
        }
        for (ox, y) in yrow.iter_mut().enumerate().take(ox_lo) {
            *y = border_px(oy, ox);
        }
        for (ox, y) in yrow.iter_mut().enumerate().skip(ox_hi) {
            *y = border_px(oy, ox);
        }
    }
}

/// One quantized depthwise output plane over a **zero-padded** input plane
/// of row stride `pw2` (see the `Depthwise` arm of
/// [`QuantConvPlan::try_forward_quant`]): every kernel window is in-bounds,
/// so there is no interior/border split and no per-pixel bounds checks.
/// The epilogue matches [`fused_depthwise_plane_forward`]:
/// `act(acc * scale + bias)` per element.
///
/// Inputs and taps are integer-valued f32 (products and sums stay far below
/// 2^24 and are exact), so the result is bitwise identical for any
/// accumulation order — the AVX2-compiled twin below is a safe dispatch, not
/// a numerics choice.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn quant_depthwise_padded_plane_body(
    xpad: &[f32],
    kern: &[f32],
    spec: &ConvSpec,
    pw2: usize,
    oh: usize,
    ow: usize,
    bias: f32,
    act: EpilogueAct,
    scale: f32,
    yplane: &mut [f32],
) {
    let (kh, kw) = (spec.kh, spec.kw);
    let (sh, sw) = (spec.sh, spec.sw);
    if kh == 5 && kw == 5 && sh == 2 && sw == 2 {
        quant_dw_s2_stencil5(xpad, kern, pw2, oh, ow, bias, act, scale, yplane);
    } else if sh == 1 && sw == 1 && kh == 3 && kw == 3 {
        quant_dw_stencil::<3>(xpad, kern, pw2, oh, ow, bias, act, scale, yplane);
    } else if sh == 1 && sw == 1 && kh == 5 && kw == 5 {
        quant_dw_stencil::<5>(xpad, kern, pw2, oh, ow, bias, act, scale, yplane);
    } else if sh == 1 && sw == 1 {
        // Stride 1, other kernel sizes: whole-row segments per tap —
        // contiguous loads the compiler vectorizes at the enabled feature
        // width.
        for oy in 0..oh {
            let yrow = &mut yplane[oy * ow..(oy + 1) * ow];
            yrow.fill(0.0);
            for ky in 0..kh {
                let xrow = &xpad[(oy + ky) * pw2..(oy + ky) * pw2 + pw2];
                for (kx, &kv) in kern[ky * kw..(ky + 1) * kw].iter().enumerate() {
                    for (d, s) in yrow.iter_mut().zip(&xrow[kx..kx + ow]) {
                        *d += kv * *s;
                    }
                }
            }
            for v in yrow.iter_mut() {
                *v = act.apply(*v * scale + bias);
            }
        }
    } else {
        // Strided (silo downsamples: 5x5/s2, 9x9/s4, 17x17/s8): windows of
        // neighboring outputs overlap little or not at all, so each output
        // is one dot product over its contiguous-per-row window.
        for oy in 0..oh {
            let iy0 = oy * sh;
            let yrow = &mut yplane[oy * ow..(oy + 1) * ow];
            for (ox, y) in yrow.iter_mut().enumerate() {
                let acc = window_dot(xpad, iy0 * pw2 + ox * sw, pw2, kh, kw, kern);
                *y = act.apply(acc * scale + bias);
            }
        }
    }
}

/// Dot product of a `kh x kw` window (rows strided by `pw2` in `xpad`,
/// taps contiguous in `kern`) — the strided quantized depthwise inner loop.
/// Row segments reduce 4-wide (SSE2 baseline, so it inlines into both
/// compilations of the plane body) with a single horizontal sum at the end;
/// operands are integer-valued f32, so the reduction-order change versus a
/// sequential loop is exact.
#[inline(always)]
fn window_dot(xpad: &[f32], base: usize, pw2: usize, kh: usize, kw: usize, kern: &[f32]) -> f32 {
    debug_assert!(base + (kh - 1) * pw2 + kw <= xpad.len() && kern.len() >= kh * kw);
    #[cfg(target_arch = "x86_64")]
    // SAFETY: SSE2 is baseline on x86_64; the debug assert states the
    // in-bounds contract the callers' padded-plane geometry guarantees.
    unsafe {
        use std::arch::x86_64::*;
        let mut accv = _mm_setzero_ps();
        let mut acc = 0.0f32;
        for ky in 0..kh {
            let xr = xpad.as_ptr().add(base + ky * pw2);
            let kr = kern.as_ptr().add(ky * kw);
            let mut kx = 0;
            while kx + 4 <= kw {
                accv = _mm_add_ps(
                    accv,
                    _mm_mul_ps(_mm_loadu_ps(xr.add(kx)), _mm_loadu_ps(kr.add(kx))),
                );
                kx += 4;
            }
            while kx < kw {
                acc += *xr.add(kx) * *kr.add(kx);
                kx += 1;
            }
        }
        let s2 = _mm_add_ps(accv, _mm_movehl_ps(accv, accv));
        let s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 1));
        acc + _mm_cvtss_f32(s1)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let mut acc = 0.0f32;
        for ky in 0..kh {
            for kx in 0..kw {
                acc += xpad[base + ky * pw2 + kx] * kern[ky * kw + kx];
            }
        }
        acc
    }
}

/// `K x K` stride-1 stencil over a zero-padded plane: all `K*K` taps
/// accumulate in registers per output vector (one store per output instead
/// of a read-modify-write pass per tap). The output-column loop
/// auto-vectorizes; the tap loops fully unroll (`K` is const). Sums are
/// exact integer arithmetic, so the accumulation-order change versus the
/// per-tap formulation is invisible bit-for-bit.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn quant_dw_stencil<const K: usize>(
    xpad: &[f32],
    kern: &[f32],
    pw2: usize,
    oh: usize,
    ow: usize,
    bias: f32,
    act: EpilogueAct,
    scale: f32,
    yplane: &mut [f32],
) {
    let kl: [[f32; K]; K] = std::array::from_fn(|ky| std::array::from_fn(|kx| kern[ky * K + kx]));
    for oy in 0..oh {
        let yrow = &mut yplane[oy * ow..(oy + 1) * ow];
        let rows: [&[f32]; K] =
            std::array::from_fn(|ky| &xpad[(oy + ky) * pw2..(oy + ky) * pw2 + ow + K - 1]);
        for (j, y) in yrow.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (krow, xrow) in kl.iter().zip(&rows) {
                for (kx, kv) in krow.iter().enumerate() {
                    acc += xrow[j + kx] * kv;
                }
            }
            *y = acc * scale + bias;
        }
        for y in yrow.iter_mut() {
            *y = act.apply(*y);
        }
    }
}

/// 5x5 stride-2 depthwise (the one-hop silo downsample) as a contiguous
/// stencil: each padded input row is deinterleaved once into even/odd column
/// halves, after which output column `j` reads `x[2j + kx]` as
/// `even[j + kx/2]` / `odd[j + (kx-1)/2]` — contiguous loads the
/// output-column loop vectorizes, instead of a strided per-pixel window dot.
/// Unwritten tail cells of the half-rows are never read (tap reach stays
/// inside the deinterleaved image); sums are exact integer arithmetic, so
/// the reassociation versus [`window_dot`] is invisible bit-for-bit.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn quant_dw_s2_stencil5(
    xpad: &[f32],
    kern: &[f32],
    pw2: usize,
    oh: usize,
    ow: usize,
    bias: f32,
    act: EpilogueAct,
    scale: f32,
    yplane: &mut [f32],
) {
    let rows = (oh - 1) * 2 + 5;
    let hw2 = pw2.div_ceil(2);
    let mut buf = scratch::take(2 * rows * hw2);
    {
        let (ehalf, ohalf) = buf.split_at_mut(rows * hw2);
        for r in 0..rows {
            let src = &xpad[r * pw2..r * pw2 + pw2];
            let er = &mut ehalf[r * hw2..r * hw2 + hw2];
            let or = &mut ohalf[r * hw2..r * hw2 + hw2];
            for j in 0..pw2 / 2 {
                er[j] = src[2 * j];
                or[j] = src[2 * j + 1];
            }
            if pw2 % 2 == 1 {
                er[pw2 / 2] = src[pw2 - 1];
            }
        }
    }
    let (ehalf, ohalf) = buf.split_at(rows * hw2);
    let ke: [[f32; 3]; 5] = std::array::from_fn(|ky| std::array::from_fn(|m| kern[ky * 5 + 2 * m]));
    let ko: [[f32; 2]; 5] =
        std::array::from_fn(|ky| std::array::from_fn(|m| kern[ky * 5 + 2 * m + 1]));
    for oy in 0..oh {
        let yrow = &mut yplane[oy * ow..(oy + 1) * ow];
        let base = oy * 2;
        let erows: [&[f32]; 5] =
            std::array::from_fn(|ky| &ehalf[(base + ky) * hw2..(base + ky) * hw2 + hw2]);
        let orows: [&[f32]; 5] =
            std::array::from_fn(|ky| &ohalf[(base + ky) * hw2..(base + ky) * hw2 + hw2]);
        for (j, y) in yrow.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for ((krow, xrow), (korow, xorow)) in
                ke.iter().zip(&erows).zip(ko.iter().zip(&orows))
            {
                for (m, kv) in krow.iter().enumerate() {
                    acc += xrow[j + m] * kv;
                }
                for (m, kv) in korow.iter().enumerate() {
                    acc += xorow[j + m] * kv;
                }
            }
            *y = acc * scale + bias;
        }
        for y in yrow.iter_mut() {
            *y = act.apply(*y);
        }
    }
}

/// [`quant_depthwise_padded_plane_body`] recompiled with AVX2 enabled (8-wide
/// row segments instead of baseline 4-wide). `fma` is deliberately *not*
/// enabled: a fused `v * scale + bias` epilogue would round differently from
/// the scalar build.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn quant_depthwise_padded_plane_avx2(
    xpad: &[f32],
    kern: &[f32],
    spec: &ConvSpec,
    pw2: usize,
    oh: usize,
    ow: usize,
    bias: f32,
    act: EpilogueAct,
    scale: f32,
    yplane: &mut [f32],
) {
    quant_depthwise_padded_plane_body(xpad, kern, spec, pw2, oh, ow, bias, act, scale, yplane);
}

#[allow(clippy::too_many_arguments)]
fn quant_depthwise_padded_plane(
    xpad: &[f32],
    kern: &[f32],
    spec: &ConvSpec,
    pw2: usize,
    oh: usize,
    ow: usize,
    bias: f32,
    act: EpilogueAct,
    scale: f32,
    yplane: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::qmatmul::int8_use_avx2() {
        // SAFETY: feature presence checked by the dispatch.
        unsafe {
            quant_depthwise_padded_plane_avx2(
                xpad, kern, spec, pw2, oh, ow, bias, act, scale, yplane,
            )
        };
        return;
    }
    quant_depthwise_padded_plane_body(xpad, kern, spec, pw2, oh, ow, bias, act, scale, yplane);
}

fn depthwise_forward(x: &Tensor, w: &Tensor, spec: &ConvSpec, out: &mut Tensor) {
    let xs = x.shape();
    let os = out.shape();
    let (oh, ow) = (os.h, os.w);
    let xdata = x.data();
    let wdata = w.data();
    let ohw = oh * ow;
    let yptr = SyncPtr::new(out.data_mut().as_mut_ptr());
    // One tile per (sample, channel) plane: fine enough to keep every worker
    // busy even at batch 1, and planes are disjoint by construction.
    //
    // Training now runs the interior/border-split kernel too, with an
    // identity epilogue (bias 0, no activation): per-pixel tap order matches
    // the reference kernel, the accumulator can never be `-0.0` (it starts
    // at `+0.0` and IEEE-754 sums reaching zero from nonzero terms round to
    // `+0.0`), and `acc + 0.0` is then a bitwise identity — so adopting the
    // fast kernel changes no training bits (asserted in tests).
    parallel_tiles(xs.n * xs.c, |tile| {
        let (_, c) = (tile / xs.c, tile % xs.c);
        let xplane = &xdata[tile * xs.hw()..(tile + 1) * xs.hw()];
        let kern = &wdata[c * spec.kh * spec.kw..(c + 1) * spec.kh * spec.kw];
        // SAFETY: tile exclusively owns output plane (n, c).
        let yplane = unsafe { std::slice::from_raw_parts_mut(yptr.get().add(tile * ohw), ohw) };
        fused_depthwise_plane_forward(
            xplane, kern, spec, xs, oh, ow, 0.0, EpilogueAct::None, 1.0, yplane,
        );
    });
}

fn depthwise_backward(
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
    spec: &ConvSpec,
    need_dx: bool,
) -> (Option<Tensor>, Tensor) {
    let xs = x.shape();
    let os = dy.shape();
    let (oh, ow) = (os.h, os.w);
    let xdata = x.data();
    let wdata = w.data();
    let dydata = dy.data();
    let ksz = spec.kh * spec.kw;

    // Interior/border split, mirroring the forward kernel: inside the
    // interior rectangle the kernel window cannot leave the input, so the
    // per-tap bounds checks vanish. Output pixels are still visited in
    // row-major order with identical per-pixel tap order (`ky` outer, `kx`
    // inner) and the same `g == 0.0` skip, so the accumulation sequence —
    // and therefore every f32 bit — matches the fully bounds-checked
    // reference walk (asserted in tests).
    let (ox_lo, ox_hi, oy_lo, oy_hi) = depthwise_interior_bounds(spec, xs, oh, ow);

    let mut dw = Tensor::zeros(w.shape());
    reduce_sample_grads(xs.n, xs.c * ksz, dw.data_mut(), |n, slab| {
        // Channels within a sample are independent; tile over them so a
        // single-sample backward still fills the pool.
        let slab_ptr = SyncPtr::new(slab.as_mut_ptr());
        parallel_tiles(xs.c, |c| {
            let xplane = &xdata[(n * xs.c + c) * xs.hw()..(n * xs.c + c + 1) * xs.hw()];
            let dyplane = &dydata[(n * os.c + c) * oh * ow..(n * os.c + c + 1) * oh * ow];
            // SAFETY: channel tiles own disjoint `ksz` stretches of the slab.
            let dkern = unsafe { std::slice::from_raw_parts_mut(slab_ptr.get().add(c * ksz), ksz) };
            let border_px = |oy: usize, ox: usize, g: f32, dkern: &mut [f32]| {
                let iy0 = (oy * spec.sh) as isize - spec.ph as isize;
                let ix0 = (ox * spec.sw) as isize - spec.pw as isize;
                for ky in 0..spec.kh {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy >= xs.h as isize {
                        continue;
                    }
                    for kx in 0..spec.kw {
                        let ix = ix0 + kx as isize;
                        if ix < 0 || ix >= xs.w as isize {
                            continue;
                        }
                        dkern[ky * spec.kw + kx] += g * xplane[iy as usize * xs.w + ix as usize];
                    }
                }
            };
            for oy in 0..oh {
                let dyrow = &dyplane[oy * ow..(oy + 1) * ow];
                if oy < oy_lo || oy >= oy_hi {
                    for (ox, &g) in dyrow.iter().enumerate() {
                        if g != 0.0 {
                            border_px(oy, ox, g, dkern);
                        }
                    }
                    continue;
                }
                let iy0 = oy * spec.sh - spec.ph;
                for (ox, &g) in dyrow.iter().enumerate().take(ox_lo) {
                    if g != 0.0 {
                        border_px(oy, ox, g, dkern);
                    }
                }
                for (ox, &g) in dyrow.iter().enumerate().take(ox_hi).skip(ox_lo) {
                    if g == 0.0 {
                        continue;
                    }
                    let ix0 = ox * spec.sw - spec.pw;
                    for ky in 0..spec.kh {
                        let xrow = &xplane[(iy0 + ky) * xs.w + ix0..(iy0 + ky) * xs.w + ix0 + spec.kw];
                        for (kx, &xv) in xrow.iter().enumerate() {
                            dkern[ky * spec.kw + kx] += g * xv;
                        }
                    }
                }
                for (ox, &g) in dyrow.iter().enumerate().skip(ox_hi) {
                    if g != 0.0 {
                        border_px(oy, ox, g, dkern);
                    }
                }
            }
        });
    });

    let dx = if need_dx {
        let mut dx = Tensor::zeros(xs);
        let hw = xs.hw();
        let dxptr = SyncPtr::new(dx.data_mut().as_mut_ptr());
        parallel_tiles(xs.n * xs.c, |tile| {
            let (n, c) = (tile / xs.c, tile % xs.c);
            let dyplane = &dydata[(n * os.c + c) * oh * ow..(n * os.c + c + 1) * oh * ow];
            let kern = &wdata[c * ksz..(c + 1) * ksz];
            // SAFETY: tile exclusively owns input-gradient plane (n, c).
            let dxplane = unsafe { std::slice::from_raw_parts_mut(dxptr.get().add(tile * hw), hw) };
            let border_px = |oy: usize, ox: usize, g: f32, dxplane: &mut [f32]| {
                let iy0 = (oy * spec.sh) as isize - spec.ph as isize;
                let ix0 = (ox * spec.sw) as isize - spec.pw as isize;
                for ky in 0..spec.kh {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy >= xs.h as isize {
                        continue;
                    }
                    for kx in 0..spec.kw {
                        let ix = ix0 + kx as isize;
                        if ix < 0 || ix >= xs.w as isize {
                            continue;
                        }
                        dxplane[iy as usize * xs.w + ix as usize] += g * kern[ky * spec.kw + kx];
                    }
                }
            };
            for oy in 0..oh {
                let dyrow = &dyplane[oy * ow..(oy + 1) * ow];
                if oy < oy_lo || oy >= oy_hi {
                    for (ox, &g) in dyrow.iter().enumerate() {
                        if g != 0.0 {
                            border_px(oy, ox, g, dxplane);
                        }
                    }
                    continue;
                }
                let iy0 = oy * spec.sh - spec.ph;
                for (ox, &g) in dyrow.iter().enumerate().take(ox_lo) {
                    if g != 0.0 {
                        border_px(oy, ox, g, dxplane);
                    }
                }
                for (ox, &g) in dyrow.iter().enumerate().take(ox_hi).skip(ox_lo) {
                    if g == 0.0 {
                        continue;
                    }
                    let ix0 = ox * spec.sw - spec.pw;
                    for ky in 0..spec.kh {
                        let dxrow = &mut dxplane[(iy0 + ky) * xs.w + ix0..(iy0 + ky) * xs.w + ix0 + spec.kw];
                        for (kx, d) in dxrow.iter_mut().enumerate() {
                            *d += g * kern[ky * spec.kw + kx];
                        }
                    }
                }
                for (ox, &g) in dyrow.iter().enumerate().skip(ox_hi) {
                    if g != 0.0 {
                        border_px(oy, ox, g, dxplane);
                    }
                }
            }
        });
        Some(dx)
    } else {
        None
    };
    (dx, dw)
}

// ------------------------------------------------------------------ general

/// Fills one row of the im2col matrix: input channel `c`, kernel offset
/// `(ky, kx)`, all output positions.
#[allow(clippy::too_many_arguments)]
fn im2col_row(
    xn: &[f32],
    xs: Shape,
    spec: &ConvSpec,
    c: usize,
    ky: usize,
    kx: usize,
    oh: usize,
    ow: usize,
    dst: &mut [f32],
) {
    let xplane = &xn[c * xs.hw()..(c + 1) * xs.hw()];
    // `ix = ox*sw + kx - pw` is monotone in `ox`, so the in-bounds outputs
    // form one contiguous run `[ox_lo, ox_end)`; everything outside it is
    // padding. Computing the run bounds once removes the per-element branch.
    let (sw, pw) = (spec.sw, spec.pw);
    let ox_lo = if pw > kx { (pw - kx).div_ceil(sw).min(ow) } else { 0 };
    let ox_end = if xs.w + pw > kx { ((xs.w + pw - kx - 1) / sw + 1).min(ow) } else { 0 };
    let ox_end = ox_end.max(ox_lo);
    for oy in 0..oh {
        let iy = (oy * spec.sh + ky) as isize - spec.ph as isize;
        let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
        if iy < 0 || iy >= xs.h as isize {
            dst_row.iter_mut().for_each(|v| *v = 0.0);
            continue;
        }
        let xrow = &xplane[iy as usize * xs.w..(iy as usize + 1) * xs.w];
        dst_row[..ox_lo].iter_mut().for_each(|v| *v = 0.0);
        dst_row[ox_end..].iter_mut().for_each(|v| *v = 0.0);
        let ix0 = ox_lo * sw + kx - pw;
        if sw == 1 {
            dst_row[ox_lo..ox_end].copy_from_slice(&xrow[ix0..ix0 + (ox_end - ox_lo)]);
        } else {
            for (i, d) in dst_row[ox_lo..ox_end].iter_mut().enumerate() {
                *d = xrow[ix0 + i * sw];
            }
        }
    }
}

/// Builds the `[(c1-c0) * kh * kw, oh * ow]` column matrix, one parallel
/// tile per row (each row is written by exactly one tile).
#[allow(clippy::too_many_arguments)]
fn im2col(xn: &[f32], xs: Shape, spec: &ConvSpec, c0: usize, c1: usize, oh: usize, ow: usize, col: &mut [f32]) {
    let ohw = oh * ow;
    let ksz = spec.kh * spec.kw;
    let rows = (c1 - c0) * ksz;
    let colptr = SyncPtr::new(col.as_mut_ptr());
    parallel_tiles(rows, |row| {
        let c = c0 + row / ksz;
        let (ky, kx) = ((row % ksz) / spec.kw, row % spec.kw);
        // SAFETY: each tile owns exactly one `ohw` row of the matrix.
        let dst = unsafe { std::slice::from_raw_parts_mut(colptr.get().add(row * ohw), ohw) };
        im2col_row(xn, xs, spec, c, ky, kx, oh, ow, dst);
    });
}

/// Fills one row of the **byte** im2col matrix from quantized (biased u8)
/// activations: padding writes the zero-point byte `64` instead of `0.0`,
/// so the GEMM's full-row `wsum` zero-point correction stays exact at the
/// borders. Run-bound structure mirrors [`im2col_row`].
#[allow(clippy::too_many_arguments)]
fn im2col_row_u8(
    xn: &[u8],
    xs: Shape,
    spec: &ConvSpec,
    c: usize,
    ky: usize,
    kx: usize,
    oh: usize,
    ow: usize,
    dst: &mut [u8],
) {
    const ZP: u8 = INT8_ACT_ZERO_POINT as u8;
    let xplane = &xn[c * xs.hw()..(c + 1) * xs.hw()];
    let (sw, pw) = (spec.sw, spec.pw);
    let ox_lo = if pw > kx { (pw - kx).div_ceil(sw).min(ow) } else { 0 };
    let ox_end = if xs.w + pw > kx { ((xs.w + pw - kx - 1) / sw + 1).min(ow) } else { 0 };
    let ox_end = ox_end.max(ox_lo);
    for oy in 0..oh {
        let iy = (oy * spec.sh + ky) as isize - spec.ph as isize;
        let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
        if iy < 0 || iy >= xs.h as isize {
            dst_row.fill(ZP);
            continue;
        }
        let xrow = &xplane[iy as usize * xs.w..(iy as usize + 1) * xs.w];
        dst_row[..ox_lo].fill(ZP);
        dst_row[ox_end..].fill(ZP);
        let ix0 = ox_lo * sw + kx - pw;
        if sw == 1 {
            dst_row[ox_lo..ox_end].copy_from_slice(&xrow[ix0..ix0 + (ox_end - ox_lo)]);
        } else {
            for (i, d) in dst_row[ox_lo..ox_end].iter_mut().enumerate() {
                *d = xrow[ix0 + i * sw];
            }
        }
    }
}

/// Byte counterpart of [`im2col`]: builds the `[(c1-c0) * kh * kw, oh * ow]`
/// quantized column matrix, one parallel tile per row.
#[allow(clippy::too_many_arguments)]
fn im2col_u8(xn: &[u8], xs: Shape, spec: &ConvSpec, c0: usize, c1: usize, oh: usize, ow: usize, col: &mut [u8]) {
    let ohw = oh * ow;
    let ksz = spec.kh * spec.kw;
    let rows = (c1 - c0) * ksz;
    let colptr = SyncPtr::new(col.as_mut_ptr());
    parallel_tiles(rows, |row| {
        let c = c0 + row / ksz;
        let (ky, kx) = ((row % ksz) / spec.kw, row % spec.kw);
        // SAFETY: each tile owns exactly one `ohw` row of the matrix.
        let dst = unsafe { std::slice::from_raw_parts_mut(colptr.get().add(row * ohw), ohw) };
        im2col_row_u8(xn, xs, spec, c, ky, kx, oh, ow, dst);
    });
}

/// Scatters column-gradient rows back onto the input gradient, one parallel
/// tile per input channel (a channel's `kh*kw` rows all land on its plane).
#[allow(clippy::too_many_arguments)]
fn col2im(col: &[f32], xs: Shape, spec: &ConvSpec, c0: usize, c1: usize, oh: usize, ow: usize, dxn: &mut [f32]) {
    let ohw = oh * ow;
    let ksz = spec.kh * spec.kw;
    let hw = xs.hw();
    let dxptr = SyncPtr::new(dxn.as_mut_ptr());
    parallel_tiles(c1 - c0, |ci| {
        let c = c0 + ci;
        // SAFETY: each tile owns input-gradient plane `c` exclusively.
        let dxplane = unsafe { std::slice::from_raw_parts_mut(dxptr.get().add(c * hw), hw) };
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let row = ci * ksz + ky * spec.kw + kx;
                let src = &col[row * ohw..(row + 1) * ohw];
                for oy in 0..oh {
                    let iy = (oy * spec.sh + ky) as isize - spec.ph as isize;
                    if iy < 0 || iy >= xs.h as isize {
                        continue;
                    }
                    let src_row = &src[oy * ow..(oy + 1) * ow];
                    for (ox, &s) in src_row.iter().enumerate() {
                        let ix = (ox * spec.sw + kx) as isize - spec.pw as isize;
                        if ix < 0 || ix >= xs.w as isize {
                            continue;
                        }
                        dxplane[iy as usize * xs.w + ix as usize] += s;
                    }
                }
            }
        }
    });
}

fn general_forward(x: &Tensor, w: &Tensor, spec: &ConvSpec, out: &mut Tensor) {
    let xs = x.shape();
    let os = out.shape();
    let (oh, ow) = (os.h, os.w);
    let c_out = os.c;
    let cin_g = xs.c / spec.groups;
    let cout_g = c_out / spec.groups;
    let k = cin_g * spec.kh * spec.kw;
    let xdata = x.data();
    let wdata = w.data();
    let chw_in = xs.chw();
    let chw_out = os.chw();
    for_each_sample(out.data_mut(), chw_out, |n, yslice| {
        let xn = &xdata[n * chw_in..(n + 1) * chw_in];
        let mut col = scratch::take(k * oh * ow);
        for g in 0..spec.groups {
            im2col(xn, xs, spec, g * cin_g, (g + 1) * cin_g, oh, ow, &mut col);
            let wg = &wdata[g * cout_g * k..(g + 1) * cout_g * k];
            let yg = &mut yslice[g * cout_g * oh * ow..(g + 1) * cout_g * oh * ow];
            sgemm(cout_g, k, oh * ow, 1.0, wg, &col, 0.0, yg);
        }
    });
}

fn general_backward(x: &Tensor, w: &Tensor, dy: &Tensor, spec: &ConvSpec, need_dx: bool) -> (Option<Tensor>, Tensor) {
    let xs = x.shape();
    let os = dy.shape();
    let (oh, ow) = (os.h, os.w);
    let cin_g = xs.c / spec.groups;
    let cout_g = os.c / spec.groups;
    let k = cin_g * spec.kh * spec.kw;
    let ohw = oh * ow;
    let xdata = x.data();
    let wdata = w.data();
    let dydata = dy.data();
    let chw_in = xs.chw();
    let chw_out = os.chw();

    let mut dw = Tensor::zeros(w.shape());
    let mut dx = if need_dx { Some(Tensor::zeros(xs)) } else { None };
    let dw_len = w.shape().numel();

    // One pass per sample computes both the dw slab (reduced tree-wise by
    // reduce_sample_grads) and, when requested, the sample's dx slice —
    // sharing a single im2col per (sample, group).
    let dxptr = dx.as_mut().map(|t| SyncPtr::new(t.data_mut().as_mut_ptr()));
    reduce_sample_grads(xs.n, dw_len, dw.data_mut(), |n, slab| {
        let xn = &xdata[n * chw_in..(n + 1) * chw_in];
        let dyn_ = &dydata[n * chw_out..(n + 1) * chw_out];
        let mut col = scratch::take(k * ohw);
        let mut dcol = dxptr.as_ref().map(|_| scratch::take(k * ohw));
        for g in 0..spec.groups {
            im2col(xn, xs, spec, g * cin_g, (g + 1) * cin_g, oh, ow, &mut col);
            let dyg = &dyn_[g * cout_g * ohw..(g + 1) * cout_g * ohw];
            let dwg = &mut slab[g * cout_g * k..(g + 1) * cout_g * k];
            sgemm_a_bt(cout_g, ohw, k, 1.0, dyg, &col, 1.0, dwg);
            if let (Some(dcol), Some(p)) = (dcol.as_mut(), dxptr.as_ref()) {
                let wg = &wdata[g * cout_g * k..(g + 1) * cout_g * k];
                sgemm_at_b(k, cout_g, ohw, 1.0, wg, dyg, 0.0, dcol);
                // SAFETY: each sample tile owns dx slice `n` exclusively.
                let dxs = unsafe { std::slice::from_raw_parts_mut(p.get().add(n * chw_in), chw_in) };
                col2im(dcol, xs, spec, g * cin_g, (g + 1) * cin_g, oh, ow, dxs);
            }
        }
    });
    (dx, dw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference direct convolution for verification.
    fn conv_ref(x: &Tensor, w: &Tensor, b: Option<&Tensor>, spec: &ConvSpec) -> Tensor {
        let xs = x.shape();
        let c_out = w.shape().n;
        let os = spec.out_shape(xs, c_out);
        let cin_g = xs.c / spec.groups;
        let cout_g = c_out / spec.groups;
        let mut out = Tensor::zeros(os);
        for n in 0..xs.n {
            for co in 0..c_out {
                let g = co / cout_g;
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let mut acc = b.map(|bb| bb.data()[co]).unwrap_or(0.0);
                        for ci in 0..cin_g {
                            for ky in 0..spec.kh {
                                for kx in 0..spec.kw {
                                    let iy = (oy * spec.sh + ky) as isize - spec.ph as isize;
                                    let ix = (ox * spec.sw + kx) as isize - spec.pw as isize;
                                    if iy < 0 || iy >= xs.h as isize || ix < 0 || ix >= xs.w as isize {
                                        continue;
                                    }
                                    acc += x.at(n, g * cin_g + ci, iy as usize, ix as usize)
                                        * w.at(co, ci, ky, kx);
                                }
                            }
                        }
                        out.set(n, co, oy, ox, acc);
                    }
                }
            }
        }
        out
    }

    fn finite_diff_check(x: &Tensor, w: &Tensor, spec: &ConvSpec) {
        // Loss = sum(conv(x, w) * m) for random m; compare analytic vs numeric grads.
        let mut rng = StdRng::seed_from_u64(42);
        let y0 = conv2d(x, w, None, spec);
        let m = Tensor::uniform(y0.shape(), -1.0, 1.0, &mut rng);
        let grads = conv2d_backward(x, w, &m, spec, true);
        let eps = 1e-2f32;

        // Check a handful of weight coordinates.
        let mut wp = w.clone();
        for idx in [0usize, w.shape().numel() / 2, w.shape().numel() - 1] {
            let orig = wp.data()[idx];
            wp.data_mut()[idx] = orig + eps;
            let lp = (&conv2d(x, &wp, None, spec) * &m).sum();
            wp.data_mut()[idx] = orig - eps;
            let lm = (&conv2d(x, &wp, None, spec) * &m).sum();
            wp.data_mut()[idx] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let ana = grads.dw.data()[idx];
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "dw[{idx}] num={num} ana={ana}");
        }
        // And a couple of input coordinates.
        let mut xp = x.clone();
        for idx in [0usize, x.shape().numel() - 1] {
            let orig = xp.data()[idx];
            xp.data_mut()[idx] = orig + eps;
            let lp = (&conv2d(&xp, w, None, spec) * &m).sum();
            xp.data_mut()[idx] = orig - eps;
            let lm = (&conv2d(&xp, w, None, spec) * &m).sum();
            xp.data_mut()[idx] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let ana = grads.dx.as_ref().unwrap().data()[idx];
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "dx[{idx}] num={num} ana={ana}");
        }
    }

    /// Oracle for the fused plan: unfused conv, then bias, then activation
    /// as separate passes.
    fn fused_ref(x: &Tensor, w: &Tensor, bias: &[f32], spec: &ConvSpec, act: EpilogueAct) -> Tensor {
        let b = Tensor::from_vec(Shape::vector(bias.len()), bias.to_vec()).unwrap();
        let mut y = conv2d(x, w, Some(&b), spec);
        y.map_inplace(|v| act.apply(v));
        y
    }

    #[test]
    fn conv_plan_matches_unfused_passes() {
        let mut rng = StdRng::seed_from_u64(20);
        let acts = [EpilogueAct::Relu, EpilogueAct::HardSwish, EpilogueAct::HardSigmoid, EpilogueAct::None];
        // (x shape, w shape, spec): pointwise, depthwise, general, grouped.
        let cases = [
            (Shape::new(2, 12, 9, 9), Shape::new(20, 12, 1, 1), ConvSpec::pointwise()),
            (Shape::new(2, 8, 11, 10), Shape::new(8, 1, 3, 3), ConvSpec::depthwise(3, 2, 8)),
            (Shape::new(2, 6, 12, 12), Shape::new(10, 6, 3, 3), ConvSpec::kxk(3, 2)),
            (Shape::new(1, 8, 10, 10), Shape::new(12, 4, 3, 3), ConvSpec { groups: 2, ..ConvSpec::kxk(3, 1) }),
        ];
        for (i, (xs, ws, spec)) in cases.into_iter().enumerate() {
            let x = Tensor::randn(xs, 1.0, &mut rng);
            let w = Tensor::randn(ws, 0.4, &mut rng);
            let bias: Vec<f32> = (0..ws.n).map(|c| 0.1 * c as f32 - 0.3).collect();
            for act in acts {
                let plan = ConvPlan::new(&w, bias.clone(), spec, act);
                assert!(plan.packed_bytes() > 0);
                assert_eq!(plan.c_out(), ws.n);
                assert_eq!(plan.c_in(), xs.c);
                let got = plan.forward(&x);
                let want = fused_ref(&x, &w, &bias, &spec, act);
                assert_eq!(got.shape(), want.shape());
                assert!(
                    got.max_abs_diff(&want) < 1e-4,
                    "case {i} act {act:?}: diff {}",
                    got.max_abs_diff(&want)
                );
            }
        }
    }

    #[test]
    fn quant_plan_matches_fused_ref_within_quantization_bound() {
        let mut rng = StdRng::seed_from_u64(23);
        let acts = [EpilogueAct::Relu, EpilogueAct::HardSwish, EpilogueAct::None];
        // Same dispatch coverage as the f32 plan test: pointwise, depthwise,
        // general, grouped.
        let cases = [
            (Shape::new(2, 12, 9, 9), Shape::new(20, 12, 1, 1), ConvSpec::pointwise()),
            (Shape::new(2, 8, 11, 10), Shape::new(8, 1, 3, 3), ConvSpec::depthwise(3, 2, 8)),
            (Shape::new(2, 6, 12, 12), Shape::new(10, 6, 3, 3), ConvSpec::kxk(3, 2)),
            (Shape::new(1, 8, 10, 10), Shape::new(12, 4, 3, 3), ConvSpec { groups: 2, ..ConvSpec::kxk(3, 1) }),
        ];
        for (i, (xs, ws, spec)) in cases.into_iter().enumerate() {
            let x = Tensor::randn(xs, 1.0, &mut rng);
            let w = Tensor::randn(ws, 0.4, &mut rng);
            let bias: Vec<f32> = (0..ws.n).map(|c| 0.1 * c as f32 - 0.3).collect();
            let absmax = x.abs_max();
            let a_scale = int8_act_scale(absmax);
            let k = ws.c * ws.h * ws.w;
            for act in acts {
                let plan = QuantConvPlan::new(&w, bias.clone(), spec, act);
                assert!(plan.packed_bytes() > 0);
                assert_eq!((plan.c_out(), plan.c_in()), (ws.n, xs.c));
                let (got, omax) = plan.forward_quant(&x, None);
                let want = fused_ref(&x, &w, &bias, &spec, act);
                assert_eq!(got.shape(), want.shape());
                assert_eq!(omax, got.abs_max(), "folded absmax must be the true output absmax");
                let os = got.shape();
                for co in 0..ws.n {
                    // Worst-case half-step bound per output channel:
                    // activation steps against the row's L1 mass, weight
                    // steps against the input mass, and a 1.5x Lipschitz
                    // allowance for hard-swish.
                    let row = &w.data()[co * k..(co + 1) * k];
                    let w_l1: f32 = row.iter().map(|v| v.abs()).sum();
                    let w_max = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                    let bound = 1.5 * (0.5 * a_scale * w_l1 + 0.5 * (w_max / 127.0) * absmax * k as f32) + 1e-4;
                    for n in 0..os.n {
                        for oy in 0..os.h {
                            for ox in 0..os.w {
                                let d = (got.at(n, co, oy, ox) - want.at(n, co, oy, ox)).abs();
                                assert!(d <= bound, "case {i} act {act:?} ({n},{co},{oy},{ox}): err {d} > {bound}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn quant_plan_is_deterministic_and_accepts_carried_absmax() {
        let mut rng = StdRng::seed_from_u64(24);
        let x = Tensor::randn(Shape::new(2, 8, 12, 12), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(16, 8, 3, 3), 0.4, &mut rng);
        let plan = QuantConvPlan::new(&w, vec![0.05; 16], ConvSpec::kxk(3, 1), EpilogueAct::HardSwish);
        let (first, m0) = plan.forward_quant(&x, None);
        for _ in 0..3 {
            let (y, m) = plan.forward_quant(&x, None);
            assert_eq!(y, first, "quant forwards must be bitwise stable");
            assert_eq!(m.to_bits(), m0.to_bits());
        }
        // A producer-carried absmax equal to the scan's must be bit-identical.
        let (carried, mc) = plan.forward_quant(&x, Some(x.abs_max()));
        assert_eq!(carried, first);
        assert_eq!(mc.to_bits(), m0.to_bits());
    }

    #[test]
    fn quant_plan_rejects_wrong_channels() {
        let w = Tensor::ones(Shape::new(4, 3, 1, 1));
        let plan = QuantConvPlan::new(&w, vec![0.0; 4], ConvSpec::pointwise(), EpilogueAct::None);
        let x = Tensor::ones(Shape::new(1, 5, 4, 4));
        assert!(matches!(plan.try_forward_quant(&x, None), Err(ShapeError::DimMismatch { .. })));
    }

    #[test]
    fn conv_plan_forward_never_repacks() {
        // Repeated forwards must not touch the packed image: scratch borrows
        // happen (im2col, B panels) but the plan itself is read-only, so the
        // output is bitwise stable call over call.
        let mut rng = StdRng::seed_from_u64(21);
        let x = Tensor::randn(Shape::new(1, 8, 16, 16), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(16, 8, 3, 3), 0.4, &mut rng);
        let plan = ConvPlan::new(&w, vec![0.05; 16], ConvSpec::kxk(3, 1), EpilogueAct::HardSwish);
        let first = plan.forward(&x);
        for _ in 0..3 {
            assert_eq!(plan.forward(&x), first);
        }
    }

    #[test]
    fn conv_plan_rejects_wrong_channels() {
        let w = Tensor::ones(Shape::new(4, 3, 1, 1));
        let plan = ConvPlan::new(&w, vec![0.0; 4], ConvSpec::pointwise(), EpilogueAct::None);
        let x = Tensor::ones(Shape::new(1, 5, 4, 4));
        assert!(matches!(plan.try_forward(&x), Err(ShapeError::DimMismatch { .. })));
    }

    #[test]
    fn try_conv2d_rejects_bad_shapes() {
        let x = Tensor::ones(Shape::new(1, 3, 8, 8));
        let w = Tensor::ones(Shape::new(16, 3, 3, 3));
        assert!(try_conv2d(&x, &w, None, &ConvSpec::kxk(3, 1)).is_ok());
        // Weight kernel size disagrees with the spec.
        assert!(matches!(
            try_conv2d(&x, &w, None, &ConvSpec::kxk(5, 1)),
            Err(ShapeError::DimMismatch { .. })
        ));
        // Channels not divisible by groups.
        let spec = ConvSpec { groups: 2, ..ConvSpec::kxk(3, 1) };
        assert!(matches!(
            try_conv2d(&x, &w, None, &spec),
            Err(ShapeError::Indivisible { .. })
        ));
        // Bias with the wrong channel count.
        let bad_bias = Tensor::ones(Shape::vector(4));
        assert!(matches!(
            try_conv2d(&x, &w, Some(&bad_bias), &ConvSpec::kxk(3, 1)),
            Err(ShapeError::DimMismatch { .. })
        ));
        // Zero stride is a contract violation, not a divide-by-zero panic.
        let spec = ConvSpec { sh: 0, ..ConvSpec::kxk(3, 1) };
        assert!(matches!(
            try_conv2d(&x, &w, None, &spec),
            Err(ShapeError::ZeroWindow { .. })
        ));
    }

    #[test]
    fn out_shape_math() {
        let spec = ConvSpec::kxk(3, 2);
        assert_eq!(spec.out_hw(8, 8), (4, 4));
        assert_eq!(spec.out_hw(7, 7), (4, 4));
        let pw = ConvSpec::pointwise();
        assert_eq!(pw.out_hw(5, 9), (5, 9));
    }

    #[test]
    fn macs_formula() {
        // 1x1 conv: n*h*w*cin*cout
        let spec = ConvSpec::pointwise();
        assert_eq!(spec.macs(Shape::new(2, 8, 4, 4), 16), 2 * 4 * 4 * 8 * 16);
        // depthwise 3x3: n*oh*ow*c*9
        let d = ConvSpec::depthwise(3, 1, 8);
        assert_eq!(d.macs(Shape::new(1, 8, 4, 4), 8), 4 * 4 * 8 * 9);
    }

    #[test]
    fn pointwise_matches_reference() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(2, 5, 4, 3), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(7, 5, 1, 1), 0.5, &mut rng);
        let b = Tensor::randn(Shape::vector(7), 0.5, &mut rng);
        let spec = ConvSpec::pointwise();
        let got = conv2d(&x, &w, Some(&b), &spec);
        let want = conv_ref(&x, &w, Some(&b), &spec);
        assert!(got.max_abs_diff(&want) < 1e-4);
    }

    #[test]
    fn depthwise_matches_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(k, s) in &[(3usize, 1usize), (3, 2), (5, 2), (7, 4)] {
            let x = Tensor::randn(Shape::new(2, 4, 9, 8), 1.0, &mut rng);
            let w = Tensor::randn(Shape::new(4, 1, k, k), 0.5, &mut rng);
            let spec = ConvSpec::depthwise(k, s, 4);
            let got = conv2d(&x, &w, None, &spec);
            let want = conv_ref(&x, &w, None, &spec);
            assert!(got.max_abs_diff(&want) < 1e-4, "k={k} s={s}");
        }
    }

    #[test]
    fn general_matches_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(k, s, g) in &[(3usize, 1usize, 1usize), (3, 2, 1), (5, 1, 1), (3, 1, 2)] {
            let x = Tensor::randn(Shape::new(2, 4, 7, 6), 1.0, &mut rng);
            let w = Tensor::randn(Shape::new(6, 4 / g, k, k), 0.5, &mut rng);
            let spec = ConvSpec { groups: g, ..ConvSpec::kxk(k, s) };
            let got = conv2d(&x, &w, None, &spec);
            let want = conv_ref(&x, &w, None, &spec);
            assert!(got.max_abs_diff(&want) < 1e-4, "k={k} s={s} g={g}");
        }
    }

    #[test]
    fn larger_shapes_match_reference() {
        // Big enough to engage the blocked GEMM and multi-tile im2col paths.
        let mut rng = StdRng::seed_from_u64(8);
        let x = Tensor::randn(Shape::new(1, 12, 24, 24), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(20, 12, 3, 3), 0.3, &mut rng);
        let spec = ConvSpec::kxk(3, 2);
        let got = conv2d(&x, &w, None, &spec);
        let want = conv_ref(&x, &w, None, &spec);
        assert!(got.max_abs_diff(&want) < 1e-3);
    }

    #[test]
    fn backward_pointwise_finite_diff() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(Shape::new(2, 3, 4, 4), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(5, 3, 1, 1), 0.5, &mut rng);
        finite_diff_check(&x, &w, &ConvSpec::pointwise());
    }

    #[test]
    fn backward_depthwise_finite_diff() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(Shape::new(2, 3, 6, 6), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(3, 1, 3, 3), 0.5, &mut rng);
        finite_diff_check(&x, &w, &ConvSpec::depthwise(3, 2, 3));
    }

    #[test]
    fn backward_general_finite_diff() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn(Shape::new(2, 4, 6, 5), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(6, 2, 3, 3), 0.5, &mut rng);
        let spec = ConvSpec { groups: 2, ..ConvSpec::kxk(3, 2) };
        finite_diff_check(&x, &w, &spec);
    }

    #[test]
    fn backward_bias_gradient() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = Tensor::randn(Shape::new(2, 3, 4, 4), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(5, 3, 1, 1), 0.5, &mut rng);
        let dy = Tensor::ones(Shape::new(2, 5, 4, 4));
        let g = conv2d_backward(&x, &w, &dy, &ConvSpec::pointwise(), false);
        // db = sum of dy over n,h,w per channel = 2*16 = 32
        assert!(g.db.data().iter().all(|&v| (v - 32.0).abs() < 1e-4));
        assert!(g.dx.is_none());
    }

    #[test]
    fn training_depthwise_forward_bitwise_matches_reference_kernel() {
        // The training path now runs the interior/border-split kernel with an
        // identity epilogue; its output must match the bounds-checked
        // reference kernel bit for bit, including asymmetric padding.
        let mut rng = StdRng::seed_from_u64(30);
        let cases = [
            ConvSpec::depthwise(3, 1, 3),
            ConvSpec::depthwise(3, 2, 3),
            ConvSpec::depthwise(5, 2, 3),
            ConvSpec::depthwise(7, 4, 3),
            ConvSpec::depthwise(3, 1, 3).with_padding(0, 0),
            ConvSpec::depthwise(5, 1, 3).with_padding(4, 1),
        ];
        for spec in cases {
            let x = Tensor::randn(Shape::new(2, 3, 11, 9), 1.0, &mut rng);
            let w = Tensor::randn(Shape::new(3, 1, spec.kh, spec.kw), 0.5, &mut rng);
            let got = conv2d(&x, &w, None, &spec);
            let os = got.shape();
            let xs = x.shape();
            let mut want = Tensor::zeros(os);
            for n in 0..xs.n {
                for c in 0..xs.c {
                    let xplane = &x.data()[(n * xs.c + c) * xs.hw()..(n * xs.c + c + 1) * xs.hw()];
                    let kern = &w.data()[c * spec.kh * spec.kw..(c + 1) * spec.kh * spec.kw];
                    let base = (n * os.c + c) * os.hw();
                    depthwise_plane_forward(
                        xplane,
                        kern,
                        &spec,
                        xs,
                        os.h,
                        os.w,
                        &mut want.data_mut()[base..base + os.hw()],
                    );
                }
            }
            for (i, (a, b)) in got.data().iter().zip(want.data()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "k={} s={} idx {i}", spec.kh, spec.sh);
            }
        }
    }

    /// The pre-split depthwise backward: fully bounds-checked per-pixel walk,
    /// kept as the bitwise oracle for the interior/border production kernel.
    fn depthwise_backward_ref(x: &Tensor, w: &Tensor, dy: &Tensor, spec: &ConvSpec) -> (Tensor, Tensor) {
        let xs = x.shape();
        let os = dy.shape();
        let ksz = spec.kh * spec.kw;
        let slab_len = xs.c * ksz;
        let mut slabs = vec![0.0f32; xs.n * slab_len];
        let mut dx = Tensor::zeros(xs);
        for n in 0..xs.n {
            for c in 0..xs.c {
                let xplane = &x.data()[(n * xs.c + c) * xs.hw()..(n * xs.c + c + 1) * xs.hw()];
                let dyplane = &dy.data()[(n * os.c + c) * os.hw()..(n * os.c + c + 1) * os.hw()];
                let dkern_base = n * slab_len + c * ksz;
                for oy in 0..os.h {
                    let iy0 = (oy * spec.sh) as isize - spec.ph as isize;
                    for ox in 0..os.w {
                        let g = dyplane[oy * os.w + ox];
                        if g == 0.0 {
                            continue;
                        }
                        let ix0 = (ox * spec.sw) as isize - spec.pw as isize;
                        for ky in 0..spec.kh {
                            let iy = iy0 + ky as isize;
                            if iy < 0 || iy >= xs.h as isize {
                                continue;
                            }
                            for kx in 0..spec.kw {
                                let ix = ix0 + kx as isize;
                                if ix < 0 || ix >= xs.w as isize {
                                    continue;
                                }
                                slabs[dkern_base + ky * spec.kw + kx] +=
                                    g * xplane[iy as usize * xs.w + ix as usize];
                                let di = (n * xs.c + c) * xs.hw() + iy as usize * xs.w + ix as usize;
                                dx.data_mut()[di] += g * w.data()[c * ksz + ky * spec.kw + kx];
                            }
                        }
                    }
                }
            }
        }
        // Same pairwise sample tree as reduce_sample_grads.
        crate::par::tree_reduce_serial(xs.n, |d, s| {
            let (head, tail) = slabs.split_at_mut(s * slab_len);
            let dst = &mut head[d * slab_len..(d + 1) * slab_len];
            for (a, b) in dst.iter_mut().zip(&tail[..slab_len]) {
                *a += *b;
            }
        });
        let dw = Tensor::from_vec(w.shape(), slabs[..slab_len].to_vec()).unwrap();
        (dx, dw)
    }

    #[test]
    fn depthwise_backward_bitwise_matches_reference_walk() {
        let mut rng = StdRng::seed_from_u64(31);
        let cases = [
            ConvSpec::depthwise(3, 1, 4),
            ConvSpec::depthwise(3, 2, 4),
            ConvSpec::depthwise(5, 2, 4),
            ConvSpec::depthwise(5, 1, 4).with_padding(4, 1),
        ];
        for spec in cases {
            let x = Tensor::randn(Shape::new(3, 4, 10, 9), 1.0, &mut rng);
            let w = Tensor::randn(Shape::new(4, 1, spec.kh, spec.kw), 0.5, &mut rng);
            let mut dy = Tensor::randn(spec.out_shape(x.shape(), 4), 1.0, &mut rng);
            // Sprinkle exact zeros so the `g == 0.0` skip is exercised on
            // both sides of the split.
            dy.map_inplace(|v| if v < -0.3 { 0.0 } else { v });
            let (dx_want, dw_want) = depthwise_backward_ref(&x, &w, &dy, &spec);
            let (dx_got, dw_got) = depthwise_backward(&x, &w, &dy, &spec, true);
            let dx_got = dx_got.unwrap();
            for (i, (a, b)) in dw_got.data().iter().zip(dw_want.data()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "dw k={} s={} idx {i}", spec.kh, spec.sh);
            }
            for (i, (a, b)) in dx_got.data().iter().zip(dx_want.data()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "dx k={} s={} idx {i}", spec.kh, spec.sh);
            }
        }
    }

    #[test]
    fn conv_backward_grads_are_shard_invariant() {
        // Per-shard backward + pairwise-tree merge must equal the full-batch
        // backward bit for bit, for power-of-two shard counts (the tree
        // alignment theorem in `par::tree_reduce_serial`). This is the
        // kernel-level contract under the sharded train step.
        let mut rng = StdRng::seed_from_u64(32);
        let n = 8usize;
        let cases: Vec<(Shape, Shape, ConvSpec)> = vec![
            (Shape::new(n, 5, 6, 6), Shape::new(7, 5, 1, 1), ConvSpec::pointwise()),
            (Shape::new(n, 4, 9, 8), Shape::new(4, 1, 3, 3), ConvSpec::depthwise(3, 2, 4)),
            (Shape::new(n, 4, 7, 7), Shape::new(6, 4, 3, 3), ConvSpec::kxk(3, 1)),
        ];
        for (xs, ws, spec) in cases {
            let x = Tensor::randn(xs, 1.0, &mut rng);
            let w = Tensor::randn(ws, 0.5, &mut rng);
            let dy = Tensor::randn(spec.out_shape(xs, ws.n), 1.0, &mut rng);
            let full = conv2d_backward(&x, &w, &dy, &spec, false);
            for shards in [2usize, 4] {
                let m = n / shards;
                let chw_x = xs.chw();
                let chw_y = dy.shape().chw();
                let mut dws: Vec<Vec<f32>> = Vec::new();
                let mut dbs: Vec<Vec<f32>> = Vec::new();
                for s in 0..shards {
                    let xsh = Tensor::from_vec(
                        Shape::new(m, xs.c, xs.h, xs.w),
                        x.data()[s * m * chw_x..(s + 1) * m * chw_x].to_vec(),
                    )
                    .unwrap();
                    let dysh = Tensor::from_vec(
                        spec.out_shape(xsh.shape(), ws.n),
                        dy.data()[s * m * chw_y..(s + 1) * m * chw_y].to_vec(),
                    )
                    .unwrap();
                    let g = conv2d_backward(&xsh, &w, &dysh, &spec, false);
                    dws.push(g.dw.data().to_vec());
                    dbs.push(g.db.data().to_vec());
                }
                crate::par::tree_reduce_serial(shards, |d, s| {
                    let (head, tail) = dws.split_at_mut(s);
                    for (a, b) in head[d].iter_mut().zip(&tail[0]) {
                        *a += *b;
                    }
                    let (head, tail) = dbs.split_at_mut(s);
                    for (a, b) in head[d].iter_mut().zip(&tail[0]) {
                        *a += *b;
                    }
                });
                for (i, (a, b)) in dws[0].iter().zip(full.dw.data()).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "dw shards={shards} idx {i}");
                }
                for (i, (a, b)) in dbs[0].iter().zip(full.db.data()).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "db shards={shards} idx {i}");
                }
            }
        }
    }

    #[test]
    fn need_dx_false_matches_dw_of_full() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::randn(Shape::new(2, 4, 5, 5), 1.0, &mut rng);
        let w = Tensor::randn(Shape::new(6, 4, 3, 3), 0.5, &mut rng);
        let spec = ConvSpec::kxk(3, 1);
        let dy = Tensor::randn(spec.out_shape(x.shape(), 6), 1.0, &mut rng);
        let g1 = conv2d_backward(&x, &w, &dy, &spec, true);
        let g2 = conv2d_backward(&x, &w, &dy, &spec, false);
        assert!(g1.dw.max_abs_diff(&g2.dw) < 1e-4);
    }
}
