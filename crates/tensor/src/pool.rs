//! Pooling operators: global average pooling (classification heads,
//! squeeze-excite) and windowed average/max pooling (baselines).

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Global average pool: `[n, c, h, w] -> [n, c, 1, 1]`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let xs = x.shape();
    let mut out = Tensor::zeros(Shape::new(xs.n, xs.c, 1, 1));
    let hw = xs.hw() as f32;
    for n in 0..xs.n {
        for c in 0..xs.c {
            let base = (n * xs.c + c) * xs.hw();
            let s: f32 = x.data()[base..base + xs.hw()].iter().sum();
            out.data_mut()[n * xs.c + c] = s / hw;
        }
    }
    out
}

/// Adjoint of [`global_avg_pool`]: broadcasts `dy / (h*w)` over space.
pub fn global_avg_pool_backward(dy: &Tensor, in_shape: Shape) -> Tensor {
    assert_eq!(dy.shape(), Shape::new(in_shape.n, in_shape.c, 1, 1), "dy must be [n,c,1,1]");
    let mut dx = Tensor::zeros(in_shape);
    let hw = in_shape.hw();
    let inv = 1.0 / hw as f32;
    for n in 0..in_shape.n {
        for c in 0..in_shape.c {
            let g = dy.data()[n * in_shape.c + c] * inv;
            let base = (n * in_shape.c + c) * hw;
            for v in &mut dx.data_mut()[base..base + hw] {
                *v = g;
            }
        }
    }
    dx
}

/// Windowed max pool with stride == window (non-overlapping).
///
/// Returns the pooled tensor and the flat argmax indices (into `x.data()`)
/// needed by [`max_pool_backward`].
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn max_pool(x: &Tensor, k: usize) -> (Tensor, Vec<usize>) {
    assert!(k > 0, "pool window must be positive");
    let xs = x.shape();
    let (oh, ow) = (xs.h / k, xs.w / k);
    let os = xs.with_hw(oh, ow);
    let mut out = Tensor::zeros(os);
    let mut arg = vec![0usize; os.numel()];
    for n in 0..xs.n {
        for c in 0..xs.c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..k {
                        for kx in 0..k {
                            let idx = xs.offset(n, c, oy * k + ky, ox * k + kx);
                            let v = x.data()[idx];
                            if v > best {
                                best = v;
                                best_idx = idx;
                            }
                        }
                    }
                    let o = os.offset(n, c, oy, ox);
                    out.data_mut()[o] = best;
                    arg[o] = best_idx;
                }
            }
        }
    }
    (out, arg)
}

/// Adjoint of [`max_pool`].
pub fn max_pool_backward(dy: &Tensor, arg: &[usize], in_shape: Shape) -> Tensor {
    assert_eq!(dy.shape().numel(), arg.len(), "argmax table size mismatch");
    let mut dx = Tensor::zeros(in_shape);
    for (o, &idx) in arg.iter().enumerate() {
        dx.data_mut()[idx] += dy.data()[o];
    }
    dx
}

/// Windowed average pool with stride == window (non-overlapping).
pub fn avg_pool(x: &Tensor, k: usize) -> Tensor {
    assert!(k > 0, "pool window must be positive");
    let xs = x.shape();
    let (oh, ow) = (xs.h / k, xs.w / k);
    let os = xs.with_hw(oh, ow);
    let mut out = Tensor::zeros(os);
    let inv = 1.0 / (k * k) as f32;
    for n in 0..xs.n {
        for c in 0..xs.c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut s = 0.0;
                    for ky in 0..k {
                        for kx in 0..k {
                            s += x.at(n, c, oy * k + ky, ox * k + kx);
                        }
                    }
                    out.set(n, c, oy, ox, s * inv);
                }
            }
        }
    }
    out
}

/// Adjoint of [`avg_pool`].
pub fn avg_pool_backward(dy: &Tensor, k: usize, in_shape: Shape) -> Tensor {
    let mut dx = Tensor::zeros(in_shape);
    let os = dy.shape();
    let inv = 1.0 / (k * k) as f32;
    for n in 0..os.n {
        for c in 0..os.c {
            for oy in 0..os.h {
                for ox in 0..os.w {
                    let g = dy.at(n, c, oy, ox) * inv;
                    for ky in 0..k {
                        for kx in 0..k {
                            let cur = dx.at(n, c, oy * k + ky, ox * k + kx);
                            dx.set(n, c, oy * k + ky, ox * k + kx, cur + g);
                        }
                    }
                }
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gap_means_channels() {
        let x = Tensor::from_vec(Shape::new(1, 2, 1, 2), vec![1.0, 3.0, 10.0, 20.0]).unwrap();
        let y = global_avg_pool(&x);
        assert_eq!(y.data(), &[2.0, 15.0]);
    }

    #[test]
    fn gap_adjoint() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(2, 3, 4, 4), 1.0, &mut rng);
        let m = Tensor::randn(Shape::new(2, 3, 1, 1), 1.0, &mut rng);
        let lhs = (&global_avg_pool(&x) * &m).sum();
        let rhs = (&x * &global_avg_pool_backward(&m, x.shape())).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn max_pool_picks_max_and_routes_grad() {
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1.0, 5.0, 3.0, 2.0]).unwrap();
        let (y, arg) = max_pool(&x, 2);
        assert_eq!(y.data(), &[5.0]);
        let dy = Tensor::ones(y.shape());
        let dx = max_pool_backward(&dy, &arg, x.shape());
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_and_adjoint() {
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let y = avg_pool(&x, 2);
        assert_eq!(y.data(), &[4.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let x2 = Tensor::randn(Shape::new(1, 2, 4, 4), 1.0, &mut rng);
        let m = Tensor::randn(Shape::new(1, 2, 2, 2), 1.0, &mut rng);
        let lhs = (&avg_pool(&x2, 2) * &m).sum();
        let rhs = (&x2 * &avg_pool_backward(&m, 2, x2.shape())).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }
}
