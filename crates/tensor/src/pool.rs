//! Pooling operators: global average pooling (classification heads,
//! squeeze-excite) and windowed average/max pooling (baselines).
//!
//! All forward/backward kernels are parallelised over `(n, c)` planes with
//! [`crate::par::parallel_tiles`]. Each tile owns one output plane, so the
//! writes are disjoint and the results are bitwise identical for any thread
//! count. [`max_pool_backward`] is the one exception: it scatters through a
//! caller-supplied argmax table, so it stays sequential rather than trust
//! that the table's indices are plane-disjoint.

use crate::par::{parallel_tiles, SyncPtr};
use crate::shape::{Shape, ShapeError};
use crate::tensor::Tensor;

/// Global average pool: `[n, c, h, w] -> [n, c, 1, 1]`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let xs = x.shape();
    let mut out = Tensor::zeros(Shape::new(xs.n, xs.c, 1, 1));
    let hw = xs.hw();
    let inv = 1.0 / hw as f32;
    let xd = x.data();
    let optr = SyncPtr::new(out.data_mut().as_mut_ptr());
    parallel_tiles(xs.n * xs.c, |p| {
        let s: f32 = xd[p * hw..(p + 1) * hw].iter().sum();
        // SAFETY: tile `p` writes only element `p` of the [n*c] output.
        unsafe { *optr.get().add(p) = s * inv };
    });
    out
}

/// Adjoint of [`global_avg_pool`]: broadcasts `dy / (h*w)` over space.
pub fn global_avg_pool_backward(dy: &Tensor, in_shape: Shape) -> Tensor {
    assert_eq!(dy.shape(), Shape::new(in_shape.n, in_shape.c, 1, 1), "dy must be [n,c,1,1]");
    let mut dx = Tensor::zeros(in_shape);
    let hw = in_shape.hw();
    let inv = 1.0 / hw as f32;
    let dyd = dy.data();
    let dxptr = SyncPtr::new(dx.data_mut().as_mut_ptr());
    parallel_tiles(in_shape.n * in_shape.c, |p| {
        let g = dyd[p] * inv;
        // SAFETY: tile `p` owns the disjoint plane `[p*hw, (p+1)*hw)`.
        let plane = unsafe { std::slice::from_raw_parts_mut(dxptr.get().add(p * hw), hw) };
        for v in plane {
            *v = g;
        }
    });
    dx
}

/// Windowed max pool with stride == window (non-overlapping).
///
/// Returns the pooled tensor and the flat argmax indices (into `x.data()`)
/// needed by [`max_pool_backward`].
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn max_pool(x: &Tensor, k: usize) -> (Tensor, Vec<usize>) {
    try_max_pool(x, k).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`max_pool`]: a zero window comes back as
/// [`ShapeError::ZeroWindow`] instead of a panic.
///
/// # Errors
///
/// Returns an error if `k == 0`.
pub fn try_max_pool(x: &Tensor, k: usize) -> Result<(Tensor, Vec<usize>), ShapeError> {
    if k == 0 {
        return Err(ShapeError::ZeroWindow { what: "max_pool" });
    }
    let xs = x.shape();
    let (oh, ow) = (xs.h / k, xs.w / k);
    let os = xs.with_hw(oh, ow);
    let mut out = Tensor::zeros(os);
    let mut arg = vec![0usize; os.numel()];
    let ohw = oh * ow;
    let xd = x.data();
    let optr = SyncPtr::new(out.data_mut().as_mut_ptr());
    let aptr = SyncPtr::new(arg.as_mut_ptr());
    parallel_tiles(xs.n * xs.c, |p| {
        let xbase = p * xs.hw();
        // SAFETY: tile `p` owns the disjoint output/argmax plane `p`.
        let (oplane, aplane) = unsafe {
            (
                std::slice::from_raw_parts_mut(optr.get().add(p * ohw), ohw),
                std::slice::from_raw_parts_mut(aptr.get().add(p * ohw), ohw),
            )
        };
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for ky in 0..k {
                    for kx in 0..k {
                        let idx = xbase + (oy * k + ky) * xs.w + ox * k + kx;
                        let v = xd[idx];
                        if v > best {
                            best = v;
                            best_idx = idx;
                        }
                    }
                }
                oplane[oy * ow + ox] = best;
                aplane[oy * ow + ox] = best_idx;
            }
        }
    });
    Ok((out, arg))
}

/// Adjoint of [`max_pool`].
pub fn max_pool_backward(dy: &Tensor, arg: &[usize], in_shape: Shape) -> Tensor {
    assert_eq!(dy.shape().numel(), arg.len(), "argmax table size mismatch");
    let mut dx = Tensor::zeros(in_shape);
    // Sequential: `arg` is caller-supplied, so nothing guarantees its entries
    // are disjoint across planes and a parallel scatter could race.
    for (o, &idx) in arg.iter().enumerate() {
        dx.data_mut()[idx] += dy.data()[o];
    }
    dx
}

/// Windowed average pool with stride == window (non-overlapping).
pub fn avg_pool(x: &Tensor, k: usize) -> Tensor {
    try_avg_pool(x, k).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`avg_pool`].
///
/// # Errors
///
/// Returns [`ShapeError::ZeroWindow`] if `k == 0`.
pub fn try_avg_pool(x: &Tensor, k: usize) -> Result<Tensor, ShapeError> {
    if k == 0 {
        return Err(ShapeError::ZeroWindow { what: "avg_pool" });
    }
    let xs = x.shape();
    let (oh, ow) = (xs.h / k, xs.w / k);
    let os = xs.with_hw(oh, ow);
    let mut out = Tensor::zeros(os);
    let inv = 1.0 / (k * k) as f32;
    let ohw = oh * ow;
    let xd = x.data();
    let optr = SyncPtr::new(out.data_mut().as_mut_ptr());
    parallel_tiles(xs.n * xs.c, |p| {
        let xbase = p * xs.hw();
        // SAFETY: tile `p` owns the disjoint output plane `p`.
        let oplane = unsafe { std::slice::from_raw_parts_mut(optr.get().add(p * ohw), ohw) };
        for oy in 0..oh {
            for ox in 0..ow {
                let mut s = 0.0;
                for ky in 0..k {
                    for kx in 0..k {
                        s += xd[xbase + (oy * k + ky) * xs.w + ox * k + kx];
                    }
                }
                oplane[oy * ow + ox] = s * inv;
            }
        }
    });
    Ok(out)
}

/// Adjoint of [`avg_pool`].
pub fn avg_pool_backward(dy: &Tensor, k: usize, in_shape: Shape) -> Tensor {
    let mut dx = Tensor::zeros(in_shape);
    let os = dy.shape();
    let inv = 1.0 / (k * k) as f32;
    let ihw = in_shape.hw();
    let ohw = os.hw();
    let dyd = dy.data();
    let dxptr = SyncPtr::new(dx.data_mut().as_mut_ptr());
    parallel_tiles(os.n * os.c, |p| {
        // SAFETY: tile `p` owns the disjoint input-gradient plane `p`.
        let dxplane = unsafe { std::slice::from_raw_parts_mut(dxptr.get().add(p * ihw), ihw) };
        for oy in 0..os.h {
            for ox in 0..os.w {
                let g = dyd[p * ohw + oy * os.w + ox] * inv;
                for ky in 0..k {
                    for kx in 0..k {
                        dxplane[(oy * k + ky) * in_shape.w + ox * k + kx] += g;
                    }
                }
            }
        }
    });
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gap_means_channels() {
        let x = Tensor::from_vec(Shape::new(1, 2, 1, 2), vec![1.0, 3.0, 10.0, 20.0]).unwrap();
        let y = global_avg_pool(&x);
        assert_eq!(y.data(), &[2.0, 15.0]);
    }

    #[test]
    fn gap_adjoint() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(2, 3, 4, 4), 1.0, &mut rng);
        let m = Tensor::randn(Shape::new(2, 3, 1, 1), 1.0, &mut rng);
        let lhs = (&global_avg_pool(&x) * &m).sum();
        let rhs = (&x * &global_avg_pool_backward(&m, x.shape())).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn max_pool_picks_max_and_routes_grad() {
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1.0, 5.0, 3.0, 2.0]).unwrap();
        let (y, arg) = max_pool(&x, 2);
        assert_eq!(y.data(), &[5.0]);
        let dy = Tensor::ones(y.shape());
        let dx = max_pool_backward(&dy, &arg, x.shape());
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn try_pools_reject_zero_window() {
        let x = Tensor::ones(Shape::new(1, 1, 4, 4));
        assert_eq!(try_max_pool(&x, 0).unwrap_err(), ShapeError::ZeroWindow { what: "max_pool" });
        assert_eq!(try_avg_pool(&x, 0).unwrap_err(), ShapeError::ZeroWindow { what: "avg_pool" });
        assert!(try_max_pool(&x, 2).is_ok());
        assert!(try_avg_pool(&x, 2).is_ok());
    }

    #[test]
    fn avg_pool_and_adjoint() {
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let y = avg_pool(&x, 2);
        assert_eq!(y.data(), &[4.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let x2 = Tensor::randn(Shape::new(1, 2, 4, 4), 1.0, &mut rng);
        let m = Tensor::randn(Shape::new(1, 2, 2, 2), 1.0, &mut rng);
        let lhs = (&avg_pool(&x2, 2) * &m).sum();
        let rhs = (&x2 * &avg_pool_backward(&m, 2, x2.shape())).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn pooling_is_thread_count_invariant() {
        let _g = crate::par::tests_budget_lock();
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::randn(Shape::new(3, 8, 12, 12), 1.0, &mut rng);
        let dy = Tensor::randn(Shape::new(3, 8, 6, 6), 1.0, &mut rng);

        crate::par::set_max_threads(1);
        let gap1 = global_avg_pool(&x);
        let (mx1, arg1) = max_pool(&x, 2);
        let av1 = avg_pool(&x, 2);
        let avb1 = avg_pool_backward(&dy, 2, x.shape());

        crate::par::set_max_threads(8);
        let gap8 = global_avg_pool(&x);
        let (mx8, arg8) = max_pool(&x, 2);
        let av8 = avg_pool(&x, 2);
        let avb8 = avg_pool_backward(&dy, 2, x.shape());
        crate::par::set_max_threads(0);

        assert_eq!(gap1, gap8);
        assert_eq!(mx1, mx8);
        assert_eq!(arg1, arg8);
        assert_eq!(av1, av8);
        assert_eq!(avb1, avb8);
    }
}
