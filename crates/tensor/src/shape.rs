//! Four-dimensional NCHW shapes and the errors produced when they disagree.

use std::fmt;

/// The shape of a 4-D tensor in `NCHW` layout.
///
/// `n` is the batch dimension, `c` the channel dimension, and `h`/`w` the
/// spatial dimensions. Weight tensors reuse the same type with the
/// convention `[c_out, c_in/groups, k_h, k_w]`; vectors (biases, dense-layer
/// activations) use `[n, c, 1, 1]`.
///
/// ```
/// use revbifpn_tensor::Shape;
/// let s = Shape::new(2, 3, 8, 8);
/// assert_eq!(s.numel(), 2 * 3 * 8 * 8);
/// assert_eq!(s.hw(), 64);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Shape {
    /// Creates a shape from its four extents.
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self { n, c, h, w }
    }

    /// Shape of a per-channel vector `[1, c, 1, 1]` (e.g. a bias).
    pub const fn vector(c: usize) -> Self {
        Self::new(1, c, 1, 1)
    }

    /// Total number of elements.
    pub const fn numel(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Spatial extent `h * w`.
    pub const fn hw(&self) -> usize {
        self.h * self.w
    }

    /// Number of elements in one batch item, `c * h * w`.
    pub const fn chw(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Size in bytes of an `f32` tensor of this shape.
    pub const fn bytes(&self) -> usize {
        self.numel() * std::mem::size_of::<f32>()
    }

    /// Flat offset of element `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Debug builds assert the coordinates are in range.
    #[inline]
    pub fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Returns this shape with a different batch size.
    pub const fn with_n(&self, n: usize) -> Self {
        Self::new(n, self.c, self.h, self.w)
    }

    /// Returns this shape with a different channel count.
    pub const fn with_c(&self, c: usize) -> Self {
        Self::new(self.n, c, self.h, self.w)
    }

    /// Returns this shape with different spatial extents.
    pub const fn with_hw(&self, h: usize, w: usize) -> Self {
        Self::new(self.n, self.c, h, w)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}, {}]", self.n, self.c, self.h, self.w)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

impl From<(usize, usize, usize, usize)> for Shape {
    fn from((n, c, h, w): (usize, usize, usize, usize)) -> Self {
        Self::new(n, c, h, w)
    }
}

/// Typed violation of a kernel's shape contract, returned by the fallible
/// entry points (`try_resize`, `try_conv2d`, `try_max_pool`, ...).
///
/// The infallible wrappers panic with the same diagnostics; serving and
/// other untrusted-input paths use the `try_*` variants so a malformed
/// request surfaces as a value instead of unwinding through the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapeError {
    /// A requested output extent was zero (e.g. `resize` to `0 x w`).
    ZeroOutputSize {
        /// Requested output height.
        oh: usize,
        /// Requested output width.
        ow: usize,
    },
    /// Two tensors disagree on dims the operation requires to match.
    DimMismatch {
        /// Which contract was violated (static description).
        what: &'static str,
        /// The shape the operation expected.
        expected: Shape,
        /// The shape that was provided.
        got: Shape,
    },
    /// A count that must divide evenly does not (channels vs groups, ...).
    Indivisible {
        /// Which quantity is indivisible (static description).
        what: &'static str,
        /// The value that must be divisible.
        value: usize,
        /// The required divisor.
        divisor: usize,
    },
    /// A window/kernel extent that must be positive was zero.
    ZeroWindow {
        /// Which operation required the positive window.
        what: &'static str,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ZeroOutputSize { oh, ow } => {
                write!(f, "output size must be positive, got {oh}x{ow}")
            }
            ShapeError::DimMismatch { what, expected, got } => {
                write!(f, "{what}: expected {expected}, got {got}")
            }
            ShapeError::Indivisible { what, value, divisor } => {
                write!(f, "{what}: {value} not divisible by {divisor}")
            }
            ShapeError::ZeroWindow { what } => write!(f, "{what}: window must be positive"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// Error produced when tensor shapes disagree with an operation's contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShapeMismatchError {
    /// What the operation expected.
    pub expected: String,
    /// The shape that was actually provided.
    pub got: Shape,
}

impl fmt::Display for ShapeMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: expected {}, got {}", self.expected, self.got)
    }
}

impl std::error::Error for ShapeMismatchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_bytes() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.numel(), 120);
        assert_eq!(s.bytes(), 480);
        assert_eq!(s.chw(), 60);
    }

    #[test]
    fn offsets_are_row_major() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.offset(0, 0, 0, 0), 0);
        assert_eq!(s.offset(0, 0, 0, 1), 1);
        assert_eq!(s.offset(0, 0, 1, 0), 5);
        assert_eq!(s.offset(0, 1, 0, 0), 20);
        assert_eq!(s.offset(1, 0, 0, 0), 60);
        assert_eq!(s.offset(1, 2, 3, 4), 119);
    }

    #[test]
    fn with_helpers() {
        let s = Shape::new(1, 8, 16, 16);
        assert_eq!(s.with_n(4), Shape::new(4, 8, 16, 16));
        assert_eq!(s.with_c(3), Shape::new(1, 3, 16, 16));
        assert_eq!(s.with_hw(8, 8), Shape::new(1, 8, 8, 8));
    }

    #[test]
    fn display_and_debug() {
        let s = Shape::new(1, 2, 3, 4);
        assert_eq!(format!("{s}"), "1x2x3x4");
        assert_eq!(format!("{s:?}"), "[1, 2, 3, 4]");
    }

    #[test]
    fn mismatch_error_display() {
        let e = ShapeMismatchError { expected: "[1, 3, *, *]".into(), got: Shape::new(1, 4, 2, 2) };
        assert_eq!(format!("{e}"), "shape mismatch: expected [1, 3, *, *], got 1x4x2x2");
    }
}
