//! Umbrella crate re-exporting the RevBiFPN reproduction workspace.
pub use revbifpn as core;
pub use revbifpn_baselines as baselines;
pub use revbifpn_data as data;
pub use revbifpn_detect as detect;
pub use revbifpn_nn as nn;
pub use revbifpn_rev as rev;
pub use revbifpn_serve as serve;
pub use revbifpn_tensor as tensor;
pub use revbifpn_train as train;
