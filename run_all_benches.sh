#!/bin/bash
# Regenerates every table and figure of the paper; outputs under results/.
set -u
cd "$(dirname "$0")"
BINS="table6_scaling table1_imagenet table2_train_memory fig1_macs_vs_memory fig4_memory_vs_depth fig10_macs_vs_params fig12_memory_vs_resolution fig14_train_equivalence table3_ablation_sampling table4_ablation_stem table5_ablation_se table9_detection table10_segmentation extra_checkpoint_compare extra_ablation_design"
for b in $BINS; do
  echo "== running $b"
  cargo run --release -q -p revbifpn-bench --bin "$b" > "results/$b.md" 2>results/$b.err || echo "FAILED: $b"
done
cargo run --release -q -p revbifpn-bench --bin fig8_revshnet_memory > results/fig8_revshnet_memory.md 2>/dev/null
cargo run --release -q -p revbifpn-bench --bin fig8_revshnet_memory -- --res 288 > results/fig9_revshnet_memory_288.md 2>/dev/null
echo "all done"
